#!/usr/bin/env bash
# Crash-containment smoke test (docs/SERVER.md, src/engine/supervisor.hh):
# run rexd with process-isolated workers, kill -9 the worker processes
# mid-burst from outside, and assert the daemon keeps serving — every
# non-crashed verdict byte-identical to the golden records, every killed
# worker accounted for as a CrashedWorker record and on /metrics, and
# the slots respawned.
#
# Every step runs under a watchdog `timeout`; a supervision bug that
# wedges a request is exactly what this script exists to catch.
#
# Usage: scripts/crash_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD=${1:-build}
REXD="$BUILD/src/rexd"
CLIENT="$BUILD/examples/example_rex_client"
PORT=${REXD_CRASH_SMOKE_PORT:-18673}
WATCHDOG=${REXD_CRASH_SMOKE_TIMEOUT:-120}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

TESTS="SB+pos MP+dmb.sys LB+pos SB+dmb.sy+eret"
ROUNDS=${REXD_CRASH_SMOKE_ROUNDS:-6}

wait_healthy() {
    for _ in $(seq 1 100); do
        "$CLIENT" --port "$1" --health >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "rexd on port $1 never became healthy" >&2
    return 1
}

metric() {  # metric NAME FILE -> value (0 when absent)
    awk -v name="$1" '$1 == name { print $2; found = 1 }
                      END { if (!found) print 0 }' "$2"
}

# Golden verdicts from an in-process, unsupervised run.
for t in $TESTS; do
    timeout "$WATCHDOG" "$CLIENT" --direct --stable --builtin "$t" \
        --variants paper > "$WORK/golden.$t"
done

# The daemon under test: supervised workers, no cache (every request
# must actually reach a worker for the kills to have a target).
"$REXD" --port "$PORT" --no-cache --workers 3 \
    > "$WORK/rexd.log" 2>&1 &
REXD_PID=$!
wait_healthy "$PORT"

workers() { pgrep -P "$REXD_PID" || true; }

[ "$(workers | wc -l)" -eq 3 ] \
    || { echo "expected 3 worker processes under rexd"; exit 1; }

# --- The burst: clients hammer the daemon while workers are shot. ----
# A killed worker may eat one in-flight request (an honest
# CrashedWorker/SIGKILL record); everything answered with a real
# verdict must match the golden bytes. The killer SIGKILLs every
# current worker several times over, so respawn is exercised
# repeatedly, mid-burst, not just once.
for round in $(seq 1 "$ROUNDS"); do
    for t in $TESTS; do
        timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --stable \
            --builtin "$t" --variants paper \
            --retries 6 --retry-crashed --retry-deadline-ms 60000 \
            > "$WORK/burst.$round.$t" &
    done
    sleep 0.05
    # shellcheck disable=SC2046
    kill -9 $(workers) 2>/dev/null || true
    wait $(jobs -p | grep -v "^$REXD_PID$") 2>/dev/null || true
done

kill -0 "$REXD_PID" || { echo "rexd died during the burst"; exit 1; }
wait_healthy "$PORT"

crashed=0
for round in $(seq 1 "$ROUNDS"); do
    for t in $TESTS; do
        out="$WORK/burst.$round.$t"
        if grep -q '"verdict":"CrashedWorker"' "$out"; then
            # The retrying client exhausted its attempts into a kill
            # each time: allowed, but it must say SIGKILL, not wedge.
            grep -q '"signal":"SIGKILL"' "$out" \
                || { echo "crashed record without SIGKILL: $out"
                     cat "$out"; exit 1; }
            crashed=$((crashed + 1))
        else
            diff "$WORK/golden.$t" "$out" \
                || { echo "verdict mismatch after kills: $out"; exit 1; }
        fi
    done
done

# --- Afterwards: fresh workers serve every verdict correctly. --------
for t in $TESTS; do
    timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --stable \
        --builtin "$t" --variants paper > "$WORK/after.$t"
    diff "$WORK/golden.$t" "$WORK/after.$t" \
        || { echo "verdict mismatch after recovery: $t"; exit 1; }
done

timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --metrics \
    > "$WORK/metrics.txt"
crashes=$(metric rexd_worker_crashes_total "$WORK/metrics.txt")
respawns=$(metric rexd_worker_respawns_total "$WORK/metrics.txt")
live=$(metric rexd_workers_live "$WORK/metrics.txt")
[ "${crashes%.*}" -ge "$ROUNDS" ] \
    || { echo "expected >= $ROUNDS worker crashes, saw $crashes"; exit 1; }
[ "${respawns%.*}" -ge "$ROUNDS" ] \
    || { echo "expected >= $ROUNDS respawns, saw $respawns"; exit 1; }
[ "${live%.*}" -eq 3 ] \
    || { echo "expected 3 live workers after recovery, saw $live"; exit 1; }

kill -TERM "$REXD_PID"; wait "$REXD_PID" || true

echo "crash smoke: daemon survived $crashes worker kills" \
     "($respawns respawns, $crashed requests answered CrashedWorker)," \
     "verdicts identical"
echo "crash smoke: OK"
