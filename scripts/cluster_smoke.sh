#!/usr/bin/env bash
# End-to-end smoke test of multi-node shard dispatch and loss-free
# budget trips (docs/DISTRIBUTED.md):
#   - a 3-peer cluster behind a coordinator serves verdicts
#     byte-identical to the in-process checker;
#   - a budget-tripped campaign resumed via rex-cont-v1 continuation
#     tokens (--resume-budget) stitches to the unbudgeted answer;
#   - probabilistic peer faults (REX_FAULT_SPEC) degrade, never corrupt;
#   - kill -9 of one peer mid-burst re-dispatches its shards to the
#     survivors (nonzero rexd_peer_redispatch_total) with every verdict
#     still byte-identical;
#   - the coordinator's drained JSONL matches a single-node rerun of
#     the same campaign record for record;
#   - a Byzantine round (docs/DISTRIBUTED.md, "Integrity & trust
#     model"): one peer lies on 10% of its /shard answers and another
#     corrupts frames (--byzantine-spec); under --audit-rate 1.0 the
#     coordinator's merged stream stays byte-identical, corrupted
#     frames are rejected at the envelope (never merged), the liar is
#     caught by audit and quarantined, and the drained JSONL again
#     matches a single-node rerun.
#
# Usage: scripts/cluster_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD=${1:-build}
REXD="$BUILD/src/rexd"
CLIENT="$BUILD/examples/example_rex_client"
PORT=${REXD_CLUSTER_PORT:-18670}
WORK=$(mktemp -d)
trap 'kill -9 $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

wait_healthy() {
    for _ in $(seq 1 100); do
        "$CLIENT" --port "$1" --health >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "rexd on port $1 never became healthy" >&2
    return 1
}

metric() {  # metric FILE NAME -> value (0 when absent)
    awk -v name="$2" '$1 == name { print $2; found = 1 }
                      END { if (!found) print 0 }' "$1"
}

# Three peers, then a coordinator fanning shards out over all of them.
# Tiny shard tasks + min-shards 1 force real dispatch even for the
# modest builtin candidate spaces; caches stay off so every request
# exercises the wire path.
PEERS=""
for i in 1 2 3; do
    "$REXD" --port $((PORT + i)) --no-cache \
        > "$WORK/peer$i.log" 2>&1 &
    eval "PEER${i}_PID=\$!"
    PEERS="$PEERS${PEERS:+,}127.0.0.1:$((PORT + i))"
done
"$REXD" --port "$PORT" --no-cache \
    --results "$WORK/cluster.jsonl" \
    --peers "$PEERS" --peer-shards 4 --peer-min-shards 1 \
    > "$WORK/coord.log" 2>&1 &
COORD_PID=$!
for i in 0 1 2 3; do wait_healthy $((PORT + i)); done
for pid in "$PEER1_PID" "$PEER2_PID" "$PEER3_PID" "$COORD_PID"; do
    kill -0 "$pid" 2>/dev/null \
        || { echo "daemon $pid exited at startup (port in use?)"; exit 1; }
done

# Phase 1: budget-tripped-then-resumed campaign through the cluster.
# A 2-candidate ceiling trips every test below; --resume-budget keeps
# re-POSTing the continuation until the verdict lands. The stitched
# stream must be byte-identical to the unbudgeted in-process answer.
TESTS="SB+pos MP+dmb.sys IRIW+addrs LB+addrs SB+dmb.sy+eret"
for t in $TESTS; do
    for v in base SEA_RW; do
        timeout 120 "$CLIENT" --port "$PORT" --builtin "$t" \
            --variants "$v" --max-candidates 2 --resume-budget 200 \
            --stable > "$WORK/resumed.out" 2> "$WORK/resumed.err"
        "$CLIENT" --builtin "$t" --variants "$v" --stable --direct \
            > "$WORK/direct.out"
        diff "$WORK/resumed.out" "$WORK/direct.out" \
            || { echo "resume mismatch: $t $v"; exit 1; }
    done
done
grep -q "re-posting continuation" "$WORK/resumed.err" \
    || { echo "campaign never tripped its budget"; exit 1; }
echo "resume: budget-tripped campaign stitched to the unbudgeted answer"

# Phase 2: unbudgeted checks fan out over the peers; verdicts stay
# byte-identical to the direct checker.
for t in $TESTS; do
    timeout 120 "$CLIENT" --port "$PORT" --builtin "$t" \
        --variants paper --stable > "$WORK/cluster.out"
    "$CLIENT" --builtin "$t" --variants paper --stable --direct \
        > "$WORK/direct.out"
    diff "$WORK/cluster.out" "$WORK/direct.out" \
        || { echo "cluster verdict mismatch: $t"; exit 1; }
done
"$CLIENT" --port "$PORT" --metrics > "$WORK/metrics1.txt"
DISPATCHED=$(metric "$WORK/metrics1.txt" rexd_peer_dispatch_total)
[ "${DISPATCHED%.*}" -gt 0 ] \
    || { echo "no shards were dispatched to peers"; exit 1; }
echo "fan-out: $DISPATCHED shard tasks dispatched, verdicts byte-identical"

# Phase 3: probabilistic peer faults on the coordinator side must
# degrade through the retry / re-dispatch / local-fallback ladder, not
# corrupt or hang. (A fresh coordinator: the spec is read from the
# environment at first use.)
REX_FAULT_SPEC="peer-connect:0.3:7,peer-send:0.3:11,peer-recv:0.3:13" \
    "$REXD" --port $((PORT + 9)) --no-cache \
    --peers "$PEERS" --peer-shards 4 --peer-min-shards 1 \
    > "$WORK/faulty.log" 2>&1 &
wait_healthy $((PORT + 9))
for t in $TESTS; do
    timeout 120 "$CLIENT" --port $((PORT + 9)) --builtin "$t" \
        --variants paper --stable > "$WORK/faulty.out"
    "$CLIENT" --builtin "$t" --variants paper --stable --direct \
        > "$WORK/direct.out"
    diff "$WORK/faulty.out" "$WORK/direct.out" \
        || { echo "verdict mismatch under peer faults: $t"; exit 1; }
done
echo "peer faults: injected losses degraded cleanly, verdicts intact"

# Phase 4: kill -9 one peer mid-burst. The coordinator must mark it
# dead, re-dispatch its shards to the survivors, and keep serving
# byte-identical verdicts without hanging.
BURST="IRIW+addrs LB+addrs MP+dmb.sy+addr SB+dmb.sy+eret MP+dmb.sys"
pids=""
for t in $BURST; do
    ( timeout 120 "$CLIENT" --port "$PORT" --builtin "$t" \
          --variants paper --stable > "$WORK/burst.$t.out" ) &
    pids="$pids $!"
done
kill -9 "$PEER2_PID"
for p in $pids; do
    wait "$p" || { echo "burst request failed after peer kill"; exit 1; }
done
for t in $BURST; do
    "$CLIENT" --builtin "$t" --variants paper --stable --direct \
        > "$WORK/direct.out"
    diff "$WORK/burst.$t.out" "$WORK/direct.out" \
        || { echo "verdict mismatch after peer kill: $t"; exit 1; }
done
# Keep hammering until the dead peer's failure shows up in the
# counters (the burst may have finished before its sockets died).
for _ in $(seq 1 20); do
    "$CLIENT" --port "$PORT" --metrics > "$WORK/metrics2.txt"
    REDISPATCH=$(metric "$WORK/metrics2.txt" rexd_peer_redispatch_total)
    [ "${REDISPATCH%.*}" -gt 0 ] && break
    timeout 120 "$CLIENT" --port "$PORT" --builtin IRIW+addrs \
        --variants paper --stable > /dev/null
done
[ "${REDISPATCH%.*}" -gt 0 ] \
    || { echo "peer kill never caused a re-dispatch"; exit 1; }
echo "peer kill: $REDISPATCH shard tasks re-dispatched to survivors"

# Phase 5: drain the coordinator and replay its whole results file
# against a single-node daemon: record for record, the cluster's JSONL
# must be what one node would have produced.
kill -TERM "$COORD_PID"
wait "$COORD_PID" || true
grep -q "rexd drained:" "$WORK/coord.log"
"$REXD" --port $((PORT + 8)) --no-cache \
    --results "$WORK/single.jsonl" > "$WORK/single.log" 2>&1 &
SINGLE_PID=$!
wait_healthy $((PORT + 8))
python3 - "$WORK/cluster.jsonl" > "$WORK/replay.txt" <<'EOF'
import json, sys
for line in open(sys.argv[1]):
    if line.strip():
        r = json.loads(line)
        print(r["test"], r["variant"])
EOF
sort -u "$WORK/replay.txt" | while read -r t v; do
    timeout 120 "$CLIENT" --port $((PORT + 8)) --builtin "$t" \
        --variants "$v" --max-candidates 2 --resume-budget 200 \
        > /dev/null 2>&1 || \
    timeout 120 "$CLIENT" --port $((PORT + 8)) --builtin "$t" \
        --variants "$v" > /dev/null
done
kill -TERM "$SINGLE_PID"
wait "$SINGLE_PID" || true
python3 - "$WORK/cluster.jsonl" "$WORK/single.jsonl" <<'EOF'
import json, sys

def stable(path):
    # Final verdict records only: drop schedule-dependent fields and
    # intermediate ExhaustedBudget trip records (each resumed hop logs
    # one; how many hops a trip takes is schedule-dependent, the final
    # stitched verdict is not).
    out = {}
    for line in open(path):
        if not line.strip():
            continue
        r = json.loads(line)
        if r.get("verdict") == "ExhaustedBudget":
            continue
        for key in ("wall_us", "cache_hit", "continuation"):
            r.pop(key, None)
        out[(r["test"], r["variant"])] = json.dumps(r, sort_keys=True)
    return out

cluster, single = stable(sys.argv[1]), stable(sys.argv[2])
assert cluster, "cluster results file is empty"
assert cluster == single, (
    "cluster vs single-node JSONL mismatch:\n" +
    "\n".join(f"{k}: {cluster.get(k)} != {single.get(k)}"
              for k in sorted(set(cluster) | set(single))
              if cluster.get(k) != single.get(k)))
print(f"drain: {len(cluster)} verdict records byte-identical to "
      "a single-node rerun")
EOF

# Phase 6: Byzantine peers. One peer actively lies (perturbs its
# counters before sealing, so the envelope passes), another corrupts
# sealed frames (the envelope rejects them). The coordinator audits
# every filled task (--audit-rate 1.0) with local recompute as ground
# truth, so the merged stream must stay byte-identical, no
# digest-mismatched frame may ever be merged, and the liar must end
# the round quarantined.
"$REXD" --port $((PORT + 10)) --no-cache \
    --byzantine-spec "peer-corrupt-frame:0.2:6" \
    > "$WORK/corruptor.log" 2>&1 &
"$REXD" --port $((PORT + 12)) --no-cache \
    --byzantine-spec "peer-lie:0.1:5" \
    > "$WORK/liar.log" 2>&1 &
"$REXD" --port $((PORT + 11)) --no-cache \
    --results "$WORK/byz.jsonl" \
    --peers "127.0.0.1:$((PORT + 1)),127.0.0.1:$((PORT + 10)),127.0.0.1:$((PORT + 12))" \
    --peer-shards 4 --peer-min-shards 1 \
    --audit-rate 1.0 --peer-lie-quarantine 600 \
    > "$WORK/byz.log" 2>&1 &
BYZ_PID=$!
for p in 10 11 12; do wait_healthy $((PORT + p)); done
LIES=0; MISMATCH=0
for _ in $(seq 1 30); do
    for t in $TESTS; do
        timeout 120 "$CLIENT" --port $((PORT + 11)) --builtin "$t" \
            --variants paper --stable > "$WORK/byz.$t.out"
        "$CLIENT" --builtin "$t" --variants paper --stable --direct \
            > "$WORK/direct.out"
        diff "$WORK/byz.$t.out" "$WORK/direct.out" \
            || { echo "verdict mismatch under Byzantine peers: $t"; exit 1; }
    done
    "$CLIENT" --port $((PORT + 11)) --metrics > "$WORK/metrics3.txt"
    LIES=$(metric "$WORK/metrics3.txt" rexd_peer_lies_total)
    MISMATCH=$(metric "$WORK/metrics3.txt" \
        rexd_shard_digest_mismatches_total)
    [ "${LIES%.*}" -gt 0 ] && [ "${MISMATCH%.*}" -gt 0 ] && break
done
[ "${LIES%.*}" -gt 0 ] \
    || { echo "lying peer never served a confirmed lie"; exit 1; }
[ "${MISMATCH%.*}" -gt 0 ] \
    || { echo "corrupt frames never hit the digest check"; exit 1; }
QUAR=$(metric "$WORK/metrics3.txt" rexd_peers_quarantined)
[ "${QUAR%.*}" -ge 1 ] \
    || { echo "lying peer was never quarantined"; exit 1; }
echo "byzantine: $LIES lies caught, $MISMATCH frames rejected," \
     "$QUAR peer(s) quarantined, verdicts byte-identical"

# ...and the Byzantine coordinator's drained JSONL must still be what
# a single honest node would have produced.
kill -TERM "$BYZ_PID"
wait "$BYZ_PID" || true
grep -q "rexd drained:" "$WORK/byz.log"
"$REXD" --port $((PORT + 13)) --no-cache \
    --results "$WORK/byz_single.jsonl" > "$WORK/byz_single.log" 2>&1 &
BSINGLE_PID=$!
wait_healthy $((PORT + 13))
python3 - "$WORK/byz.jsonl" > "$WORK/byz_replay.txt" <<'EOF'
import json, sys
for line in open(sys.argv[1]):
    if line.strip():
        r = json.loads(line)
        print(r["test"], r["variant"])
EOF
sort -u "$WORK/byz_replay.txt" | while read -r t v; do
    timeout 120 "$CLIENT" --port $((PORT + 13)) --builtin "$t" \
        --variants "$v" > /dev/null
done
kill -TERM "$BSINGLE_PID"
wait "$BSINGLE_PID" || true
python3 - "$WORK/byz.jsonl" "$WORK/byz_single.jsonl" <<'EOF'
import json, sys

def stable(path):
    out = {}
    for line in open(path):
        if not line.strip():
            continue
        r = json.loads(line)
        for key in ("wall_us", "cache_hit", "continuation"):
            r.pop(key, None)
        out[(r["test"], r["variant"])] = json.dumps(r, sort_keys=True)
    return out

byz, single = stable(sys.argv[1]), stable(sys.argv[2])
assert byz, "byzantine results file is empty"
assert byz == single, (
    "byzantine vs single-node JSONL mismatch:\n" +
    "\n".join(f"{k}: {byz.get(k)} != {single.get(k)}"
              for k in sorted(set(byz) | set(single))
              if byz.get(k) != single.get(k)))
print(f"byzantine drain: {len(byz)} verdict records byte-identical "
      "to a single-node rerun")
EOF

echo "cluster smoke: OK"
