#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs.

Prints a per-benchmark ratio table (old time / new time, so >1 means the
new run is faster) and optionally fails when any selected benchmark
regressed beyond a threshold.

Usage:
    compare_bench.py OLD.json NEW.json [--threshold 0.9] [--filter REGEX]
    compare_bench.py --list FILE.json

Only aggregate-free entries are compared (run_type == "iteration" or no
run_type at all); aggregates like _mean/_median are skipped so plain and
--benchmark_repetitions outputs both work.
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue
        if entry.get("error_occurred"):
            # e.g. a benchmark the benched server cannot serve (the
            # PR6 baseline has no conditional-GET support); real_time
            # is 0 and would poison every ratio.
            continue
        out[entry["name"]] = float(entry["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="baseline benchmark JSON")
    parser.add_argument("new", nargs="?", help="candidate benchmark JSON")
    parser.add_argument("--list", action="store_true",
                        help="list benchmark names/times of OLD and exit")
    parser.add_argument("--threshold", type=float, default=None,
                        help="fail (exit 1) if any compared benchmark's "
                             "speedup ratio falls below this value")
    parser.add_argument("--filter", default=None,
                        help="only compare benchmarks matching this regex")
    parser.add_argument("--require", action="append", default=[],
                        metavar="REGEX",
                        help="fail (exit 1) unless at least one compared "
                             "benchmark matches REGEX; repeatable. Guards "
                             "threshold gates against silently comparing "
                             "nothing when a benchmark is renamed or "
                             "dropped")
    args = parser.parse_args()

    old = load(args.old)
    if args.list:
        for name, t in sorted(old.items()):
            print(f"{name:50s} {t:12.0f} ns")
        return 0
    if args.new is None:
        parser.error("NEW.json required unless --list")

    new = load(args.new)
    pattern = re.compile(args.filter) if args.filter else None

    names = [n for n in old if n in new]
    if pattern:
        names = [n for n in names if pattern.search(n)]
    if not names:
        print("no common benchmarks to compare", file=sys.stderr)
        return 1
    for required in args.require:
        if not any(re.search(required, n) for n in names):
            print(f"FAIL: no compared benchmark matches required "
                  f"pattern '{required}'", file=sys.stderr)
            return 1

    width = max(len(n) for n in names)
    print(f"{'benchmark':{width}s} {'old(ns)':>12s} {'new(ns)':>12s} "
          f"{'speedup':>8s}")
    worst = None
    for name in sorted(names):
        ratio = old[name] / new[name] if new[name] else float("inf")
        print(f"{name:{width}s} {old[name]:12.0f} {new[name]:12.0f} "
              f"{ratio:7.2f}x")
        if worst is None or ratio < worst[1]:
            worst = (name, ratio)

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"only in {args.old}: {', '.join(only_old)}")
    if only_new:
        print(f"only in {args.new}: {', '.join(only_new)}")

    if args.threshold is not None and worst and worst[1] < args.threshold:
        print(f"FAIL: {worst[0]} speedup {worst[1]:.2f}x is below "
              f"threshold {args.threshold:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
