#!/usr/bin/env bash
# Benchmark one rexd binary's HTTP serving path (bench_http_load) and
# write google-benchmark JSON. Start the daemon, wait for readiness,
# warm the verdict cache, bench, SIGTERM.
#
# Usage: scripts/http_bench.sh REXD_BINARY OUT.json [BUILD_DIR]
#
# BUILD_DIR (default: build) supplies bench_http_load and
# example_rex_client — deliberately decoupled from REXD_BINARY so one
# bench client can measure both the current daemon and a stashed
# baseline binary on the same machine, interleaved.
set -euo pipefail

REXD=${1:?usage: http_bench.sh REXD_BINARY OUT.json [BUILD_DIR]}
OUT=${2:?usage: http_bench.sh REXD_BINARY OUT.json [BUILD_DIR]}
BUILD=${3:-build}
BENCH="$BUILD/bench/bench_http_load"
CLIENT="$BUILD/examples/example_rex_client"
PORT=${REXD_BENCH_PORT:-18653}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$REXD" --port "$PORT" --threads 4 \
        --results "$WORK/rexd.jsonl" > "$WORK/rexd.log" 2>&1 &

for _ in $(seq 1 100); do
    "$CLIENT" --port "$PORT" --health >/dev/null 2>&1 && break
    sleep 0.1
done
"$CLIENT" --port "$PORT" --health >/dev/null 2>&1 || {
    echo "rexd ($REXD) never became healthy" >&2
    cat "$WORK/rexd.log" >&2
    exit 1
}

# Warm the verdict cache so every measured /check is a cache hit.
"$CLIENT" --port "$PORT" --builtin SB+pos --variants base \
    > /dev/null

REXD_HOST=127.0.0.1 REXD_PORT="$PORT" "$BENCH" \
    --benchmark_out="$OUT" --benchmark_out_format=json \
    --benchmark_min_time="${REXD_BENCH_MIN_TIME:-1}"

kill %1 2>/dev/null || true
wait 2>/dev/null || true
echo "http bench written: $OUT"
