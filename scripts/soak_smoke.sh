#!/usr/bin/env bash
# c10k soak smoke for rexd's event loop (docs/SERVER.md):
#   - ramp SOAK_CONNS concurrent keep-alive connections against one
#     daemon and pump pipelined GET /check/<builtin> requests;
#   - every response must be 200 with a byte-identical verdict body
#     (the soak driver enforces this; zero 5xx, zero transport errors);
#   - verdicts under load must equal `rex_client --direct --stable`;
#   - the whole run is under a hard watchdog deadline;
#   - SIGTERM afterwards must still drain cleanly.
#
# Usage: scripts/soak_smoke.sh [BUILD_DIR]
# Tuning: SOAK_CONNS (default 10000), SOAK_REQUESTS (per conn, default
# 3), SOAK_PIPELINE (default 3), SOAK_DEADLINE (seconds, default 300).
set -euo pipefail

BUILD=${1:-build}
REXD="$BUILD/src/rexd"
CLIENT="$BUILD/examples/example_rex_client"
SOAK="$BUILD/examples/example_rex_soak"
PORT=${REXD_SOAK_PORT:-18663}
CONNS=${SOAK_CONNS:-10000}
REQUESTS=${SOAK_REQUESTS:-3}
PIPELINE=${SOAK_PIPELINE:-3}
DEADLINE=${SOAK_DEADLINE:-300}
BUILTIN=${SOAK_BUILTIN:-SB+pos}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

# c10k needs c10k+ file descriptors on both sides of the loopback;
# the limit is per-process (daemon and driver each get their own).
ulimit -n 65536 2>/dev/null || true
FD_CAP=$(( $(ulimit -n) - 1000 ))
if [ "$CONNS" -gt "$FD_CAP" ]; then
    echo "warning: ulimit -n $(ulimit -n) caps the soak at $FD_CAP" \
         "connections (wanted $CONNS)" >&2
    CONNS=$FD_CAP
fi

# The job queue must absorb the full pipelined burst: every connection
# fires its batch at once the moment the ramp completes.
"$REXD" --port "$PORT" --threads 4 --max-conns $((CONNS + 2000)) \
        --queue $((CONNS * PIPELINE + 1000)) \
        --results "$WORK/rexd.jsonl" > "$WORK/rexd.log" 2>&1 &
REXD_PID=$!

for _ in $(seq 1 100); do
    "$CLIENT" --port "$PORT" --health >/dev/null 2>&1 && break
    sleep 0.1
done
"$CLIENT" --port "$PORT" --health >/dev/null 2>&1 || {
    echo "rexd never became healthy" >&2
    cat "$WORK/rexd.log" >&2
    exit 1
}

# The soak proper, under a hard watchdog: a hung event loop must fail
# the job, not hang CI.
timeout --signal=KILL "$DEADLINE" \
    "$SOAK" --port "$PORT" --conns "$CONNS" \
            --requests-per-conn "$REQUESTS" --pipeline "$PIPELINE" \
            --builtin "$BUILTIN" | tee "$WORK/soak.out"
grep -q "transport_errors=0" "$WORK/soak.out"
grep -q "mismatches=0" "$WORK/soak.out"

# Verdicts served under load equal the in-process direct checker.
"$CLIENT" --port "$PORT" --builtin "$BUILTIN" --variants paper \
    --stable > "$WORK/server.out"
"$CLIENT" --builtin "$BUILTIN" --variants paper --stable --direct \
    > "$WORK/direct.out"
diff "$WORK/server.out" "$WORK/direct.out" \
    || { echo "verdict mismatch after soak"; exit 1; }
echo "post-soak verdicts: byte-identical with the direct checker"

# No 5xx anywhere (the soak allows none; the counters must agree).
"$CLIENT" --port "$PORT" --metrics > "$WORK/metrics.txt"
python3 - "$WORK/metrics.txt" <<'EOF'
import sys
metrics = {}
for line in open(sys.argv[1]):
    parts = line.split()
    if not line.startswith('#') and len(parts) == 2:
        metrics[parts[0]] = float(parts[1])
for code in ("500", "503"):
    count = metrics.get('rexd_responses_total{code="%s"}' % code, 0)
    assert count == 0, f"unexpected {code}s: {count}"
conns = metrics.get("rexd_keepalive_requests_per_connection_count", 0)
assert conns > 0, "keep-alive histogram never observed a connection"
print("metrics: zero 5xx; %d keep-alive connections closed" % conns)
EOF

# Graceful drain still works after the stampede.
kill -TERM "$REXD_PID"
for _ in $(seq 1 100); do
    kill -0 "$REXD_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$REXD_PID" 2>/dev/null && {
    echo "rexd failed to drain after soak" >&2
    exit 1
}
grep -q "rexd drained:" "$WORK/rexd.log" || {
    echo "missing drain stats line" >&2
    cat "$WORK/rexd.log" >&2
    exit 1
}

echo "soak smoke: OK ($CONNS connections)"
