#!/usr/bin/env bash
# End-to-end smoke test of the rexd daemon (docs/SERVER.md):
#   - verdicts byte-identical to the in-process checker, across builtin
#     samples x the paper variant matrix, two rounds;
#   - round two served from the shared verdict cache (via /metrics);
#   - malformed input answered with 400, not a crash;
#   - 503 backpressure from a saturated one-slot queue;
#   - graceful SIGTERM drain leaving a complete JSONL results file.
#
# Usage: scripts/server_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD=${1:-build}
REXD="$BUILD/src/rexd"
CLIENT="$BUILD/examples/example_rex_client"
PORT=${REXD_SMOKE_PORT:-18643}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

wait_healthy() {
    for _ in $(seq 1 100); do
        "$CLIENT" --port "$1" --health >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "rexd on port $1 never became healthy" >&2
    return 1
}

"$REXD" --port "$PORT" --cache-dir "$WORK/cache" \
        --results "$WORK/rexd.jsonl" > "$WORK/rexd.log" 2>&1 &
REXD_PID=$!
wait_healthy "$PORT"

# Byte-identical verdicts, daemon vs the identical service run
# in-process, across builtin samples x the paper variant matrix.
# Two rounds: round two must be served from the shared cache.
TESTS="SB+pos MP+dmb.sys SB+dmb.sy+eret MP+dmb.sy+addr MP+dmb.sy+fault"
for round in 1 2; do
    for t in $TESTS; do
        "$CLIENT" --port "$PORT" --builtin "$t" --variants paper \
            --stable > "$WORK/server.out"
        "$CLIENT" --builtin "$t" --variants paper --stable --direct \
            > "$WORK/direct.out"
        diff "$WORK/server.out" "$WORK/direct.out" \
            || { echo "verdict mismatch: $t (round $round)"; exit 1; }
    done
done
echo "verdicts: byte-identical with the direct checker"

"$CLIENT" --port "$PORT" --metrics > "$WORK/metrics.txt"
python3 - "$WORK/metrics.txt" <<'EOF'
import sys
metrics = {}
for line in open(sys.argv[1]):
    parts = line.split()
    if not line.startswith('#') and len(parts) == 2:
        metrics[parts[0]] = float(parts[1])
hits = metrics["rexd_cache_hits_total"]
misses = metrics["rexd_cache_misses_total"]
# Round two re-checked every (test, variant) pair: hits >= misses.
assert misses > 0 and hits >= misses, (hits, misses)
print(f"cache: {hits:.0f} hits / {misses:.0f} misses")
EOF

# Malformed request body: a clean 400 (client exit 4), not a crash.
set +e
echo 'not json' | "$CLIENT" --port "$PORT" --post /check > "$WORK/bad.out"
status=$?
set -e
[ "$status" -eq 4 ] || { echo "expected exit 4, got $status"; exit 1; }
grep -q '"error"' "$WORK/bad.out"
"$CLIENT" --port "$PORT" --health > /dev/null   # still serving
echo "malformed request: 400"

# Backpressure: one handler thread, a one-slot queue, and a burst of
# slow requests; some must be shed with 503 (client exit 5) while the
# pinned ones are still served (exit 0).
"$REXD" --port $((PORT + 1)) --threads 1 --queue 1 --no-cache \
        > "$WORK/rexd2.log" 2>&1 &
wait_healthy $((PORT + 1))
: > "$WORK/burst.codes"
pids=""
for _ in $(seq 1 8); do
    ( set +e   # the whole point is recording non-zero exits
      "$CLIENT" --port $((PORT + 1)) --builtin SB+pos --sleep-ms 500 \
          > /dev/null 2>> "$WORK/burst.err"
      echo $? >> "$WORK/burst.codes" ) &
    pids="$pids $!"
done
for p in $pids; do wait "$p" || true; done
grep -qx 5 "$WORK/burst.codes" \
    || { echo "no 503 in burst:"; cat "$WORK/burst.codes"; exit 1; }
grep -qx 0 "$WORK/burst.codes" \
    || { echo "nothing served in burst:"; cat "$WORK/burst.codes"; exit 1; }
echo "backpressure: 503 shed observed, pinned requests served"

# Graceful drain: SIGTERM finishes accepted work; the results file
# holds only complete, parseable records.
kill -TERM "$REXD_PID"
wait "$REXD_PID"
grep -q "rexd drained:" "$WORK/rexd.log"
python3 - "$WORK/rexd.jsonl" <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "results file is empty"
for line in lines:
    record = json.loads(line)
    assert record["verdict"] in ("Allowed", "Forbidden"), record
print(f"drain: {len(lines)} complete JSONL records")
EOF

echo "server smoke: OK"
