#!/usr/bin/env bash
# Fault-injection smoke test (docs/SERVER.md, src/engine/faultinject.hh):
# run the daemon and the engine under a fixed REX_FAULT_SPEC matrix and
# assert the degradation contract — correct verdicts or clean errors,
# never a hang, a crash, or a torn artefact.
#
# Every scenario runs under a watchdog `timeout`; a hang is the one
# failure mode fault handling must never introduce, so a watchdog kill
# fails the script loudly.
#
# Usage: scripts/fault_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD=${1:-build}
REXD="$BUILD/src/rexd"
CLIENT="$BUILD/examples/example_rex_client"
PORT=${REXD_FAULT_SMOKE_PORT:-18653}
WATCHDOG=${REXD_FAULT_SMOKE_TIMEOUT:-120}
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

TESTS="SB+pos MP+dmb.sys LB+pos SB+dmb.sy+eret"

wait_healthy() {
    for _ in $(seq 1 100); do
        "$CLIENT" --port "$1" --health >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "rexd on port $1 never became healthy" >&2
    return 1
}

metric() {  # metric NAME FILE -> value (0 when absent)
    awk -v name="$1" '$1 == name { print $2; found = 1 }
                      END { if (!found) print 0 }' "$2"
}

# Golden verdicts from a fault-free in-process run.
for t in $TESTS; do
    timeout "$WATCHDOG" "$CLIENT" --direct --stable --builtin "$t" \
        --variants paper > "$WORK/golden.$t"
done

# --- Scenario 1: every cache write torn, every other read faulted. ---
# Pass one publishes only torn entries (the in-process memory layer
# still serves them, so verdicts are unaffected). Pass two restarts on
# the poisoned directory: every disk load must detect the corruption,
# evict, count, and fall back to a recomputed verdict — with half the
# reads additionally I/O-faulted into plain misses. Verdicts stay
# byte-identical throughout and nothing hangs.
REX_FAULT_SPEC="cache-write:1.0:7" \
    "$REXD" --port "$PORT" --cache-dir "$WORK/cache1" \
    > "$WORK/rexd1.log" 2>&1 &
PID1=$!
wait_healthy "$PORT"
for t in $TESTS; do
    timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --stable \
        --builtin "$t" --variants paper > "$WORK/out.$t"
    diff "$WORK/golden.$t" "$WORK/out.$t" \
        || { echo "cache-fault verdict mismatch: $t (torn pass)"; exit 1; }
done
kill -TERM "$PID1"; wait "$PID1" || true
REX_FAULT_SPEC="cache-read:0.5:11" \
    "$REXD" --port "$PORT" --cache-dir "$WORK/cache1" \
    > "$WORK/rexd1b.log" 2>&1 &
PID1=$!
wait_healthy "$PORT"
for t in $TESTS; do
    timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --stable \
        --builtin "$t" --variants paper > "$WORK/out.$t"
    diff "$WORK/golden.$t" "$WORK/out.$t" \
        || { echo "cache-fault verdict mismatch: $t (poisoned pass)"
             exit 1; }
done
timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --metrics \
    > "$WORK/metrics1.txt"
corrupt=$(metric rexd_cache_corrupt_total "$WORK/metrics1.txt")
[ "${corrupt%.*}" -ge 1 ] \
    || { echo "expected corrupt evictions on the poisoned cache"; exit 1; }
kill -TERM "$PID1"; wait "$PID1" || true
echo "cache faults: verdicts identical, $corrupt corrupt evictions"

# --- Scenario 2: every pool spawn fails -> tasks run inline. ---------
# Parallel checks silently degrade to serial; verdicts are unchanged
# (the shard merge is order-deterministic either way).
for t in $TESTS; do
    REX_FAULT_SPEC="pool-spawn:1.0:5" REX_JOBS=4 \
        timeout "$WATCHDOG" "$CLIENT" --direct --stable --builtin "$t" \
        --variants paper > "$WORK/inline.$t"
    diff "$WORK/golden.$t" "$WORK/inline.$t" \
        || { echo "pool-spawn verdict mismatch: $t"; exit 1; }
done
echo "pool-spawn faults: inline degradation, verdicts identical"

# --- Scenario 3: half the JSONL sink writes dropped. -----------------
# Dropped records are a counted loss; the file must never hold a torn
# line. A budgeted request also flows through: its exhausted_budget
# record obeys the same all-or-nothing sink contract.
REX_FAULT_SPEC="sink-write:0.5:3" \
    "$REXD" --port "$PORT" --no-cache --results "$WORK/results.jsonl" \
    > "$WORK/rexd3.log" 2>&1 &
PID3=$!
wait_healthy "$PORT"
for t in $TESTS; do
    timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --stable \
        --builtin "$t" --variants paper > /dev/null
done
timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --builtin MP+dmb.sys \
    --max-candidates 1 > /dev/null
kill -TERM "$PID3"; wait "$PID3" || true
python3 - "$WORK/results.jsonl" <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
for line in lines:
    json.loads(line)  # a torn line would throw
print(f"sink faults: {len(lines)} intact records (drops are silent)")
EOF

# --- Scenario 4: flaky sockets + client retry. -----------------------
# Accepted connections are randomly dropped and sends randomly fail;
# a retrying client still converges on the correct verdict, and the
# whole exchange stays inside the watchdog.
REX_FAULT_SPEC="sock-accept:0.3:9,sock-send:0.3:13" \
    "$REXD" --port "$PORT" --no-cache > "$WORK/rexd4.log" 2>&1 &
PID4=$!
sleep 0.3   # health polls are themselves subject to accept faults
for t in $TESTS; do
    timeout "$WATCHDOG" "$CLIENT" --port "$PORT" --stable \
        --builtin "$t" --variants paper \
        --retries 8 --retry-deadline-ms 60000 \
        > "$WORK/flaky.$t" 2>> "$WORK/flaky.err"
    diff "$WORK/golden.$t" "$WORK/flaky.$t" \
        || { echo "socket-fault verdict mismatch: $t"; exit 1; }
done
kill -TERM "$PID4"; wait "$PID4" || true
echo "socket faults: retrying client converged on identical verdicts"

echo "fault smoke: OK"
