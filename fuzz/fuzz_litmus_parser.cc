/**
 * @file
 * libFuzzer harness for the litmus parser (litmus/parser.hh).
 *
 * Rejected inputs throw FatalError — that is the parser's contract and
 * not a finding. Anything else (ASan/UBSan trap, uncaught exception,
 * crash, hang) is. When parsing succeeds, the parsed test is
 * re-serialised through its program printers so the accepting path is
 * exercised past the parse itself.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/logging.hh"
#include "litmus/parser.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::string text(reinterpret_cast<const char *>(data), size);
    try {
        rex::LitmusTest test = rex::parseLitmus(text);
        for (const rex::LitmusThread &thread : test.threads)
            (void)thread.program.toString();
    } catch (const rex::FatalError &) {
        // Malformed input: the documented rejection path.
    }
    return 0;
}
