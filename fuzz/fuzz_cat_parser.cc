/**
 * @file
 * libFuzzer harness for the cat-language parser (cat/parser.hh).
 *
 * The parser consumes model files from disk, not the network, but it
 * backs `example_check_file --cat` on user-supplied paths and the catc
 * compiler's front end; a malformed model must fail with FatalError,
 * never UB. Parsing only — evaluation needs a candidate execution and
 * is covered by the differential fuzz tests (tests/test_fuzz.cc).
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/logging.hh"
#include "cat/parser.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::string text(reinterpret_cast<const char *>(data), size);
    try {
        (void)rex::cat::parseCat(text);
    } catch (const rex::FatalError &) {
        // Malformed input: the documented rejection path.
    }
    return 0;
}
