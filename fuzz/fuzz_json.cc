/**
 * @file
 * libFuzzer harness for rexd's request JSON parser (server/json.hh).
 *
 * parseJson() guards rexd's network boundary: every byte sequence a
 * client can send passes through it, so rejection must always be a
 * clean FatalError (depth-capped, no recursion blowups, no UB on
 * truncated escapes or stray UTF-8). Accepted values get their object
 * members walked to cover the lookup path the service handlers use.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "base/logging.hh"
#include "server/json.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::string text(reinterpret_cast<const char *>(data), size);
    try {
        rex::server::JsonValue value = rex::server::parseJson(text);
        for (const auto &[key, member] : value.object)
            (void)value.find(key)->isNull(), (void)member;
    } catch (const rex::FatalError &) {
        // Malformed input: the documented rejection path.
    }
    return 0;
}
