/**
 * @file
 * check_file: a small command-line test oracle in the spirit of the
 * paper's Isla usage — load a .litmus file, enumerate its candidate
 * executions, and report the verdict under one or more model variants,
 * with the witness (or the forbidding explanation) on request.
 *
 * Usage:
 *   ./example_check_file [--dot|--all|--jobs N] FILE.litmus [variant...]
 *   ./example_check_file [--dot|--all|--jobs N] --builtin TEST-NAME
 *                        [variant...]
 *
 * Variants: base (default), ExS, ExS_EIS0, ExS_EOS0, SEA_R, SEA_W,
 * SEA_RW, noETS2. With --dot, the witness execution is printed as a
 * Graphviz graph (pipe into `dot -Tsvg`); with --all, every consistent
 * final state is listed with the number of consistent candidate
 * executions reaching it (Isla-style exhaustive output).
 *
 * The per-variant checks run as independent jobs on the batch engine
 * (--jobs N, default REX_JOBS else hardware concurrency); output is
 * printed in variant order regardless of the schedule. The full
 * enumeration (exact candidate counts, witness) always runs — verdicts
 * are not served from the cache here, because the oracle's whole point
 * is the counted evidence.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "base/strings.hh"
#include "rex/rex.hh"

namespace {

/** Render every consistent final state under @p params. */
std::string
listAllOutcomes(const rex::LitmusTest &test,
                const rex::ModelParams &params)
{
    using namespace rex;
    std::map<std::string, std::size_t> outcomes;
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        if (!checkConsistent(cand, params).consistent)
            return true;
        std::string key;
        for (const CondAtom &atom : test.finalCond.atoms) {
            if (atom.kind != CondAtom::Kind::Register)
                continue;
            key += std::to_string(atom.tid) + ":" +
                isa::regName(atom.reg) + "=" +
                std::to_string(cand.finalRegs[
                    static_cast<std::size_t>(atom.tid)][atom.reg]) + " ";
        }
        for (LocationId loc = 0; loc < test.locations.size(); ++loc) {
            key += "*" + test.locations[loc] + "=" +
                std::to_string(cand.finalMemValue(loc)) + " ";
        }
        ++outcomes[key];
        return true;
    });
    std::string out;
    for (const auto &[key, count] : outcomes) {
        out += rex::format("    %6zu  %s\n", count, key.c_str());
    }
    out += rex::format("    (%zu distinct consistent final states)\n",
                       outcomes.size());
    return out;
}

/** Everything one variant's job computes. */
struct VariantReport {
    rex::CheckResult result;
    std::string outcomesListing;  // --all only
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace rex;

    // ^C mid-run keeps the JSONL records already proved.
    engine::installFlushOnExitSignals();
    // A fatal signal names the test/variant/stage it hit on stderr.
    engine::installCrashAttributionHandler();

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s FILE.litmus [variant...]\n"
                     "       %s --builtin TEST-NAME [variant...]\n",
                     argv[0], argv[0]);
        return 2;
    }

    LitmusTest owned;
    const LitmusTest *test = nullptr;
    int arg = 1;
    bool dot = false;
    bool all = false;
    engine::EngineConfig config = engine::EngineConfig::fromEnv();
    // The oracle wants exact counts and witnesses, which cached verdicts
    // (short-circuited, witness-less) cannot provide.
    config.cacheEnabled = false;
    while (arg < argc && (std::strcmp(argv[arg], "--dot") == 0 ||
                          std::strcmp(argv[arg], "--all") == 0 ||
                          std::strcmp(argv[arg], "--jobs") == 0)) {
        if (std::strcmp(argv[arg], "--dot") == 0) {
            dot = true;
        } else if (std::strcmp(argv[arg], "--all") == 0) {
            all = true;
        } else {
            if (arg + 1 >= argc) {
                std::fprintf(stderr, "--jobs needs a count\n");
                return 2;
            }
            config.jobs = static_cast<unsigned>(
                std::strtoul(argv[++arg], nullptr, 10));
        }
        ++arg;
    }
    if (arg >= argc) {
        std::fprintf(stderr, "missing test argument\n");
        return 2;
    }
    argv += arg - 1;
    argc -= arg - 1;
    arg = 1;
    if (std::strcmp(argv[1], "--builtin") == 0) {
        if (argc < 3) {
            std::fprintf(stderr, "--builtin needs a test name\n");
            return 2;
        }
        test = &TestRegistry::instance().get(argv[2]);
        arg = 3;
    } else {
        owned = parseLitmusFile(argv[1]);
        test = &owned;
        arg = 2;
    }

    std::vector<std::string> variants;
    for (; arg < argc; ++arg)
        variants.push_back(argv[arg]);
    if (variants.empty())
        variants.push_back("base");

    std::printf("%s: %s\n", test->name.c_str(),
                test->description.c_str());

    // One engine job per requested variant; reports print in variant
    // order below, independent of the schedule.
    engine::Engine engine(config);
    std::vector<VariantReport> reports =
        engine.map(variants.size(), [&](std::size_t i) {
            VariantReport report;
            ModelParams params = ModelParams::byName(variants[i]);
            report.result = checkTest(*test, params);
            if (all)
                report.outcomesListing = listAllOutcomes(*test, params);
            return report;
        });

    bool all_match = true;
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const std::string &variant = variants[v];
        const CheckResult &result = reports[v].result;
        std::printf("  %-9s %-9s  (%zu candidates, %zu consistent, "
                    "%zu witnesses)\n",
                    variant.c_str(),
                    result.observable ? "Allowed" : "Forbidden",
                    result.candidates, result.consistent,
                    result.witnesses);

        bool expected = variant == "base"
            ? test->expectedAllowed
            : (test->variantAllowed.count(variant)
                   ? test->variantAllowed.at(variant)
                   : result.observable);
        if (result.observable != expected) {
            std::printf("           MISMATCH: expected %s\n",
                        expected ? "Allowed" : "Forbidden");
            all_match = false;
        }
        if (all)
            std::fputs(reports[v].outcomesListing.c_str(), stdout);
        if (result.witness) {
            if (dot) {
                std::fputs(result.witness->toDot().c_str(), stdout);
            } else {
                std::printf("           witness:\n%s",
                            result.witness->dump().c_str());
            }
        }
    }
    return all_match ? 0 : 1;
}
