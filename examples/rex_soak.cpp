/**
 * @file
 * rex_soak: a c10k soak driver for rexd's event loop.
 *
 * Opens --conns concurrent keep-alive connections (ramped in batches of
 * --ramp nonblocking connects), then pumps --requests-per-conn GET
 * /check/<builtin> requests down each, --pipeline of them back-to-back
 * per batch. Every response is framed by Content-Length and compared
 * byte-for-byte against a reference body fetched once up front: the
 * point of the soak is not just that the server survives 10k sockets
 * but that every verdict served under that load is identical to the
 * verdict served to a single polite client.
 *
 * Failure conditions (exit 1):
 *   - any transport error (reset, refused, short write);
 *   - any response other than 200 — unless --allow-sheds, which
 *     tolerates 503 (deliberate load-shedding) but still fails on
 *     other 5xx;
 *   - any 200 body differing from the reference;
 *   - responses out of order within a pipelined batch (caught by the
 *     byte comparison: all bodies are identical only per-request).
 *
 * A final summary line reports connections, requests, responses by
 * status, wall time, and requests/second. Linux-only (epoll); on other
 * platforms it prints a notice and exits 0 so smoke harnesses can call
 * it unconditionally.
 *
 * Usage:
 *   example_rex_soak --port P [--host H] [--conns N] [--ramp N]
 *                    [--requests-per-conn N] [--pipeline N]
 *                    [--builtin NAME] [--allow-sheds]
 */

#ifdef __linux__

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/client.hh"

namespace {

struct Options {
    std::string host = "127.0.0.1";
    int port = 8643;
    int conns = 10000;
    int ramp = 500;
    int requestsPerConn = 3;
    int pipeline = 1;
    std::string builtin = "SB+pos";
    bool allowSheds = false;
};

/** One soak connection's life: connect → send batch → read batch →
 *  repeat until its request budget is spent → close. */
struct SoakConn {
    int fd = -1;
    bool connecting = false;
    std::string out;         //!< unsent request bytes
    std::size_t outOff = 0;
    std::string in;          //!< unparsed response bytes
    int sent = 0;            //!< requests written so far
    int answered = 0;        //!< responses fully parsed so far
    bool done = false;
};

struct Stats {
    long requests = 0;
    long ok = 0;
    long sheds = 0;
    long otherStatus = 0;
    long mismatches = 0;
    long transportErrors = 0;
};

int
soakError(const char *what)
{
    std::fprintf(stderr, "rex_soak: %s: %s\n", what,
                 std::strerror(errno));
    return 1;
}

/** Zero the schedule-dependent verdict fields (wall_us, cache_hit) so
 *  bodies compare byte-for-byte across cache misses and hits. */
std::string
stabilise(std::string body)
{
    static const char kWall[] = "\"wall_us\":";
    std::size_t pos = 0;
    while ((pos = body.find(kWall, pos)) != std::string::npos) {
        std::size_t digits = pos + sizeof(kWall) - 1;
        std::size_t end = digits;
        while (end < body.size() && body[end] >= '0' && body[end] <= '9')
            ++end;
        body.replace(digits, end - digits, "0");
        pos = digits;
    }
    static const char kHit[] = "\"cache_hit\":true";
    while ((pos = body.find(kHit)) != std::string::npos)
        body.replace(pos, sizeof(kHit) - 1, "\"cache_hit\":false");
    return body;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host")
            opt.host = value();
        else if (arg == "--port")
            opt.port = std::atoi(value());
        else if (arg == "--conns")
            opt.conns = std::atoi(value());
        else if (arg == "--ramp")
            opt.ramp = std::atoi(value());
        else if (arg == "--requests-per-conn")
            opt.requestsPerConn = std::atoi(value());
        else if (arg == "--pipeline")
            opt.pipeline = std::atoi(value());
        else if (arg == "--builtin")
            opt.builtin = value();
        else if (arg == "--allow-sheds")
            opt.allowSheds = true;
        else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return 2;
        }
    }
    if (opt.conns < 1 || opt.requestsPerConn < 1 || opt.pipeline < 1) {
        std::fprintf(stderr, "rex_soak: counts must be positive\n");
        return 2;
    }
    opt.pipeline = std::min(opt.pipeline, opt.requestsPerConn);

    const std::string target = "/check/" + opt.builtin + "?variants=base";
    const std::string request =
        "GET " + target + " HTTP/1.1\r\nHost: soak\r\n\r\n";

    // Reference body from one polite blocking request: every soak
    // response must match it byte for byte.
    std::string reference;
    try {
        rex::server::Client warm(opt.host,
                                 static_cast<std::uint16_t>(opt.port));
        rex::server::ClientResponse r = warm.get(target);
        if (r.status != 200) {
            std::fprintf(stderr,
                         "rex_soak: warm-up GET %s answered %d\n",
                         target.c_str(), r.status);
            return 1;
        }
        reference = stabilise(r.body);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rex_soak: warm-up failed: %s\n", e.what());
        return 1;
    }

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
    if (::inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1) {
        std::fprintf(stderr, "rex_soak: bad host %s\n",
                     opt.host.c_str());
        return 2;
    }

    int epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd < 0)
        return soakError("epoll_create1");

    std::vector<SoakConn> conns(static_cast<std::size_t>(opt.conns));
    Stats stats;
    int peakOpen = 0;
    int open = 0;
    int launched = 0;
    int finished = 0;
    bool pumping = false;  //!< all handshakes done; requests flowing
    const auto start = std::chrono::steady_clock::now();

    auto setInterest = [&](std::size_t id, bool add) {
        SoakConn &c = conns[id];
        struct epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.data.u64 = id;
        ev.events = EPOLLIN;
        if (c.connecting || c.outOff < c.out.size())
            ev.events |= EPOLLOUT;
        ::epoll_ctl(epollFd, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD,
                    c.fd, &ev);
    };

    auto queueBatch = [&](SoakConn &c) {
        int batch = std::min(opt.pipeline, opt.requestsPerConn - c.sent);
        for (int k = 0; k < batch; ++k)
            c.out += request;
        c.sent += batch;
        stats.requests += batch;
    };

    auto launchOne = [&](std::size_t id) -> bool {
        SoakConn &c = conns[id];
        c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
        if (c.fd < 0)
            return false;
        int one = 1;
        ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        int rc = ::connect(
            c.fd, reinterpret_cast<struct sockaddr *>(&addr),
            sizeof(addr));
        if (rc < 0 && errno != EINPROGRESS) {
            ::close(c.fd);
            c.fd = -1;
            return false;
        }
        c.connecting = rc < 0;
        setInterest(id, true);
        ++open;
        peakOpen = std::max(peakOpen, open);
        ++launched;
        return true;
    };

    auto finishConn = [&](std::size_t id, bool failed) {
        SoakConn &c = conns[id];
        if (c.fd >= 0) {
            ::epoll_ctl(epollFd, EPOLL_CTL_DEL, c.fd, nullptr);
            ::close(c.fd);
            c.fd = -1;
            --open;
        }
        if (!c.done) {
            c.done = true;
            ++finished;
        }
        if (failed)
            ++stats.transportErrors;
    };

    // Parse complete responses out of c.in; false on a hard failure.
    auto drainResponses = [&](SoakConn &c) -> bool {
        for (;;) {
            std::size_t headEnd = c.in.find("\r\n\r\n");
            if (headEnd == std::string::npos)
                return true;
            int status = 0;
            if (c.in.compare(0, 9, "HTTP/1.1 ") == 0)
                status = std::atoi(c.in.c_str() + 9);
            std::size_t bodyLen = 0;
            {
                // Case-sensitive match is fine: it is our own server.
                std::size_t cl = c.in.find("Content-Length: ");
                if (cl != std::string::npos && cl < headEnd)
                    bodyLen = static_cast<std::size_t>(
                        std::atol(c.in.c_str() + cl + 16));
            }
            std::size_t total = headEnd + 4 + bodyLen;
            if (c.in.size() < total)
                return true;
            std::string body = c.in.substr(headEnd + 4, bodyLen);
            c.in.erase(0, total);
            ++c.answered;
            if (status == 200) {
                ++stats.ok;
                if (stabilise(std::move(body)) != reference)
                    ++stats.mismatches;
            } else if (status == 503) {
                ++stats.sheds;
            } else {
                ++stats.otherStatus;
                std::fprintf(stderr,
                             "rex_soak: unexpected HTTP %d\n", status);
            }
            if (c.answered == c.sent) {
                if (c.sent >= opt.requestsPerConn)
                    return false;  // budget spent; close cleanly
                queueBatch(c);
            }
        }
    };

    std::vector<struct epoll_event> events(1024);
    while (finished < opt.conns) {
        // Keep the ramp topped up: at most `ramp` connections are ever
        // mid-handshake, the rest pipeline requests steadily.
        int connecting = 0;
        for (const SoakConn &c : conns)
            if (c.fd >= 0 && c.connecting)
                ++connecting;
        while (launched < opt.conns && connecting < opt.ramp) {
            std::size_t id = static_cast<std::size_t>(launched);
            if (!launchOne(id)) {
                ++stats.transportErrors;
                ++launched;
                conns[id].done = true;
                ++finished;
                continue;
            }
            if (conns[id].connecting)
                ++connecting;
        }

        // The c10k moment: every connection is up and held open
        // simultaneously — only now do requests start flowing, on all
        // of them at once.
        if (!pumping && launched == opt.conns && connecting == 0) {
            pumping = true;
            for (std::size_t id = 0; id < conns.size(); ++id) {
                if (conns[id].fd < 0)
                    continue;
                queueBatch(conns[id]);
                setInterest(id, false);
            }
        }

        int n = ::epoll_wait(epollFd, events.data(),
                             static_cast<int>(events.size()), 1000);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return soakError("epoll_wait");
        }
        for (int i = 0; i < n; ++i) {
            std::size_t id = static_cast<std::size_t>(events[i].data.u64);
            SoakConn &c = conns[id];
            if (c.fd < 0)
                continue;
            if (c.connecting &&
                (events[i].events & (EPOLLOUT | EPOLLERR))) {
                int err = 0;
                socklen_t len = sizeof(err);
                ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
                if (err != 0) {
                    finishConn(id, true);
                    continue;
                }
                c.connecting = false;
            }
            if (events[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) {
                while (c.outOff < c.out.size()) {
                    ssize_t sent = ::send(c.fd, c.out.data() + c.outOff,
                                          c.out.size() - c.outOff,
                                          MSG_NOSIGNAL);
                    if (sent > 0) {
                        c.outOff += static_cast<std::size_t>(sent);
                    } else if (sent < 0 && (errno == EAGAIN ||
                                            errno == EWOULDBLOCK)) {
                        break;
                    } else {
                        finishConn(id, true);
                        break;
                    }
                }
                if (c.fd < 0)
                    continue;
                if (c.outOff == c.out.size()) {
                    c.out.clear();
                    c.outOff = 0;
                }
            }
            if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
                char buf[16384];
                for (;;) {
                    ssize_t got = ::recv(c.fd, buf, sizeof(buf), 0);
                    if (got > 0) {
                        c.in.append(buf,
                                    static_cast<std::size_t>(got));
                    } else if (got < 0 && (errno == EAGAIN ||
                                           errno == EWOULDBLOCK)) {
                        break;
                    } else {
                        // EOF (or reset) with requests outstanding is
                        // a failure; after the budget it is normal.
                        finishConn(id, c.answered < c.sent);
                        break;
                    }
                }
                if (c.fd < 0)
                    continue;
                if (!drainResponses(c)) {
                    finishConn(id, false);
                    continue;
                }
            }
            if (c.fd >= 0)
                setInterest(id, false);
        }
    }
    ::close(epollFd);

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    long answered = stats.ok + stats.sheds + stats.otherStatus;
    std::printf(
        "rex_soak: conns=%d peak_open=%d requests=%ld answered=%ld "
        "ok=%ld sheds=%ld other=%ld mismatches=%ld transport_errors=%ld "
        "seconds=%.2f rps=%.0f\n",
        opt.conns, peakOpen, stats.requests, answered, stats.ok,
        stats.sheds, stats.otherStatus, stats.mismatches,
        stats.transportErrors, seconds,
        seconds > 0 ? static_cast<double>(answered) / seconds : 0.0);

    bool failed = stats.mismatches > 0 || stats.otherStatus > 0 ||
        stats.transportErrors > 0 ||
        (!opt.allowSheds && stats.sheds > 0);
    return failed ? 1 : 0;
}

#else // !__linux__

#include <cstdio>

int
main()
{
    std::printf("rex_soak: epoll soak driver requires Linux; skipping\n");
    return 0;
}

#endif
