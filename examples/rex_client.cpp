/**
 * @file
 * rex_client: command-line client for the rexd litmus-checking daemon.
 *
 * Usage:
 *   ./example_rex_client [options] FILE.litmus
 *   ./example_rex_client [options] --builtin TEST-NAME
 *   ./example_rex_client [options] -              # test text on stdin
 *   ./example_rex_client --metrics | --health
 *   ./example_rex_client --post PATH              # raw body on stdin
 *
 * Options:
 *   --host H        daemon host (default 127.0.0.1)
 *   --port P        daemon port (default 8643)
 *   --variants L    comma-separated variant names, or "paper" for the
 *                   paper's five-variant matrix (default: base)
 *   --sleep-ms N    forward the server-side test hook (pins the request
 *                   in a handler thread; used by CI's backpressure test)
 *   --deadline-ms N       per-request wall-clock budget; the server
 *                         answers ExhaustedBudget records past it
 *   --max-candidates N    per-request candidate-count budget
 *   --retries N           total attempts on 503/transport errors
 *                         (default 1 = no retries); backoff honours the
 *                         server's Retry-After, capped exponential
 *   --retry-deadline-ms N give up retrying past this wall time (default
 *                         15000)
 *   --retry-crashed also retry 200 responses carrying a CrashedWorker
 *                   verdict (the respawned worker gets a fresh chance);
 *                   Quarantined responses are never retried
 *   --keep-alive    reuse one pooled HTTP/1.1 connection across
 *                   requests instead of one connection per request
 *   --repeat N      send the /check request N times (pairs with
 *                   --keep-alive to exercise connection reuse); the
 *                   body of every response is printed in order
 *   --resumable     opt into rex-cont-v1 continuations: a budget-tripped
 *                   check answers an ExhaustedBudget record carrying a
 *                   "continuation" token that a later request can replay
 *   --resume-budget N     when the response is budget-tripped, re-POST
 *                         the continuation token automatically up to N
 *                         times and stitch the final verdict stream
 *                         (implies --resumable; requires exactly one
 *                         variant — a token binds to a single job).
 *                         Progress for each hop goes to stderr; stdout
 *                         gets only the final response body
 *   --stable        normalise the JSONL output for diffing: zero the
 *                   schedule-dependent wall_us and cache_hit fields
 *   --direct        skip the network and run the request through an
 *                   in-process CheckService on a local engine — the
 *                   exact code path rexd serves, minus the sockets.
 *                   CI diffs `--direct --stable` against the daemon's
 *                   `--stable` output to prove byte-identical verdicts.
 *
 * Exit status: 0 on HTTP 200 (or healthy), 4 on a 4xx response, 5 on a
 * 5xx response, 1 on transport/usage errors. Response bodies go to
 * stdout either way; the status line goes to stderr when not 200.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/batch.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "server/client.hh"
#include "server/json.hh"
#include "server/service.hh"

namespace {

std::string
readAllOfStdin()
{
    std::ostringstream text;
    text << std::cin.rdbuf();
    return text.str();
}

std::string
readFileOrDie(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (!in)
        rex::fatal("cannot open litmus file '" + path + "'");
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, n);
    std::fclose(in);
    return text;
}

/**
 * Re-render one JSONL verdict line with the schedule-dependent fields
 * (wall_us, cache_hit) zeroed, so two runs of the same checks diff
 * clean. Round-trips through the server's own JSON parser and the
 * engine's own record renderer — no third serialisation to drift.
 */
std::string
stabiliseLine(const std::string &line)
{
    using rex::server::JsonValue;
    JsonValue v = rex::server::parseJson(line);
    auto str = [&](const char *key) {
        const JsonValue *m = v.find(key);
        return m && m->isString() ? m->string : std::string();
    };
    auto num = [&](const char *key) -> std::uint64_t {
        const JsonValue *m = v.find(key);
        return m && m->isInt() ? static_cast<std::uint64_t>(m->integer)
                               : 0;
    };
    rex::engine::JobRecord record;
    record.kind = str("kind");
    record.test = str("test");
    record.variant = str("variant");
    record.verdict = str("verdict");
    record.candidates = num("candidates");
    record.consistent = num("consistent");
    record.witnesses = num("witnesses");
    record.runs = num("runs");
    record.observed = num("observed");
    record.forbidding = str("forbidding");
    record.exhaustedAxis = str("exhausted_axis");
    record.stage = str("stage");
    record.workerSignal = str("signal");
    record.crashes = num("crashes");
    record.wallMicros = 0;
    record.cacheHit = false;
    return record.toJson();
}

std::string
stabiliseBody(const std::string &body)
{
    std::string out;
    for (const std::string &line : rex::split(body, '\n')) {
        std::string trimmed = rex::trim(line);
        if (trimmed.empty())
            continue;
        out += stabiliseLine(trimmed);
        out += '\n';
    }
    return out;
}

int
exitCodeFor(int status)
{
    if (status == 200)
        return 0;
    return status >= 500 ? 5 : 4;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--host H] [--port P] [--variants LIST] "
                 "[--sleep-ms N]\n"
                 "          [--deadline-ms N] [--max-candidates N] "
                 "[--retries N]\n"
                 "          [--retry-deadline-ms N] [--retry-crashed] "
                 "[--stable] [--direct]\n"
                 "          [--keep-alive] [--repeat N] [--resumable]\n"
                 "          [--resume-budget N]\n"
                 "          (FILE.litmus | --builtin NAME | -)\n"
                 "       %s [--host H] [--port P] --metrics | --health\n"
                 "       %s [--host H] [--port P] --post PATH   "
                 "(body on stdin)\n",
                 argv0, argv0, argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rex;

    std::string host = "127.0.0.1";
    int port = 8643;
    std::string variantsArg = "base";
    int sleepMs = 0;
    long long deadlineMs = 0;
    long long maxCandidates = 0;
    int retries = 1;
    int retryDeadlineMs = 15000;
    bool retryCrashed = false;
    bool keepAlive = false;
    int repeat = 1;
    bool resumable = false;
    long long resumeBudget = 0;
    bool stable = false;
    bool direct = false;
    bool wantMetrics = false;
    bool wantHealth = false;
    std::string postPath;
    std::string builtinName;
    std::string file;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--host") {
            host = value();
        } else if (arg == "--port") {
            port = std::atoi(value().c_str());
        } else if (arg == "--variants") {
            variantsArg = value();
        } else if (arg == "--sleep-ms") {
            sleepMs = std::atoi(value().c_str());
        } else if (arg == "--deadline-ms") {
            deadlineMs = std::atoll(value().c_str());
        } else if (arg == "--max-candidates") {
            maxCandidates = std::atoll(value().c_str());
        } else if (arg == "--retries") {
            retries = std::atoi(value().c_str());
        } else if (arg == "--retry-deadline-ms") {
            retryDeadlineMs = std::atoi(value().c_str());
        } else if (arg == "--retry-crashed") {
            retryCrashed = true;
        } else if (arg == "--keep-alive") {
            keepAlive = true;
        } else if (arg == "--repeat") {
            repeat = std::atoi(value().c_str());
        } else if (arg == "--resumable") {
            resumable = true;
        } else if (arg == "--resume-budget") {
            resumeBudget = std::atoll(value().c_str());
            resumable = true;
        } else if (arg == "--stable") {
            stable = true;
        } else if (arg == "--direct") {
            direct = true;
        } else if (arg == "--metrics") {
            wantMetrics = true;
        } else if (arg == "--health") {
            wantHealth = true;
        } else if (arg == "--post") {
            postPath = value();
        } else if (arg == "--builtin") {
            builtinName = value();
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            file = arg;
        }
    }

    try {
        server::Client client(host, static_cast<std::uint16_t>(port));
        if (retries > 1) {
            server::RetryPolicy policy;
            policy.maxAttempts = retries;
            policy.totalDeadlineMs = retryDeadlineMs;
            policy.retryCrashed = retryCrashed;
            policy.keepAlive = keepAlive;
            client.setRetryPolicy(policy);
        }
        client.setKeepAlive(keepAlive);

        if (wantHealth) {
            bool ok = client.healthy();
            std::printf("%s\n", ok ? "ok" : "unhealthy");
            return ok ? 0 : 1;
        }
        if (wantMetrics) {
            server::ClientResponse r = client.get("/metrics");
            std::fwrite(r.body.data(), 1, r.body.size(), stdout);
            return exitCodeFor(r.status);
        }
        if (!postPath.empty()) {
            server::ClientResponse r =
                client.post(postPath, readAllOfStdin());
            if (r.status != 200)
                std::fprintf(stderr, "HTTP %d\n", r.status);
            std::fwrite(r.body.data(), 1, r.body.size(), stdout);
            if (!r.body.empty() && r.body.back() != '\n')
                std::printf("\n");
            return exitCodeFor(r.status);
        }

        // A /check request: resolve the test text and the variant list.
        std::string testText;
        if (!builtinName.empty())
            testText = TestRegistry::instance().sourceText(builtinName);
        else if (file == "-")
            testText = readAllOfStdin();
        else if (!file.empty())
            testText = readFileOrDie(file);
        else
            return usage(argv[0]);

        std::vector<std::string> variants;
        if (variantsArg == "paper") {
            for (const ModelParams &params : ModelParams::paperVariants())
                variants.push_back(params.name());
        } else {
            for (const std::string &v : split(variantsArg, ',')) {
                std::string name = trim(v);
                if (!name.empty())
                    variants.push_back(name);
            }
        }

        if (resumeBudget > 0 && variants.size() != 1)
            fatal("--resume-budget requires exactly one variant "
                  "(a continuation token binds to a single job)");

        // The daemon's exact serving path, in-process: same JSON
        // request, same service, same JSONL renderer. Built lazily so
        // network-only invocations never spin up an engine.
        std::unique_ptr<engine::Engine> directEngine;
        server::Metrics directMetrics;
        std::unique_ptr<server::CheckService> directService;
        if (direct) {
            directEngine = std::make_unique<engine::Engine>();
            directService = std::make_unique<server::CheckService>(
                *directEngine, directMetrics);
        }

        // One /check POST, resumed or fresh, over whichever transport
        // was asked for; both paths serialise through checkRequestJson
        // so the bytes on the wire cannot differ.
        auto postCheck =
            [&](const std::string &resume) -> std::pair<int, std::string> {
            std::string requestBody = server::checkRequestJson(
                testText, variants, sleepMs, deadlineMs, maxCandidates,
                resumable, resume);
            if (direct) {
                server::HttpRequest request;
                request.method = "POST";
                request.path = "/check";
                request.body = std::move(requestBody);
                server::HttpResponse response =
                    directService->handle(request);
                return {response.status, response.body};
            }
            server::ClientResponse r =
                client.post("/check", requestBody);
            return {r.status, r.body};
        };

        // The continuation token of @p respBody's last record, or ""
        // when the stream ended complete (or unparseable).
        auto continuationOf =
            [](const std::string &respBody) -> std::string {
            std::string last;
            for (const std::string &line : split(respBody, '\n')) {
                std::string t = trim(line);
                if (!t.empty())
                    last = std::move(t);
            }
            if (last.empty())
                return {};
            try {
                server::JsonValue v = server::parseJson(last);
                const server::JsonValue *verdict = v.find("verdict");
                const server::JsonValue *cont = v.find("continuation");
                if (verdict && verdict->isString() &&
                    verdict->string == "ExhaustedBudget" && cont &&
                    cont->isString() && !cont->string.empty())
                    return cont->string;
            } catch (const FatalError &) {
            }
            return {};
        };

        int status = 0;
        std::string body;
        for (int shot = 0; shot < std::max(1, repeat); ++shot) {
            auto [s, b] = postCheck(std::string());
            status = s;
            body = std::move(b);
            if (status != 200)
                break;
            if (shot + 1 < std::max(1, repeat)) {
                // Print every body but the last now; the last goes
                // through the shared status/stabilise path below.
                std::string rendered =
                    stable ? stabiliseBody(body) : body;
                std::fwrite(rendered.data(), 1, rendered.size(),
                            stdout);
            }
        }

        // Stitch budget-tripped responses: while the last record is an
        // ExhaustedBudget carrying a continuation, replay the token.
        // The final body is the stitched stream's tail — each resumed
        // response supersedes the partial it continued from.
        for (long long hop = 0;
             status == 200 && hop < resumeBudget; ++hop) {
            std::string token = continuationOf(body);
            if (token.empty())
                break;
            std::fprintf(stderr,
                         "resume %lld/%lld: re-posting continuation "
                         "(%zu bytes)\n",
                         hop + 1, resumeBudget, token.size());
            auto [s, b] = postCheck(token);
            status = s;
            body = std::move(b);
        }

        if (status != 200) {
            std::fprintf(stderr, "HTTP %d\n", status);
            std::fwrite(body.data(), 1, body.size(), stdout);
            if (!body.empty() && body.back() != '\n')
                std::printf("\n");
            return exitCodeFor(status);
        }
        std::string rendered = stable ? stabiliseBody(body) : body;
        std::fwrite(rendered.data(), 1, rendered.size(), stdout);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "rex_client: %s\n", e.what());
        return 1;
    }
}
