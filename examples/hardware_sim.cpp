/**
 * @file
 * Hardware-simulation explorer: runs a litmus test on the operational
 * simulator under every device profile, printing the observation
 * frequencies (the analogue of the paper's hw-refs columns) and the
 * full outcome histogram, plus the exhaustively-reachable outcome set
 * compared against the axiomatic model's verdict.
 *
 * Run: ./example_hardware_sim [test-name] [runs]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rex/rex.hh"

int
main(int argc, char **argv)
{
    using namespace rex;

    std::string name = argc > 1 ? argv[1] : "SB+dmb.sy+eret";
    std::uint64_t runs = argc > 2
        ? std::strtoull(argv[2], nullptr, 10) : 20000;

    const LitmusTest &test = TestRegistry::instance().get(name);
    std::printf("test: %s\nfinal condition observed on:\n\n",
                test.name.c_str());

    harness::Table table;
    table.header({"profile", "observed/runs", "distinct outcomes"});
    for (const op::CoreProfile &profile : {
             op::CoreProfile::sequential(), op::CoreProfile::cortexA53(),
             op::CoreProfile::cortexA72(), op::CoreProfile::cortexA76(),
             op::CoreProfile::cortexA73(),
             op::CoreProfile::maxRelaxed()}) {
        op::Runner runner(profile, 1234);
        op::RunStats stats = runner.run(test, runs);
        table.row({profile.name, stats.cell(),
                   std::to_string(stats.histogram.size())});
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf("\noutcome histogram on max-relaxed:\n");
    op::Runner runner(op::CoreProfile::maxRelaxed(), 99);
    op::RunStats stats = runner.run(test, runs);
    for (const auto &[key, count] : stats.histogram) {
        std::printf("  %8llu  %s\n",
                    static_cast<unsigned long long>(count), key.c_str());
    }

    op::ExploreResult explored =
        op::explore(test, op::CoreProfile::maxRelaxed());
    bool allowed = isAllowed(test, ModelParams::base());
    std::printf("\nexhaustive exploration: %zu states, %zu outcomes, "
                "condition %s\n",
                explored.statesVisited, explored.outcomes.size(),
                explored.conditionReachable ? "reachable"
                                            : "unreachable");
    std::printf("axiomatic model:        condition %s\n",
                allowed ? "Allowed" : "Forbidden");
    if (explored.conditionReachable && !allowed) {
        std::printf("SOUNDNESS VIOLATION: the simulator exceeds the "
                    "architecture!\n");
        return 1;
    }
    return 0;
}
