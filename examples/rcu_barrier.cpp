/**
 * @file
 * RCU / SGI walkthrough (§7): drives the GIC model through the exact
 * interrupt lifecycle Linux's split handling uses (EOImode=1), then
 * uses the axiomatic checker to show why synchronize_rcu's system-wide
 * barrier needs the DSB ST before generating the SGI — and what breaks
 * in the Verona asymmetric lock without it.
 *
 * Run: ./example_rcu_barrier
 */

#include <cstdio>

#include "rex/rex.hh"

namespace {

void
verdict(const char *name)
{
    using namespace rex;
    const LitmusTest &test = TestRegistry::instance().get(name);
    CheckResult result = checkTest(test, ModelParams::base(), true);
    std::printf("  %-28s %s (intent: %s)\n", name,
                result.observable ? "Allowed" : "Forbidden",
                test.expectedAllowed ? "Allowed" : "Forbidden");
}

} // namespace

int
main()
{
    using namespace rex;

    std::printf("1. The interrupt lifecycle under EOImode=1 "
                "(Linux's split handling):\n");
    gic::Gic gic(2);
    gic::CpuInterface target(gic, 1, /*eoi_mode1=*/true);

    // Thread 0 writes ICC_SGI1R_EL1 with IRM=1 (broadcast).
    sem::SgiRequest sgi = sem::decodeSgi1r(std::uint64_t{1} << 40);
    gic.sendSgi(sgi, 0);
    std::printf("   after SGI:        state=%s, PE pending=%d\n",
                gic::intStateName(gic.redistributor(1).state(0)),
                target.irqPending());

    std::uint32_t intid = target.readIar();
    std::printf("   after IAR read:   state=%s (intid=%u)\n",
                gic::intStateName(gic.redistributor(1).state(0)), intid);

    target.writeEoir(intid);
    std::printf("   after EOIR write: state=%s (priority dropped, "
                "duplicates still masked)\n",
                gic::intStateName(gic.redistributor(1).state(0)));

    target.writeDir(intid);
    std::printf("   after DIR write:  state=%s\n\n",
                gic::intStateName(gic.redistributor(1).state(0)));

    std::printf("2. Message passing through an SGI (Figure 12):\n");
    verdict("MPviaSGI");
    verdict("MPviaSGI+dsb.st");

    std::printf("\n3. The RCU grace-period shape (Figure 13): the\n"
                "   sys_membarrier system-wide barrier is only sound\n"
                "   with the DSB ST before the SGI generation:\n");
    verdict("RCU-MP");
    verdict("RCU-MP+dsb.st");

    std::printf("\n4. The Verona asymmetric lock (S7.3) relies on\n"
                "   interrupt *precision* rather than masking:\n");
    verdict("VERONA-asymlock");
    verdict("VERONA-asymlock-nodsb");

    std::printf("\n5. Interrupt masking makes read sections atomic\n"
                "   w.r.t. the handler:\n");
    verdict("SGI-masked-section");
    verdict("SGI-unmasked-between");

    return 0;
}
