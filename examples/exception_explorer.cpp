/**
 * @file
 * Exception explorer: sweeps the model's parameter axes (FEAT_ExS
 * including the EIS-only/EOS-only splits, SEA_R/SEA_W, FEAT_ETS2) over
 * the exceptions suite and prints how each verdict moves — the tool-use
 * the paper motivates: "an exploration tool to investigate the effect of
 * synchronisation on hardware exceptions and interrupts" (§8).
 *
 * Run: ./example_exception_explorer [test-name]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "rex/rex.hh"

int
main(int argc, char **argv)
{
    using namespace rex;

    const std::vector<std::string> variants = {
        "base", "ExS", "ExS_EIS0", "ExS_EOS0", "SEA_R", "SEA_W",
        "SEA_RW", "noETS2",
    };

    std::vector<const LitmusTest *> tests;
    if (argc > 1) {
        tests.push_back(&TestRegistry::instance().get(argv[1]));
    } else {
        tests = TestRegistry::instance().suite("exceptions");
    }

    harness::Table table;
    std::vector<std::string> header = {"test"};
    header.insert(header.end(), variants.begin(), variants.end());
    table.header(header);

    for (const LitmusTest *test : tests) {
        std::vector<std::string> row = {test->name};
        for (const std::string &variant : variants) {
            bool allowed =
                isAllowed(*test, ModelParams::byName(variant));
            row.push_back(allowed ? "A" : "F");
        }
        table.row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);

    std::printf(
        "\nReading the axes:\n"
        "  ExS       exception entry+return not context-synchronising\n"
        "            (FEAT_ExS with EIS=EOS=0, S3.5): speculation\n"
        "            barriers at exception boundaries disappear\n"
        "  ExS_EIS0  only entry loses context synchronisation\n"
        "  ExS_EOS0  only return loses context synchronisation\n"
        "  SEA_R/W   loads/stores may abort synchronously (S4):\n"
        "            program-order-later instances become speculative\n"
        "  noETS2    translation faults lose their barrier (S3.3)\n");
    return 0;
}
