/**
 * @file
 * rex_hammer: the soundness-hammer campaign CLI (src/gen).
 *
 * Fans a seed range of synthesized litmus tests over the batch engine,
 * checking each one's operational outcomes against the axiomatic model
 * and reporting any operationally-reachable-but-forbidden outcome.
 * Campaigns checkpoint to disk after every chunk and resume from the
 * checkpoint, so a SIGKILL mid-run loses at most one chunk of work and
 * the resumed campaign's final summary is identical to an
 * uninterrupted run.
 *
 * Usage:
 *   ./example_rex_hammer [options]
 *     --seeds BEGIN:END     seed range (default 0:10000)
 *     --mode random|cycle   synthesis mode (default random)
 *     --checkpoint PATH     resume/checkpoint file (default none)
 *     --chunk N             seeds per engine batch (default 256)
 *     --max-candidates N    per-seed candidate ceiling (default 150000)
 *     --max-states N        per-seed operational state cap
 *                           (default 300000)
 *     --params NAME         model variant (base, ExS, SEA_R, SEA_W,
 *                           SEA_RW; default base)
 *     --jobs N              worker threads (default REX_JOBS else 1)
 *     --peers H:P,...       distribute seed chunks over running rexd
 *                           peers via POST /shard (docs/DISTRIBUTED.md);
 *                           chunks a dead or disagreeing peer drops are
 *                           re-run locally, so the summary is byte-
 *                           identical to a single-node campaign
 *     --peer-timeout S      per-peer-request socket timeout (default 30)
 *
 *   Inspection / triage:
 *     --print SEED          print seed's generated source and exit
 *     --check SEED          soundness-check one seed verbosely and exit
 *     --minimize SEED       shrink a violating seed and print the
 *                           minimal test (exits 1 if seed is sound)
 *     --promote SEED NAME   minimize + emit registry-ready source with
 *                           checker-computed verdict lines
 *
 * The documented acceptance campaign (zero violations expected):
 *   ./example_rex_hammer --seeds 0:100000 --checkpoint hammer.ckpt
 *
 * Exit status: 0 on a clean (or cleanly cancelled) campaign, 1 when
 * any violation was found, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/strings.hh"
#include "engine/batch.hh"
#include "gen/hammer.hh"
#include "gen/minimize.hh"
#include "server/hammerdist.hh"
#include "server/metrics.hh"
#include "server/peer.hh"

namespace {

using namespace rex;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seeds B:E] [--mode random|cycle] "
                 "[--checkpoint PATH]\n"
                 "          [--chunk N] [--max-candidates N] "
                 "[--max-states N]\n"
                 "          [--params NAME] [--jobs N]\n"
                 "          [--peers H:P,...] [--peer-timeout S]\n"
                 "          [--print SEED | --check SEED | "
                 "--minimize SEED |\n"
                 "           --promote SEED NAME]\n",
                 argv0);
    std::exit(2);
}

std::uint64_t
parseU64(const char *text, const char *argv0)
{
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text, &end, 10);
    if (!end || *end != '\0')
        usage(argv0);
    return value;
}

const char *
outcomeName(gen::SeedOutcome outcome)
{
    switch (outcome) {
      case gen::SeedOutcome::Sound: return "sound";
      case gen::SeedOutcome::Skipped: return "skipped";
      case gen::SeedOutcome::Violation: return "VIOLATION";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    gen::HammerConfig config;
    config.seedEnd = 10000;

    enum class Action { Campaign, Print, Check, Minimize, Promote };
    Action action = Action::Campaign;
    std::uint64_t action_seed = 0;
    std::string promote_name;
    unsigned jobs_override = 0;
    bool jobs_set = false;
    server::PeerConfig peer_config;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--seeds") {
            std::string range = value();
            std::size_t colon = range.find(':');
            if (colon == std::string::npos)
                usage(argv[0]);
            config.seedBegin =
                parseU64(range.substr(0, colon).c_str(), argv[0]);
            config.seedEnd =
                parseU64(range.substr(colon + 1).c_str(), argv[0]);
        } else if (arg == "--mode") {
            std::string mode = value();
            if (mode == "random") {
                config.mode = gen::Mode::Random;
            } else if (mode == "cycle") {
                config.mode = gen::Mode::Cycle;
            } else {
                usage(argv[0]);
            }
        } else if (arg == "--checkpoint") {
            config.checkpointPath = value();
        } else if (arg == "--chunk") {
            config.chunk = parseU64(value(), argv[0]);
        } else if (arg == "--max-candidates") {
            config.budget.maxCandidates = parseU64(value(), argv[0]);
        } else if (arg == "--max-states") {
            config.maxStates =
                static_cast<std::size_t>(parseU64(value(), argv[0]));
        } else if (arg == "--params") {
            config.params = ModelParams::byName(value());
        } else if (arg == "--jobs") {
            jobs_override =
                static_cast<unsigned>(parseU64(value(), argv[0]));
            jobs_set = true;
        } else if (arg == "--peers") {
            for (const std::string &endpoint : split(value(), ',')) {
                if (!endpoint.empty())
                    peer_config.endpoints.push_back(endpoint);
            }
        } else if (arg == "--peer-timeout") {
            peer_config.timeoutSeconds =
                static_cast<int>(parseU64(value(), argv[0]));
        } else if (arg == "--print") {
            action = Action::Print;
            action_seed = parseU64(value(), argv[0]);
        } else if (arg == "--check") {
            action = Action::Check;
            action_seed = parseU64(value(), argv[0]);
        } else if (arg == "--minimize") {
            action = Action::Minimize;
            action_seed = parseU64(value(), argv[0]);
        } else if (arg == "--promote") {
            action = Action::Promote;
            action_seed = parseU64(value(), argv[0]);
            promote_name = value();
        } else {
            usage(argv[0]);
        }
    }
    if (config.seedBegin > config.seedEnd)
        usage(argv[0]);

    gen::Hammer hammer(config);

    if (action == Action::Print) {
        gen::GeneratedTest test = hammer.testForSeed(action_seed);
        std::fputs(test.source.c_str(), stdout);
        std::printf("# features: %s\n", test.features.toString().c_str());
        return 0;
    }

    if (action == Action::Check) {
        gen::GeneratedTest test = hammer.testForSeed(action_seed);
        std::fputs(test.source.c_str(), stdout);
        gen::SeedResult result = hammer.checkSeed(action_seed);
        std::printf("# seed %llu: %s\n",
                    static_cast<unsigned long long>(action_seed),
                    outcomeName(result.outcome));
        for (const std::string &key : result.violating)
            std::printf("#   forbidden-but-reached: %s\n", key.c_str());
        return result.outcome == gen::SeedOutcome::Violation ? 1 : 0;
    }

    if (action == Action::Minimize || action == Action::Promote) {
        gen::GeneratedTest test = hammer.testForSeed(action_seed);
        gen::Oracle oracle = gen::makeSoundnessOracle(config);
        bool violating = oracle(test.spec);
        if (action == Action::Minimize && !violating) {
            std::fprintf(stderr,
                         "seed %llu is sound; nothing to minimize\n",
                         static_cast<unsigned long long>(action_seed));
            return 1;
        }
        gen::TestSpec spec = test.spec;
        if (violating) {
            // Shrink while the violation persists; a sound seed is
            // promoted as-is (curation of interesting shapes).
            gen::MinimizeStats stats;
            spec = gen::minimize(spec, oracle, &stats);
            std::fprintf(stderr,
                         "minimized in %u rounds: %u/%u shrinks kept\n",
                         stats.rounds, stats.accepted, stats.attempts);
        }
        if (action == Action::Minimize) {
            std::fputs(gen::render(spec).c_str(), stdout);
        } else {
            std::fputs(gen::promote(spec, promote_name).c_str(),
                       stdout);
        }
        return 0;
    }

    engine::EngineConfig engine_config = engine::EngineConfig::fromEnv();
    if (jobs_set)
        engine_config.jobs = jobs_override;
    engine::Engine engine(engine_config);

    gen::CampaignSummary summary;
    if (!peer_config.endpoints.empty()) {
        server::Metrics peer_metrics;
        server::PeerPool peers(peer_config, &peer_metrics);
        summary = server::runDistributedHammer(hammer, engine, peers);
        std::fprintf(stderr,
                     "peers: %zu configured, dispatch=%llu "
                     "redispatch=%llu local_fallback=%llu\n",
                     peers.configured(),
                     static_cast<unsigned long long>(
                         peer_metrics.peerDispatchTotal.load()),
                     static_cast<unsigned long long>(
                         peer_metrics.peerRedispatchTotal.load()),
                     static_cast<unsigned long long>(
                         peer_metrics.peerLocalFallbackTotal.load()));
    } else {
        summary = hammer.run(engine);
    }
    std::fputs(summary.render().c_str(), stdout);
    if (config.mode == gen::Mode::Cycle) {
        std::printf("cycle inventory: %zu cycles\n",
                    hammer.inventorySize());
    }
    return summary.violationSeeds.empty() ? 0 : 1;
}
