/**
 * @file
 * Quickstart: write a litmus test in the text format, ask the axiomatic
 * model whether its final state is observable, and inspect the witness
 * execution (or, for a forbidden outcome, the cycle that rules it out).
 *
 * Run: ./example_quickstart
 */

#include <cstdio>

#include "rex/rex.hh"

int
main()
{
    using namespace rex;

    // A message-passing shape whose reader takes an SVC between the two
    // loads. Is the stale read still observable?
    const char *source = R"(
name: quickstart-MP+dmb.sy+svc
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    SVC #0
    LDR X2,[X3]
handler 1:
    ERET
allowed: 1:X0=1 & 1:X2=0
)";

    LitmusTest test = parseLitmus(source);
    std::printf("test: %s\n", test.name.c_str());

    // Check under the baseline model and under SEA_R (loads may report
    // synchronous external aborts, §4).
    for (const ModelParams &params :
            {ModelParams::base(), ModelParams::seaReads()}) {
        CheckResult result = checkTest(test, params);
        std::printf("\nmodel variant %-6s : %s "
                    "(%zu candidates, %zu consistent, %zu witnesses)\n",
                    params.name().c_str(),
                    result.observable ? "Allowed" : "Forbidden",
                    result.candidates, result.consistent,
                    result.witnesses);
        if (result.witness) {
            std::printf("witness execution:\n%s",
                        result.witness->dump().c_str());
        }
    }

    // The same oracle runs the shipped cat model (Figure 9) through the
    // interpreter; verdicts agree with the native implementation.
    const cat::CatModel &catModel = cat::CatModel::shipped();
    std::printf("\nshipped cat model: \"%s\"\n", catModel.name().c_str());

    return 0;
}
