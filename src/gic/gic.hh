/**
 * @file
 * A model of the Arm Generic Interrupt Controller (GICv3), specialised —
 * as the paper's §7 is — to edge-triggered SGIs with physical delivery.
 *
 * The full GIC is a 950-page specification; this model implements exactly
 * the configuration the paper fixes: the per-(PE, INTID) handling state
 * machine of Figure 10 (Inactive / Pending / Active / Active&Pending,
 * with one buffered re-pend), priorities with a priority mask and running
 * priority, interrupt-status-register pending bits, and both EOImodes.
 */

#ifndef REX_GIC_GIC_HH
#define REX_GIC_GIC_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sem/exception.hh"

namespace rex::gic {

/** The per-INTID handling state (Figure 10). */
enum class IntState : std::uint8_t {
    Inactive,
    Pending,
    Active,
    ActivePending,
};

/** Render a state name. */
const char *intStateName(IntState state);

/** The INTID returned by IAR when nothing is deliverable. */
inline constexpr std::uint32_t kSpuriousIntid = 1023;

/** Priority value meaning "idle" (no active interrupt). */
inline constexpr std::uint8_t kIdlePriority = 0xFF;

/** Default priority assigned to every INTID until configured. */
inline constexpr std::uint8_t kDefaultPriority = 0xA0;

/**
 * The per-PE redistributor (plus CPU-interface state): INTID states,
 * priorities, the priority mask, the running priority, and the pending
 * bit it exposes to the PE's interrupt status register.
 *
 * Lower numeric priority = more urgent (GIC convention).
 */
class Redistributor
{
  public:
    /** Current state of @p intid. */
    IntState state(std::uint32_t intid) const;

    /** Source asserts the interrupt (edge): Inactive -> Pending,
     *  Active -> Active&Pending (one instance buffered; further asserts
     *  collapse, per the GIC's single-buffering rule). */
    void pend(std::uint32_t intid);

    /** Software explicitly clears a pending state
     *  (ICC/GICR clear-pending): Pending -> Inactive,
     *  Active&Pending -> Active. */
    void clearPending(std::uint32_t intid);

    /** Software explicitly sets pending (set-pending register). */
    void setPending(std::uint32_t intid);

    /**
     * Acknowledge (the IAR read): the highest-priority deliverable
     * pending INTID becomes Active, the running priority rises to its
     * priority, and the PE's pending bit clears.
     * @return the INTID, or kSpuriousIntid when nothing is deliverable.
     */
    std::uint32_t acknowledge();

    /** Priority drop (EOIR write): running priority returns to what it
     *  was before the matching acknowledge. */
    void priorityDrop(std::uint32_t intid);

    /** Deactivate (DIR write, or EOIR with EOImode=0):
     *  Active -> Inactive; Active&Pending -> Pending (immediate
     *  re-pend, §7.4). */
    void deactivate(std::uint32_t intid);

    /** Configure the priority of @p intid. */
    void setPriority(std::uint32_t intid, std::uint8_t priority);

    /** Configure the priority mask (PMR): only interrupts with priority
     *  strictly higher (numerically lower) than the mask deliver. */
    void setPriorityMask(std::uint8_t mask);

    /** True when some deliverable interrupt is pending: the pending bit
     *  in the PE's interrupt status register (ISR). */
    bool irqPending() const;

    /** The INTID the pending bit is for (highest priority deliverable);
     *  kSpuriousIntid when none. */
    std::uint32_t highestPendingDeliverable() const;

    std::uint8_t runningPriority() const { return _runningPriority; }

  private:
    bool deliverable(std::uint32_t intid) const;

    std::map<std::uint32_t, IntState> _states;
    std::map<std::uint32_t, std::uint8_t> _priorities;
    std::uint8_t _priorityMask = kIdlePriority;
    std::uint8_t _runningPriority = kIdlePriority;

    /** Stack of pre-acknowledge running priorities, popped on drop. */
    std::vector<std::uint8_t> _priorityStack;
};

/**
 * The distributor plus all redistributors: routes SGIs to target PEs.
 */
class Gic
{
  public:
    explicit Gic(std::size_t num_pes);

    std::size_t numPes() const { return _redists.size(); }

    Redistributor &redistributor(std::size_t pe);
    const Redistributor &redistributor(std::size_t pe) const;

    /**
     * Route an SGI (a decoded ICC_SGI1R_EL1 write by @p sender) to its
     * target PEs, pending it at each target's redistributor.
     */
    void sendSgi(const sem::SgiRequest &request, std::uint32_t sender);

  private:
    std::vector<Redistributor> _redists;
};

} // namespace rex::gic

#endif // REX_GIC_GIC_HH
