#include "gic/cpu_interface.hh"

namespace rex::gic {

CpuInterface::CpuInterface(Gic &gic, std::uint32_t pe, bool eoi_mode1)
    : _gic(gic), _pe(pe), _eoiMode1(eoi_mode1)
{
}

bool
CpuInterface::irqPending() const
{
    return _gic.redistributor(_pe).irqPending();
}

std::uint32_t
CpuInterface::readIar()
{
    return _gic.redistributor(_pe).acknowledge();
}

void
CpuInterface::writeEoir(std::uint64_t value)
{
    std::uint32_t intid = static_cast<std::uint32_t>(value & 0xFFFFFF);
    Redistributor &redist = _gic.redistributor(_pe);
    redist.priorityDrop(intid);
    if (!_eoiMode1)
        redist.deactivate(intid);
}

void
CpuInterface::writeDir(std::uint64_t value)
{
    std::uint32_t intid = static_cast<std::uint32_t>(value & 0xFFFFFF);
    _gic.redistributor(_pe).deactivate(intid);
}

void
CpuInterface::writePmr(std::uint64_t value)
{
    _gic.redistributor(_pe).setPriorityMask(
        static_cast<std::uint8_t>(value & 0xFF));
}

} // namespace rex::gic
