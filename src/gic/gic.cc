#include "gic/gic.hh"

#include "base/logging.hh"

namespace rex::gic {

const char *
intStateName(IntState state)
{
    switch (state) {
      case IntState::Inactive:      return "Inactive";
      case IntState::Pending:       return "Pending";
      case IntState::Active:        return "Active";
      case IntState::ActivePending: return "Active&Pending";
    }
    return "?";
}

IntState
Redistributor::state(std::uint32_t intid) const
{
    auto it = _states.find(intid);
    return it == _states.end() ? IntState::Inactive : it->second;
}

void
Redistributor::pend(std::uint32_t intid)
{
    switch (state(intid)) {
      case IntState::Inactive:
        _states[intid] = IntState::Pending;
        break;
      case IntState::Active:
        _states[intid] = IntState::ActivePending;
        break;
      case IntState::Pending:
      case IntState::ActivePending:
        // Only a single extra instance may be buffered; further asserts
        // collapse into the existing pending state.
        break;
    }
}

void
Redistributor::clearPending(std::uint32_t intid)
{
    switch (state(intid)) {
      case IntState::Pending:
        _states[intid] = IntState::Inactive;
        break;
      case IntState::ActivePending:
        _states[intid] = IntState::Active;
        break;
      default:
        break;
    }
}

void
Redistributor::setPending(std::uint32_t intid)
{
    pend(intid);
}

bool
Redistributor::deliverable(std::uint32_t intid) const
{
    auto it = _priorities.find(intid);
    std::uint8_t prio = it == _priorities.end() ? kDefaultPriority
                                                : it->second;
    return prio < _priorityMask && prio < _runningPriority;
}

std::uint32_t
Redistributor::highestPendingDeliverable() const
{
    std::uint32_t best = kSpuriousIntid;
    std::uint8_t best_prio = kIdlePriority;
    for (const auto &[intid, state] : _states) {
        if (state != IntState::Pending && state != IntState::ActivePending)
            continue;
        // An Active&Pending interrupt's buffered instance is masked by
        // its own active priority until deactivation, so it is not
        // re-deliverable here.
        if (state == IntState::ActivePending)
            continue;
        if (!deliverable(intid))
            continue;
        auto it = _priorities.find(intid);
        std::uint8_t prio = it == _priorities.end() ? kDefaultPriority
                                                    : it->second;
        if (prio < best_prio || best == kSpuriousIntid) {
            best = intid;
            best_prio = prio;
        }
    }
    return best;
}

bool
Redistributor::irqPending() const
{
    return highestPendingDeliverable() != kSpuriousIntid;
}

std::uint32_t
Redistributor::acknowledge()
{
    std::uint32_t intid = highestPendingDeliverable();
    if (intid == kSpuriousIntid)
        return kSpuriousIntid;
    _states[intid] = IntState::Active;
    auto it = _priorities.find(intid);
    std::uint8_t prio = it == _priorities.end() ? kDefaultPriority
                                                : it->second;
    _priorityStack.push_back(_runningPriority);
    _runningPriority = prio;
    return intid;
}

void
Redistributor::priorityDrop(std::uint32_t intid)
{
    (void)intid;  // GICv3 drops in acknowledge order, not by INTID.
    if (_priorityStack.empty()) {
        warn("GIC: priority drop with no active acknowledge");
        return;
    }
    _runningPriority = _priorityStack.back();
    _priorityStack.pop_back();
}

void
Redistributor::deactivate(std::uint32_t intid)
{
    switch (state(intid)) {
      case IntState::Active:
        _states[intid] = IntState::Inactive;
        break;
      case IntState::ActivePending:
        // The buffered instance re-pends immediately (§7.4).
        _states[intid] = IntState::Pending;
        break;
      default:
        warn("GIC: deactivating a non-active interrupt");
        break;
    }
}

void
Redistributor::setPriority(std::uint32_t intid, std::uint8_t priority)
{
    _priorities[intid] = priority;
}

void
Redistributor::setPriorityMask(std::uint8_t mask)
{
    _priorityMask = mask;
}

Gic::Gic(std::size_t num_pes)
    : _redists(num_pes)
{
}

Redistributor &
Gic::redistributor(std::size_t pe)
{
    rexAssert(pe < _redists.size(), "GIC: PE index out of range");
    return _redists[pe];
}

const Redistributor &
Gic::redistributor(std::size_t pe) const
{
    rexAssert(pe < _redists.size(), "GIC: PE index out of range");
    return _redists[pe];
}

void
Gic::sendSgi(const sem::SgiRequest &request, std::uint32_t sender)
{
    std::uint64_t mask = request.targetMask(_redists.size(), sender);
    for (std::size_t pe = 0; pe < _redists.size(); ++pe) {
        if ((mask >> pe) & 1)
            _redists[pe].pend(request.intid);
    }
}

} // namespace rex::gic
