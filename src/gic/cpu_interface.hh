/**
 * @file
 * The GIC CPU interface as seen by one PE: the IAR/EOIR/DIR register
 * protocol, parameterised on EOImode (§7.1).
 *
 *  - EOImode=0: a write to EOIR performs priority drop *and*
 *    deactivation simultaneously.
 *  - EOImode=1 (Linux's split model): EOIR only drops priority;
 *    deactivation is a separate DIR write.
 */

#ifndef REX_GIC_CPU_INTERFACE_HH
#define REX_GIC_CPU_INTERFACE_HH

#include <cstdint>

#include "gic/gic.hh"

namespace rex::gic {

/** One PE's window onto the GIC. */
class CpuInterface
{
  public:
    /**
     * @param gic      the shared GIC
     * @param pe       this PE's index
     * @param eoi_mode1 true for EOImode=1 (split drop/deactivate)
     */
    CpuInterface(Gic &gic, std::uint32_t pe, bool eoi_mode1);

    /** Is EOImode=1 configured? */
    bool eoiMode1() const { return _eoiMode1; }

    /** The PE's ISR pending bit: should the PE take an IRQ? */
    bool irqPending() const;

    /** Read ICC_IAR1_EL1: acknowledge the highest-priority pending
     *  interrupt. */
    std::uint32_t readIar();

    /** Write ICC_EOIR1_EL1: drop priority (and deactivate under
     *  EOImode=0). */
    void writeEoir(std::uint64_t value);

    /** Write ICC_DIR_EL1: deactivate. */
    void writeDir(std::uint64_t value);

    /** Write ICC_PMR_EL1: set the priority mask. */
    void writePmr(std::uint64_t value);

  private:
    Gic &_gic;
    std::uint32_t _pe;
    bool _eoiMode1;
};

} // namespace rex::gic

#endif // REX_GIC_CPU_INTERFACE_HH
