/**
 * @file
 * Structured litmus synthesis: deterministic, seed-keyed generation of
 * well-formed litmus tests directly over the src/isa vocabulary.
 *
 * Each seed fully determines one test (base/rng.hh xorshift64*): random
 * thread counts and op mixes — loads, stores, barriers, address/data/
 * control dependency chains, acquire/release pairs, exclusive-pair
 * RMWs, LDP/STP pairs — plus the paper-specific constructs: SVC
 * exception-entry boundaries, ERET returns, and asynchronous interrupts
 * pended at labels (routed through the operational machine's
 * TakeInterrupt machinery). Generation budgets per-thread loads and
 * stores so the axiomatic candidate space stays tractable, which is
 * what lets the soundness hammer (gen/hammer.hh) push millions of
 * tests through both semantics.
 */

#ifndef REX_GEN_GENERATOR_HH
#define REX_GEN_GENERATOR_HH

#include <cstdint>

#include "gen/spec.hh"

namespace rex::gen {

/** Synthesis knobs. The defaults describe the hammer's corpus; the
 *  migrated tests/test_fuzz.cc corpus uses the same defaults. */
struct GenConfig {
    /** Chance (percent) of a third thread. Three-thread tests get
     *  tighter per-thread budgets to bound the candidate space. */
    unsigned threeThreadPercent = 12;

    /** Ops per thread: 2 .. maxOpsPerThread. */
    unsigned maxOpsPerThread = 5;

    /** Per-thread access budgets (a pair op counts as two accesses,
     *  an RMW as one load and one store). */
    unsigned maxLoadsPerThread = 2;
    unsigned maxStoresPerThread = 2;

    /** Chance (percent) a thread takes an exception boundary (then
     *  split ~evenly between SVC entry and a pended interrupt). */
    unsigned exceptionPercent = 35;

    /** Construct toggles. */
    bool svc = true;
    bool interrupts = true;
    bool eret = true;
    bool rmw = true;
    bool pairs = true;
    bool acqRel = true;
    bool deps = true;
};

/** A synthesized test: the IR, its rendered source, and its feature
 *  flags. `source` is always render(spec) — the minimizer re-derives
 *  both after every shrink. */
struct GeneratedTest {
    TestSpec spec;
    std::string source;
    Features features;
};

/** Package @p spec as a GeneratedTest (render + feature scan). */
GeneratedTest packageSpec(TestSpec spec);

/** Generate the test of @p seed. Deterministic: same seed and config,
 *  byte-identical source — across runs, platforms, and job counts. */
GeneratedTest generate(std::uint64_t seed, const GenConfig &config);

} // namespace rex::gen

#endif // REX_GEN_GENERATOR_HH
