/**
 * @file
 * Cycle-driven litmus synthesis (the diy idiom): enumerate tests from
 * cycles of relaxed-memory relations and emit, for each cycle, the
 * minimal program whose final condition observes exactly that cycle.
 *
 * An edge names a step of the candidate-execution cycle the test is
 * built around: the communication relations rf/co/fr taken externally
 * (Rfe/Coe/Fre — these advance to a new thread, same location), and
 * program-order steps taken internally (these stay on the thread and
 * advance to a new location): plain po, po through a DMB SY, addr/
 * data/ctrl dependencies, and — the paper-specific extension — po
 * across an exception boundary: SVC entry into the handler (the
 * `ctxob` edges of Figure 9), ERET back out of it, and a pended
 * asynchronous interrupt into the handler (the `asyncob` machinery).
 *
 * Edge names encode src/dst event types: `SvcdWR` is a write before
 * the SVC followed by a read inside the handler. A cycle is valid when
 * the event types chain up around the loop, threads (external edges)
 * number 2..maxThreads, locations (internal edges) number
 * 1..maxLocations, and the exception edges respect per-thread section
 * order (Svc/Int from the body, Eret from the handler, at most one
 * entry per thread). Values and the final condition follow the classic
 * diy recipe: per location, writes take values 1,2,… in coherence
 * order, every Rfe reader must see its writer, every initial Fre
 * reader must see the co-predecessor (or 0), and the location's final
 * value pins the co-last write.
 */

#ifndef REX_GEN_CYCLE_HH
#define REX_GEN_CYCLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gen/generator.hh"
#include "gen/spec.hh"

namespace rex::gen {

/** One relation step of a cycle. */
enum class EdgeKind : std::uint8_t {
    // External communication edges (new thread, same location).
    Rfe,   //!< W -> R: reads-from, external
    Fre,   //!< R -> W: from-read, external
    Coe,   //!< W -> W: coherence, external

    // Internal program-order edges (same thread, new location).
    PodRR, PodRW, PodWR, PodWW,
    DmbdRR, DmbdRW, DmbdWR, DmbdWW,      //!< po with a DMB SY between
    DpAddrdRR,                           //!< address dependency R -> R
    DpAddrdRW,                           //!< address dependency R -> W
    DpDatadRW,                           //!< data dependency R -> W
    DpCtrldRW,                           //!< control dependency R -> W

    // Exception-boundary edges (same thread, new location).
    SvcdRR, SvcdRW, SvcdWR, SvcdWW,      //!< src in body, dst in handler
    EretdRR, EretdWW,                    //!< src in handler, dst after ERET
    IntdRR, IntdRW, IntdWR, IntdWW,      //!< dst in async-interrupt handler
};

/** Static properties of an edge kind. */
struct EdgeInfo {
    const char *name;
    bool external;    //!< advances to a new thread (com edge)
    bool srcIsWrite;  //!< event type at the edge's source
    bool dstIsWrite;  //!< event type at the edge's destination
};

const EdgeInfo &edgeInfo(EdgeKind kind);

/** A cycle: the edge sequence, walked from thread 0's first event.
 *  Valid cycles always end on an external edge (closing the loop back
 *  to thread 0). */
struct Cycle {
    std::vector<EdgeKind> edges;
};

/** Deterministic display/test name: "cyc" + "-<edge>" per edge. */
std::string cycleName(const Cycle &cycle);

/** Enumeration bounds. */
struct CycleConfig {
    unsigned maxEdges = 4;      //!< cycle length 2..maxEdges
    unsigned maxThreads = 3;    //!< external-edge count 2..maxThreads
    unsigned maxLocations = 3;  //!< internal-edge count 1..maxLocations
};

/**
 * Enumerate every valid cycle within @p config, deduplicated up to
 * rotation, in a deterministic order. The inventory is what the
 * hammer's cycle mode indexes by seed.
 */
std::vector<Cycle> enumerateCycles(const CycleConfig &config);

/** Synthesize the litmus test observing @p cycle (must be valid). */
GeneratedTest synthesizeCycle(const Cycle &cycle);

} // namespace rex::gen

#endif // REX_GEN_CYCLE_HH
