/**
 * @file
 * Delta-debugging passes over the TestSpec IR.
 */

#include "gen/minimize.hh"

#include <array>

#include "axiomatic/checker.hh"
#include "base/logging.hh"
#include "litmus/parser.hh"

namespace rex::gen {

namespace {

/** Try one candidate shrink: keep it when the oracle still fires. */
bool
tryShrink(TestSpec &spec, TestSpec candidate, const Oracle &violates,
          MinimizeStats &stats)
{
    ++stats.attempts;
    if (!violates(candidate))
        return false;
    spec = std::move(candidate);
    ++stats.accepted;
    return true;
}

/** Drop whole threads (last first), fixing up condition tids. */
bool
passDropThreads(TestSpec &spec, const Oracle &violates,
                MinimizeStats &stats)
{
    bool progress = false;
    for (int t = static_cast<int>(spec.threads.size()) - 1;
         t >= 0 && spec.threads.size() > 1; --t) {
        TestSpec candidate = spec;
        candidate.threads.erase(candidate.threads.begin() + t);
        std::vector<SpecCond> kept;
        for (SpecCond atom : candidate.condition) {
            if (!atom.memory) {
                if (atom.tid == t)
                    continue;
                if (atom.tid > t)
                    --atom.tid;
            }
            kept.push_back(atom);
        }
        candidate.condition = std::move(kept);
        progress |= tryShrink(spec, std::move(candidate), violates, stats);
    }
    return progress;
}

/** Strip exception machinery per thread: first the whole boundary
 *  (handler code folded away), then just the ERET tail. */
bool
passDropExceptions(TestSpec &spec, const Oracle &violates,
                   MinimizeStats &stats)
{
    bool progress = false;
    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
        const ThreadSpec &thread = spec.threads[t];
        if (thread.svc || thread.interrupt) {
            // Drop the boundary entirely: handler ops join the body,
            // the after-tail follows them (straight-line thread).
            TestSpec candidate = spec;
            ThreadSpec &flat = candidate.threads[t];
            flat.body.insert(flat.body.end(), flat.handler.begin(),
                             flat.handler.end());
            flat.body.insert(flat.body.end(), flat.after.begin(),
                             flat.after.end());
            flat.handler.clear();
            flat.after.clear();
            flat.svc = flat.interrupt = flat.eret = false;
            progress |=
                tryShrink(spec, std::move(candidate), violates, stats);
        }
        if (spec.threads[t].eret) {
            // Keep the boundary but drop the return: the after-tail
            // moves into the handler so no op is silently lost.
            TestSpec candidate = spec;
            ThreadSpec &noret = candidate.threads[t];
            noret.handler.insert(noret.handler.end(), noret.after.begin(),
                                 noret.after.end());
            noret.after.clear();
            noret.eret = false;
            progress |=
                tryShrink(spec, std::move(candidate), violates, stats);
        }
    }
    return progress;
}

/** Drop individual ops, last-to-first within each section. */
bool
passDropOps(TestSpec &spec, const Oracle &violates, MinimizeStats &stats)
{
    bool progress = false;
    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
        const std::array<std::vector<Op> ThreadSpec::*, 3> sections = {
            &ThreadSpec::body, &ThreadSpec::after, &ThreadSpec::handler};
        for (auto section : sections) {
            for (int i = static_cast<int>(
                     (spec.threads[t].*section).size()) - 1;
                 i >= 0; --i) {
                TestSpec candidate = spec;
                std::vector<Op> &ops = candidate.threads[t].*section;
                ops.erase(ops.begin() + i);
                progress |=
                    tryShrink(spec, std::move(candidate), violates, stats);
            }
        }
    }
    return progress;
}

/** Weaken op annotations: acquire/release colouring, dependencies,
 *  pair/RMW ops down to their plain single-access forms. */
bool
passWeakenOps(TestSpec &spec, const Oracle &violates, MinimizeStats &stats)
{
    bool progress = false;
    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
        const std::array<std::vector<Op> ThreadSpec::*, 3> sections = {
            &ThreadSpec::body, &ThreadSpec::after, &ThreadSpec::handler};
        for (auto section : sections) {
            for (std::size_t i = 0; i < (spec.threads[t].*section).size();
                 ++i) {
                const Op &op = (spec.threads[t].*section)[i];
                std::vector<Op> weaker;
                if (op.acquire || op.acquirePc || op.release) {
                    Op plain = op;
                    plain.acquire = plain.acquirePc = plain.release =
                        false;
                    weaker.push_back(plain);
                }
                if (op.dep != Op::Dep::None) {
                    Op undep = op;
                    undep.dep = Op::Dep::None;
                    weaker.push_back(undep);
                }
                if (op.kind == Op::Kind::Rmw ||
                        op.kind == Op::Kind::LoadPair) {
                    Op load = op;
                    load.kind = Op::Kind::Load;
                    weaker.push_back(load);
                }
                if (op.kind == Op::Kind::StorePair) {
                    Op store = op;
                    store.kind = Op::Kind::Store;
                    weaker.push_back(store);
                }
                for (const Op &replacement : weaker) {
                    TestSpec candidate = spec;
                    (candidate.threads[t].*section)[i] = replacement;
                    progress |= tryShrink(spec, std::move(candidate),
                                          violates, stats);
                }
            }
        }
    }
    return progress;
}

/** Drop condition atoms (render falls back to *x=0 when empty). */
bool
passDropCondition(TestSpec &spec, const Oracle &violates,
                  MinimizeStats &stats)
{
    bool progress = false;
    for (int i = static_cast<int>(spec.condition.size()) - 1; i >= 0;
         --i) {
        TestSpec candidate = spec;
        candidate.condition.erase(candidate.condition.begin() + i);
        progress |= tryShrink(spec, std::move(candidate), violates, stats);
    }
    return progress;
}

/** Compact away locations no op or condition atom references. */
bool
passCompactLocations(TestSpec &spec, const Oracle &violates,
                     MinimizeStats &stats)
{
    std::array<bool, 3> used = {false, false, false};
    auto scan = [&](const std::vector<Op> &ops) {
        for (const Op &op : ops) {
            used[static_cast<std::size_t>(op.loc)] = true;
            // A pair op's second element lands on the next location.
            if (op.kind == Op::Kind::LoadPair ||
                    op.kind == Op::Kind::StorePair) {
                std::size_t second =
                    static_cast<std::size_t>(op.loc) + 1;
                if (second < used.size())
                    used[second] = true;
            }
        }
    };
    for (const ThreadSpec &thread : spec.threads) {
        scan(thread.body);
        scan(thread.after);
        scan(thread.handler);
    }
    for (const SpecCond &atom : spec.condition) {
        if (atom.memory)
            used[static_cast<std::size_t>(atom.loc)] = true;
    }

    // Only trailing unused locations can go: interior renumbering would
    // change every op's cell assignment (and pair spill targets).
    int compact = spec.numLocations;
    while (compact > 1 && !used[static_cast<std::size_t>(compact - 1)])
        --compact;
    if (compact == spec.numLocations)
        return false;
    TestSpec candidate = spec;
    candidate.numLocations = compact;
    return tryShrink(spec, std::move(candidate), violates, stats);
}

} // namespace

Oracle
makeSoundnessOracle(HammerConfig config)
{
    return [config = std::move(config)](const TestSpec &spec) {
        return soundnessCheck(packageSpec(spec), config).outcome ==
               SeedOutcome::Violation;
    };
}

TestSpec
minimize(TestSpec spec, const Oracle &violates, MinimizeStats *stats)
{
    if (!violates(spec))
        fatal("minimize: input does not satisfy the oracle");

    MinimizeStats local;
    MinimizeStats &s = stats ? *stats : local;
    bool progress = true;
    while (progress) {
        ++s.rounds;
        progress = false;
        progress |= passDropThreads(spec, violates, s);
        progress |= passDropExceptions(spec, violates, s);
        progress |= passDropOps(spec, violates, s);
        progress |= passWeakenOps(spec, violates, s);
        progress |= passDropCondition(spec, violates, s);
        progress |= passCompactLocations(spec, violates, s);
    }
    return spec;
}

std::string
promote(const TestSpec &spec, const std::string &name)
{
    TestSpec named = spec;
    named.name = name;
    std::string source = render(named);

    LitmusTest test = parseLitmus(source);
    bool base_allowed =
        checkTest(test, ModelParams::base(), /*stop_at_first=*/true,
                  /*capture_witness=*/false)
            .observable;

    // render() always writes "allowed: <cond>"; rewrite the keyword to
    // the computed base verdict.
    const std::string allowed_prefix = "allowed: ";
    std::size_t cond_at = source.rfind(allowed_prefix);
    rexAssert(cond_at != std::string::npos,
              "promote: rendered source has no condition line");
    if (!base_allowed) {
        source = source.substr(0, cond_at) + "forbidden: " +
                 source.substr(cond_at + allowed_prefix.size());
    }

    for (const ModelParams &params : ModelParams::paperVariants()) {
        std::string variant = params.name();
        if (variant == "base")
            continue;
        bool variant_allowed =
            checkTest(test, params, /*stop_at_first=*/true,
                      /*capture_witness=*/false)
                .observable;
        source += "variant " + variant + ": " +
                  (variant_allowed ? "allowed" : "forbidden") + "\n";
    }
    return source;
}

} // namespace rex::gen
