/**
 * @file
 * Counterexample minimization and promotion.
 *
 * When the soundness hammer finds a violating seed, the raw generated
 * test is rarely the story: it carries noise ops, unused annotations,
 * threads that play no part. The minimizer delta-debugs the TestSpec
 * IR — dropping threads, ops, exception machinery, annotations, and
 * condition atoms, and compacting unused locations — re-running the
 * oracle after every candidate shrink and keeping only shrinks that
 * preserve the property. The result is the smallest spec (under these
 * passes) that still exhibits the violation.
 *
 * Promotion then turns a minimized spec into registry-ready litmus
 * source: verdict lines (`allowed:`/`forbidden:` plus `variant`
 * expectations) are computed by actually running the axiomatic checker
 * under the paper's parameter variants, so the emitted text can be
 * pasted into src/litmus/suite_generated.cc and will satisfy the
 * verdict-consistency suite (tests/test_verdicts.cc) by construction.
 */

#ifndef REX_GEN_MINIMIZE_HH
#define REX_GEN_MINIMIZE_HH

#include <functional>
#include <string>

#include "gen/hammer.hh"
#include "gen/spec.hh"

namespace rex::gen {

/**
 * The minimization oracle: true when @p spec still exhibits the
 * property being preserved (for the hammer: a soundness violation).
 * Tests inject fakes here to pin the pass structure.
 */
using Oracle = std::function<bool(const TestSpec &)>;

/** The production oracle: does the spec's test have an operationally-
 *  reachable but axiomatically-forbidden outcome under @p config? */
Oracle makeSoundnessOracle(HammerConfig config);

/** Shrink accounting. */
struct MinimizeStats {
    unsigned attempts = 0;  //!< candidate shrinks tried
    unsigned accepted = 0;  //!< shrinks the oracle kept
    unsigned rounds = 0;    //!< full pass sweeps until fixpoint
};

/**
 * Shrink @p spec to a local minimum under @p violates. Requires
 * violates(spec) on entry (fatal() otherwise: minimizing a
 * non-violating test means the caller lost track of its oracle); the
 * returned spec satisfies it by construction. Deterministic: the pass
 * order and within-pass candidate order are fixed.
 */
TestSpec minimize(TestSpec spec, const Oracle &violates,
                  MinimizeStats *stats = nullptr);

/**
 * Render @p spec as registry-ready litmus source named @p name, with
 * the base `allowed:`/`forbidden:` keyword and `variant` expectation
 * lines computed by the axiomatic checker (ModelParams::paperVariants).
 */
std::string promote(const TestSpec &spec, const std::string &name);

} // namespace rex::gen

#endif // REX_GEN_MINIMIZE_HH
