/**
 * @file
 * TestSpec rendering and feature accounting.
 */

#include "gen/spec.hh"

#include "base/logging.hh"

namespace rex::gen {

namespace {

const char *kLocationNames[] = {"x", "y", "z"};

std::string
locationName(int loc)
{
    rexAssert(loc >= 0 && loc < 3, "gen: location index out of range");
    return kLocationNames[loc];
}

/** The base-address register of location @p loc (X10, X11, X12). */
std::string
baseReg(int loc)
{
    return "X1" + std::to_string(loc);
}

/** Render one op into @p out. @p label_seq numbers control-dep labels
 *  uniquely within the thread. */
void
renderOp(std::string &out, const Op &op, int tid, int &label_seq)
{
    // Control-dependency guard: a conditional branch on the earlier
    // load's destination, immediately resolved.
    if (op.dep == Op::Dep::Ctrl) {
        std::string label =
            "LC" + std::to_string(tid) + std::to_string(label_seq++);
        out += "    CBNZ X" + std::to_string(op.depOn) + "," + label + "\n";
        out += label + ":\n";
    }

    // Address dependency: EOR-zero the earlier load into the base.
    std::string base = baseReg(op.loc);
    if (op.dep == Op::Dep::Addr) {
        out += "    EOR X5,X" + std::to_string(op.depOn) + ",X" +
               std::to_string(op.depOn) + "\n";
        out += "    ADD X7," + base + ",X5\n";
        base = "X7";
    }

    switch (op.kind) {
      case Op::Kind::Load: {
        const char *mnemonic =
            op.acquire ? "LDAR" : (op.acquirePc ? "LDAPR" : "LDR");
        out += std::string("    ") + mnemonic + " X" +
               std::to_string(op.dst) + ",[" + base + "]\n";
        break;
      }
      case Op::Kind::Store: {
        if (op.dep == Op::Dep::Data) {
            out += "    EOR X5,X" + std::to_string(op.depOn) + ",X" +
                   std::to_string(op.depOn) + "\n";
            out += "    ADD X6,X5,#" + std::to_string(op.value) + "\n";
        } else {
            out += "    MOV X6,#" + std::to_string(op.value) + "\n";
        }
        out += std::string("    ") + (op.release ? "STLR" : "STR") +
               " X6,[" + base + "]\n";
        break;
      }
      case Op::Kind::LoadPair:
        out += "    LDP X" + std::to_string(op.dst) + ",X" +
               std::to_string(op.dst + 1) + ",[" + base + "]\n";
        break;
      case Op::Kind::StorePair:
        out += "    MOV X6,#" + std::to_string(op.value) + "\n";
        out += "    STP X6,X6,[" + base + "]\n";
        break;
      case Op::Kind::Rmw:
        // Exclusive pair with a data dependency from the load into the
        // store, via the EOR-zero idiom: the stored value is the fixed
        // immediate, keeping the read-value domain bounded (a read+1
        // chain would grow it without fixpoint).
        out += "    LDXR X" + std::to_string(op.dst) + ",[" + base + "]\n";
        out += "    EOR X6,X" + std::to_string(op.dst) + ",X" +
               std::to_string(op.dst) + "\n";
        out += "    ADD X6,X6,#" + std::to_string(op.value) + "\n";
        out += "    STXR W8,X6,[" + base + "]\n";
        break;
      case Op::Kind::Fence:
        switch (op.fence) {
          case Op::Fence::DmbSy: out += "    DMB SY\n"; break;
          case Op::Fence::DmbLd: out += "    DMB LD\n"; break;
          case Op::Fence::DmbSt: out += "    DMB ST\n"; break;
          case Op::Fence::DsbSy: out += "    DSB SY\n"; break;
          case Op::Fence::Isb: out += "    ISB\n"; break;
        }
        break;
      case Op::Kind::MovImm:
        out += "    MOV X9,#" + std::to_string(op.value) + "\n";
        break;
    }
}

void
renderOps(std::string &out, const std::vector<Op> &ops, int tid,
          int &label_seq)
{
    for (const Op &op : ops)
        renderOp(out, op, tid, label_seq);
}

} // namespace

std::string
render(const TestSpec &spec)
{
    rexAssert(!spec.threads.empty(), "gen: spec with no threads");
    rexAssert(spec.numLocations >= 1 && spec.numLocations <= 3,
              "gen: spec location count out of range");

    std::string out = "name: " + spec.name + "\n";

    // init: locations first, then per-thread base registers.
    out += "init:";
    for (int loc = 0; loc < spec.numLocations; ++loc)
        out += " *" + locationName(loc) + "=0;";
    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
        for (int loc = 0; loc < spec.numLocations; ++loc) {
            out += " " + std::to_string(t) + ":" + baseReg(loc) + "=" +
                   locationName(loc) + ";";
        }
    }
    out.pop_back();  // trailing ';'
    out += "\n";

    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
        const ThreadSpec &thread = spec.threads[t];
        rexAssert(!(thread.svc && thread.interrupt),
                  "gen: thread with both SVC and interrupt");
        int label_seq = 0;
        std::string text;
        renderOps(text, thread.body, static_cast<int>(t), label_seq);
        if (thread.svc)
            text += "    SVC #0\n";
        if (thread.interrupt)
            text += "LI" + std::to_string(t) + ":\n";
        renderOps(text, thread.after, static_cast<int>(t), label_seq);
        if (text.empty())
            text = "    NOP\n";
        out += "thread " + std::to_string(t) + ":\n" + text;
    }

    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
        const ThreadSpec &thread = spec.threads[t];
        int label_seq = 100;  // disjoint from the body's label numbers
        std::string text;
        renderOps(text, thread.handler, static_cast<int>(t), label_seq);
        if (thread.eret)
            text += "    ERET\n";
        // A thread that takes an exception needs handler code even when
        // every handler op was shrunk away.
        if (text.empty() && (thread.svc || thread.interrupt))
            text = "    NOP\n";
        if (text.empty())
            continue;
        out += "handler " + std::to_string(t) + ":\n" + text;
    }

    for (std::size_t t = 0; t < spec.threads.size(); ++t) {
        if (spec.threads[t].interrupt) {
            out += "interrupt " + std::to_string(t) + " at LI" +
                   std::to_string(t) + "\n";
        }
    }

    out += "allowed: ";
    if (spec.condition.empty()) {
        out += "*" + locationName(0) + "=0";
    } else {
        for (std::size_t i = 0; i < spec.condition.size(); ++i) {
            const SpecCond &atom = spec.condition[i];
            if (i > 0)
                out += " & ";
            if (atom.memory) {
                out += "*" + locationName(atom.loc) + "=" +
                       std::to_string(atom.value);
            } else {
                out += std::to_string(atom.tid) + ":X" +
                       std::to_string(atom.slot) + "=" +
                       std::to_string(atom.value);
            }
        }
    }
    out += "\n";
    return out;
}

void
Features::merge(const Features &other)
{
    svc += other.svc;
    eret += other.eret;
    interrupt += other.interrupt;
    handler += other.handler;
    barrier += other.barrier;
    acqRel += other.acqRel;
    rmw += other.rmw;
    dep += other.dep;
    pair += other.pair;
    threads3 += other.threads3;
}

std::string
Features::toString() const
{
    std::string out;
    auto item = [&](const char *name, std::uint64_t count) {
        if (!out.empty())
            out += " ";
        out += std::string(name) + " " + std::to_string(count);
    };
    item("svc", svc);
    item("eret", eret);
    item("interrupt", interrupt);
    item("handler", handler);
    item("barrier", barrier);
    item("acqrel", acqRel);
    item("rmw", rmw);
    item("dep", dep);
    item("pair", pair);
    item("threads3", threads3);
    return out;
}

Features
specFeatures(const TestSpec &spec)
{
    Features f;
    auto scanOps = [&](const std::vector<Op> &ops) {
        for (const Op &op : ops) {
            if (op.kind == Op::Kind::Fence)
                f.barrier = 1;
            if (op.acquire || op.acquirePc || op.release)
                f.acqRel = 1;
            if (op.kind == Op::Kind::Rmw)
                f.rmw = 1;
            if (op.dep != Op::Dep::None)
                f.dep = 1;
            if (op.kind == Op::Kind::LoadPair ||
                    op.kind == Op::Kind::StorePair) {
                f.pair = 1;
            }
        }
    };
    for (const ThreadSpec &thread : spec.threads) {
        if (thread.svc)
            f.svc = 1;
        if (thread.interrupt)
            f.interrupt = 1;
        if (thread.eret)
            f.eret = 1;
        // Exception-taking threads always have handler code: render()
        // emits a NOP handler even when every handler op was shrunk.
        if (!thread.handler.empty() || thread.eret || thread.svc ||
                thread.interrupt) {
            f.handler = 1;
        }
        scanOps(thread.body);
        scanOps(thread.after);
        scanOps(thread.handler);
    }
    if (spec.threads.size() >= 3)
        f.threads3 = 1;
    return f;
}

} // namespace rex::gen
