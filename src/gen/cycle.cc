/**
 * @file
 * Cycle enumeration and diy-style synthesis.
 */

#include "gen/cycle.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "base/logging.hh"

namespace rex::gen {

namespace {

const EdgeInfo kEdgeInfo[] = {
    // name        external srcW  dstW
    {"Rfe",        true,  true,  false},
    {"Fre",        true,  false, true},
    {"Coe",        true,  true,  true},
    {"PodRR",      false, false, false},
    {"PodRW",      false, false, true},
    {"PodWR",      false, true,  false},
    {"PodWW",      false, true,  true},
    {"DmbdRR",     false, false, false},
    {"DmbdRW",     false, false, true},
    {"DmbdWR",     false, true,  false},
    {"DmbdWW",     false, true,  true},
    {"DpAddrdRR",  false, false, false},
    {"DpAddrdRW",  false, false, true},
    {"DpDatadRW",  false, false, true},
    {"DpCtrldRW",  false, false, true},
    {"SvcdRR",     false, false, false},
    {"SvcdRW",     false, false, true},
    {"SvcdWR",     false, true,  false},
    {"SvcdWW",     false, true,  true},
    {"EretdRR",    false, false, false},
    {"EretdWW",    false, true,  true},
    {"IntdRR",     false, false, false},
    {"IntdRW",     false, false, true},
    {"IntdWR",     false, true,  false},
    {"IntdWW",     false, true,  true},
};

constexpr std::size_t kNumEdgeKinds =
    sizeof(kEdgeInfo) / sizeof(kEdgeInfo[0]);

bool
isSvcEdge(EdgeKind kind)
{
    return kind >= EdgeKind::SvcdRR && kind <= EdgeKind::SvcdWW;
}

bool
isEretEdge(EdgeKind kind)
{
    return kind == EdgeKind::EretdRR || kind == EdgeKind::EretdWW;
}

bool
isIntEdge(EdgeKind kind)
{
    return kind >= EdgeKind::IntdRR && kind <= EdgeKind::IntdWW;
}

bool
isDepEdge(EdgeKind kind)
{
    return kind >= EdgeKind::DpAddrdRR && kind <= EdgeKind::DpCtrldRW;
}

bool
isDmbEdge(EdgeKind kind)
{
    return kind >= EdgeKind::DmbdRR && kind <= EdgeKind::DmbdWW;
}

/** Thread section the walk is in, between edges. */
enum class Section : std::uint8_t { Body, Handler, After };

/**
 * Walk @p edges checking per-thread structural validity (section
 * order, one exception entry per thread). Type-chaining, thread and
 * location counts are checked by the caller.
 * @return false when some edge is structurally invalid.
 */
bool
sectionsValid(const std::vector<EdgeKind> &edges)
{
    Section section = Section::Body;
    bool entry_used = false;
    for (EdgeKind kind : edges) {
        const EdgeInfo &info = edgeInfo(kind);
        if (info.external) {
            section = Section::Body;
            entry_used = false;
            continue;
        }
        if (isSvcEdge(kind) || isIntEdge(kind)) {
            if (section != Section::Body || entry_used)
                return false;
            section = Section::Handler;
            entry_used = true;
        } else if (isEretEdge(kind)) {
            if (section != Section::Handler)
                return false;
            section = Section::After;
        }
        // Plain internal edges stay wherever they are.
    }
    return true;
}

/** Lexicographically minimal rotation of the edge sequence — the
 *  dedup key for cycles that differ only in starting point. */
std::vector<EdgeKind>
canonicalRotation(const std::vector<EdgeKind> &edges)
{
    std::vector<EdgeKind> best = edges;
    std::vector<EdgeKind> rotated = edges;
    for (std::size_t i = 1; i < edges.size(); ++i) {
        std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
        if (rotated < best)
            best = rotated;
    }
    return best;
}

/** One event of the synthesized execution cycle. */
struct CycleEvent {
    int thread = 0;
    int loc = 0;
    bool isWrite = false;
    Section section = Section::Body;
    std::uint64_t value = 0;  //!< assigned to writes (co order per loc)
    int opIndex = -1;         //!< index into the per-thread op list
    int slot = -1;            //!< load destination slot (reads)
};

/** The witness-ready layout of a cycle: events with positions, read
 *  writers, and write values assigned in a coherence order satisfying
 *  the cycle's com edges and po-loc. */
struct CycleLayout {
    std::vector<CycleEvent> events;
    std::vector<int> writerOf;  //!< per event: Rfe source, or -1 (init)

    /** False when the required coherence order is cyclic — no
     *  execution witnesses such a cycle as intended (e.g. a closing
     *  Coe back into a po-loc-ordered write pair). */
    bool coTotal = true;
};

/** Lay out @p edges (thread/location walk, sections, read writers, co
 *  values). @p num_locations is the internal-edge count. */
CycleLayout
layoutCycle(const std::vector<EdgeKind> &edges, int num_locations)
{
    std::size_t n = edges.size();
    CycleLayout layout;
    std::vector<CycleEvent> &events = layout.events;
    events.resize(n);

    // External edges advance the thread (same location), internal
    // edges advance the location (same thread).
    events[0].thread = 0;
    events[0].loc = 0;
    events[0].isWrite = edgeInfo(edges.front()).srcIsWrite;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const EdgeInfo &info = edgeInfo(edges[i]);
        CycleEvent &next = events[i + 1];
        next.isWrite = info.dstIsWrite;
        if (info.external) {
            next.thread = events[i].thread + 1;
            next.loc = events[i].loc;
        } else {
            next.thread = events[i].thread;
            next.loc = (events[i].loc + 1) % num_locations;
        }
    }

    // Sections: replay the walk to place each event.
    {
        Section section = Section::Body;
        events[0].section = section;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            EdgeKind kind = edges[i];
            if (edgeInfo(kind).external)
                section = Section::Body;
            else if (isSvcEdge(kind) || isIntEdge(kind))
                section = Section::Handler;
            else if (isEretEdge(kind))
                section = Section::After;
            events[i + 1].section = section;
        }
    }

    // Each read's writer: the source of its incoming Rfe (the closing
    // edge feeds event 0), or the initial write (-1).
    layout.writerOf.assign(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
        EdgeKind incoming = i == 0 ? edges.back() : edges[i - 1];
        if (incoming == EdgeKind::Rfe)
            layout.writerOf[i] = static_cast<int>((i + n - 1) % n);
    }

    // Coherence constraints — NOT chain order: the closing edge can
    // place thread 0's write co-last even though it is chain-first.
    //  - Coe src→dst: src co-before dst;
    //  - Fre r→w: r's writer co-before w;
    //  - po-loc: same-thread same-location writes keep program order
    //    (SC per location; bites when the cycle has one location).
    std::vector<std::vector<int>> co_before(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = (i + 1) % n;
        if (edges[i] == EdgeKind::Coe) {
            co_before[j].push_back(static_cast<int>(i));
        } else if (edges[i] == EdgeKind::Fre && layout.writerOf[i] >= 0) {
            co_before[j].push_back(layout.writerOf[i]);
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (events[i].isWrite && events[j].isWrite &&
                    events[i].thread == events[j].thread &&
                    events[i].loc == events[j].loc) {
                co_before[j].push_back(static_cast<int>(i));
            }
        }
    }

    // Values 1, 2, ... per location in co order: Kahn's walk with
    // chain-order tie-break (deterministic). An unplaceable write
    // means the constraints are cyclic — the cycle is un-witnessable.
    for (int loc = 0; loc < num_locations; ++loc) {
        std::vector<int> writes;
        for (std::size_t i = 0; i < n; ++i) {
            if (events[i].isWrite && events[i].loc == loc)
                writes.push_back(static_cast<int>(i));
        }
        std::vector<bool> placed(n, false);
        std::uint64_t value = 0;
        for (std::size_t done = 0; done < writes.size(); ++done) {
            int pick = -1;
            for (int w : writes) {
                if (placed[static_cast<std::size_t>(w)])
                    continue;
                bool ready = true;
                for (int before : co_before[static_cast<std::size_t>(w)])
                    ready &= placed[static_cast<std::size_t>(before)];
                if (ready) {
                    pick = w;
                    break;
                }
            }
            if (pick < 0) {
                layout.coTotal = false;
                return layout;
            }
            placed[static_cast<std::size_t>(pick)] = true;
            events[static_cast<std::size_t>(pick)].value = ++value;
        }
    }
    return layout;
}

} // namespace

const EdgeInfo &
edgeInfo(EdgeKind kind)
{
    std::size_t index = static_cast<std::size_t>(kind);
    rexAssert(index < kNumEdgeKinds, "gen: bad edge kind");
    return kEdgeInfo[index];
}

std::string
cycleName(const Cycle &cycle)
{
    std::string out = "cyc";
    for (EdgeKind kind : cycle.edges)
        out += std::string("-") + edgeInfo(kind).name;
    return out;
}

std::vector<Cycle>
enumerateCycles(const CycleConfig &config)
{
    std::vector<Cycle> out;
    std::set<std::vector<EdgeKind>> seen;
    std::vector<EdgeKind> stack;

    // DFS over edge sequences. The first event's type is the src type
    // of the first edge; closure requires the last edge's dst type to
    // match it. Only sequences ending on an external edge are emitted
    // (any valid cycle has one, so every equivalence class is found).
    auto consider = [&]() {
        unsigned external = 0, internal = 0;
        for (EdgeKind kind : stack)
            external += edgeInfo(kind).external ? 1 : 0;
        internal = static_cast<unsigned>(stack.size()) - external;
        if (external < 2 || external > config.maxThreads)
            return;
        if (internal < 1 || internal > config.maxLocations)
            return;
        if (!edgeInfo(stack.back()).external)
            return;
        if (edgeInfo(stack.back()).dstIsWrite !=
                edgeInfo(stack.front()).srcIsWrite) {
            return;
        }
        if (!sectionsValid(stack))
            return;
        if (!seen.insert(canonicalRotation(stack)).second)
            return;
        // Reject cycles whose coherence constraints are cyclic: no
        // execution could witness them as intended.
        if (!layoutCycle(stack, static_cast<int>(internal)).coTotal)
            return;
        out.push_back(Cycle{stack});
    };

    std::function<void(void)> extend = [&]() {
        if (!stack.empty())
            consider();
        if (stack.size() >= config.maxEdges)
            return;
        for (std::size_t k = 0; k < kNumEdgeKinds; ++k) {
            EdgeKind kind = static_cast<EdgeKind>(k);
            if (!stack.empty() &&
                    edgeInfo(stack.back()).dstIsWrite !=
                        edgeInfo(kind).srcIsWrite) {
                continue;
            }
            stack.push_back(kind);
            extend();
            stack.pop_back();
        }
    };
    extend();
    return out;
}

GeneratedTest
synthesizeCycle(const Cycle &cycle)
{
    const std::vector<EdgeKind> &edges = cycle.edges;
    rexAssert(!edges.empty() && edgeInfo(edges.back()).external,
              "gen: cycle must end on an external edge");

    unsigned internal = 0;
    for (EdgeKind kind : edges)
        internal += edgeInfo(kind).external ? 0 : 1;
    rexAssert(internal >= 1, "gen: cycle needs an internal edge");
    int num_locations = static_cast<int>(internal);

    std::size_t n = edges.size();
    CycleLayout layout = layoutCycle(edges, num_locations);
    rexAssert(layout.coTotal,
              "gen: cycle has cyclic coherence constraints");
    std::vector<CycleEvent> &events = layout.events;
    const std::vector<int> &writer_of = layout.writerOf;

    TestSpec spec;
    spec.name = cycleName(cycle);
    spec.numLocations = num_locations;
    int num_threads = events.back().thread + 1;
    spec.threads.resize(static_cast<std::size_t>(num_threads));

    // Emit the ops thread by thread (events of one thread are
    // consecutive). Internal edge decorations (fence, dependency,
    // boundary) attach between/onto the ops they relate.
    std::vector<int> load_slots(static_cast<std::size_t>(num_threads), 0);
    for (std::size_t i = 0; i < edges.size(); ++i) {
        CycleEvent &event = events[i];
        ThreadSpec &thread =
            spec.threads[static_cast<std::size_t>(event.thread)];

        Op op;
        op.loc = event.loc;
        if (event.isWrite) {
            op.kind = Op::Kind::Store;
            op.value = event.value;
        } else {
            op.kind = Op::Kind::Load;
            op.dst = load_slots[static_cast<std::size_t>(event.thread)]++;
            event.slot = op.dst;
        }

        // The incoming edge (from the previous event on this thread)
        // may decorate this op with a dependency.
        if (i > 0 && !edgeInfo(edges[i - 1]).external) {
            EdgeKind in = edges[i - 1];
            if (isDepEdge(in)) {
                const CycleEvent &src = events[i - 1];
                rexAssert(src.slot >= 0,
                          "gen: dependency source must be a load");
                op.depOn = src.slot;
                if (in == EdgeKind::DpAddrdRR ||
                        in == EdgeKind::DpAddrdRW) {
                    op.dep = Op::Dep::Addr;
                } else if (in == EdgeKind::DpDatadRW) {
                    op.dep = Op::Dep::Data;
                } else {
                    op.dep = Op::Dep::Ctrl;
                }
            }
        }

        std::vector<Op> *section_ops = &thread.body;
        if (event.section == Section::Handler)
            section_ops = &thread.handler;
        else if (event.section == Section::After)
            section_ops = &thread.after;

        // A DMB between two internal events renders as a fence op
        // emitted just before the destination op (same section: Dmb
        // edges never cross a boundary).
        if (i > 0 && isDmbEdge(edges[i - 1])) {
            Op fence;
            fence.kind = Op::Kind::Fence;
            fence.fence = Op::Fence::DmbSy;
            fence.loc = 0;
            section_ops->push_back(fence);
        }

        event.opIndex = static_cast<int>(section_ops->size());
        section_ops->push_back(op);
    }

    // Boundary flags from the edges themselves.
    {
        int thread_index = 0;
        for (std::size_t i = 0; i < edges.size(); ++i) {
            EdgeKind kind = edges[i];
            ThreadSpec &thread =
                spec.threads[static_cast<std::size_t>(thread_index)];
            if (isSvcEdge(kind))
                thread.svc = true;
            else if (isIntEdge(kind))
                thread.interrupt = true;
            else if (isEretEdge(kind))
                thread.eret = true;
            if (edgeInfo(kind).external)
                ++thread_index;
        }
    }

    // Condition: every read with a com role is pinned to its writer's
    // value — Rfe destinations read their writer, Fre sources read
    // their writer (0 for init), which sits co-before the Fre target.
    // Each written location's final value pins the co-last write,
    // which also witnesses the closing edge's co placement.
    for (std::size_t i = 0; i < n; ++i) {
        EdgeKind kind = edges[i];
        std::size_t j = (i + 1) % n;
        const CycleEvent *reader = nullptr;
        if (kind == EdgeKind::Rfe)
            reader = &events[j];
        else if (kind == EdgeKind::Fre)
            reader = &events[i];
        if (!reader)
            continue;
        int writer = writer_of[static_cast<std::size_t>(
            reader - events.data())];
        SpecCond atom;
        atom.tid = reader->thread;
        atom.slot = reader->slot;
        atom.value =
            writer >= 0 ? events[static_cast<std::size_t>(writer)].value
                        : 0;
        spec.condition.push_back(atom);
    }
    for (int loc = 0; loc < num_locations; ++loc) {
        std::uint64_t last = 0;
        for (const CycleEvent &event : events) {
            if (event.isWrite && event.loc == loc)
                last = std::max(last, event.value);
        }
        if (last > 0) {
            SpecCond atom;
            atom.memory = true;
            atom.loc = loc;
            atom.value = last;
            spec.condition.push_back(atom);
        }
    }

    // A read can be constrained twice (e.g. as an Rfe destination and
    // an Fre source); drop exact duplicates.
    std::vector<SpecCond> unique;
    for (const SpecCond &atom : spec.condition) {
        bool seen = false;
        for (const SpecCond &prior : unique) {
            if (prior.memory == atom.memory && prior.tid == atom.tid &&
                    prior.slot == atom.slot && prior.loc == atom.loc &&
                    prior.value == atom.value) {
                seen = true;
                break;
            }
        }
        if (!seen)
            unique.push_back(atom);
    }
    spec.condition = std::move(unique);

    return packageSpec(std::move(spec));
}

} // namespace rex::gen
