/**
 * @file
 * The structured litmus IR of the synthesizer (src/gen).
 *
 * A TestSpec is a small, mutation-friendly representation of a litmus
 * test: per-thread op lists (body, handler, post-return tail) plus the
 * paper-specific exception structure (SVC entry, ERET return, a pended
 * asynchronous interrupt at a label). The IR — not the rendered text —
 * is what the generator emits and the counterexample minimizer shrinks;
 * render() is the single serialisation point, producing source the
 * litmus parser round-trips, so the engine, rexd, and the operational
 * simulator all consume the same test the registry would.
 *
 * Register conventions (mirrors the hand-written suites and the old
 * tests/test_fuzz.cc corpus):
 *   X10, X11, X12   location base addresses (x, y, z)
 *   X0..X4          load destinations (per-thread slot i -> Xi)
 *   X5              dependency-chain temporary (EOR zero idiom)
 *   X6              store data scratch
 *   X7              computed-address scratch
 *   W8              store-exclusive status
 */

#ifndef REX_GEN_SPEC_HH
#define REX_GEN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rex::gen {

/** Bumped whenever generated output or its feature accounting can
 *  change (the hammer's checkpoint fingerprint includes it). */
inline constexpr std::uint32_t kGeneratorRevision = 2;

/** One synthesized operation (may render to several instructions). */
struct Op {
    enum class Kind : std::uint8_t {
        Load,       //!< LDR/LDAR/LDAPR dst,[base]
        Store,      //!< STR/STLR of an immediate value
        LoadPair,   //!< LDP over a location base (§6 pair machinery)
        StorePair,  //!< STP over a location base
        Rmw,        //!< LDXR ; EOR-zero ; STXR #value (exclusive pair)
        Fence,      //!< DMB/DSB/ISB
        MovImm,     //!< MOV scratch,#imm (register noise)
    };

    enum class Dep : std::uint8_t {
        None,
        Addr,  //!< EOR-zero of an earlier load feeds the address
        Data,  //!< EOR-zero of an earlier load feeds the stored value
        Ctrl,  //!< CBNZ on an earlier load guards this op
    };

    enum class Fence : std::uint8_t {
        DmbSy,
        DmbLd,
        DmbSt,
        DsbSy,
        Isb,
    };

    Kind kind = Kind::Load;

    /** Location index (into TestSpec::numLocations). */
    int loc = 0;

    /** Load destination slot (-> X<slot>); also the RMW data register. */
    int dst = 0;

    /** Stored value (Store/StorePair/Rmw). */
    std::uint64_t value = 1;

    /** Acquire/release colouring for Load/Store. */
    bool acquire = false;    //!< LDAR
    bool acquirePc = false;  //!< LDAPR
    bool release = false;    //!< STLR

    /** Dependency into this op from an earlier load of the thread. */
    Dep dep = Dep::None;

    /** Load slot the dependency reads (its X<slot> register). */
    int depOn = 0;

    /** Fence flavour (Kind::Fence). */
    Fence fence = Fence::DmbSy;

    bool isLoad() const { return kind == Kind::Load || kind == Kind::LoadPair; }
    bool isStore() const
    {
        return kind == Kind::Store || kind == Kind::StorePair;
    }
};

/** One synthesized thread. */
struct ThreadSpec {
    /** Ops before the exception boundary (or the whole thread). */
    std::vector<Op> body;

    /** Ops after the boundary (run after ERET; for interrupt threads
     *  they sit in the main program after the pend label). */
    std::vector<Op> after;

    /** Handler ops; non-empty implies a `handler N:` section. */
    std::vector<Op> handler;

    /** Body ends with `SVC #0` into the handler. */
    bool svc = false;

    /** An asynchronous interrupt is pended at a label after the body
     *  (`interrupt N at LIn`, the Isla construct of §5.1). */
    bool interrupt = false;

    /** Handler ends with ERET, resuming at `after`. */
    bool eret = false;
};

/** One conjunct of the synthesized final condition. */
struct SpecCond {
    bool memory = false;  //!< *loc = value instead of tid:X<slot> = value
    int tid = 0;
    int slot = 0;  //!< load destination slot (register X<slot>)
    int loc = 0;
    std::uint64_t value = 0;
};

/** A complete synthesized test. */
struct TestSpec {
    std::string name;
    std::vector<ThreadSpec> threads;
    int numLocations = 2;  //!< x, y, z... (≤ 3 by construction)
    std::vector<SpecCond> condition;
};

/** Generator feature counters: which constructs a test (or a whole
 *  campaign) exercises. Aggregated into the hammer's campaign summary,
 *  where coverage of the paper's exception machinery is asserted. */
struct Features {
    std::uint64_t svc = 0;        //!< tests with an SVC entry boundary
    std::uint64_t eret = 0;       //!< tests with an ERET return
    std::uint64_t interrupt = 0;  //!< tests with a pended async interrupt
    std::uint64_t handler = 0;    //!< tests with any handler code
    std::uint64_t barrier = 0;    //!< tests with a fence
    std::uint64_t acqRel = 0;     //!< tests with LDAR/LDAPR/STLR
    std::uint64_t rmw = 0;        //!< tests with an exclusive pair
    std::uint64_t dep = 0;        //!< tests with an addr/data/ctrl dep
    std::uint64_t pair = 0;       //!< tests with LDP/STP
    std::uint64_t threads3 = 0;   //!< tests with three threads

    void merge(const Features &other);
    std::string toString() const;
};

/** Per-test feature flags of @p spec (each counter 0 or 1). */
Features specFeatures(const TestSpec &spec);

/** Render @p spec as litmus source text (parser.hh format). The
 *  rendering is deterministic: equal specs produce identical bytes. */
std::string render(const TestSpec &spec);

} // namespace rex::gen

#endif // REX_GEN_SPEC_HH
