/**
 * @file
 * Soundness-hammer campaign driver.
 */

#include "gen/hammer.hh"

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "base/fsync.hh"
#include "base/logging.hh"
#include "engine/batch.hh"
#include "engine/cache.hh"
#include "isa/register.hh"
#include "litmus/parser.hh"
#include "operational/explorer.hh"
#include "operational/profile.hh"

namespace rex::gen {

namespace {

/**
 * The operational machine's Outcome::key() projection of a candidate:
 * the condition's registers plus every memory location, sorted by name.
 * Keeping the two sides' keys in lockstep is what makes the subset
 * comparison meaningful.
 */
std::string
outcomeKey(const LitmusTest &test, const CandidateExecution &cand)
{
    std::map<std::string, std::uint64_t> values;
    for (const CondAtom &atom : test.finalCond.atoms) {
        if (atom.kind != CondAtom::Kind::Register)
            continue;
        values[std::to_string(atom.tid) + ":" + isa::regName(atom.reg)] =
            cand.finalRegs[static_cast<std::size_t>(atom.tid)][atom.reg];
    }
    for (LocationId loc = 0; loc < test.locations.size(); ++loc)
        values["*" + test.locations[loc]] = cand.finalMemValue(loc);
    std::string out;
    for (const auto &[name, value] : values)
        out += name + "=" + std::to_string(value) + ";";
    return out;
}

// ---------------------------------------------------------------------
// Config fingerprinting (FNV-1a 64).
// ---------------------------------------------------------------------

struct Fnv {
    std::uint64_t hash = 0xcbf29ce484222325ull;

    void
    bytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash ^= p[i];
            hash *= 0x100000001b3ull;
        }
    }

    void u64(std::uint64_t value) { bytes(&value, sizeof(value)); }
    void
    str(const std::string &value)
    {
        u64(value.size());
        bytes(value.data(), value.size());
    }
};

} // namespace

Hammer::Hammer(HammerConfig config) : _config(std::move(config))
{
    rexAssert(_config.seedBegin <= _config.seedEnd,
              "hammer: seed range is inverted");
    rexAssert(_config.chunk > 0, "hammer: chunk size must be positive");
    if (_config.mode == Mode::Cycle) {
        _inventory = enumerateCycles(_config.cycle);
        rexAssert(!_inventory.empty(), "hammer: empty cycle inventory");
    }
}

std::uint64_t
Hammer::fingerprint() const
{
    Fnv fnv;
    fnv.u64(kGeneratorRevision);
    fnv.str(engine::kModelRevision);
    fnv.u64(_config.seedBegin);
    fnv.u64(_config.seedEnd);
    fnv.u64(static_cast<std::uint64_t>(_config.mode));

    const GenConfig &g = _config.gen;
    fnv.u64(g.threeThreadPercent);
    fnv.u64(g.maxOpsPerThread);
    fnv.u64(g.maxLoadsPerThread);
    fnv.u64(g.maxStoresPerThread);
    fnv.u64(g.exceptionPercent);
    fnv.u64((g.svc ? 1 : 0) | (g.interrupts ? 2 : 0) | (g.eret ? 4 : 0) |
            (g.rmw ? 8 : 0) | (g.pairs ? 16 : 0) | (g.acqRel ? 32 : 0) |
            (g.deps ? 64 : 0));

    fnv.u64(_config.cycle.maxEdges);
    fnv.u64(_config.cycle.maxThreads);
    fnv.u64(_config.cycle.maxLocations);

    fnv.str(_config.params.name());
    fnv.u64(_config.budget.deadlineMicros);
    fnv.u64(_config.budget.maxCandidates);
    fnv.u64(_config.budget.maxHeapBytes);
    fnv.u64(_config.maxStates);
    return fnv.hash;
}

GeneratedTest
Hammer::testForSeed(std::uint64_t seed) const
{
    if (_config.mode == Mode::Cycle)
        return synthesizeCycle(_inventory[seed % _inventory.size()]);
    return generate(seed, _config.gen);
}

SeedResult
Hammer::checkSeed(std::uint64_t seed) const
{
    SeedResult result = soundnessCheck(testForSeed(seed), _config);
    result.seed = seed;
    return result;
}

SeedResult
soundnessCheck(const GeneratedTest &generated, const HammerConfig &config)
{
    LitmusTest test = parseLitmus(generated.source);

    SeedResult result;
    result.features = generated.features;

    // Axiomatic side: every consistent candidate's outcome key, on the
    // staged path with a per-combination skeleton cache. The governor
    // bounds pathological seeds; a trip means Skipped, not a verdict.
    engine::Governor governor(config.budget);
    const engine::CancelToken *token = governor.token();

    std::set<std::string> allowed;
    bool aborted = false;
    std::optional<std::uint64_t> skeleton_combo;
    SkeletonRelations skeleton;

    CandidateEnumerator enumerator(test, token);
    enumerator.forEachStaged(
        [&](CandidateExecution &cand,
            const CandidateEnumerator::StagedInfo &info) {
            if (!governor.admit()) {
                aborted = true;
                return false;
            }
            if (!info.coherent)
                return true;  // internal axiom rejects; key irrelevant
            if (!skeleton_combo || *skeleton_combo != info.comboIndex) {
                skeleton = computeSkeleton(cand, config.params);
                skeleton_combo = info.comboIndex;
            }
            ModelResult model = checkConsistent(
                cand, config.params, skeleton,
                /*internal_prechecked=*/true, token);
            if (model.aborted) {
                aborted = true;
                return false;
            }
            if (model.consistent)
                allowed.insert(outcomeKey(test, cand));
            return true;
        },
        token);

    if (aborted || governor.tripped()) {
        result.outcome = SeedOutcome::Skipped;
        return result;
    }

    // Operational side on the most relaxed profile (subsumes the
    // stricter profiles' reorderings).
    op::ExploreResult explored =
        op::explore(test, op::CoreProfile::maxRelaxed(), config.maxStates);
    if (explored.truncated) {
        result.outcome = SeedOutcome::Skipped;
        return result;
    }

    for (const std::string &key : explored.outcomes) {
        if (!allowed.count(key))
            result.violating.push_back(key);
    }
    result.outcome = result.violating.empty() ? SeedOutcome::Sound
                                              : SeedOutcome::Violation;
    return result;
}

CampaignSummary
Hammer::run(engine::Engine &engine) const
{
    std::uint64_t print = fingerprint();

    CampaignSummary summary;
    summary.seedBegin = _config.seedBegin;
    summary.seedEnd = _config.seedEnd;
    summary.nextSeed = _config.seedBegin;

    if (!_config.checkpointPath.empty()) {
        CampaignSummary resumed;
        if (loadCheckpoint(_config.checkpointPath, print, resumed))
            summary = resumed;
    }

    while (summary.nextSeed < summary.seedEnd) {
        if (_config.cancel && _config.cancel->cancelled())
            break;

        std::uint64_t begin = summary.nextSeed;
        std::uint64_t count =
            std::min<std::uint64_t>(_config.chunk, summary.seedEnd - begin);
        std::vector<SeedResult> results = engine.map(
            static_cast<std::size_t>(count), [&](std::size_t i) {
                return checkSeed(begin + static_cast<std::uint64_t>(i));
            });

        for (const SeedResult &result : results) {
            ++summary.tested;
            summary.features.merge(result.features);
            switch (result.outcome) {
              case SeedOutcome::Sound: ++summary.sound; break;
              case SeedOutcome::Skipped: ++summary.skipped; break;
              case SeedOutcome::Violation:
                summary.violationSeeds.push_back(result.seed);
                break;
            }
        }
        summary.nextSeed = begin + count;

        if (!_config.checkpointPath.empty())
            saveCheckpoint(_config.checkpointPath, print, summary);
    }
    return summary;
}

std::string
CampaignSummary::render() const
{
    std::string out = "rex-hammer campaign: seeds [" +
                      std::to_string(seedBegin) + ", " +
                      std::to_string(seedEnd) + ")";
    out += complete() ? "\n"
                      : " (partial: next seed " +
                            std::to_string(nextSeed) + ")\n";
    out += "tested " + std::to_string(tested) + ", sound " +
           std::to_string(sound) + ", skipped " + std::to_string(skipped) +
           ", violations " + std::to_string(violationSeeds.size()) + "\n";
    out += "features: " + features.toString() + "\n";
    if (!violationSeeds.empty()) {
        out += "violation seeds:";
        for (std::uint64_t seed : violationSeeds)
            out += " " + std::to_string(seed);
        out += "\n";
    }
    return out;
}

// ---------------------------------------------------------------------
// Checkpointing.
// ---------------------------------------------------------------------

namespace {

constexpr const char *kCheckpointMagic = "rex-hammer-checkpoint-v1";

} // namespace

bool
loadCheckpoint(const std::string &path, std::uint64_t fingerprint,
               CampaignSummary &out)
{
    std::ifstream in(path);
    if (!in.is_open())
        return false;

    auto malformed = [&]() {
        fatal("hammer: malformed checkpoint '" + path + "'");
    };

    std::string magic;
    if (!std::getline(in, magic))
        malformed();
    if (magic != kCheckpointMagic) {
        fatal("hammer: checkpoint '" + path +
              "' has unknown format '" + magic + "'");
    }

    std::string word;
    std::uint64_t stored_print = 0;
    if (!(in >> word >> stored_print) || word != "fingerprint")
        malformed();
    if (stored_print != fingerprint) {
        fatal("hammer: checkpoint '" + path +
              "' was written by a different campaign configuration");
    }

    CampaignSummary summary;
    if (!(in >> word >> summary.seedBegin >> summary.seedEnd) ||
            word != "range") {
        malformed();
    }
    if (!(in >> word >> summary.nextSeed) || word != "next")
        malformed();
    if (!(in >> word >> summary.tested >> summary.sound >>
            summary.skipped) ||
            word != "counts") {
        malformed();
    }

    Features &f = summary.features;
    if (!(in >> word >> f.svc >> f.eret >> f.interrupt >> f.handler >>
            f.barrier >> f.acqRel >> f.rmw >> f.dep >> f.pair >>
            f.threads3) ||
            word != "features") {
        malformed();
    }

    std::uint64_t violations = 0;
    if (!(in >> word >> violations) || word != "violations")
        malformed();
    for (std::uint64_t i = 0; i < violations; ++i) {
        std::uint64_t seed = 0;
        if (!(in >> seed))
            malformed();
        summary.violationSeeds.push_back(seed);
    }

    out = summary;
    return true;
}

void
saveCheckpoint(const std::string &path, std::uint64_t fingerprint,
               const CampaignSummary &summary)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out.is_open())
            fatal("hammer: cannot write checkpoint '" + tmp + "'");
        out << kCheckpointMagic << "\n";
        out << "fingerprint " << fingerprint << "\n";
        out << "range " << summary.seedBegin << " " << summary.seedEnd
            << "\n";
        out << "next " << summary.nextSeed << "\n";
        out << "counts " << summary.tested << " " << summary.sound << " "
            << summary.skipped << "\n";
        const Features &f = summary.features;
        out << "features " << f.svc << " " << f.eret << " " << f.interrupt
            << " " << f.handler << " " << f.barrier << " " << f.acqRel
            << " " << f.rmw << " " << f.dep << " " << f.pair << " "
            << f.threads3 << "\n";
        out << "violations " << summary.violationSeeds.size();
        for (std::uint64_t seed : summary.violationSeeds)
            out << " " << seed;
        out << "\n";
        out.flush();
        if (!out.good())
            fatal("hammer: write to checkpoint '" + tmp + "' failed");
    }
    // Make the data durable before the rename can point at it, and the
    // rename durable before run() treats this chunk as committed — a
    // host crash after an unsynced rename silently rewinds the
    // campaign to the previous checkpoint (or none at all).
    fsyncPath(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("hammer: cannot rename checkpoint into '" + path + "'");
    fsyncParentDir(path);
}

} // namespace rex::gen
