/**
 * @file
 * The soundness hammer: a campaign driver that pushes seed ranges of
 * generated litmus tests through both semantics and cross-checks them.
 *
 * Soundness here is the repo's north-star invariant: every outcome the
 * operational simulator can reach (op::explore on the most relaxed
 * core profile) must be allowed by the axiomatic model. For each seed
 * the hammer synthesizes a test (gen/generator.hh random mode, or the
 * gen/cycle.hh inventory indexed by seed), enumerates its axiomatic
 * outcome keys on the staged fast path under a per-seed resource
 * budget (engine/governor.hh), explores it operationally, and reports
 * any operationally-reachable-but-axiomatically-forbidden outcome as a
 * Violation.
 *
 * Campaigns fan seed chunks over the engine's deterministic ordered
 * map(), so a campaign's summary is identical across REX_JOBS values.
 * Progress checkpoints to disk after every chunk (versioned text,
 * atomic tmp+rename, config-fingerprinted), which makes a campaign
 * resumable after SIGKILL with a final summary byte-identical to an
 * uninterrupted run — provided the budget stays schedule-independent
 * (candidate/state ceilings; a wall-clock deadline trades that
 * determinism for latency bounds).
 */

#ifndef REX_GEN_HAMMER_HH
#define REX_GEN_HAMMER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "axiomatic/params.hh"
#include "engine/governor.hh"
#include "gen/cycle.hh"
#include "gen/generator.hh"

namespace rex::engine { class Engine; }

namespace rex::gen {

/** What the hammer feeds itself with. */
enum class Mode : std::uint8_t {
    Random,  //!< gen::generate(seed)
    Cycle,   //!< cycle inventory entry seed % inventorySize
};

/** One campaign's configuration. */
struct HammerConfig {
    /** Seed range [seedBegin, seedEnd). */
    std::uint64_t seedBegin = 0;
    std::uint64_t seedEnd = 0;

    Mode mode = Mode::Random;
    GenConfig gen;
    CycleConfig cycle;

    /** Model parameters for the axiomatic side. */
    ModelParams params = ModelParams::base();

    /** Per-seed resource budget for the axiomatic enumeration. The
     *  default candidate ceiling keeps pathological seeds bounded;
     *  ceiling trips count the seed as Skipped, deterministically.
     *  Setting deadlineMicros makes skips schedule-dependent — resume
     *  identity is only guaranteed without it. */
    engine::Budget budget = defaultBudget();

    /** State cap for operational exploration; hitting it skips the
     *  seed (deterministically). */
    std::size_t maxStates = 300000;

    /** Seeds per engine.map() batch (also the checkpoint interval). */
    std::uint64_t chunk = 256;

    /** Checkpoint path; empty disables checkpointing. */
    std::string checkpointPath;

    /** External cancellation, polled between chunks only (so a
     *  cancelled campaign still resumes deterministically). */
    const engine::CancelToken *cancel = nullptr;

    static engine::Budget
    defaultBudget()
    {
        engine::Budget budget;
        budget.maxCandidates = 150000;
        return budget;
    }
};

/** Per-seed verdict. */
enum class SeedOutcome : std::uint8_t {
    Sound,      //!< operational outcomes ⊆ axiomatic outcomes
    Skipped,    //!< budget/state ceiling hit before a full answer
    Violation,  //!< some operational outcome the model forbids
};

/** Result of soundness-checking one seed. */
struct SeedResult {
    std::uint64_t seed = 0;
    SeedOutcome outcome = SeedOutcome::Sound;
    Features features;

    /** The offending outcome keys (Violation only). */
    std::vector<std::string> violating;
};

/** Accumulated campaign state — also the checkpoint payload. */
struct CampaignSummary {
    std::uint64_t seedBegin = 0;
    std::uint64_t seedEnd = 0;

    /** First seed not yet processed (== seedEnd when complete). */
    std::uint64_t nextSeed = 0;

    std::uint64_t tested = 0;
    std::uint64_t sound = 0;
    std::uint64_t skipped = 0;
    std::vector<std::uint64_t> violationSeeds;

    /** Per-feature counts over all tested seeds. */
    Features features;

    bool complete() const { return nextSeed == seedEnd; }

    /** Deterministic human-readable report (identical for resumed and
     *  uninterrupted campaigns over the same config). */
    std::string render() const;
};

/**
 * The hammer. Construction is cheap in Random mode; Cycle mode builds
 * the cycle inventory once up front.
 */
class Hammer
{
  public:
    explicit Hammer(HammerConfig config);

    /** The test of @p seed (deterministic). */
    GeneratedTest testForSeed(std::uint64_t seed) const;

    /** Soundness-check one seed. */
    SeedResult checkSeed(std::uint64_t seed) const;

    /**
     * Run the campaign: resume from the checkpoint when one exists
     * (fatal() if it was written by a different configuration), fan
     * chunks over @p engine, checkpoint after each chunk. Returns the
     * summary — partial (complete() == false) only when the external
     * cancel token tripped.
     */
    CampaignSummary run(engine::Engine &engine) const;

    /** Cycle-mode inventory size (0 in Random mode). */
    std::size_t inventorySize() const { return _inventory.size(); }

    const HammerConfig &config() const { return _config; }

    /** Fingerprint of everything that determines per-seed results:
     *  config, generator revision, model revision. */
    std::uint64_t fingerprint() const;

  private:
    HammerConfig _config;
    std::vector<Cycle> _inventory;
};

/**
 * Soundness-check one already-synthesized test under @p config's
 * params/budget — the per-seed machinery minus the synthesis. The
 * minimizer's oracle re-enters here after every shrink.
 */
SeedResult soundnessCheck(const GeneratedTest &test,
                          const HammerConfig &config);

/** Load a checkpoint; false when @p path does not exist. fatal() on a
 *  malformed file or a fingerprint mismatch. Exposed for tests. */
bool loadCheckpoint(const std::string &path, std::uint64_t fingerprint,
                    CampaignSummary &out);

/** Atomically (tmp + rename) write @p summary to @p path. */
void saveCheckpoint(const std::string &path, std::uint64_t fingerprint,
                    const CampaignSummary &summary);

} // namespace rex::gen

#endif // REX_GEN_HAMMER_HH
