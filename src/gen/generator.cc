/**
 * @file
 * Seed-keyed random litmus synthesis over the TestSpec IR.
 */

#include "gen/generator.hh"

#include "base/rng.hh"

namespace rex::gen {

namespace {

/** Per-thread synthesis state: access budgets and load-slot supply. */
struct ThreadBudget {
    unsigned loads = 0;
    unsigned stores = 0;
    unsigned maxLoads = 2;
    unsigned maxStores = 2;
    int nextSlot = 0;  //!< next load destination (X0..X4)

    bool canLoad(unsigned n = 1) const
    {
        return loads + n <= maxLoads && nextSlot + static_cast<int>(n) <= 5;
    }
    bool canStore(unsigned n = 1) const { return stores + n <= maxStores; }
};

/** Slots of loads emitted so far in program order (for dependencies). */
struct EmittedLoads {
    std::vector<int> slots;
};

/** Append one random op to @p ops, respecting the budgets. */
void
emitOp(Rng &rng, const GenConfig &config, int num_locations,
       std::vector<Op> &ops, ThreadBudget &budget, EmittedLoads &loads)
{
    Op op;
    op.loc = static_cast<int>(rng.pick(static_cast<std::uint64_t>(
        num_locations)));
    std::uint64_t choice = rng.pick(10);

    // Reroute budget-exhausted choices to fences/noise so the stream
    // of rng draws stays aligned with the choice sequence.
    bool want_load = (choice == 0 || choice == 1 || choice == 6);
    bool want_store = (choice == 2 || choice == 3 || choice == 7);
    if (want_load && !budget.canLoad())
        choice = 4;
    if (want_store && !budget.canStore())
        choice = 4;
    if (choice == 8 && (!config.rmw || !budget.canLoad() ||
                        !budget.canStore())) {
        choice = 4;
    }
    if (choice == 9 && !config.pairs)
        choice = 4;

    switch (choice) {
      case 0:
      case 1: {
        // Plain or acquire load, possibly dependent on an earlier load.
        op.kind = Op::Kind::Load;
        op.dst = budget.nextSlot++;
        ++budget.loads;
        if (config.acqRel && rng.chance(20)) {
            if (rng.chance(50))
                op.acquire = true;
            else
                op.acquirePc = true;
        }
        if (config.deps && !loads.slots.empty() && rng.chance(35)) {
            op.dep = rng.chance(60) ? Op::Dep::Addr : Op::Dep::Ctrl;
            op.depOn = loads.slots[rng.pick(loads.slots.size())];
        }
        loads.slots.push_back(op.dst);
        break;
      }
      case 2:
      case 3: {
        // Store of a small immediate, possibly release / dependent.
        op.kind = Op::Kind::Store;
        op.value = 1 + rng.pick(3);
        ++budget.stores;
        if (config.acqRel && rng.chance(20))
            op.release = true;
        if (config.deps && !loads.slots.empty() && rng.chance(35)) {
            std::uint64_t dep_kind = rng.pick(3);
            op.dep = dep_kind == 0
                         ? Op::Dep::Addr
                         : (dep_kind == 1 ? Op::Dep::Data : Op::Dep::Ctrl);
            op.depOn = loads.slots[rng.pick(loads.slots.size())];
        }
        break;
      }
      case 4:
      case 5: {
        op.kind = Op::Kind::Fence;
        std::uint64_t fence = rng.pick(5);
        op.fence = static_cast<Op::Fence>(fence);
        break;
      }
      case 6: {
        // Second load flavour: keeps loads common in the mix.
        op.kind = Op::Kind::Load;
        op.dst = budget.nextSlot++;
        ++budget.loads;
        loads.slots.push_back(op.dst);
        break;
      }
      case 7: {
        op.kind = Op::Kind::Store;
        op.value = 1 + rng.pick(3);
        ++budget.stores;
        break;
      }
      case 8: {
        // Exclusive-pair RMW: one load and one store of the location.
        op.kind = Op::Kind::Rmw;
        op.value = 1 + rng.pick(3);
        op.dst = budget.nextSlot++;
        ++budget.loads;
        ++budget.stores;
        loads.slots.push_back(op.dst);
        break;
      }
      case 9: {
        // LDP/STP over a location base (two accesses): the assembler's
        // second element lands on the *next* location's cell, so pairs
        // only start below the last location (else the access faults
        // off the end of mapped memory with no handler).
        op.loc = static_cast<int>(rng.pick(static_cast<std::uint64_t>(
            num_locations - 1)));
        if (rng.chance(50) && budget.canLoad(2) &&
                budget.nextSlot + 2 <= 5) {
            op.kind = Op::Kind::LoadPair;
            op.dst = budget.nextSlot;
            budget.nextSlot += 2;
            budget.loads += 2;
            loads.slots.push_back(op.dst);
        } else if (budget.canStore(2)) {
            op.kind = Op::Kind::StorePair;
            op.value = 1 + rng.pick(3);
            budget.stores += 2;
        } else {
            op.kind = Op::Kind::MovImm;
            op.value = 1 + rng.pick(3);
        }
        break;
      }
    }
    ops.push_back(op);
}

ThreadSpec
generateThread(Rng &rng, const GenConfig &config, int num_locations,
               bool tight_budget, EmittedLoads &loads_out)
{
    ThreadSpec thread;
    ThreadBudget budget;
    budget.maxLoads = tight_budget ? 1 : config.maxLoadsPerThread;
    budget.maxStores = tight_budget ? 1 : config.maxStoresPerThread;

    unsigned max_ops = tight_budget ? 3 : config.maxOpsPerThread;
    unsigned total = 2 + static_cast<unsigned>(rng.pick(max_ops - 1));

    // Exception shape, decided up front so the op stream is split
    // deterministically: none, SVC entry, or a pended interrupt —
    // optionally returning with ERET.
    bool take_exception = (config.svc || config.interrupts) &&
                          rng.chance(config.exceptionPercent);
    bool use_interrupt = false;
    bool use_eret = false;
    unsigned handler_ops = 0;
    if (take_exception) {
        use_interrupt = config.interrupts &&
                        (!config.svc || rng.chance(45));
        use_eret = config.eret && rng.chance(50);
        handler_ops = 1 + static_cast<unsigned>(rng.pick(2));
    }

    EmittedLoads loads;
    unsigned body_ops = take_exception
                            ? 1 + static_cast<unsigned>(rng.pick(total))
                            : total;
    for (unsigned i = 0; i < body_ops; ++i)
        emitOp(rng, config, num_locations, thread.body, budget, loads);
    if (take_exception) {
        thread.svc = !use_interrupt;
        thread.interrupt = use_interrupt;
        thread.eret = use_eret;
        for (unsigned i = 0; i < handler_ops; ++i) {
            emitOp(rng, config, num_locations, thread.handler, budget,
                   loads);
        }
        if (use_eret) {
            unsigned after_ops = static_cast<unsigned>(rng.pick(2));
            for (unsigned i = 0; i < after_ops; ++i) {
                emitOp(rng, config, num_locations, thread.after, budget,
                       loads);
            }
        }
    }
    loads_out = loads;
    return thread;
}

} // namespace

GeneratedTest
packageSpec(TestSpec spec)
{
    GeneratedTest out;
    out.source = render(spec);
    out.features = specFeatures(spec);
    out.spec = std::move(spec);
    return out;
}

GeneratedTest
generate(std::uint64_t seed, const GenConfig &config)
{
    Rng rng(seed);
    TestSpec spec;
    spec.name = "gen-" + std::to_string(seed);

    bool three = rng.chance(config.threeThreadPercent);
    unsigned num_threads = three ? 3 : 2;
    spec.numLocations = rng.chance(30) ? 3 : 2;

    std::vector<EmittedLoads> thread_loads(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
        spec.threads.push_back(generateThread(
            rng, config, spec.numLocations, three, thread_loads[t]));
    }

    // Condition: project a few load destinations (plus occasionally a
    // memory cell). The hammer compares whole-outcome projections, so
    // the condition's truth value is irrelevant there — but it decides
    // which registers the operational Outcome key carries, so loads
    // referenced here get cross-checked between the two semantics.
    for (unsigned t = 0; t < num_threads; ++t) {
        for (int slot : thread_loads[t].slots) {
            if (spec.condition.size() >= 4)
                break;
            if (rng.chance(70)) {
                SpecCond atom;
                atom.tid = static_cast<int>(t);
                atom.slot = slot;
                atom.value = rng.pick(3);
                spec.condition.push_back(atom);
            }
        }
    }
    if (spec.condition.empty() || rng.chance(25)) {
        SpecCond atom;
        atom.memory = true;
        atom.loc = static_cast<int>(
            rng.pick(static_cast<std::uint64_t>(spec.numLocations)));
        atom.value = rng.pick(3);
        spec.condition.push_back(atom);
    }

    return packageSpec(std::move(spec));
}

} // namespace rex::gen
