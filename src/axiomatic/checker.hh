/**
 * @file
 * The executable-as-test-oracle checker (§5.1): is a litmus test's final
 * state observable under the model?
 *
 * Candidate checking runs on the enumerator's staged fast path: per
 * trace combination the witness-independent model relations are
 * computed once (SkeletonRelations), the coherence pre-filter skips
 * the model for SC-per-location-violating candidates, and candidates
 * are visited in a reusable buffer. Setting REX_NAIVE_ENUM=1 routes
 * checkTest() through the retained pre-staging reference path
 * (checkTestNaive); both produce identical CheckResults — the parity
 * test suite asserts it.
 *
 * When a thread pool is supplied, a test's candidate space is split
 * into shards checked in parallel and merged deterministically in
 * enumeration order: counts, forbidding axiom/cycle, and the first
 * witness are identical to the serial path, including under
 * stop_at_first (shards past the earliest witnessing shard are
 * cancelled cooperatively and never merged).
 */

#ifndef REX_AXIOMATIC_CHECKER_HH
#define REX_AXIOMATIC_CHECKER_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "axiomatic/model.hh"
#include "axiomatic/params.hh"
#include "events/candidate.hh"
#include "litmus/litmus.hh"

namespace rex {

namespace engine {
class ThreadPool;
class Governor;
class RangeDispatcher;
} // namespace engine

/** Result of checking one litmus test against the model. */
struct CheckResult {
    /** True when some consistent candidate satisfies the condition. */
    bool observable = false;

    /** Total candidate executions enumerated. */
    std::size_t candidates = 0;

    /** Candidates consistent with the model. */
    std::size_t consistent = 0;

    /** Consistent candidates satisfying the final condition. */
    std::size_t witnesses = 0;

    /** Candidates flagged constrained-unpredictable (s1.2): the verdict
     *  carries no architectural guarantee when this is non-zero. */
    std::size_t constrainedUnpredictable = 0;

    /** Candidates with UNKNOWN-tinged pair-fault side effects (s6). */
    std::size_t unknownSideEffects = 0;

    /** A witnessing execution, when observable and requested. */
    std::optional<CandidateExecution> witness;

    /** Failed axiom of the first condition-satisfying candidate the
     *  model rejected — the forbidding explanation when Forbidden. */
    std::string forbiddingAxiom;

    /** That candidate's forbidding cycle (cyclicity failures only). */
    std::vector<EventId> forbiddingCycle;

    /**
     * Budget axis that stopped the check ("deadline", "candidates",
     * "memory", "cancelled"); empty when the check ran to its normal
     * conclusion. When set, every count above is a partial statistic —
     * except under stop_at_first with witnesses > 0, where a found
     * witness settles the verdict and this stays empty.
     */
    std::string exhaustedAxis;

    /** True when this result settles the query (exhaustedAxis empty). */
    bool complete() const { return exhaustedAxis.empty(); }
};

/** Does the final condition hold in this candidate? */
bool condHolds(const CandidateExecution &candidate, const Condition &cond);

/**
 * Check @p test under @p params, enumerating every candidate.
 * @param stop_at_first stop enumeration at the first witnessing
 *        candidate (verdict only): Allowed verdicts short-circuit
 *        instead of visiting the full candidate set.
 * @param capture_witness copy the witnessing execution into the result;
 *        pass false for verdict-only checks to skip the (relation-heavy)
 *        candidate copy.
 * @param pool when non-null (and not called from one of its workers),
 *        shard the candidate space across the pool; the merged result
 *        is byte-identical to pool == nullptr.
 * @param governor when non-null, every candidate is admitted against
 *        its budget and its CancelToken is polled throughout the
 *        stack; a trip stops the check cooperatively and sets
 *        result.exhaustedAxis (see engine/governor.hh). Null means
 *        unlimited — the exact pre-governor code path.
 */
CheckResult checkTest(const LitmusTest &test, const ModelParams &params,
                      bool stop_at_first = false,
                      bool capture_witness = true,
                      engine::ThreadPool *pool = nullptr,
                      engine::Governor *governor = nullptr);

/** Witness assignments per shard in the deterministic check plan:
 *  large enough to amortise the per-shard skeleton rebuild, small
 *  enough to split tiny tests. Continuation tokens and `/shard` wire
 *  requests address shards by index into a plan built with exactly
 *  this target, so it is part of the continuation fingerprint. */
inline constexpr std::uint64_t kCheckShardTarget = 256;

/**
 * A shard-granular slice of a staged check — the unit behind
 * continuation tokens and peer dispatch: run shards
 * [shardBegin, shardEnd) of the deterministic kCheckShardTarget-style
 * plan, entering the first shard @p inShardOffset candidates past its
 * start. Range checks are always stop_at_first and witness-less (the
 * verdict-serving configuration).
 */
struct ShardRangeSpec {
    /** Witness assignments per shard the plan is built with. */
    std::uint64_t planTarget = kCheckShardTarget;

    /** First shard to run. */
    std::uint64_t shardBegin = 0;

    /** One past the last shard; clamped to the plan size. */
    std::uint64_t shardEnd = ~std::uint64_t(0);

    /** Candidates into the first shard already consumed elsewhere. */
    std::uint64_t inShardOffset = 0;

    /** engine::shardJobFingerprint() of this job, forwarded verbatim
     *  to peers with dispatched shards (unused when not dispatching). */
    std::uint64_t jobFingerprint = 0;

    /** Remaining wall-budget hint (ms) forwarded to peers; 0 = none. */
    std::uint64_t peerDeadlineMs = 0;
};

/** What a range check produced, plus the cursor to resume from. */
struct ShardRangeOutcome {
    /** Merged counts over the contiguous range prefix that was fully
     *  resolved (exhaustedAxis set exactly like checkTest()). */
    CheckResult result;

    /** Traces + plan were built. False only when the budget tripped
     *  during trace construction — then no cursor exists at all. */
    bool planned = false;

    /** Total shards in the full plan (valid when planned). */
    std::uint64_t planSize = 0;

    /** A witness settled the range: the verdict is Allowed. */
    bool witnessed = false;

    /** The whole requested range merged without a witness. */
    bool completed = false;

    /** Resume cursor when neither witnessed nor completed: the first
     *  shard (and candidate offset within it) not yet resolved. */
    std::uint64_t nextShard = 0;
    std::uint64_t nextOffset = 0;
};

/**
 * Check a contiguous range of @p test's shard plan under @p params.
 *
 * The plan is re-derived deterministically (never truncated by a
 * budget trip, unlike checkTest's sharded path), so equal
 * (test, planTarget) pairs agree on what "shard i" means across
 * processes and machines. Resumed-in-pieces runs merge to results
 * byte-identical to a single uninterrupted run at any split point: the
 * returned cursor always points at the first candidate whose model
 * evaluation did not finish (an admitted candidate aborted mid-clause
 * is rolled back out of the counts and re-visited by the next piece).
 *
 * @param pool     as checkTest(): shard-level parallelism within the
 *                 range; the merged result is identical to serial.
 * @param governor as checkTest(); a trip yields a partial outcome with
 *                 a cursor instead of a completed one.
 * @param remote   when non-null and the range is large enough,
 *                 contiguous task slices are offered to the dispatcher
 *                 (peer rexd instances); unfilled or partially filled
 *                 tasks are finished locally, so dispatch failures
 *                 degrade to local compute and never lose a shard.
 */
ShardRangeOutcome checkShardRange(const LitmusTest &test,
                                  const ModelParams &params,
                                  const ShardRangeSpec &spec,
                                  engine::ThreadPool *pool = nullptr,
                                  engine::Governor *governor = nullptr,
                                  engine::RangeDispatcher *remote = nullptr);

/** The retained pre-staging reference path: fresh candidate copy per
 *  witness assignment, full (unstaged) model check per candidate.
 *  Exists for parity testing; REX_NAIVE_ENUM=1 routes checkTest here. */
CheckResult checkTestNaive(const LitmusTest &test,
                           const ModelParams &params,
                           bool stop_at_first = false,
                           bool capture_witness = true);

/** Convenience: just the Allowed/Forbidden verdict, short-circuiting on
 *  the first witness and skipping the witness copy. */
inline bool
isAllowed(const LitmusTest &test, const ModelParams &params)
{
    return checkTest(test, params, true, false).observable;
}

} // namespace rex

#endif // REX_AXIOMATIC_CHECKER_HH
