/**
 * @file
 * The executable-as-test-oracle checker (§5.1): is a litmus test's final
 * state observable under the model?
 */

#ifndef REX_AXIOMATIC_CHECKER_HH
#define REX_AXIOMATIC_CHECKER_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "axiomatic/model.hh"
#include "axiomatic/params.hh"
#include "events/candidate.hh"
#include "litmus/litmus.hh"

namespace rex {

/** Result of checking one litmus test against the model. */
struct CheckResult {
    /** True when some consistent candidate satisfies the condition. */
    bool observable = false;

    /** Total candidate executions enumerated. */
    std::size_t candidates = 0;

    /** Candidates consistent with the model. */
    std::size_t consistent = 0;

    /** Consistent candidates satisfying the final condition. */
    std::size_t witnesses = 0;

    /** Candidates flagged constrained-unpredictable (s1.2): the verdict
     *  carries no architectural guarantee when this is non-zero. */
    std::size_t constrainedUnpredictable = 0;

    /** Candidates with UNKNOWN-tinged pair-fault side effects (s6). */
    std::size_t unknownSideEffects = 0;

    /** A witnessing execution, when observable and requested. */
    std::optional<CandidateExecution> witness;

    /** Failed axiom of the first condition-satisfying candidate the
     *  model rejected — the forbidding explanation when Forbidden. */
    std::string forbiddingAxiom;

    /** That candidate's forbidding cycle (cyclicity failures only). */
    std::vector<EventId> forbiddingCycle;
};

/** Does the final condition hold in this candidate? */
bool condHolds(const CandidateExecution &candidate, const Condition &cond);

/**
 * Check @p test under @p params, enumerating every candidate.
 * @param stop_at_first stop enumeration at the first witnessing
 *        candidate (verdict only): Allowed verdicts short-circuit
 *        instead of visiting the full candidate set.
 * @param capture_witness copy the witnessing execution into the result;
 *        pass false for verdict-only checks to skip the (relation-heavy)
 *        candidate copy.
 */
CheckResult checkTest(const LitmusTest &test, const ModelParams &params,
                      bool stop_at_first = false,
                      bool capture_witness = true);

/** Convenience: just the Allowed/Forbidden verdict, short-circuiting on
 *  the first witness and skipping the witness copy. */
inline bool
isAllowed(const LitmusTest &test, const ModelParams &params)
{
    return checkTest(test, params, true, false).observable;
}

} // namespace rex

#endif // REX_AXIOMATIC_CHECKER_HH
