#include "axiomatic/params.hh"

#include "base/logging.hh"

namespace rex {

ModelParams
ModelParams::base()
{
    return ModelParams{};
}

ModelParams
ModelParams::exs()
{
    ModelParams p;
    p.featExS = true;
    p.eis = false;
    p.eos = false;
    return p;
}

ModelParams
ModelParams::seaReads()
{
    ModelParams p;
    p.seaR = true;
    return p;
}

ModelParams
ModelParams::seaWrites()
{
    ModelParams p;
    p.seaW = true;
    return p;
}

ModelParams
ModelParams::seaBoth()
{
    ModelParams p;
    p.seaR = true;
    p.seaW = true;
    return p;
}

ModelParams
ModelParams::byName(const std::string &name)
{
    if (name == "base")
        return base();
    if (name == "ExS")
        return exs();
    if (name == "SEA_R")
        return seaReads();
    if (name == "SEA_W")
        return seaWrites();
    if (name == "SEA_RW" || name == "SEA_R+W")
        return seaBoth();
    if (name == "ExS_EIS0") {
        // Entry not context-synchronising; return still is.
        ModelParams p;
        p.featExS = true;
        p.eis = false;
        return p;
    }
    if (name == "ExS_EOS0") {
        // Return not context-synchronising; entry still is.
        ModelParams p;
        p.featExS = true;
        p.eos = false;
        return p;
    }
    if (name == "noETS2") {
        ModelParams p;
        p.featEts2 = false;
        return p;
    }
    fatal("unknown model variant '" + name + "'");
}

std::vector<ModelParams>
ModelParams::paperVariants()
{
    return {base(), exs(), seaReads(), seaWrites(), seaBoth()};
}

std::string
ModelParams::name() const
{
    if (featExS && !eis && !eos)
        return "ExS";
    if (featExS && !eis)
        return "ExS_EIS0";
    if (featExS && !eos)
        return "ExS_EOS0";
    if (!featEts2)
        return "noETS2";
    if (seaR && seaW)
        return "SEA_RW";
    if (seaR)
        return "SEA_R";
    if (seaW)
        return "SEA_W";
    return "base";
}

} // namespace rex
