#include "axiomatic/enumerate.hh"

#include <algorithm>

#include "base/logging.hh"

namespace rex {

CandidateEnumerator::CandidateEnumerator(const LitmusTest &test)
    : _test(test), _domain(test)
{
    computeTraces();
}

void
CandidateEnumerator::computeTraces()
{
    // Grow the read-value domain to fixpoint: every value any store can
    // write (under the current domain) becomes readable, which can enable
    // new store values, and so on. Litmus tests converge in a few rounds.
    bool changed = true;
    int rounds = 0;
    while (changed) {
        if (++rounds > 16)
            fatal("value-domain fixpoint did not converge: " + _test.name);
        changed = false;
        _traces.assign(_test.threads.size(), {});
        for (std::size_t t = 0; t < _test.threads.size(); ++t) {
            sem::ThreadExecutor executor(
                _test, static_cast<ThreadId>(t), _domain);
            _traces[t] = executor.enumerate();
            for (const sem::ThreadTrace &trace : _traces[t]) {
                for (const Event &e : trace.events) {
                    if (e.isWrite())
                        changed |= _domain.addLocValue(e.loc, e.value);
                    if (e.kind == EventKind::GenerateInterrupt)
                        changed |= _domain.addIntid(e.intid);
                }
            }
        }
    }
}

namespace {

/** Generate all permutations of indices [0, n). */
std::vector<std::vector<std::size_t>>
allPermutations(std::size_t n)
{
    std::vector<std::size_t> base(n);
    for (std::size_t i = 0; i < n; ++i)
        base[i] = i;
    std::vector<std::vector<std::size_t>> out;
    do {
        out.push_back(base);
    } while (std::next_permutation(base.begin(), base.end()));
    return out;
}

} // namespace

void
CandidateEnumerator::visitCombination(
    const std::vector<const sem::ThreadTrace *> &combo,
    const std::function<bool(CandidateExecution &)> &visit,
    bool &keep_going)
{
    // ---- Assemble the skeleton: events, po, deps, final state. ----
    CandidateExecution base;
    base.locNames = _test.locations;
    base.numThreads = _test.threads.size();

    // Initial writes first.
    for (LocationId loc = 0; loc < _test.locations.size(); ++loc) {
        Event init;
        init.id = static_cast<EventId>(base.events.size());
        init.tid = kInitialThread;
        init.kind = EventKind::WriteMem;
        init.loc = loc;
        init.value = _test.initValues[loc];
        init.initial = true;
        base.events.push_back(init);
    }

    std::vector<std::vector<EventId>> global_ids(combo.size());
    for (std::size_t t = 0; t < combo.size(); ++t) {
        for (const Event &local : combo[t]->events) {
            Event e = local;
            e.id = static_cast<EventId>(base.events.size());
            global_ids[t].push_back(e.id);
            base.events.push_back(e);
        }
    }

    const std::size_t n = base.events.size();
    base.po = Relation(n);
    base.iio = Relation(n);
    base.addr = Relation(n);
    base.data = Relation(n);
    base.ctrl = Relation(n);
    base.rmw = Relation(n);
    base.rf = Relation(n);
    base.co = Relation(n);
    base.interruptWitness = Relation(n);
    base.finalRegs.resize(combo.size());

    for (std::size_t t = 0; t < combo.size(); ++t) {
        const sem::ThreadTrace &trace = *combo[t];
        const std::vector<EventId> &ids = global_ids[t];
        for (std::size_t i = 0; i < ids.size(); ++i) {
            for (std::size_t j = i + 1; j < ids.size(); ++j)
                base.po.add(ids[i], ids[j]);
        }
        for (auto [a, b] : trace.addr)
            base.addr.add(ids[a], ids[b]);
        for (auto [a, b] : trace.data)
            base.data.add(ids[a], ids[b]);
        for (auto [a, b] : trace.ctrl)
            base.ctrl.add(ids[a], ids[b]);
        for (auto [a, b] : trace.rmw)
            base.rmw.add(ids[a], ids[b]);
        for (auto [a, b] : trace.iio)
            base.iio.add(ids[a], ids[b]);
        base.finalRegs[t] = trace.finalRegs;
        base.constrainedUnpredictable |= trace.constrainedUnpredictable;
        base.unknownSideEffects |= trace.unknownSideEffects;
    }

    // ---- Enumerate rf: per read, every same-location same-value write.
    std::vector<EventId> read_ids;
    std::vector<std::vector<EventId>> rf_choices;
    for (const Event &e : base.events) {
        if (!e.isRead())
            continue;
        std::vector<EventId> sources;
        for (const Event &w : base.events) {
            if (w.isWrite() && w.loc == e.loc && w.value == e.value)
                sources.push_back(w.id);
        }
        if (sources.empty())
            return;  // this read's value is written by no one: impossible
        read_ids.push_back(e.id);
        rf_choices.push_back(std::move(sources));
    }

    // ---- Enumerate co: per-location permutations of non-initial writes.
    std::vector<std::vector<EventId>> loc_writes(_test.locations.size());
    for (const Event &e : base.events) {
        if (e.isWrite() && !e.initial)
            loc_writes[e.loc].push_back(e.id);
    }
    std::vector<std::vector<std::vector<std::size_t>>> loc_perms;
    for (LocationId loc = 0; loc < _test.locations.size(); ++loc)
        loc_perms.push_back(allPermutations(loc_writes[loc].size()));

    // ---- Enumerate the interrupt witness: SGI-delivered TakeInterrupts
    // pick a matching GenerateInterrupt.
    std::vector<EventId> ti_ids;
    std::vector<std::vector<EventId>> ti_choices;
    for (const Event &e : base.events) {
        if (e.kind != EventKind::TakeInterrupt || !e.sgiDelivered)
            continue;
        std::vector<EventId> gens;
        for (const Event &g : base.events) {
            if (g.kind == EventKind::GenerateInterrupt &&
                    g.intid == e.intid &&
                    ((g.targetMask >> e.tid) & 1)) {
                gens.push_back(g.id);
            }
        }
        if (gens.empty())
            return;  // interrupt taken but never generated: impossible
        ti_ids.push_back(e.id);
        ti_choices.push_back(std::move(gens));
    }

    // ---- Odometer over all witness choices. ----
    std::vector<std::size_t> rf_pick(read_ids.size(), 0);
    std::vector<std::size_t> co_pick(_test.locations.size(), 0);
    std::vector<std::size_t> ti_pick(ti_ids.size(), 0);

    auto buildAndVisit = [&]() {
        CandidateExecution cand = base;
        for (std::size_t r = 0; r < read_ids.size(); ++r)
            cand.rf.add(rf_choices[r][rf_pick[r]], read_ids[r]);
        for (LocationId loc = 0; loc < _test.locations.size(); ++loc) {
            const auto &perm = loc_perms[loc][co_pick[loc]];
            const auto &writes = loc_writes[loc];
            // Initial write co-before everything at this location.
            for (EventId w : writes)
                cand.co.add(loc, w);  // initial write id == loc
            for (std::size_t i = 0; i < perm.size(); ++i) {
                for (std::size_t j = i + 1; j < perm.size(); ++j)
                    cand.co.add(writes[perm[i]], writes[perm[j]]);
            }
        }
        for (std::size_t i = 0; i < ti_ids.size(); ++i) {
            cand.interruptWitness.add(ti_choices[i][ti_pick[i]],
                                      ti_ids[i]);
        }
        keep_going = visit(cand);
    };

    // Nested odometers: rf x co x interrupt.
    auto advance = [](std::vector<std::size_t> &pick,
                      const auto &choices) -> bool {
        for (std::size_t i = 0; i < pick.size(); ++i) {
            if (++pick[i] < choices[i].size())
                return true;
            pick[i] = 0;
        }
        return false;
    };

    // Wrap loc_perms sizes for the generic advance().
    while (true) {
        while (true) {
            while (true) {
                buildAndVisit();
                if (!keep_going)
                    return;
                if (!advance(ti_pick, ti_choices))
                    break;
            }
            if (!advance(co_pick, loc_perms))
                break;
        }
        if (!advance(rf_pick, rf_choices))
            break;
    }
}

void
CandidateEnumerator::forEach(
    const std::function<bool(CandidateExecution &)> &visit)
{
    // Odometer over per-thread trace choices.
    std::vector<std::size_t> pick(_traces.size(), 0);
    for (const auto &traces : _traces) {
        if (traces.empty())
            return;  // a thread has no trace: no candidates
    }

    bool keep_going = true;
    while (keep_going) {
        std::vector<const sem::ThreadTrace *> combo;
        combo.reserve(_traces.size());
        for (std::size_t t = 0; t < _traces.size(); ++t)
            combo.push_back(&_traces[t][pick[t]]);
        visitCombination(combo, visit, keep_going);
        if (!keep_going)
            break;

        bool more = false;
        for (std::size_t t = 0; t < _traces.size(); ++t) {
            if (++pick[t] < _traces[t].size()) {
                more = true;
                break;
            }
            pick[t] = 0;
        }
        if (!more)
            break;
    }
}

std::size_t
CandidateEnumerator::count()
{
    std::size_t n = 0;
    forEach([&](CandidateExecution &) {
        ++n;
        return true;
    });
    return n;
}

} // namespace rex
