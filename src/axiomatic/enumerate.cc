#include "axiomatic/enumerate.hh"

#include <algorithm>
#include <cstdlib>

#include "base/logging.hh"
#include "engine/governor.hh"

namespace rex {

CandidateEnumerator::CandidateEnumerator(const LitmusTest &test,
                                         const engine::CancelToken *cancel)
    : _test(test), _domain(test)
{
    computeTraces(cancel);
}

void
CandidateEnumerator::computeTraces(const engine::CancelToken *cancel)
{
    // Grow the read-value domain to fixpoint: every value any store can
    // write (under the current domain) becomes readable, which can enable
    // new store values, and so on. Litmus tests converge in a few rounds.
    //
    // A thread's enumeration depends only on (test, tid, domain), so a
    // thread is only re-run when the domain has grown since its last
    // enumeration; its previous traces stay valid otherwise. The final
    // round re-runs exactly the threads that are stale w.r.t. the final
    // domain, so on exit every _traces[t] reflects the fixpoint domain.
    _traces.resize(_test.threads.size());
    std::uint64_t version = 1;  // bumped on every domain addition
    std::vector<std::uint64_t> ran_at(_test.threads.size(), 0);
    bool changed = true;
    int rounds = 0;
    while (changed) {
        if (++rounds > 16)
            fatal("value-domain fixpoint did not converge: " + _test.name);
        changed = false;
        for (std::size_t t = 0; t < _test.threads.size(); ++t) {
            // Per-thread trace enumeration is the one phase before any
            // candidate exists to admit; poll the budget between
            // threads and surface a trip as an empty (zero-candidate)
            // enumerator — the caller's governor epilogue marks the
            // result partial.
            if (cancel && cancel->cancelled()) {
                for (auto &traces : _traces)
                    traces.clear();
                return;
            }
            if (ran_at[t] == version)
                continue;
            sem::ThreadExecutor executor(
                _test, static_cast<ThreadId>(t), _domain);
            _traces[t] = executor.enumerate();
            ran_at[t] = version;
            for (const sem::ThreadTrace &trace : _traces[t]) {
                for (const Event &e : trace.events) {
                    if (e.isWrite() &&
                            _domain.addLocValue(e.loc, e.value)) {
                        changed = true;
                        ++version;
                    }
                    if (e.kind == EventKind::GenerateInterrupt &&
                            _domain.addIntid(e.intid)) {
                        changed = true;
                        ++version;
                    }
                }
            }
        }
    }
}

namespace {

/** Most writes to one location co can sanely permute: 8! = 40320 orders
 *  per location already multiplies across locations; beyond that the
 *  factorial blowup is a malformed test, not a workload. */
constexpr std::size_t kMaxCoWritesPerLocation = 8;

/** Generate all permutations of indices [0, n). */
std::vector<std::vector<std::size_t>>
allPermutations(std::size_t n)
{
    std::vector<std::size_t> base(n);
    for (std::size_t i = 0; i < n; ++i)
        base[i] = i;
    std::vector<std::vector<std::size_t>> out;
    do {
        out.push_back(base);
    } while (std::next_permutation(base.begin(), base.end()));
    return out;
}

std::uint64_t
factorial(std::size_t n)
{
    std::uint64_t f = 1;
    for (std::size_t i = 2; i <= n; ++i)
        f *= i;
    return f;
}

bool
envFlag(const char *name)
{
    const char *value = std::getenv(name);
    return value && value[0] == '1' && value[1] == '\0';
}

/**
 * One trace combination's witness space: the skeleton candidate plus a
 * flattened mixed-radix odometer over the rf × co × interrupt choices.
 *
 * The odometer mutates the witness relations of the single reusable
 * candidate in place: advancing a coordinate removes the pairs of its
 * old digit and adds the pairs of the new one (mutate-and-undo), so no
 * per-candidate deep copy of the skeleton ever happens. Coordinate
 * order is [interrupt..., co..., rf...], least significant first —
 * exactly the nesting of the historical three-level odometer, so the
 * global candidate order is unchanged.
 */
struct ComboSpace {
    CandidateExecution cand;
    bool valid = false;

    // rf coordinates: per read, the candidate source writes.
    std::vector<EventId> readIds;
    std::vector<std::vector<EventId>> rfChoices;

    // co coordinates: per location, permutations of non-initial writes.
    std::vector<std::vector<EventId>> locWrites;
    std::vector<std::vector<std::vector<std::size_t>>> locPerms;

    // interrupt coordinates: per SGI-delivered take, the generators.
    std::vector<EventId> tiIds;
    std::vector<std::vector<EventId>> tiChoices;

    // Flattened odometer state.
    std::vector<std::size_t> pick;
    std::vector<std::uint64_t> radix;
    std::uint64_t total = 1;
    std::size_t coBase = 0;  //!< first co coordinate
    std::size_t rfBase = 0;  //!< first rf coordinate

    // ---- Coherence pre-filter structures (per location). ----
    struct LocNode {
        EventId event;
        int writeSlot = -1;  //!< index into locWrites[loc], or -1
        int rfIndex = -1;    //!< index into readIds, or -1
    };
    struct LocGraph {
        LocationId loc = 0;
        std::vector<LocNode> nodes;
        int initialNode = -1;
        std::vector<std::pair<int, int>> poEdges;  //!< local indices

        int
        nodeOf(EventId event) const
        {
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                if (nodes[i].event == event)
                    return static_cast<int>(i);
            }
            panic("coherence pre-filter: event not at its location");
        }
    };
    std::vector<LocGraph> locGraphs;

    // Pre-filter scratch, sized once at build and reused per candidate.
    mutable std::vector<int> slotRank;
    mutable std::vector<int> rank;
    mutable std::vector<int> orderedNode;
    mutable std::vector<int> indeg;
    mutable std::vector<int> queue;
    mutable std::vector<std::vector<int>> adj;

    // Scratch for build(), kept across combos for its capacity.
    std::vector<std::vector<EventId>> globalIds;

    void build(const LitmusTest &test,
               const std::vector<const sem::ThreadTrace *> &combo,
               bool materialize);

    void
    applyPair(Relation &rel, EventId from, EventId to, bool add)
    {
        if (add)
            rel.add(from, to);
        else
            rel.remove(from, to);
    }

    /** Add (or remove) the witness pairs of digit @p digit of
     *  coordinate @p c. */
    void
    applyCoord(std::size_t c, std::size_t digit, bool add)
    {
        if (c < coBase) {
            applyPair(cand.interruptWitness, tiChoices[c][digit],
                      tiIds[c], add);
        } else if (c < rfBase) {
            const std::size_t loc = c - coBase;
            const std::vector<std::size_t> &perm = locPerms[loc][digit];
            const std::vector<EventId> &writes = locWrites[loc];
            for (std::size_t i = 0; i < perm.size(); ++i) {
                for (std::size_t j = i + 1; j < perm.size(); ++j) {
                    applyPair(cand.co, writes[perm[i]],
                              writes[perm[j]], add);
                }
            }
        } else {
            const std::size_t r = c - rfBase;
            applyPair(cand.rf, rfChoices[r][digit], readIds[r], add);
        }
    }

    /** Advance to the next witness assignment; false after the last. */
    bool
    step()
    {
        for (std::size_t c = 0; c < pick.size(); ++c) {
            applyCoord(c, pick[c], false);
            if (++pick[c] < radix[c]) {
                applyCoord(c, pick[c], true);
                return true;
            }
            pick[c] = 0;
            applyCoord(c, 0, true);
        }
        return false;
    }

    /** Jump to witness assignment @p index (mixed-radix decode). */
    void
    seek(std::uint64_t index)
    {
        for (std::size_t c = 0; c < pick.size(); ++c) {
            const std::size_t digit =
                static_cast<std::size_t>(index % radix[c]);
            index /= radix[c];
            if (digit != pick[c]) {
                applyCoord(c, pick[c], false);
                pick[c] = digit;
                applyCoord(c, digit, true);
            }
        }
    }

    /**
     * SC-per-location check of the current witness assignment on the
     * reduced per-location graph: the co total order as a rank chain,
     * rf edges, fr edges to the first co-successor of each read's
     * source, and the static po-loc edges. Reachability (hence cycle
     * existence) equals the full po-loc | rf | co | fr union, because
     * every one of those relations is intra-location and the dropped
     * co/fr edges are implied by the retained chains.
     */
    bool
    coherentAt(const LocGraph &g) const
    {
        const std::size_t k = g.nodes.size();
        const std::vector<std::size_t> &perm =
            locPerms[g.loc][pick[coBase + g.loc]];
        const std::size_t m = locWrites[g.loc].size();

        for (std::size_t pos = 0; pos < perm.size(); ++pos)
            slotRank[perm[pos]] = static_cast<int>(pos) + 1;
        orderedNode[0] = g.initialNode;
        for (std::size_t i = 0; i < k; ++i) {
            const LocNode &node = g.nodes[i];
            int r = -1;
            if (static_cast<int>(i) == g.initialNode)
                r = 0;
            else if (node.writeSlot >= 0)
                r = slotRank[node.writeSlot];
            rank[i] = r;
            if (r >= 0)
                orderedNode[r] = static_cast<int>(i);
            adj[i].clear();
            indeg[i] = 0;
        }

        auto addEdge = [&](int a, int b) {
            adj[a].push_back(b);
            ++indeg[b];
        };
        for (std::size_t t = 0; t < m; ++t)
            addEdge(orderedNode[t], orderedNode[t + 1]);
        for (std::size_t i = 0; i < k; ++i) {
            const LocNode &node = g.nodes[i];
            if (node.rfIndex < 0)
                continue;
            const EventId src =
                rfChoices[node.rfIndex][pick[rfBase + node.rfIndex]];
            const int src_node = g.nodeOf(src);
            addEdge(src_node, static_cast<int>(i));
            const int src_rank = rank[src_node];
            if (src_rank < static_cast<int>(m))
                addEdge(static_cast<int>(i), orderedNode[src_rank + 1]);
        }
        for (auto [a, b] : g.poEdges)
            addEdge(a, b);

        // Kahn's algorithm: acyclic iff every node gets removed.
        std::size_t head = 0, tail = 0, removed = 0;
        for (std::size_t i = 0; i < k; ++i) {
            if (indeg[i] == 0)
                queue[tail++] = static_cast<int>(i);
        }
        while (head < tail) {
            const int u = queue[head++];
            ++removed;
            for (int v : adj[u]) {
                if (--indeg[v] == 0)
                    queue[tail++] = v;
            }
        }
        return removed == k;
    }

    bool
    coherent() const
    {
        for (const LocGraph &g : locGraphs) {
            if (g.nodes.size() > 1 && !coherentAt(g))
                return false;
        }
        return true;
    }
};

/**
 * Assemble one combination's skeleton and witness-choice sets,
 * reusing this ComboSpace's storage (call it repeatedly across the
 * combos of one enumeration to amortise the allocations).
 * With @p materialize false, only the choice radices and validity are
 * computed (for shard planning); the candidate's relations, the digit-0
 * witness pairs, and the pre-filter graphs are skipped.
 */
void
ComboSpace::build(const LitmusTest &test,
                  const std::vector<const sem::ThreadTrace *> &combo,
                  bool materialize)
{
    valid = false;
    readIds.clear();
    rfChoices.clear();
    locPerms.clear();
    tiIds.clear();
    tiChoices.clear();
    pick.clear();
    radix.clear();
    locGraphs.clear();

    ComboSpace &space = *this;
    CandidateExecution &base = space.cand;
    base.events.clear();
    base.constrainedUnpredictable = false;
    base.unknownSideEffects = false;
    if (base.locNames != test.locations)
        base.locNames = test.locations;
    base.numThreads = test.threads.size();

    // Initial writes first.
    for (LocationId loc = 0; loc < test.locations.size(); ++loc) {
        Event init;
        init.id = static_cast<EventId>(base.events.size());
        init.tid = kInitialThread;
        init.kind = EventKind::WriteMem;
        init.loc = loc;
        init.value = test.initValues[loc];
        init.initial = true;
        base.events.push_back(init);
    }

    globalIds.resize(combo.size());
    std::vector<std::vector<EventId>> &global_ids = globalIds;
    for (std::size_t t = 0; t < combo.size(); ++t) {
        global_ids[t].clear();
        for (const Event &local : combo[t]->events) {
            Event e = local;
            e.id = static_cast<EventId>(base.events.size());
            global_ids[t].push_back(e.id);
            base.events.push_back(e);
        }
    }

    const std::size_t n = base.events.size();
    if (materialize) {
        base.po.reset(n);
        base.iio.reset(n);
        base.addr.reset(n);
        base.data.reset(n);
        base.ctrl.reset(n);
        base.rmw.reset(n);
        base.rf.reset(n);
        base.co.reset(n);
        base.interruptWitness.reset(n);
    }
    base.finalRegs.resize(combo.size());

    for (std::size_t t = 0; t < combo.size(); ++t) {
        const sem::ThreadTrace &trace = *combo[t];
        const std::vector<EventId> &ids = global_ids[t];
        if (materialize) {
            for (std::size_t i = 0; i < ids.size(); ++i) {
                for (std::size_t j = i + 1; j < ids.size(); ++j)
                    base.po.add(ids[i], ids[j]);
            }
            for (auto [a, b] : trace.addr)
                base.addr.add(ids[a], ids[b]);
            for (auto [a, b] : trace.data)
                base.data.add(ids[a], ids[b]);
            for (auto [a, b] : trace.ctrl)
                base.ctrl.add(ids[a], ids[b]);
            for (auto [a, b] : trace.rmw)
                base.rmw.add(ids[a], ids[b]);
            for (auto [a, b] : trace.iio)
                base.iio.add(ids[a], ids[b]);
        }
        base.finalRegs[t] = trace.finalRegs;
        base.constrainedUnpredictable |= trace.constrainedUnpredictable;
        base.unknownSideEffects |= trace.unknownSideEffects;
    }

    // ---- Enumerate rf: per read, every same-location same-value write.
    for (const Event &e : base.events) {
        if (!e.isRead())
            continue;
        std::vector<EventId> sources;
        for (const Event &w : base.events) {
            if (w.isWrite() && w.loc == e.loc && w.value == e.value)
                sources.push_back(w.id);
        }
        if (sources.empty())
            return;  // read's value written by no one: impossible
        space.readIds.push_back(e.id);
        space.rfChoices.push_back(std::move(sources));
    }

    // ---- Enumerate co: per-location permutations of non-initial writes.
    space.locWrites.resize(test.locations.size());
    for (std::vector<EventId> &writes : space.locWrites)
        writes.clear();
    for (const Event &e : base.events) {
        if (e.isWrite() && !e.initial)
            space.locWrites[e.loc].push_back(e.id);
    }
    std::vector<std::uint64_t> perm_counts(test.locations.size(), 1);
    for (LocationId loc = 0; loc < test.locations.size(); ++loc) {
        const std::size_t writes = space.locWrites[loc].size();
        if (writes > kMaxCoWritesPerLocation) {
            fatal("test '" + test.name + "': location " +
                  test.locations[loc] + " has " + std::to_string(writes) +
                  " writes; refusing the factorial co enumeration (max " +
                  std::to_string(kMaxCoWritesPerLocation) + ")");
        }
        perm_counts[loc] = factorial(writes);
        if (materialize)
            space.locPerms.push_back(allPermutations(writes));
    }

    // ---- Enumerate the interrupt witness: SGI-delivered TakeInterrupts
    // pick a matching GenerateInterrupt.
    for (const Event &e : base.events) {
        if (e.kind != EventKind::TakeInterrupt || !e.sgiDelivered)
            continue;
        std::vector<EventId> gens;
        for (const Event &g : base.events) {
            if (g.kind == EventKind::GenerateInterrupt &&
                    g.intid == e.intid &&
                    ((g.targetMask >> e.tid) & 1)) {
                gens.push_back(g.id);
            }
        }
        if (gens.empty())
            return;  // interrupt taken but never generated
        space.tiIds.push_back(e.id);
        space.tiChoices.push_back(std::move(gens));
    }

    // ---- Flattened odometer: [interrupt..., co..., rf...]. ----
    space.coBase = space.tiIds.size();
    space.rfBase = space.coBase + test.locations.size();
    for (std::size_t i = 0; i < space.tiIds.size(); ++i)
        space.radix.push_back(space.tiChoices[i].size());
    for (LocationId loc = 0; loc < test.locations.size(); ++loc)
        space.radix.push_back(perm_counts[loc]);
    for (std::size_t r = 0; r < space.readIds.size(); ++r)
        space.radix.push_back(space.rfChoices[r].size());
    space.total = 1;
    for (std::uint64_t r : space.radix)
        space.total *= r;
    space.pick.assign(space.radix.size(), 0);
    space.valid = true;
    if (!materialize)
        return;

    // Initial write co-before everything at its location (constant
    // across witness assignments; initial write id == loc).
    for (LocationId loc = 0; loc < test.locations.size(); ++loc) {
        for (EventId w : space.locWrites[loc])
            space.cand.co.add(loc, w);
    }
    // Apply digit 0 of every coordinate.
    for (std::size_t c = 0; c < space.pick.size(); ++c)
        space.applyCoord(c, 0, true);

    // ---- Pre-filter graphs: nodes and po-loc edges per location. ----
    std::size_t max_nodes = 0, max_writes = 0;
    for (LocationId loc = 0; loc < test.locations.size(); ++loc) {
        ComboSpace::LocGraph graph;
        graph.loc = loc;
        graph.initialNode = 0;
        graph.nodes.push_back({loc, -1, -1});
        for (std::size_t slot = 0; slot < space.locWrites[loc].size();
                ++slot) {
            graph.nodes.push_back(
                {space.locWrites[loc][slot], static_cast<int>(slot), -1});
        }
        for (std::size_t r = 0; r < space.readIds.size(); ++r) {
            if (base.events[space.readIds[r]].loc == loc) {
                graph.nodes.push_back(
                    {space.readIds[r], -1, static_cast<int>(r)});
            }
        }
        // po-loc edges: same (real) thread, earlier id first — events
        // of one thread are appended in program order.
        for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
            const Event &a = base.events[graph.nodes[i].event];
            if (a.tid == kInitialThread)
                continue;
            for (std::size_t j = 0; j < graph.nodes.size(); ++j) {
                const Event &b = base.events[graph.nodes[j].event];
                if (b.tid == a.tid && a.id < b.id)
                    graph.poEdges.emplace_back(static_cast<int>(i),
                                               static_cast<int>(j));
            }
        }
        max_nodes = std::max(max_nodes, graph.nodes.size());
        max_writes = std::max(max_writes, space.locWrites[loc].size());
        space.locGraphs.push_back(std::move(graph));
    }
    space.slotRank.assign(max_writes, 0);
    space.rank.assign(max_nodes, -1);
    space.orderedNode.assign(max_writes + 1, -1);
    space.indeg.assign(max_nodes, 0);
    space.queue.assign(max_nodes, 0);
    if (space.adj.size() < max_nodes)
        space.adj.resize(max_nodes);
}

/** REX_PREFILTER_CHECK=1: assert the pre-filter against the full
 *  internal-axiom cycle check. */
void
verifyPrefilter(const CandidateExecution &cand, bool coherent)
{
    Relation internal = cand.poLoc() | cand.fr() | cand.co | cand.rf;
    const bool full = !internal.findCycle().has_value();
    if (full != coherent) {
        panic("coherence pre-filter disagrees with the full internal "
              "check (pre-filter says " +
              std::string(coherent ? "coherent" : "incoherent") + ")");
    }
}

} // namespace

std::size_t
CandidateEnumerator::combinationCount() const
{
    std::size_t n = 1;
    for (const auto &traces : _traces) {
        if (traces.empty())
            return 0;  // a thread has no trace: no candidates
        n *= traces.size();
    }
    return n;
}

std::vector<const sem::ThreadTrace *>
CandidateEnumerator::comboAt(std::size_t index) const
{
    std::vector<const sem::ThreadTrace *> combo(_traces.size());
    for (std::size_t t = 0; t < _traces.size(); ++t) {
        combo[t] = &_traces[t][index % _traces[t].size()];
        index /= _traces[t].size();
    }
    return combo;
}

void
CandidateEnumerator::forEachStaged(const StagedVisitor &visit,
                                   const engine::CancelToken *cancel) const
{
    const bool check_prefilter = envFlag("REX_PREFILTER_CHECK");
    const std::size_t combos = combinationCount();
    ComboSpace space;  // reused across combos (storage amortisation)
    for (std::size_t ci = 0; ci < combos; ++ci) {
        // Cancellation poll before each (potentially expensive)
        // skeleton build; the per-step poll below keeps the latency
        // bound within a combination.
        if (cancel && cancel->cancelled())
            return;
        space.build(_test, comboAt(ci), /*materialize=*/true);
        if (!space.valid)
            continue;
        while (true) {
            StagedInfo info;
            info.comboIndex = ci;
            info.coherent = space.coherent();
            if (check_prefilter)
                verifyPrefilter(space.cand, info.coherent);
            if (!visit(space.cand, info))
                return;
            if (cancel && cancel->cancelled())
                return;
            if (!space.step())
                break;
        }
    }
}

void
CandidateEnumerator::forEach(
    const std::function<bool(CandidateExecution &)> &visit)
{
    forEachStaged([&](CandidateExecution &cand, const StagedInfo &) {
        return visit(cand);
    });
}

std::vector<CandidateEnumerator::Shard>
CandidateEnumerator::planShards(std::uint64_t target_per_shard,
                                const engine::CancelToken *cancel) const
{
    if (target_per_shard == 0)
        target_per_shard = 1;
    std::vector<Shard> shards;
    const std::size_t combos = combinationCount();
    ComboSpace space;
    for (std::size_t ci = 0; ci < combos; ++ci) {
        if (cancel && cancel->cancelled())
            break;  // budget gone mid-plan: partial plan, partial result
        space.build(_test, comboAt(ci), /*materialize=*/false);
        if (!space.valid)
            continue;
        for (std::uint64_t begin = 0; begin < space.total;
                begin += target_per_shard) {
            shards.push_back(
                {ci, begin,
                 std::min(space.total, begin + target_per_shard)});
        }
    }
    return shards;
}

bool
CandidateEnumerator::visitShard(const Shard &shard,
                                const StagedVisitor &visit,
                                const engine::CancelToken *cancel) const
{
    const bool check_prefilter = envFlag("REX_PREFILTER_CHECK");
    if (cancel && cancel->cancelled())
        return false;  // budget already gone: skip the skeleton build
    ComboSpace space;
    space.build(_test, comboAt(shard.combo), /*materialize=*/true);
    if (!space.valid)
        return true;
    rexAssert(shard.end <= space.total && shard.begin < shard.end,
              "shard outside its combination's witness space");
    space.seek(shard.begin);
    for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
        StagedInfo info;
        info.comboIndex = shard.combo;
        info.coherent = space.coherent();
        if (check_prefilter)
            verifyPrefilter(space.cand, info.coherent);
        if (!visit(space.cand, info))
            return false;
        if (i + 1 < shard.end && !space.step())
            panic("witness odometer overran its space");
    }
    return true;
}

void
CandidateEnumerator::visitCombinationNaive(
    const std::vector<const sem::ThreadTrace *> &combo,
    const std::function<bool(CandidateExecution &)> &visit,
    bool &keep_going)
{
    // The pre-staging reference path: assemble the skeleton, then
    // deep-copy it for every witness assignment.
    ComboSpace space;
    space.build(_test, combo, /*materialize=*/true);
    if (!space.valid)
        return;
    while (true) {
        CandidateExecution cand = space.cand;
        keep_going = visit(cand);
        if (!keep_going)
            return;
        if (!space.step())
            return;
    }
}

void
CandidateEnumerator::forEachNaive(
    const std::function<bool(CandidateExecution &)> &visit)
{
    // Odometer over per-thread trace choices.
    std::vector<std::size_t> pick(_traces.size(), 0);
    for (const auto &traces : _traces) {
        if (traces.empty())
            return;  // a thread has no trace: no candidates
    }

    bool keep_going = true;
    while (keep_going) {
        std::vector<const sem::ThreadTrace *> combo;
        combo.reserve(_traces.size());
        for (std::size_t t = 0; t < _traces.size(); ++t)
            combo.push_back(&_traces[t][pick[t]]);
        visitCombinationNaive(combo, visit, keep_going);
        if (!keep_going)
            break;

        bool more = false;
        for (std::size_t t = 0; t < _traces.size(); ++t) {
            if (++pick[t] < _traces[t].size()) {
                more = true;
                break;
            }
            pick[t] = 0;
        }
        if (!more)
            break;
    }
}

std::size_t
CandidateEnumerator::count()
{
    // Counting needs no candidate at all: each valid combination
    // contributes the product of its witness-choice radices (exactly
    // the number of assignments the odometer would step through).
    std::size_t n = 0;
    const std::size_t combos = combinationCount();
    ComboSpace space;
    for (std::size_t ci = 0; ci < combos; ++ci) {
        space.build(_test, comboAt(ci), /*materialize=*/false);
        if (space.valid)
            n += static_cast<std::size_t>(space.total);
    }
    return n;
}

} // namespace rex
