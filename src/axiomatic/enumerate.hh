/**
 * @file
 * Candidate-execution enumeration.
 *
 * Plays the role of Isla's symbolic candidate generation (§5.1) by
 * explicit enumeration: per-thread traces are produced by the thread
 * semantics under a read-value domain grown to fixpoint, then the
 * existential witnesses (rf, co, interrupt) are enumerated exhaustively.
 *
 * Enumeration is *staged* (see "Staged enumeration" in DESIGN.md): per
 * trace combination a skeleton candidate is assembled once, and the
 * witness odometer mutates the rf/co/interrupt pairs of a reusable
 * candidate buffer in place (mutate-and-undo) instead of deep-copying
 * the skeleton per assignment. Each assignment is additionally screened
 * by a per-location coherence pre-filter, so consumers can skip the
 * full model evaluation for candidates the internal (SC-per-location)
 * axiom rejects anyway. The pre-PR naive path (fresh deep copy per
 * candidate, no pre-filter) is retained as forEachNaive() as a
 * reference for parity testing (env REX_NAIVE_ENUM=1 routes checkTest
 * through it).
 *
 * Env knobs:
 *   REX_PREFILTER_CHECK=1  assert, for every candidate, that the
 *                          coherence pre-filter agrees with a full
 *                          cycle check of po-loc | rf | co | fr.
 */

#ifndef REX_AXIOMATIC_ENUMERATE_HH
#define REX_AXIOMATIC_ENUMERATE_HH

#include <cstdint>
#include <functional>

#include "events/candidate.hh"
#include "litmus/litmus.hh"
#include "sem/executor.hh"

namespace rex {

namespace engine { class CancelToken; }

/** Enumerates every candidate execution of a litmus test. */
class CandidateEnumerator
{
  public:
    /** Per-candidate staging facts passed to staged visitors. */
    struct StagedInfo {
        /** Index of the trace combination this candidate belongs to;
         *  consumers key per-combination caches (e.g. the model's
         *  SkeletonRelations) on it. */
        std::uint64_t comboIndex = 0;

        /** Result of the per-location coherence pre-filter: false means
         *  po-loc | rf | co | fr has a cycle, i.e. the internal
         *  (SC-per-location) axiom is guaranteed to reject this
         *  candidate and the full model evaluation can be skipped. */
        bool coherent = true;
    };

    /**
     * A staged visitor. The candidate reference is a *reusable buffer*:
     * it is valid only for the duration of the call and must not be
     * mutated (copy it to keep it). Return false to stop enumeration.
     */
    using StagedVisitor =
        std::function<bool(CandidateExecution &, const StagedInfo &)>;

    /** A contiguous slice of one combination's witness space. */
    struct Shard {
        std::size_t combo = 0;     //!< trace-combination index
        std::uint64_t begin = 0;   //!< first witness-odometer index
        std::uint64_t end = 0;     //!< one past the last index
    };

    /** @param cancel polled during trace computation; a trip yields an
     *  empty (zero-candidate) enumerator. */
    explicit CandidateEnumerator(
        const LitmusTest &test,
        const engine::CancelToken *cancel = nullptr);

    /**
     * Visit every candidate execution (before any model axiom is
     * applied). The visitor returns false to stop early. Runs on the
     * staged path; the candidate reference is a reusable buffer (copy
     * to keep).
     */
    void forEach(const std::function<bool(CandidateExecution &)> &visit);

    /**
     * Staged visitation: candidates plus their staging facts.
     * @param cancel when non-null, polled in the odometer loop (per
     *        combination and per witness step); a tripped token stops
     *        enumeration before the next candidate is assembled.
     */
    void forEachStaged(const StagedVisitor &visit,
                       const engine::CancelToken *cancel = nullptr) const;

    /**
     * The retained pre-staging reference path: a fresh candidate is
     * materialized per witness assignment, with no pre-filter. Visits
     * the exact same candidates in the exact same order as the staged
     * path; kept for parity tests and REX_NAIVE_ENUM=1.
     */
    void forEachNaive(
        const std::function<bool(CandidateExecution &)> &visit);

    /** Number of trace combinations (product of per-thread counts). */
    std::size_t combinationCount() const;

    /**
     * Split the whole candidate space into shards of at most
     * @p target_per_shard candidates, each within one combination, in
     * global enumeration order. Concatenating the shards' candidates
     * reproduces forEachStaged() exactly, which makes parallel
     * execution with a deterministic in-order merge possible.
     * @param cancel polled once per combination; planning stops (and
     *        returns the shards planned so far) when it trips — on a
     *        large test the planning sweep alone can outlast a
     *        deadline budget.
     */
    std::vector<Shard> planShards(
        std::uint64_t target_per_shard,
        const engine::CancelToken *cancel = nullptr) const;

    /**
     * Visit one shard's candidates (thread-safe: shards build private
     * odometer state; the enumerator itself is only read).
     * @param cancel when non-null and already tripped, the shard's
     *        skeleton build is skipped entirely; the per-candidate
     *        stop is the visitor's job (see the checker).
     * @return false when the visitor stopped early.
     */
    bool visitShard(const Shard &shard, const StagedVisitor &visit,
                    const engine::CancelToken *cancel = nullptr) const;

    /** Number of candidate executions. */
    std::size_t count();

    /** The fixpoint read-value domain (for diagnostics/tests). */
    const sem::ValueDomain &domain() const { return _domain; }

    /** The per-thread trace sets (for diagnostics/tests). */
    const std::vector<std::vector<sem::ThreadTrace>> &traces() const
    {
        return _traces;
    }

  private:
    void computeTraces(const engine::CancelToken *cancel);

    /** The legacy copy-per-candidate combination walk (naive path). */
    void visitCombinationNaive(
        const std::vector<const sem::ThreadTrace *> &combo,
        const std::function<bool(CandidateExecution &)> &visit,
        bool &keep_going);

    /** The trace pointers of combination @p index (odometer order). */
    std::vector<const sem::ThreadTrace *> comboAt(std::size_t index) const;

    const LitmusTest &_test;
    sem::ValueDomain _domain;
    std::vector<std::vector<sem::ThreadTrace>> _traces;
};

} // namespace rex

#endif // REX_AXIOMATIC_ENUMERATE_HH
