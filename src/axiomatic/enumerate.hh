/**
 * @file
 * Candidate-execution enumeration.
 *
 * Plays the role of Isla's symbolic candidate generation (§5.1) by
 * explicit enumeration: per-thread traces are produced by the thread
 * semantics under a read-value domain grown to fixpoint, then the
 * existential witnesses (rf, co, interrupt) are enumerated exhaustively.
 */

#ifndef REX_AXIOMATIC_ENUMERATE_HH
#define REX_AXIOMATIC_ENUMERATE_HH

#include <functional>

#include "events/candidate.hh"
#include "litmus/litmus.hh"
#include "sem/executor.hh"

namespace rex {

/** Enumerates every candidate execution of a litmus test. */
class CandidateEnumerator
{
  public:
    explicit CandidateEnumerator(const LitmusTest &test);

    /**
     * Visit every candidate execution (before any model axiom is
     * applied). The visitor returns false to stop early.
     */
    void forEach(const std::function<bool(CandidateExecution &)> &visit);

    /** Number of candidate executions. */
    std::size_t count();

    /** The fixpoint read-value domain (for diagnostics/tests). */
    const sem::ValueDomain &domain() const { return _domain; }

    /** The per-thread trace sets (for diagnostics/tests). */
    const std::vector<std::vector<sem::ThreadTrace>> &traces() const
    {
        return _traces;
    }

  private:
    void computeTraces();
    void visitCombination(
        const std::vector<const sem::ThreadTrace *> &combo,
        const std::function<bool(CandidateExecution &)> &visit,
        bool &keep_going);

    const LitmusTest &_test;
    sem::ValueDomain _domain;
    std::vector<std::vector<sem::ThreadTrace>> _traces;
};

} // namespace rex

#endif // REX_AXIOMATIC_ENUMERATE_HH
