/**
 * @file
 * Model parameters: the two axes of §5 plus FEAT_ETS2 and the GIC draft.
 */

#ifndef REX_AXIOMATIC_PARAMS_HH
#define REX_AXIOMATIC_PARAMS_HH

#include <string>
#include <vector>

namespace rex {

/**
 * Parameters of the Arm-A exceptions model (Figure 9).
 *
 * - FEAT_ExS with EIS/EOS cleared disables context synchronisation on
 *   exception entry/return (§3.5); we fix the fields as variants, as the
 *   paper does (no runtime SCTLR changes).
 * - SEA_R / SEA_W select the implementation-defined choice of whether
 *   loads / stores may generate synchronous external aborts (§4), making
 *   program-order-later instructions speculative until the access
 *   completes.
 * - FEAT_ETS2 (§3.3) adds a barrier before translation faults; mandatory
 *   from Armv8.8-A, so on by default.
 * - gicExtension enables the §7.5 draft clauses (interrupt witness and
 *   DSB ordering of GIC effects).
 */
struct ModelParams {
    bool featExS = false;
    bool eis = true;   //!< SCTLR_ELx.EIS: exception entry is context-sync
    bool eos = true;   //!< SCTLR_ELx.EOS: exception return is context-sync
    bool seaR = false; //!< loads may report synchronous external aborts
    bool seaW = false; //!< stores may report synchronous external aborts
    bool featEts2 = true;
    bool gicExtension = true;

    /** Baseline: no ExS, no SEAs, ETS2 on. */
    static ModelParams base();

    /** FEAT_ExS with EIS=EOS=0 (the paper's "ExS" column). */
    static ModelParams exs();

    /** SEA on reads ("SEA_R" column). */
    static ModelParams seaReads();

    /** SEA on writes ("SEA_W" column). */
    static ModelParams seaWrites();

    /** SEA on both ("SEA_R+W" column). */
    static ModelParams seaBoth();

    /** Look up a variant by the names used in litmus `variant` lines:
     *  "base", "ExS", "SEA_R", "SEA_W", "SEA_RW". */
    static ModelParams byName(const std::string &name);

    /** The paper's four param-refs columns plus baseline. */
    static std::vector<ModelParams> paperVariants();

    /** Short display name ("base", "ExS", "SEA_R", ...). */
    std::string name() const;

    /** Is exception entry context-synchronising under these params? */
    bool entryIsCse() const { return !(featExS && !eis); }

    /** Is exception return context-synchronising? */
    bool returnIsCse() const { return !(featExS && !eos); }
};

} // namespace rex

#endif // REX_AXIOMATIC_PARAMS_HH
