#include "axiomatic/model.hh"

namespace rex {

ModelRelations
computeRelations(const CandidateExecution &cand, const ModelParams &params)
{
    const std::size_t n = cand.size();
    ModelRelations m;

    const EventSet reads = cand.reads();
    const EventSet writes = cand.writes();
    const EventSet mem = reads | writes;
    const Relation id_r = Relation::identity(reads);
    const Relation id_w = Relation::identity(writes);
    const Relation id_rw = Relation::identity(mem);

    // (* might-be speculatively executed *)
    m.speculative = cand.ctrl | cand.addr.seq(cand.po);
    if (params.seaR)
        m.speculative |= id_r.seq(cand.po);
    if (params.seaW)
        m.speculative |= id_w.seq(cand.po);

    // (* context-sync-events *)
    m.cse = cand.isb();
    if (params.entryIsCse())
        m.cse |= cand.takeExceptions();
    if (params.returnIsCse())
        m.cse |= cand.erets();
    // Asynchronous exception entry is exception entry too: when entry is
    // context-synchronising, TakeInterrupt events are CSEs as well.
    if (params.entryIsCse())
        m.cse |= cand.takeInterrupts();

    const EventSet async_set = cand.takeInterrupts();

    // (* observed by *)
    m.obs = cand.rfe() | cand.fr() | cand.co;

    // (* dependency-ordered-before *)
    const Relation id_isb = Relation::identity(cand.isb());
    m.dob = cand.addr | cand.data |
        m.speculative.seq(id_w) |
        m.speculative.seq(id_isb) |
        (cand.addr | cand.data).seq(cand.rfi());

    // (* atomic-ordered-before *)
    const EventSet acq = cand.acquires() | cand.acquirePcs();
    m.aob = cand.rmw |
        Relation::identity(cand.rmw.range())
            .seq(cand.rfi()).seq(Relation::identity(acq));

    // (* barrier-ordered-before *)
    const Relation id_dmbld = Relation::identity(cand.dmbLd());
    const Relation id_dmbst = Relation::identity(cand.dmbSt());
    const Relation id_l = Relation::identity(cand.releases());
    const Relation id_a = Relation::identity(cand.acquires());
    const Relation id_aq = Relation::identity(acq);
    const Relation id_dsb = Relation::identity(cand.dsb());
    m.bob = id_r.seq(cand.po).seq(id_dmbld) |
        id_w.seq(cand.po).seq(id_dmbst) |
        id_dmbst.seq(cand.po).seq(id_w) |
        id_dmbld.seq(cand.po).seq(id_rw) |
        id_l.seq(cand.po).seq(id_a) |
        id_aq.seq(cand.po).seq(id_rw) |
        id_rw.seq(cand.po).seq(id_l) |
        id_dsb.seq(cand.po);

    // (* contextually-ordered-before *)
    const EventSet msr = cand.msrEvents();
    const Relation id_msr_cse = Relation::identity(msr | m.cse);
    const Relation id_msr = Relation::identity(msr);
    const Relation id_cse = Relation::identity(m.cse);
    m.ctxob = m.speculative.seq(id_msr_cse) |
        id_msr.seq(cand.po).seq(id_cse) |
        id_cse.seq(cand.po);

    // (* async-ordered-before *)
    const Relation id_async = Relation::identity(async_set);
    m.asyncob = m.speculative.seq(id_async) | id_async.seq(cand.po);

    // FEAT_ETS2: a barrier before translation faults (§3.3).
    m.ets2 = Relation(n);
    if (params.featEts2) {
        m.ets2 = cand.po.seq(
            Relation::identity(cand.translationFaults()));
    }

    // §7.5 GIC draft: the interrupt witness orders generation before
    // delivery, and DSBs order GIC effects with program order.
    m.gicob = Relation(n);
    if (params.gicExtension) {
        m.gicob |= cand.interruptWitness;
        // GIC effect (iio-after register access r) before a dsb po-after r.
        m.gicob |= cand.iio.inverse().seq(cand.po).seq(id_dsb);
        // dsb before GIC effects of po-later register accesses.
        m.gicob |= id_dsb.seq(cand.po).seq(cand.iio);
    }

    // (* Ordered-before *)
    m.ob = (m.obs | m.dob | m.aob | m.bob | m.ctxob | m.asyncob | m.ets2 |
            m.gicob).transitiveClosure();

    return m;
}

ModelResult
checkConsistent(const CandidateExecution &cand, const ModelParams &params)
{
    ModelResult result;

    // Internal visibility requirement: SC per location.
    Relation internal = cand.poLoc() | cand.fr() | cand.co | cand.rf;
    if (auto cycle = internal.findCycle()) {
        result.consistent = false;
        result.failedAxiom = "internal";
        result.cycle = std::move(cycle);
        return result;
    }

    ModelRelations m = computeRelations(cand, params);

    // External visibility requirement.
    if (!m.ob.irreflexive()) {
        result.consistent = false;
        result.failedAxiom = "external";
        // Report a cycle of the (pre-closure) union for readability.
        Relation union_rel = m.obs | m.dob | m.aob | m.bob | m.ctxob |
            m.asyncob | m.ets2 | m.gicob;
        result.cycle = union_rel.findCycle();
        return result;
    }

    // Atomic: no intervening external write between an exclusive pair.
    Relation atomic_violation =
        cand.rmw & cand.fre().seq(cand.coe());
    if (!atomic_violation.empty()) {
        result.consistent = false;
        result.failedAxiom = "atomic";
        return result;
    }

    return result;
}

} // namespace rex
