#include "axiomatic/model.hh"

#include "engine/governor.hh"

namespace rex {

namespace {

/**
 * All per-event-kind sets the skeleton needs, filled in ONE pass over
 * the events instead of one pass per accessor (each CandidateExecution
 * helper re-scans the event list; the skeleton needs over a dozen).
 * Definitions mirror the CandidateExecution accessors exactly.
 */
struct KindSets {
    EventSet reads, writes, acquires, acquirePcs, releases;
    EventSet dmbLd, dmbSt, dsb, isb;
    EventSet takeExceptions, translationFaults, erets, msr, takeInterrupts;

    explicit KindSets(const CandidateExecution &cand)
        : reads(cand.size()), writes(cand.size()), acquires(cand.size()),
          acquirePcs(cand.size()), releases(cand.size()),
          dmbLd(cand.size()), dmbSt(cand.size()), dsb(cand.size()),
          isb(cand.size()), takeExceptions(cand.size()),
          translationFaults(cand.size()), erets(cand.size()),
          msr(cand.size()), takeInterrupts(cand.size())
    {
        for (const Event &e : cand.events) {
            switch (e.kind) {
              case EventKind::ReadMem:
                reads.insert(e.id);
                if (e.flags.acquire)
                    acquires.insert(e.id);
                if (e.flags.acquirePc)
                    acquirePcs.insert(e.id);
                break;
              case EventKind::WriteMem:
                writes.insert(e.id);
                if (e.flags.release)
                    releases.insert(e.id);
                break;
              case EventKind::Barrier:
                switch (e.barrier) {
                  case BarrierKind::DmbLd:
                    dmbLd.insert(e.id);
                    break;
                  case BarrierKind::DmbSt:
                    dmbSt.insert(e.id);
                    break;
                  case BarrierKind::DmbSy:
                    dmbLd.insert(e.id);
                    dmbSt.insert(e.id);
                    break;
                  case BarrierKind::DsbLd:
                    dmbLd.insert(e.id);
                    dsb.insert(e.id);
                    break;
                  case BarrierKind::DsbSt:
                    dmbSt.insert(e.id);
                    dsb.insert(e.id);
                    break;
                  case BarrierKind::DsbSy:
                    dmbLd.insert(e.id);
                    dmbSt.insert(e.id);
                    dsb.insert(e.id);
                    break;
                  case BarrierKind::Isb:
                    isb.insert(e.id);
                    break;
                }
                break;
              case EventKind::TakeException:
                takeExceptions.insert(e.id);
                if (e.exceptionClass ==
                        ExceptionClass::DataAbortTranslation)
                    translationFaults.insert(e.id);
                break;
              case EventKind::ExceptionReturn:
                erets.insert(e.id);
                break;
              case EventKind::WriteSysreg:
                msr.insert(e.id);
                break;
              case EventKind::TakeInterrupt:
                takeInterrupts.insert(e.id);
                break;
              default:
                break;
            }
        }
    }
};

} // namespace

SkeletonRelations
computeSkeleton(const CandidateExecution &cand, const ModelParams &params)
{
    const std::size_t n = cand.size();
    SkeletonRelations s;

    const KindSets k(cand);
    const EventSet mem = k.reads | k.writes;

    // poLoc and internalPairs, fused into one pair sweep (their
    // CandidateExecution accessors each materialize an intermediate
    // n x n relation).
    s.poLoc.reset(n);
    s.internalPairs.reset(n);
    for (const Event &a : cand.events) {
        for (const Event &b : cand.events) {
            if (a.tid != kInitialThread && b.tid == a.tid && b.id != a.id)
                s.internalPairs.add(a.id, b.id);
            if (a.isMemory() && b.isMemory() && a.loc == b.loc &&
                    cand.po.contains(a.id, b.id))
                s.poLoc.add(a.id, b.id);
        }
    }
    s.addrData = cand.addr | cand.data;

    // (* might-be speculatively executed *)
    // [S]; r and r; [S] are domain/range restrictions: computed as such
    // instead of materializing identity relations and seq-composing,
    // which costs a row scan per pair instead of a word-wise AND.
    s.speculative = cand.ctrl | cand.addr.seq(cand.po);
    if (params.seaR)
        s.speculative |= cand.po.restrictDomain(k.reads);
    if (params.seaW)
        s.speculative |= cand.po.restrictDomain(k.writes);

    // (* context-sync-events *)
    s.cse = k.isb;
    if (params.entryIsCse())
        s.cse |= k.takeExceptions;
    if (params.returnIsCse())
        s.cse |= k.erets;
    // Asynchronous exception entry is exception entry too: when entry is
    // context-synchronising, TakeInterrupt events are CSEs as well.
    if (params.entryIsCse())
        s.cse |= k.takeInterrupts;

    // (* dependency-ordered-before *), minus the rfi tail.
    s.dobStatic = s.addrData;
    s.dobStatic |= s.speculative.restrictRange(k.writes);
    s.dobStatic |= s.speculative.restrictRange(k.isb);

    // (* atomic-ordered-before *): cand.rmw is already skeleton; keep
    // the endpoint sets of the rfi tail ([range(rmw)]; rfi; [A|Q]).
    s.rmwRange = cand.rmw.range();
    s.acq = k.acquires | k.acquirePcs;

    // (* barrier-ordered-before *)
    s.bob = cand.po.restricted(k.reads, k.dmbLd);
    s.bob |= cand.po.restricted(k.writes, k.dmbSt);
    s.bob |= cand.po.restricted(k.dmbSt, k.writes);
    s.bob |= cand.po.restricted(k.dmbLd, mem);
    s.bob |= cand.po.restricted(k.releases, k.acquires);
    s.bob |= cand.po.restricted(s.acq, mem);
    s.bob |= cand.po.restricted(mem, k.releases);
    s.bob |= cand.po.restrictDomain(k.dsb);

    // (* contextually-ordered-before *)
    s.ctxob = s.speculative.restrictRange(k.msr | s.cse);
    s.ctxob |= cand.po.restricted(k.msr, s.cse);
    s.ctxob |= cand.po.restrictDomain(s.cse);

    // (* async-ordered-before *)
    s.asyncob = s.speculative.restrictRange(k.takeInterrupts);
    s.asyncob |= cand.po.restrictDomain(k.takeInterrupts);

    // FEAT_ETS2: a barrier before translation faults (§3.3).
    if (params.featEts2)
        s.ets2 = cand.po.restrictRange(k.translationFaults);
    else
        s.ets2 = Relation(n);

    // §7.5 GIC draft, minus the interrupt witness edge: DSBs order GIC
    // effects (iio-after their register access) with program order.
    s.gicobStatic = Relation(n);
    s.gic = params.gicExtension;
    if (params.gicExtension) {
        s.gicobStatic |= cand.iio.inverse().seq(cand.po).restrictRange(k.dsb);
        s.gicobStatic |= cand.po.restrictDomain(k.dsb).seq(cand.iio);
    }

    s.staticOb = s.dobStatic | cand.rmw;
    s.staticOb |= s.bob;
    s.staticOb |= s.ctxob;
    s.staticOb |= s.asyncob;
    s.staticOb |= s.ets2;
    s.staticOb |= s.gicobStatic;

    return s;
}

ModelRelations
computeRelations(const CandidateExecution &cand, const ModelParams &params)
{
    const SkeletonRelations s = computeSkeleton(cand, params);
    ModelRelations m;

    m.speculative = s.speculative;
    m.cse = s.cse;

    // Witness-dependent pieces: obs and the rfi tails.
    const Relation rfi = cand.rf & s.internalPairs;
    const Relation rfe = cand.rf - s.internalPairs;
    const Relation fr = cand.rf.inverse().seq(cand.co);

    // (* observed by *)
    m.obs = rfe | fr | cand.co;

    // (* dependency-ordered-before *)
    m.dob = s.dobStatic | s.addrData.seq(rfi);

    // (* atomic-ordered-before *)
    m.aob = cand.rmw | rfi.restricted(s.rmwRange, s.acq);

    m.bob = s.bob;
    m.ctxob = s.ctxob;
    m.asyncob = s.asyncob;
    m.ets2 = s.ets2;

    // §7.5 GIC draft: the interrupt witness orders generation before
    // delivery.
    m.gicob = s.gicobStatic;
    if (params.gicExtension)
        m.gicob |= cand.interruptWitness;

    // (* Ordered-before *)
    m.ob = (m.obs | m.dob | m.aob | m.bob | m.ctxob | m.asyncob | m.ets2 |
            m.gicob).transitiveClosure();

    return m;
}

ModelResult
checkConsistent(const CandidateExecution &cand, const ModelParams &,
                const SkeletonRelations &skel, bool internal_prechecked,
                const engine::CancelToken *cancel)
{
    ModelResult result;

    const Relation fr = cand.rf.inverse().seq(cand.co);

    // Internal visibility requirement: SC per location.
    if (!internal_prechecked) {
        Relation internal = skel.poLoc | fr;
        internal |= cand.co;
        internal |= cand.rf;
        if (auto cycle = internal.findCycle()) {
            result.consistent = false;
            result.failedAxiom = "internal";
            result.cycle = std::move(cycle);
            return result;
        }
    }

    // Cancellation poll between the staged clauses: the ob transitive
    // closure below is the expensive step, so a tripped budget stops
    // before paying for it.
    if (cancel && cancel->cancelled()) {
        result.aborted = true;
        return result;
    }

    // External visibility requirement: rebuild only the
    // witness-dependent ob clauses on top of the skeleton union.
    const Relation rfi = cand.rf & skel.internalPairs;
    Relation union_rel = skel.staticOb | fr;
    union_rel |= cand.rf - skel.internalPairs;  // rfe
    union_rel |= cand.co;
    union_rel |= skel.addrData.seq(rfi);
    union_rel |= rfi.restricted(skel.rmwRange, skel.acq);
    if (skel.gic)
        union_rel |= cand.interruptWitness;
    if (!union_rel.transitiveClosure().irreflexive()) {
        result.consistent = false;
        result.failedAxiom = "external";
        // Report a cycle of the (pre-closure) union for readability.
        result.cycle = union_rel.findCycle();
        return result;
    }

    // Atomic: no intervening external write between an exclusive pair.
    Relation atomic_violation = cand.rmw & (fr - skel.internalPairs)
                                               .seq(cand.co - skel.internalPairs);
    if (!atomic_violation.empty()) {
        result.consistent = false;
        result.failedAxiom = "atomic";
        return result;
    }

    return result;
}

ModelResult
checkConsistent(const CandidateExecution &cand, const ModelParams &params)
{
    // Check the (cheap) internal axiom before paying for the skeleton,
    // preserving the historical early exit of per-candidate callers.
    Relation internal = cand.poLoc() | cand.fr();
    internal |= cand.co;
    internal |= cand.rf;
    if (auto cycle = internal.findCycle()) {
        ModelResult result;
        result.consistent = false;
        result.failedAxiom = "internal";
        result.cycle = std::move(cycle);
        return result;
    }

    return checkConsistent(cand, params, computeSkeleton(cand, params),
                           /*internal_prechecked=*/true);
}

} // namespace rex
