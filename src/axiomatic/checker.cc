#include "axiomatic/checker.hh"

#include "axiomatic/enumerate.hh"

namespace rex {

bool
condHolds(const CandidateExecution &cand, const Condition &cond)
{
    for (const CondAtom &atom : cond.atoms) {
        switch (atom.kind) {
          case CondAtom::Kind::Register: {
            std::size_t tid = static_cast<std::size_t>(atom.tid);
            if (tid >= cand.finalRegs.size())
                return false;
            if (cand.finalRegs[tid][atom.reg] != atom.value)
                return false;
            break;
          }
          case CondAtom::Kind::Memory:
            if (cand.finalMemValue(atom.loc) != atom.value)
                return false;
            break;
        }
    }
    return true;
}

CheckResult
checkTest(const LitmusTest &test, const ModelParams &params,
          bool stop_at_first, bool capture_witness)
{
    CheckResult result;
    CandidateEnumerator enumerator(test);
    enumerator.forEach([&](CandidateExecution &cand) {
        ++result.candidates;
        if (cand.constrainedUnpredictable)
            ++result.constrainedUnpredictable;
        if (cand.unknownSideEffects)
            ++result.unknownSideEffects;
        // Evaluate the condition first: it is much cheaper than the
        // model, and forbidden-checks only care about satisfying
        // candidates.
        bool satisfies = condHolds(cand, test.finalCond);
        if (stop_at_first && !satisfies)
            return true;
        ModelResult model = checkConsistent(cand, params);
        if (!model.consistent) {
            if (satisfies && result.forbiddingAxiom.empty()) {
                // Remember why the first satisfying candidate was
                // rejected: the forbidding explanation if no witness
                // ever turns up.
                result.forbiddingAxiom = model.failedAxiom;
                if (model.cycle)
                    result.forbiddingCycle = *model.cycle;
            }
            return true;
        }
        ++result.consistent;
        if (satisfies) {
            ++result.witnesses;
            result.observable = true;
            if (capture_witness && !result.witness)
                result.witness = cand;
            if (stop_at_first)
                return false;
        }
        return true;
    });
    result.observable = result.witnesses > 0;
    return result;
}

} // namespace rex
