#include "axiomatic/checker.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "axiomatic/enumerate.hh"
#include "base/logging.hh"
#include "catc/cache.hh"
#include "catc/exec.hh"
#include "engine/crashctx.hh"
#include "engine/governor.hh"
#include "engine/pool.hh"
#include "engine/remote.hh"

namespace rex {

bool
condHolds(const CandidateExecution &cand, const Condition &cond)
{
    for (const CondAtom &atom : cond.atoms) {
        switch (atom.kind) {
          case CondAtom::Kind::Register: {
            std::size_t tid = static_cast<std::size_t>(atom.tid);
            if (tid >= cand.finalRegs.size())
                return false;
            if (cand.finalRegs[tid][atom.reg] != atom.value)
                return false;
            break;
          }
          case CondAtom::Kind::Memory:
            if (cand.finalMemValue(atom.loc) != atom.value)
                return false;
            break;
        }
    }
    return true;
}

namespace {

/**
 * Folds staged candidates into a CheckResult.
 *
 * One accumulator per (serial run | shard); the per-combination
 * skeleton (or compiled-program fold) is cached lazily so verdict
 * checks that never reach the model (stop_at_first with a
 * non-satisfying candidate, or pre-filter rejection) pay nothing for
 * it.
 */
struct StagedAccumulator {
    const LitmusTest &test;
    const ModelParams &params;
    bool stopAtFirst;
    bool captureWitness;
    engine::Governor *governor;  //!< may be null (unlimited)
    /** Compiled model's shared fold plan; null falls back to
     *  checkConsistent(). The caller keeps it alive for the whole
     *  check. */
    const catc::FoldPlan *plan;

    CheckResult result;

    std::optional<SkeletonRelations> skeleton;
    std::uint64_t skeletonCombo = 0;
    std::optional<catc::FoldedProgram> folded;
    std::uint64_t foldedCombo = 0;

    /** Set when the last visited candidate was admitted and counted
     *  but its model run aborted on a tripped token — its verdict
     *  contribution is unresolved. */
    bool abortedPending = false;
    std::size_t abortedCU = 0;
    std::size_t abortedUnknown = 0;

    /**
     * Un-count the unresolved candidate. Only shard-range checks call
     * this (their resume cursor must point at that candidate so the
     * next piece re-visits it); whole-test paths keep the admitted
     * count, which existing consumers expect.
     */
    void
    rollbackAborted()
    {
        if (!abortedPending)
            return;
        --result.candidates;
        result.constrainedUnpredictable -= abortedCU;
        result.unknownSideEffects -= abortedUnknown;
        abortedPending = false;
    }

    /** Visit one candidate; false stops enumeration (witness found
     *  under stop_at_first, or the governor's budget tripped). */
    bool
    consume(CandidateExecution &cand,
            const CandidateEnumerator::StagedInfo &info)
    {
        // Budget admission first: a rejected candidate is not visited,
        // so the partial count on a ceiling trip is exact.
        if (governor && !governor->admit())
            return false;
        ++result.candidates;
        if (cand.constrainedUnpredictable)
            ++result.constrainedUnpredictable;
        if (cand.unknownSideEffects)
            ++result.unknownSideEffects;
        // Evaluate the condition first: it is much cheaper than the
        // model, and forbidden-checks only care about satisfying
        // candidates.
        const bool satisfies = condHolds(cand, test.finalCond);
        if (stopAtFirst && !satisfies)
            return true;
        if (!info.coherent) {
            // The pre-filter already knows the internal axiom rejects
            // this candidate; only the first satisfying rejection needs
            // the actual cycle for diagnostics.
            if (satisfies && result.forbiddingAxiom.empty()) {
                Relation internal =
                    cand.poLoc() | cand.fr() | cand.co | cand.rf;
                result.forbiddingAxiom = "internal";
                if (auto cycle = internal.findCycle())
                    result.forbiddingCycle = *cycle;
            }
            return true;
        }
        const engine::CancelToken *token =
            governor ? governor->token() : nullptr;
        ModelResult model;
        if (plan) {
            if (!folded) {
                folded.emplace(*plan, cand);
                foldedCombo = info.comboIndex;
            } else if (foldedCombo != info.comboIndex) {
                folded->refold(cand);
                foldedCombo = info.comboIndex;
            }
            // The fast mode reorders checks and skips cycle
            // extraction; only a failure that would actually be
            // reported (first satisfying rejection) needs the
            // program-order attributed run.
            if (satisfies && result.forbiddingAxiom.empty())
                model = folded->runAttributed(cand, token);
            else
                model = folded->runFast(cand, token);
        } else {
            if (!skeleton || skeletonCombo != info.comboIndex) {
                skeleton = computeSkeleton(cand, params);
                skeletonCombo = info.comboIndex;
            }
            model = checkConsistent(
                cand, params, *skeleton, /*internal_prechecked=*/true,
                token);
        }
        if (model.aborted) {
            // Token tripped between clauses: stop here. The candidate
            // is counted but unresolved; remember its flags so a range
            // check can roll it back and resume exactly at it.
            abortedPending = true;
            abortedCU = cand.constrainedUnpredictable ? 1 : 0;
            abortedUnknown = cand.unknownSideEffects ? 1 : 0;
            return false;
        }
        if (!model.consistent) {
            if (satisfies && result.forbiddingAxiom.empty()) {
                result.forbiddingAxiom = model.failedAxiom;
                if (model.cycle)
                    result.forbiddingCycle = *model.cycle;
            }
            return true;
        }
        ++result.consistent;
        if (satisfies) {
            ++result.witnesses;
            result.observable = true;
            if (captureWitness && !result.witness)
                result.witness = cand;  // deep copy: buffer is reused
            if (stopAtFirst)
                return false;
        }
        return true;
    }
};

/** Fold @p part into @p into, preserving enumeration-order "first"
 *  semantics for the forbidding diagnostic and the witness. */
void
mergeInto(CheckResult &into, CheckResult &&part)
{
    into.candidates += part.candidates;
    into.consistent += part.consistent;
    into.witnesses += part.witnesses;
    into.constrainedUnpredictable += part.constrainedUnpredictable;
    into.unknownSideEffects += part.unknownSideEffects;
    if (into.forbiddingAxiom.empty() && !part.forbiddingAxiom.empty()) {
        into.forbiddingAxiom = std::move(part.forbiddingAxiom);
        into.forbiddingCycle = std::move(part.forbiddingCycle);
    }
    if (!into.witness && part.witness)
        into.witness = std::move(*part.witness);
}

/** Serial staged check over an already-built enumerator. */
CheckResult
checkSerial(CandidateEnumerator &enumerator, const LitmusTest &test,
            const ModelParams &params, bool stop_at_first,
            bool capture_witness, engine::Governor *governor,
            const catc::FoldPlan *plan)
{
    engine::crashContextSetStage("enumerate");
    if (governor)
        governor->noteStage("enumerate");
    StagedAccumulator acc{test, params, stop_at_first, capture_witness,
                          governor, plan,
                          {}, std::nullopt, 0, std::nullopt, 0};
    enumerator.forEachStaged(
        [&](CandidateExecution &cand,
            const CandidateEnumerator::StagedInfo &info) {
            return acc.consume(cand, info);
        },
        governor ? governor->token() : nullptr);
    acc.result.observable = acc.result.witnesses > 0;
    return std::move(acc.result);
}

/** Witness assignments per shard (checker.hh: shared with the range
 *  API, whose plans must address the same shards by the same index). */
constexpr std::uint64_t kShardTarget = kCheckShardTarget;

/**
 * Parallel staged check: plan shards in global enumeration order, run
 * them on the pool, merge in order.
 *
 * Determinism, including under stop_at_first: let w be the smallest
 * index of a shard that found a witness. Shards publish their index
 * into `cutoff` with a fetch-min when they find a witness, and only
 * shards *strictly above* the cutoff abort; since cutoff only ever
 * decreases down to w, every shard below w runs to completion. The
 * merge consumes shards 0..w (the w-th stopped at its witness) and
 * drops the rest — exactly the candidates the serial path visits.
 */
CheckResult
checkSharded(CandidateEnumerator &enumerator, const LitmusTest &test,
             const ModelParams &params, bool stop_at_first,
             bool capture_witness, engine::ThreadPool &pool,
             engine::Governor *governor, const catc::FoldPlan *plan)
{
    engine::crashContextSetStage("plan");
    if (governor)
        governor->noteStage("plan");
    const std::vector<CandidateEnumerator::Shard> shards =
        enumerator.planShards(kShardTarget,
                              governor ? governor->token() : nullptr);
    if (shards.size() <= 1) {
        return checkSerial(enumerator, test, params, stop_at_first,
                           capture_witness, governor, plan);
    }

    struct ShardOutcome {
        CheckResult result;
        bool witnessed = false;  //!< stopped at a witness
        bool cancelled = false;  //!< aborted/skipped via the cutoff
    };
    // Outcome slots are allocated by the shard tasks themselves, not
    // eagerly: a CheckResult inlines a ~5 KB witness buffer, and a
    // large test plans 10^5+ shards, so a by-value vector would fault
    // in the better part of a gigabyte before any work starts — which
    // on a budget trip (zero shards run) dominated the wall clock. A
    // null slot after the drain means the shard was never submitted.
    std::vector<std::unique_ptr<ShardOutcome>> outcomes(shards.size());
    std::atomic<std::size_t> cutoff{shards.size()};

    auto fetchMinCutoff = [&cutoff](std::size_t value) {
        std::size_t seen = cutoff.load();
        while (value < seen &&
               !cutoff.compare_exchange_weak(seen, value)) {
        }
    };

    engine::crashContextSetStage("enumerate");
    if (governor)
        governor->noteStage("enumerate");
    std::vector<std::future<void>> futures;
    futures.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
        // A large test submits tens of thousands of shard tasks; once
        // the budget trips there is no point queueing the rest (their
        // startup poll would skip them anyway, but submission itself
        // is not free at this fan-out). Unsubmitted shards merge as
        // empty partial results.
        if (governor && governor->tripped())
            break;
        futures.push_back(pool.submit([&, i] {
            // Each task is the only writer of its slot, and the merge
            // only reads after the drain barrier below.
            outcomes[i] = std::make_unique<ShardOutcome>();
            ShardOutcome &out = *outcomes[i];
            if (stop_at_first && i > cutoff.load()) {
                out.cancelled = true;  // a lower shard already witnessed
                return;
            }
            StagedAccumulator acc{test, params, stop_at_first,
                                  capture_witness, governor, plan,
                                  {}, std::nullopt, 0, std::nullopt, 0};
            const bool completed = enumerator.visitShard(
                shards[i],
                [&](CandidateExecution &cand,
                    const CandidateEnumerator::StagedInfo &info) {
                    if (stop_at_first && i > cutoff.load()) {
                        out.cancelled = true;
                        return false;
                    }
                    return acc.consume(cand, info);
                },
                governor ? governor->token() : nullptr);
            // A shard stopped by a tripped budget is a partial shard,
            // not a witnessing one: the distinction keeps a budget stop
            // from being misread as an Allowed verdict.
            if (!completed && !out.cancelled &&
                    !(governor && governor->tripped())) {
                out.witnessed = true;
                if (stop_at_first)
                    fetchMinCutoff(i);
            }
            out.result = std::move(acc.result);
        }));
    }
    for (std::future<void> &future : futures)
        future.get();
    engine::crashContextSetStage("merge");
    if (governor)
        governor->noteStage("merge");

    CheckResult merged;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        if (!outcomes[i])
            break;  // unsubmitted suffix: the budget tripped first
        ShardOutcome &out = *outcomes[i];
        rexAssert(!out.cancelled || i > 0,
                  "shard 0 cancelled without a predecessor witness");
        if (out.cancelled)
            break;  // everything at or after this index is post-witness
        const bool witnessed = out.witnessed;
        mergeInto(merged, std::move(out.result));
        if (stop_at_first && witnessed)
            break;
    }
    merged.observable = merged.witnesses > 0;
    return merged;
}

/** Outcome of running one contiguous slice of a shard plan. */
struct RangeRun {
    CheckResult result;
    bool witnessed = false;
    bool completed = false;
    std::uint64_t nextShard = 0;   //!< valid when neither of the above
    std::uint64_t nextOffset = 0;
};

/**
 * Run shards [begin, end) serially, entering the first at @p offset
 * candidates past its start. Range checks are always stop_at_first and
 * witness-less (the verdict-serving configuration — anything else
 * would make resumed pieces diverge from uninterrupted runs).
 */
RangeRun
runRangeSerial(CandidateEnumerator &enumerator,
               const std::vector<CandidateEnumerator::Shard> &shards,
               std::uint64_t begin, std::uint64_t end,
               std::uint64_t offset, const LitmusTest &test,
               const ModelParams &params, engine::Governor *governor,
               const catc::FoldPlan *plan)
{
    RangeRun run;
    for (std::uint64_t i = begin; i < end; ++i) {
        const std::uint64_t startOff = i == begin ? offset : 0;
        if (governor && governor->tripped()) {
            run.nextShard = i;
            run.nextOffset = startOff;
            return run;
        }
        CandidateEnumerator::Shard shard = shards[i];
        rexAssert(startOff <= shard.end - shard.begin,
                  "continuation offset outside its shard");
        shard.begin += startOff;
        if (shard.begin == shard.end)
            continue;  // the cursor sat exactly on the shard boundary
        StagedAccumulator acc{test, params, /*stopAtFirst=*/true,
                              /*captureWitness=*/false, governor, plan,
                              {}, std::nullopt, 0, std::nullopt, 0};
        const bool completed = enumerator.visitShard(
            shard,
            [&](CandidateExecution &cand,
                const CandidateEnumerator::StagedInfo &info) {
                return acc.consume(cand, info);
            },
            governor ? governor->token() : nullptr);
        const bool witnessed = acc.result.witnesses > 0;
        if (!completed && !witnessed) {
            // The budget tripped inside the shard. Un-count an
            // admitted-but-unresolved candidate so the cursor points
            // at the first candidate the next piece must visit.
            acc.rollbackAborted();
            run.nextShard = i;
            run.nextOffset = startOff + acc.result.candidates;
            mergeInto(run.result, std::move(acc.result));
            return run;
        }
        mergeInto(run.result, std::move(acc.result));
        if (witnessed) {
            run.witnessed = true;
            return run;
        }
    }
    run.completed = true;
    run.nextShard = end;
    return run;
}

/**
 * Pool-parallel variant of runRangeSerial: the checkSharded() merge
 * discipline (in-order, witness fetch-min cutoff) extended with a
 * per-shard completion flag and resume cursor, so a budget trip yields
 * the longest fully-resolved prefix plus the exact cursor after it.
 */
RangeRun
runRangePooled(CandidateEnumerator &enumerator,
               const std::vector<CandidateEnumerator::Shard> &shards,
               std::uint64_t begin, std::uint64_t end,
               std::uint64_t offset, const LitmusTest &test,
               const ModelParams &params, engine::ThreadPool &pool,
               engine::Governor *governor, const catc::FoldPlan *plan)
{
    const std::size_t count = static_cast<std::size_t>(end - begin);
    struct Slot {
        CheckResult result;
        bool witnessed = false;
        bool cancelled = false;
        bool completed = false;
        std::uint64_t nextOffset = 0;  //!< valid when partial
    };
    // Lazily allocated for the same reason as checkSharded's outcome
    // slots: a null slot after the drain means "never submitted".
    std::vector<std::unique_ptr<Slot>> slots(count);
    std::atomic<std::size_t> cutoff{count};
    auto fetchMinCutoff = [&cutoff](std::size_t value) {
        std::size_t seen = cutoff.load();
        while (value < seen &&
               !cutoff.compare_exchange_weak(seen, value)) {
        }
    };

    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (governor && governor->tripped())
            break;
        futures.push_back(pool.submit([&, i] {
            slots[i] = std::make_unique<Slot>();
            Slot &slot = *slots[i];
            if (i > cutoff.load()) {
                slot.cancelled = true;
                return;
            }
            const std::uint64_t startOff = i == 0 ? offset : 0;
            CandidateEnumerator::Shard shard = shards[begin + i];
            rexAssert(startOff <= shard.end - shard.begin,
                      "continuation offset outside its shard");
            shard.begin += startOff;
            if (shard.begin == shard.end) {
                slot.completed = true;
                return;
            }
            StagedAccumulator acc{test, params, /*stopAtFirst=*/true,
                                  /*captureWitness=*/false, governor,
                                  plan,
                                  {}, std::nullopt, 0, std::nullopt, 0};
            const bool completed = enumerator.visitShard(
                shard,
                [&](CandidateExecution &cand,
                    const CandidateEnumerator::StagedInfo &info) {
                    if (i > cutoff.load()) {
                        slot.cancelled = true;
                        return false;
                    }
                    return acc.consume(cand, info);
                },
                governor ? governor->token() : nullptr);
            slot.completed = completed;
            slot.witnessed = acc.result.witnesses > 0;
            if (slot.witnessed)
                fetchMinCutoff(i);
            if (!completed && !slot.witnessed && !slot.cancelled) {
                acc.rollbackAborted();
                slot.nextOffset = startOff + acc.result.candidates;
            }
            slot.result = std::move(acc.result);
        }));
    }
    for (std::future<void> &future : futures)
        future.get();

    RangeRun run;
    std::size_t merged = 0;
    for (; merged < count; ++merged) {
        if (!slots[merged])
            break;  // unsubmitted suffix: the budget tripped first
        Slot &slot = *slots[merged];
        rexAssert(!slot.cancelled || merged > 0,
                  "first range shard cancelled without a witness below");
        if (slot.cancelled)
            break;
        const bool witnessed = slot.witnessed;
        const bool completed = slot.completed;
        const std::uint64_t nextOffset = slot.nextOffset;
        mergeInto(run.result, std::move(slot.result));
        if (witnessed) {
            run.witnessed = true;
            return run;
        }
        if (!completed) {
            run.nextShard = begin + merged;
            run.nextOffset = nextOffset;
            return run;
        }
    }
    if (merged == count) {
        run.completed = true;
        run.nextShard = end;
        return run;
    }
    // Unsubmitted or cancelled suffix without a witness at or below
    // it: resume at the first unmerged shard.
    run.nextShard = begin + merged;
    run.nextOffset = merged == 0 ? offset : 0;
    return run;
}

bool
envFlag(const char *name)
{
    const char *value = std::getenv(name);
    return value && value[0] == '1' && value[1] == '\0';
}

} // namespace

CheckResult
checkTest(const LitmusTest &test, const ModelParams &params,
          bool stop_at_first, bool capture_witness,
          engine::ThreadPool *pool, engine::Governor *governor)
{
    // The naive reference path exists for parity testing and does not
    // speak the governor protocol; budgeted checks always run staged.
    if (!governor && envFlag("REX_NAIVE_ENUM"))
        return checkTestNaive(test, params, stop_at_first, capture_witness);
    // Compile (or fetch from the process-wide cache) the variant's
    // program and its fold plan once per check; every shard folds the
    // same plan. The shared_ptr outlives the shard tasks below.
    const std::shared_ptr<const catc::FoldPlan> plan =
        catc::planForCheck(params);
    engine::crashContextSetStage("traces");
    if (governor)
        governor->noteStage("traces");
    CandidateEnumerator enumerator(test,
                                   governor ? governor->token() : nullptr);
    CheckResult result;
    if (pool && pool->threadCount() > 1 &&
            !engine::ThreadPool::onWorkerThread()) {
        result = checkSharded(enumerator, test, params, stop_at_first,
                              capture_witness, *pool, governor,
                              plan.get());
    } else {
        result = checkSerial(enumerator, test, params, stop_at_first,
                             capture_witness, governor, plan.get());
    }
    // A witness found under stop_at_first soundly settles Allowed even
    // when the budget tripped while other shards were still running;
    // everything else stopped by a trip is a partial (unsettled) result.
    if (governor && governor->tripped() &&
            !(stop_at_first && result.witnesses > 0)) {
        result.exhaustedAxis =
            engine::budgetAxisName(governor->trippedAxis());
    }
    return result;
}

ShardRangeOutcome
checkShardRange(const LitmusTest &test, const ModelParams &params,
                const ShardRangeSpec &spec, engine::ThreadPool *pool,
                engine::Governor *governor,
                engine::RangeDispatcher *remote)
{
    ShardRangeOutcome out;
    const std::shared_ptr<const catc::FoldPlan> plan =
        catc::planForCheck(params);
    engine::crashContextSetStage("traces");
    if (governor)
        governor->noteStage("traces");
    CandidateEnumerator enumerator(test,
                                   governor ? governor->token() : nullptr);
    if (governor && governor->tripped()) {
        // Trace construction itself outran the budget: no plan exists,
        // so there is no cursor to hand back (out.planned stays false
        // and a caller holding an older cursor keeps it unchanged).
        out.result.exhaustedAxis =
            engine::budgetAxisName(governor->trippedAxis());
        return out;
    }
    engine::crashContextSetStage("plan");
    if (governor)
        governor->noteStage("plan");
    // Unlike checkSharded, the plan ignores the cancel token: the
    // continuation format addresses shards by index into the complete
    // deterministic plan, so a trip must never truncate it.
    const std::vector<CandidateEnumerator::Shard> shards =
        enumerator.planShards(spec.planTarget, nullptr);
    out.planned = true;
    out.planSize = shards.size();
    const std::uint64_t end =
        std::min<std::uint64_t>(spec.shardEnd, shards.size());
    const std::uint64_t begin =
        std::min<std::uint64_t>(spec.shardBegin, end);
    if (begin >= end) {
        out.completed = true;
        out.nextShard = end;
        return out;
    }

    engine::crashContextSetStage("enumerate");
    if (governor)
        governor->noteStage("enumerate");

    auto runLocal = [&](std::uint64_t b, std::uint64_t e,
                        std::uint64_t off) -> RangeRun {
        if (b >= e) {
            RangeRun empty;
            empty.completed = true;
            empty.nextShard = e;
            return empty;
        }
        if (pool && pool->threadCount() > 1 &&
                !engine::ThreadPool::onWorkerThread() && e - b > 1) {
            return runRangePooled(enumerator, shards, b, e, off, test,
                                  params, *pool, governor, plan.get());
        }
        return runRangeSerial(enumerator, shards, b, e, off, test,
                              params, governor, plan.get());
    };

    RangeRun total;
    if (remote && !test.sourceText.empty() &&
            end - begin >= remote->minShardsToDistribute() &&
            remote->available()) {
        const std::string variant = params.name();
        engine::RangeJobContext ctx;
        ctx.testSource = &test.sourceText;
        ctx.variantName = &variant;
        ctx.planTarget = spec.planTarget;
        ctx.planSize = shards.size();
        ctx.fingerprint = spec.jobFingerprint;
        ctx.deadlineMs = spec.peerDeadlineMs;
        ctx.cancel = governor ? governor->token() : nullptr;
        const std::uint64_t per =
            std::max<std::uint64_t>(1, remote->shardsPerTask());
        std::vector<engine::RangeTask> tasks;
        tasks.reserve(
            static_cast<std::size_t>((end - begin + per - 1) / per));
        for (std::uint64_t b = begin; b < end; b += per) {
            engine::RangeTask task;
            task.shardBegin = b;
            task.shardEnd = std::min(end, b + per);
            task.inShardOffset = b == begin ? spec.inShardOffset : 0;
            tasks.push_back(task);
        }
        remote->runTasks(ctx, tasks);
        // Deterministic in-order merge with local top-up: a task no
        // peer answered (or answered only partially under its own
        // budget) is finished locally before merging past it, so a
        // failed dispatch degrades to local compute and never loses a
        // shard. Duplicate answers were already dropped per task slot
        // by the dispatcher, so nothing can merge twice.
        bool settled = false;
        for (const engine::RangeTask &task : tasks) {
            std::uint64_t cursorShard = task.shardBegin;
            std::uint64_t cursorOffset = task.inShardOffset;
            if (task.filled) {
                const engine::RangePartial &part = task.result;
                total.result.candidates += part.candidates;
                total.result.consistent += part.consistent;
                total.result.witnesses += part.witnesses;
                total.result.constrainedUnpredictable +=
                    part.constrainedUnpredictable;
                total.result.unknownSideEffects +=
                    part.unknownSideEffects;
                if (total.result.forbiddingAxiom.empty() &&
                        !part.forbiddingAxiom.empty()) {
                    total.result.forbiddingAxiom = part.forbiddingAxiom;
                    total.result.forbiddingCycle.assign(
                        part.forbiddingCycle.begin(),
                        part.forbiddingCycle.end());
                }
                if (part.witnessed) {
                    total.witnessed = true;
                    settled = true;
                    break;
                }
                if (part.completed)
                    continue;
                cursorShard = part.nextShard;
                cursorOffset = part.nextOffset;
            }
            if (governor && governor->tripped()) {
                total.nextShard = cursorShard;
                total.nextOffset = cursorOffset;
                settled = true;
                break;
            }
            RangeRun fill =
                runLocal(cursorShard, task.shardEnd, cursorOffset);
            mergeInto(total.result, std::move(fill.result));
            if (fill.witnessed) {
                total.witnessed = true;
                settled = true;
                break;
            }
            if (!fill.completed) {
                total.nextShard = fill.nextShard;
                total.nextOffset = fill.nextOffset;
                settled = true;
                break;
            }
        }
        if (!settled) {
            total.completed = true;
            total.nextShard = end;
        }
    } else {
        total = runLocal(begin, end, spec.inShardOffset);
    }

    engine::crashContextSetStage("merge");
    if (governor)
        governor->noteStage("merge");
    out.result = std::move(total.result);
    out.witnessed = total.witnessed;
    out.completed = total.completed;
    out.nextShard = total.nextShard;
    out.nextOffset = total.nextOffset;
    out.result.observable = out.result.witnesses > 0;
    if (!out.witnessed && !out.completed) {
        out.result.exhaustedAxis = governor
            ? engine::budgetAxisName(governor->trippedAxis())
            : engine::budgetAxisName(engine::BudgetAxis::Cancelled);
    }
    return out;
}

CheckResult
checkTestNaive(const LitmusTest &test, const ModelParams &params,
               bool stop_at_first, bool capture_witness)
{
    CheckResult result;
    CandidateEnumerator enumerator(test);
    enumerator.forEachNaive([&](CandidateExecution &cand) {
        ++result.candidates;
        if (cand.constrainedUnpredictable)
            ++result.constrainedUnpredictable;
        if (cand.unknownSideEffects)
            ++result.unknownSideEffects;
        bool satisfies = condHolds(cand, test.finalCond);
        if (stop_at_first && !satisfies)
            return true;
        ModelResult model = checkConsistent(cand, params);
        if (!model.consistent) {
            if (satisfies && result.forbiddingAxiom.empty()) {
                result.forbiddingAxiom = model.failedAxiom;
                if (model.cycle)
                    result.forbiddingCycle = *model.cycle;
            }
            return true;
        }
        ++result.consistent;
        if (satisfies) {
            ++result.witnesses;
            result.observable = true;
            if (capture_witness && !result.witness)
                result.witness = cand;
            if (stop_at_first)
                return false;
        }
        return true;
    });
    result.observable = result.witnesses > 0;
    return result;
}

} // namespace rex
