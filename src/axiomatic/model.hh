/**
 * @file
 * The Arm-A exceptions axiomatic model (Figure 9), implemented natively.
 *
 * This is a faithful transcription of the paper's cat model into relation
 * algebra, with two documented additions:
 *  - the FEAT_ETS2 clause (§3.3): `po; [TF]` is ordered-before, giving
 *    translation faults a barrier from program-order-earlier instances;
 *  - the §7.5 GIC draft clauses: the `interrupt` witness edge is in ob,
 *    and DSBs order GIC effect events (which are iio-after their register
 *    accesses) with program-order.
 *
 * The same model ships as `models/aarch64-exceptions.cat` for the cat
 * interpreter; tests assert that both implementations agree on every
 * built-in litmus test.
 */

#ifndef REX_AXIOMATIC_MODEL_HH
#define REX_AXIOMATIC_MODEL_HH

#include <optional>
#include <string>
#include <vector>

#include "axiomatic/params.hh"
#include "events/candidate.hh"

namespace rex {

/** Outcome of checking one candidate against the model. */
struct ModelResult {
    /** True when every axiom holds. */
    bool consistent = true;

    /** Name of the first failed axiom ("internal", "external",
     *  "atomic"), empty when consistent. */
    std::string failedAxiom;

    /** The cycle witnessing an acyclicity/irreflexivity failure. */
    std::optional<std::vector<EventId>> cycle;
};

/** All derived relations of the model, exposed for tests/diagnostics. */
struct ModelRelations {
    Relation speculative;
    EventSet cse;
    Relation obs;
    Relation dob;
    Relation aob;
    Relation bob;
    Relation ctxob;
    Relation asyncob;
    Relation ets2;
    Relation gicob;
    Relation ob;
};

/** Compute all derived relations for @p candidate under @p params. */
ModelRelations computeRelations(const CandidateExecution &candidate,
                                const ModelParams &params);

/** Check the three axioms of the model. */
ModelResult checkConsistent(const CandidateExecution &candidate,
                            const ModelParams &params);

} // namespace rex

#endif // REX_AXIOMATIC_MODEL_HH
