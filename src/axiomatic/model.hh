/**
 * @file
 * The Arm-A exceptions axiomatic model (Figure 9), implemented natively.
 *
 * This is a faithful transcription of the paper's cat model into relation
 * algebra, with two documented additions:
 *  - the FEAT_ETS2 clause (§3.3): `po; [TF]` is ordered-before, giving
 *    translation faults a barrier from program-order-earlier instances;
 *  - the §7.5 GIC draft clauses: the `interrupt` witness edge is in ob,
 *    and DSBs order GIC effect events (which are iio-after their register
 *    accesses) with program-order.
 *
 * The same model ships as `models/aarch64-exceptions.cat` for the cat
 * interpreter; tests assert that both implementations agree on every
 * built-in litmus test.
 */

#ifndef REX_AXIOMATIC_MODEL_HH
#define REX_AXIOMATIC_MODEL_HH

#include <optional>
#include <string>
#include <vector>

#include "axiomatic/params.hh"
#include "events/candidate.hh"

namespace rex {

namespace engine { class CancelToken; }

/** Outcome of checking one candidate against the model. */
struct ModelResult {
    /** True when every axiom holds. */
    bool consistent = true;

    /** Name of the first failed axiom ("internal", "external",
     *  "atomic"), empty when consistent. */
    std::string failedAxiom;

    /** The cycle witnessing an acyclicity/irreflexivity failure. */
    std::optional<std::vector<EventId>> cycle;

    /** True when a CancelToken stopped the check between clauses: the
     *  other fields say nothing about this candidate. */
    bool aborted = false;
};

/** All derived relations of the model, exposed for tests/diagnostics. */
struct ModelRelations {
    Relation speculative;
    EventSet cse;
    Relation obs;
    Relation dob;
    Relation aob;
    Relation bob;
    Relation ctxob;
    Relation asyncob;
    Relation ets2;
    Relation gicob;
    Relation ob;
};

/**
 * The witness-independent slice of the model's relations.
 *
 * Every relation here depends only on the thread-trace skeleton of a
 * candidate (events, po, iio, addr/data/ctrl, rmw, event kinds) — not
 * on the existential witnesses rf, co, or interrupt. Within one trace
 * combination the enumerator varies only the witnesses, so this slice
 * is computed once per combination and reused for every rf × co ×
 * interrupt assignment (see "Staged enumeration" in DESIGN.md).
 */
struct SkeletonRelations {
    /** po restricted to same-location accesses (internal axiom). */
    Relation poLoc;

    /** Same-thread pairs: splits rf/fr/co into internal/external. */
    Relation internalPairs;

    /** addr | data — source of dob's rfi tail. */
    Relation addrData;

    /** range(rmw) — domain of aob's rfi tail (`[range(rmw)]; rfi`). */
    EventSet rmwRange;

    /** A | Q — range of aob's rfi tail (`rfi; [A|Q]`). */
    EventSet acq;

    /** (* might-be speculatively executed *) */
    Relation speculative;

    /** (* context-sync-events *) */
    EventSet cse;

    // The individual witness-independent clauses, kept for
    // computeRelations() and diagnostics.
    Relation dobStatic;   //!< addr | data | spec;[W] | spec;[ISB]
    Relation bob;
    Relation ctxob;
    Relation asyncob;
    Relation ets2;
    Relation gicobStatic; //!< the dsb/iio clauses (no interrupt witness)

    /** Union of every witness-independent ob clause (incl. rmw). */
    Relation staticOb;

    /** params.gicExtension: include the interrupt witness in ob. */
    bool gic = false;
};

/** Compute the witness-independent relations for @p candidate. */
SkeletonRelations computeSkeleton(const CandidateExecution &candidate,
                                  const ModelParams &params);

/** Compute all derived relations for @p candidate under @p params. */
ModelRelations computeRelations(const CandidateExecution &candidate,
                                const ModelParams &params);

/** Check the three axioms of the model. */
ModelResult checkConsistent(const CandidateExecution &candidate,
                            const ModelParams &params);

/**
 * Check the axioms reusing the precomputed witness-independent slice:
 * only obs, the rfi tails of dob/aob, and gicob's witness edge are
 * rebuilt before the ob closure. Produces exactly the same ModelResult
 * (axiom and cycle) as the two-argument overload.
 * @param internal_prechecked skip the internal (SC-per-location) axiom;
 *        the caller has already established it, e.g. via the
 *        enumerator's coherence pre-filter.
 * @param cancel when non-null, polled between the staged clauses (the
 *        ob closure is the expensive step); a tripped token returns a
 *        result with aborted = true and says nothing about the
 *        candidate.
 */
ModelResult checkConsistent(const CandidateExecution &candidate,
                            const ModelParams &params,
                            const SkeletonRelations &skeleton,
                            bool internal_prechecked = false,
                            const engine::CancelToken *cancel = nullptr);

} // namespace rex

#endif // REX_AXIOMATIC_MODEL_HH
