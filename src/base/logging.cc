#include "base/logging.hh"

#include <iostream>

namespace rex {

namespace {

LogLevel g_threshold = LogLevel::Warn;

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug: ";
      case LogLevel::Info:  return "info: ";
      case LogLevel::Warn:  return "warn: ";
      case LogLevel::Error: return "error: ";
    }
    return "?: ";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_threshold))
        return;
    std::cerr << levelPrefix(level) << msg << "\n";
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Error, "panic: " + msg);
    throw PanicError(msg);
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

} // namespace rex
