/**
 * @file
 * Process-wide approximate heap accounting for budget enforcement.
 *
 * A single relaxed atomic byte counter, bumped by the few allocation
 * sites that dominate candidate-checking memory: WordBuf's heap
 * fallback (the storage behind every Relation/EventSet once a universe
 * outgrows the inline buffer — candidate relations, skeleton clauses,
 * closure temporaries all live there). Litmus-sized tests never leave
 * the inline path, so the counter stays at zero and the hooks cost
 * nothing; the counter only moves for the large universes that are
 * exactly what a memory budget exists to bound.
 *
 * The count is deliberately approximate: it tracks the dominant
 * bitset storage, not every std::string or vector. The resource
 * governor (engine/governor.hh) compares the counter against a
 * baseline taken at job start, so concurrent jobs perturb each other's
 * readings — a budget axis documented as approximate, never a ledger.
 */

#ifndef REX_BASE_MEMTRACK_HH
#define REX_BASE_MEMTRACK_HH

#include <atomic>
#include <cstdint>

namespace rex::memtrack {

namespace detail {
inline std::atomic<std::uint64_t> &
counter()
{
    static std::atomic<std::uint64_t> bytes{0};
    return bytes;
}
} // namespace detail

/** Record @p bytes of tracked heap allocation. */
inline void
add(std::uint64_t bytes)
{
    detail::counter().fetch_add(bytes, std::memory_order_relaxed);
}

/** Record @p bytes of tracked heap release. */
inline void
sub(std::uint64_t bytes)
{
    detail::counter().fetch_sub(bytes, std::memory_order_relaxed);
}

/** Tracked heap bytes currently live (approximate, process-wide). */
inline std::uint64_t
currentBytes()
{
    return detail::counter().load(std::memory_order_relaxed);
}

} // namespace rex::memtrack

#endif // REX_BASE_MEMTRACK_HH
