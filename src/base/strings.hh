/**
 * @file
 * Small string utilities shared by the assembler, litmus parser, and cat
 * interpreter front-ends.
 */

#ifndef REX_BASE_STRINGS_HH
#define REX_BASE_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rex {

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split @p text into non-empty whitespace-separated tokens. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Uppercase an ASCII string. */
std::string toUpper(std::string_view text);

/** Lowercase an ASCII string. */
std::string toLower(std::string_view text);

/** True when @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True when @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/**
 * Parse an integer literal in litmus/assembly syntax: decimal, 0x hex,
 * or 0b binary, with optional leading '-'.
 * @return true on success, storing the value in @p out.
 */
bool parseInteger(std::string_view text, std::int64_t &out);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rex

#endif // REX_BASE_STRINGS_HH
