#include "base/strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rex {

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
            text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
            text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace(static_cast<unsigned char>(
                text[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(
                text[i]))) {
            ++i;
        }
        if (i > start)
            tokens.emplace_back(text.substr(start, i - start));
    }
    return tokens;
}

std::string
toUpper(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
        text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
        text.substr(text.size() - suffix.size()) == suffix;
}

bool
parseInteger(std::string_view text, std::int64_t &out)
{
    if (text.empty())
        return false;
    bool negative = false;
    std::size_t i = 0;
    if (text[0] == '-') {
        negative = true;
        i = 1;
    }
    if (i >= text.size())
        return false;

    int base = 10;
    if (text.size() - i > 2 && text[i] == '0' &&
            (text[i + 1] == 'x' || text[i + 1] == 'X')) {
        base = 16;
        i += 2;
    } else if (text.size() - i > 2 && text[i] == '0' &&
            (text[i + 1] == 'b' || text[i + 1] == 'B')) {
        base = 2;
        i += 2;
    }

    std::int64_t value = 0;
    bool any = false;
    for (; i < text.size(); ++i) {
        char c = text[i];
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else if (c >= 'A' && c <= 'F')
            digit = 10 + (c - 'A');
        else
            return false;
        if (digit >= base)
            return false;
        value = value * base + digit;
        any = true;
    }
    if (!any)
        return false;
    out = negative ? -value : value;
    return true;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return {};
    }
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

} // namespace rex
