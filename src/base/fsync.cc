#include "base/fsync.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "base/logging.hh"

namespace rex {

namespace {

void
warnOnce(const char *what, const std::string &target)
{
    static bool warned = false;
    if (warned)
        return;
    warned = true;
    warn(std::string(what) + " '" + target + "': " +
         std::strerror(errno) + " (durability degraded; not repeated)");
}

} // namespace

bool
fsyncFd(int fd)
{
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    return rc == 0;
}

bool
fsyncPath(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        warnOnce("fsync: cannot open", path);
        return false;
    }
    const bool ok = fsyncFd(fd);
    if (!ok)
        warnOnce("fsync: cannot sync", path);
    ::close(fd);
    return ok;
}

bool
fsyncParentDir(const std::string &path)
{
    std::string dir;
    const std::size_t slash = path.find_last_of('/');
    dir = slash == std::string::npos ? "." : path.substr(0, slash);
    if (dir.empty())
        dir = "/";
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
        warnOnce("fsync: cannot open directory", dir);
        return false;
    }
    const bool ok = fsyncFd(fd);
    if (!ok)
        warnOnce("fsync: cannot sync directory", dir);
    ::close(fd);
    return ok;
}

} // namespace rex
