/**
 * @file
 * Durability helpers for the atomic-rename write pattern.
 *
 * Writing tmp + rename makes a file replacement atomic with respect to
 * readers, but not durable: after a host crash the directory entry for
 * the rename — and even the tmp file's data — may be lost unless both
 * the file and its parent directory were fsync'd. Every checkpoint /
 * cache writer in this codebase that believes "rename returned, the
 * entry is committed" must call fsyncParentDir() after the rename (and
 * fsync the data first), or a crash can silently roll the entry back.
 */

#ifndef REX_BASE_FSYNC_HH
#define REX_BASE_FSYNC_HH

#include <string>

namespace rex {

/** fsync an open descriptor; false (with a warning, once per process
 *  per call site category) on failure. */
bool fsyncFd(int fd);

/** Open @p path read-only, fsync it, close. For writers that only
 *  have a path (e.g. past an ofstream's close). */
bool fsyncPath(const std::string &path);

/**
 * fsync the directory containing @p path, making a just-renamed (or
 * just-created) entry durable. Best-effort: failures warn and return
 * false but never throw — durability is degraded, not correctness.
 */
bool fsyncParentDir(const std::string &path);

} // namespace rex

#endif // REX_BASE_FSYNC_HH
