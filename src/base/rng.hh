/**
 * @file
 * Small deterministic RNG (xorshift64*), shared by the litmus
 * synthesizer (src/gen) and the fuzz corpus.
 *
 * Determinism is load-bearing everywhere this is used: a seed fully
 * determines the stream, so a generated test is reproducible from its
 * seed alone (the hammer's checkpoints store seeds, not test sources)
 * and byte-identical across platforms and job counts. Do not change
 * the recurrence without bumping gen::kGeneratorRevision.
 */

#ifndef REX_BASE_RNG_HH
#define REX_BASE_RNG_HH

#include <cstdint>

namespace rex {

/** Small deterministic RNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : _state(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        _state ^= _state >> 12;
        _state ^= _state << 25;
        _state ^= _state >> 27;
        return _state * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform in [0, bound). */
    std::uint64_t pick(std::uint64_t bound) { return next() % bound; }

    bool chance(unsigned percent) { return pick(100) < percent; }

  private:
    std::uint64_t _state;
};

} // namespace rex

#endif // REX_BASE_RNG_HH
