/**
 * @file
 * Logging and error-handling primitives for the rex library.
 *
 * Follows the gem5 discipline: panic() for internal invariant violations
 * (library bugs), fatal() for user errors (bad test files, bad model
 * parameters), warn()/inform() for diagnostics that do not stop execution.
 */

#ifndef REX_BASE_LOGGING_HH
#define REX_BASE_LOGGING_HH

#include <cstdarg>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rex {

/** Severity of a log message. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global minimum severity that is actually emitted.
 * Defaults to Warn so that library use is quiet; tools raise it.
 */
LogLevel logThreshold();

/** Set the global log threshold. */
void setLogThreshold(LogLevel level);

/** Emit a log line (with severity prefix) if above the threshold. */
void logMessage(LogLevel level, const std::string &msg);

/** Error thrown by fatal(): the user asked for something unsatisfiable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Error thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

/**
 * Report an unrecoverable user-level error (bad input, bad configuration).
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal library bug (violated invariant).
 * @throws PanicError always.
 */
[[noreturn]] void panic(const std::string &msg);

/** Emit a warning (does not stop execution). */
void warn(const std::string &msg);

/** Emit an informational message (does not stop execution). */
void inform(const std::string &msg);

/**
 * Assert an internal invariant, panicking with @p msg when it fails.
 * Kept as a function (not a macro) so it is always evaluated.
 */
inline void
rexAssert(bool condition, const std::string &msg)
{
    if (!condition)
        panic(msg);
}

} // namespace rex

#endif // REX_BASE_LOGGING_HH
