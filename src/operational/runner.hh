/**
 * @file
 * Randomised running of the operational machine: the substitute for the
 * paper's hardware test harness. Produces observation-frequency rows
 * like the figures' hw-refs columns.
 */

#ifndef REX_OPERATIONAL_RUNNER_HH
#define REX_OPERATIONAL_RUNNER_HH

#include <cstdint>
#include <map>
#include <string>

#include "litmus/litmus.hh"
#include "operational/machine.hh"
#include "operational/profile.hh"

namespace rex::op {

/** Result of a batch of randomised runs. */
struct RunStats {
    std::uint64_t runs = 0;

    /** Runs whose final state satisfied the test's condition. */
    std::uint64_t observed = 0;

    /** Histogram over outcome keys. */
    std::map<std::string, std::uint64_t> histogram;

    /** "162/33000"-style cell for tables. */
    std::string cell() const;
};

/** Runs litmus tests on the operational machine with a random scheduler. */
class Runner
{
  public:
    /**
     * @param profile the simulated core
     * @param seed    RNG seed (runs are deterministic given a seed)
     */
    explicit Runner(const CoreProfile &profile, std::uint64_t seed = 42);

    /** Run @p test @p runs times; collect outcome statistics. */
    RunStats run(const LitmusTest &test, std::uint64_t runs);

  private:
    CoreProfile _profile;
    std::uint64_t _state;

    std::uint64_t nextRandom();
};

} // namespace rex::op

#endif // REX_OPERATIONAL_RUNNER_HH
