#include "operational/machine.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/strings.hh"
#include "sem/exception.hh"

namespace rex::op {

using isa::Instruction;
using isa::Opcode;
using isa::Sysreg;

namespace {

std::size_t
sysregIndex(Sysreg reg)
{
    return static_cast<std::size_t>(reg);
}

bool
barrierOrdersLoads(BarrierKind kind)
{
    switch (kind) {
      case BarrierKind::DmbLd:
      case BarrierKind::DmbSy:
      case BarrierKind::DsbLd:
      case BarrierKind::DsbSy:
        return true;
      default:
        return false;
    }
}

bool
barrierOrdersStores(BarrierKind kind)
{
    switch (kind) {
      case BarrierKind::DmbSt:
      case BarrierKind::DmbSy:
      case BarrierKind::DsbSt:
      case BarrierKind::DsbSy:
        return true;
      default:
        return false;
    }
}

bool
isDsb(BarrierKind kind)
{
    return kind == BarrierKind::DsbLd || kind == BarrierKind::DsbSt ||
        kind == BarrierKind::DsbSy;
}

} // namespace

std::string
Outcome::key() const
{
    std::string out;
    for (const auto &[name, value] : values) {
        out += name;
        out += '=';
        out += std::to_string(value);
        out += ';';
    }
    return out;
}

bool
Outcome::satisfiesCondition(const LitmusTest &test) const
{
    for (const CondAtom &atom : test.finalCond.atoms) {
        std::string name;
        if (atom.kind == CondAtom::Kind::Register) {
            name = std::to_string(atom.tid) + ":" +
                isa::regName(atom.reg);
        } else {
            name = "*" + test.locations[atom.loc];
        }
        auto it = values.find(name);
        if (it == values.end() || it->second != atom.value)
            return false;
    }
    return true;
}

gic::CpuInterface
Machine::cpuInterface(int tid) const
{
    // Safe: the interface only mutates the GIC, never itself; the const
    // cast localises the machine's logically-mutable GIC access.
    auto *self = const_cast<Machine *>(this);
    return gic::CpuInterface(self->_gic, static_cast<std::uint32_t>(tid),
                             _test.threads[static_cast<std::size_t>(
                                 tid)].eoiMode1);
}

std::string
Machine::Transition::toString() const
{
    const char *kind_name = "?";
    switch (kind) {
      case Kind::Issue:           kind_name = "issue"; break;
      case Kind::Satisfy:         kind_name = "satisfy"; break;
      case Kind::Commit:          kind_name = "commit"; break;
      case Kind::TakeInterrupt:   kind_name = "take-interrupt"; break;
      case Kind::ForgoInterrupt:  kind_name = "forgo-interrupt"; break;
    }
    return format("T%d:%s(%d)", thread, kind_name, opIndex);
}

Machine::Machine(const LitmusTest &test, const CoreProfile &profile)
    : _test(test), _profile(profile), _gic(test.threads.size())
{
    reset();
}

void
Machine::reset()
{
    _threads.assign(_test.threads.size(), ThreadState{});
    _memory = _test.initValues;
    _memVersion.assign(_test.locations.size(), 0);
    _gic = gic::Gic(_test.threads.size());
    for (std::size_t t = 0; t < _test.threads.size(); ++t) {
        ThreadState &thread = _threads[t];
        thread.regs = _test.threads[t].initRegs;
        thread.regSource.fill(-1);
        thread.masked = _test.threads[t].initialMasked;
    }
}

bool
Machine::regReady(const ThreadState &thread, isa::RegId reg) const
{
    return thread.regSource[reg] < 0;
}

std::size_t
Machine::inFlightCount(const ThreadState &thread) const
{
    std::size_t n = 0;
    for (const InFlightOp &op : thread.ops) {
        if (!op.done)
            ++n;
    }
    return n;
}

bool
Machine::atInterruptPoint(int tid) const
{
    const ThreadState &thread = _threads[tid];
    return !thread.inHandler;
}

bool
Machine::interruptDeliverable(int tid) const
{
    const ThreadState &thread = _threads[tid];
    const LitmusThread &spec = _test.threads[tid];
    if (thread.inHandler || thread.interruptsTaken > 0 ||
            thread.forgoInterrupt) {
        return false;
    }
    if (spec.interruptAt) {
        // Mandatory externally-pended interrupt, exactly at the label.
        return !thread.finished &&
            thread.pc == spec.program.labelIndex(*spec.interruptAt);
    }
    if (thread.masked)
        return false;
    if (spec.handler.code.empty())
        return false;
    return cpuInterface(tid).irqPending();
}

bool
Machine::canIssue(int tid) const
{
    const ThreadState &thread = _threads[tid];
    const LitmusThread &spec = _test.threads[tid];
    if (thread.finished)
        return false;
    if (inFlightCount(thread) >= _profile.windowSize)
        return false;

    // A mandatory pended interrupt blocks issue at its program point.
    if (spec.interruptAt && !thread.inHandler &&
            thread.interruptsTaken == 0 &&
            thread.pc == spec.program.labelIndex(*spec.interruptAt)) {
        return false;
    }

    // An incomplete DSB blocks all later issue.
    for (const InFlightOp &op : thread.ops) {
        if (!op.done && op.kind == InFlightOp::Kind::Barrier &&
                isDsb(op.barrier)) {
            return false;
        }
    }

    const isa::Program &prog = thread.inHandler ? spec.handler
                                                : spec.program;
    std::size_t idx = thread.inHandler ? thread.handlerPc : thread.pc;
    if (idx >= prog.code.size())
        return true;  // issuing "end" finishes the thread
    const Instruction &inst = prog.code[idx];

    auto ready = [&](isa::RegId reg) { return regReady(thread, reg); };

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Label:
      case Opcode::MovImm:
      case Opcode::Svc:
      case Opcode::Eret:
      case Opcode::Dmb:
      case Opcode::Dsb:
      case Opcode::Isb:
      case Opcode::MsrDaifSet:
      case Opcode::MsrDaifClr:
      case Opcode::Mrs:
        return true;
      case Opcode::MovReg:
        return ready(inst.rn);
      case Opcode::Alu:
      case Opcode::Cmp:
        return ready(inst.rn) && (inst.aluImmediate || ready(inst.rm));
      case Opcode::Cbz:
      case Opcode::Cbnz:
        return ready(inst.rd);
      case Opcode::B:
      case Opcode::BCond:
        return true;
      case Opcode::Msr:
        return ready(inst.rn);
      case Opcode::Ldp:
      case Opcode::Stp:
        panic("pair access not expanded by the assembler");
      case Opcode::Ldr:
      case Opcode::Ldar:
      case Opcode::Ldapr:
      case Opcode::Ldxr: {
        bool addr_ready = ready(inst.rn) &&
            (inst.mode != isa::AddrMode::BaseReg || ready(inst.rm));
        if (!addr_ready)
            return false;
        // A faulting access drains the window first (FEAT_ETS2).
        std::uint64_t address = thread.regs[inst.rn];
        if (inst.mode == isa::AddrMode::BaseReg)
            address += thread.regs[inst.rm];
        else if (inst.mode == isa::AddrMode::BaseImm ||
                 inst.mode == isa::AddrMode::PreIndex)
            address += static_cast<std::uint64_t>(inst.imm);
        if (!addressToLocation(address, _test.locations.size()))
            return inFlightCount(thread) == 0;
        return true;
      }
      case Opcode::Str:
      case Opcode::Stlr:
      case Opcode::Stxr: {
        bool addr_ready = ready(inst.rn) &&
            (inst.mode != isa::AddrMode::BaseReg || ready(inst.rm));
        if (!addr_ready || !ready(inst.rd))
            return false;
        std::uint64_t address = thread.regs[inst.rn];
        if (inst.mode == isa::AddrMode::BaseReg)
            address += thread.regs[inst.rm];
        else if (inst.mode == isa::AddrMode::BaseImm ||
                 inst.mode == isa::AddrMode::PreIndex)
            address += static_cast<std::uint64_t>(inst.imm);
        if (!addressToLocation(address, _test.locations.size()))
            return inFlightCount(thread) == 0;
        return true;
      }
    }
    return false;
}

int
Machine::forwardingSource(const ThreadState &thread, int op_index,
                          LocationId loc) const
{
    for (int i = op_index - 1; i >= 0; --i) {
        const InFlightOp &op = thread.ops[static_cast<std::size_t>(i)];
        if (op.kind == InFlightOp::Kind::Store && !op.done &&
                op.loc == loc) {
            return i;
        }
    }
    return -1;
}

bool
Machine::canSatisfy(int tid, int op_index) const
{
    const ThreadState &thread = _threads[tid];
    const InFlightOp &load = thread.ops[static_cast<std::size_t>(op_index)];
    if (load.kind != InFlightOp::Kind::Load || load.done)
        return false;

    for (int i = 0; i < op_index; ++i) {
        const InFlightOp &op = thread.ops[static_cast<std::size_t>(i)];
        if (op.done)
            continue;
        switch (op.kind) {
          case InFlightOp::Kind::Load:
            // Unsatisfied older load: blocked unless the profile
            // reorders loads; unsatisfied older acquire always blocks.
            if (op.acquire || op.acquirePc)
                return false;
            if (!_profile.loadLoadReorder)
                return false;
            break;
          case InFlightOp::Kind::Barrier:
            if (barrierOrdersLoads(op.barrier))
                return false;
            break;
          case InFlightOp::Kind::Store:
            // Uncommitted older release blocks an acquire ([L];po;[A]).
            if (op.release && load.acquire)
                return false;
            break;
        }
    }

    // Coherence: a program-order-later same-location load must not have
    // satisfied already (it could have read an older write).
    for (std::size_t i = static_cast<std::size_t>(op_index) + 1;
         i < thread.ops.size(); ++i) {
        const InFlightOp &op = thread.ops[i];
        if (op.kind == InFlightOp::Kind::Load && op.done &&
                op.loc == load.loc) {
            return false;
        }
    }

    // Forwarding from an uncommitted older same-location store.
    int src = forwardingSource(thread, op_index, load.loc);
    if (src >= 0) {
        // A pending store-exclusive's value is speculative: whether it
        // writes at all is decided only at commit (the monitor check),
        // and a failed STXR writes nothing, so no load may ever read
        // its value. The load waits for the commit and then reads
        // memory, which is correct on both the success and the failure
        // path.
        if (thread.ops[static_cast<std::size_t>(src)].exclusive)
            return false;
        if (!_profile.forwarding)
            return false;
    }
    return true;
}

bool
Machine::canCommit(int tid, int op_index) const
{
    const ThreadState &thread = _threads[tid];
    const InFlightOp &store =
        thread.ops[static_cast<std::size_t>(op_index)];
    if (store.kind != InFlightOp::Kind::Store || store.done)
        return false;

    for (int i = 0; i < op_index; ++i) {
        const InFlightOp &op = thread.ops[static_cast<std::size_t>(i)];
        if (op.done)
            continue;
        switch (op.kind) {
          case InFlightOp::Kind::Load:
            if (op.acquire || op.acquirePc)
                return false;
            // An unsatisfied older same-location load must read first.
            if (op.loc == store.loc)
                return false;
            if (store.release)
                return false;
            if (!_profile.loadStoreReorder)
                return false;
            break;
          case InFlightOp::Kind::Store:
            if (op.loc == store.loc)
                return false;  // same-location stores commit in order
            if (store.release)
                return false;
            if (!_profile.storeStoreReorder)
                return false;
            break;
          case InFlightOp::Kind::Barrier:
            // DMB ST orders later stores; DMB LD orders *all* later
            // accesses ([dmbld]; po; [R|W]); SY/DSB order both. Hence
            // any incomplete earlier barrier blocks a commit.
            return false;
        }
    }
    return true;
}

std::vector<Machine::Transition>
Machine::enabled() const
{
    std::vector<Transition> out;
    for (int t = 0; t < static_cast<int>(_threads.size()); ++t) {
        const ThreadState &thread = _threads[static_cast<std::size_t>(t)];
        if (canIssue(t))
            out.push_back({Transition::Kind::Issue, t, -1});
        for (int i = 0; i < static_cast<int>(thread.ops.size()); ++i) {
            if (canSatisfy(t, i))
                out.push_back({Transition::Kind::Satisfy, t, i});
            if (canCommit(t, i))
                out.push_back({Transition::Kind::Commit, t, i});
        }
        if (atInterruptPoint(t) && interruptDeliverable(t)) {
            out.push_back({Transition::Kind::TakeInterrupt, t, -1});
            // Only SGIs may be forgone (the scheduler models delivery
            // that arrives after the program completes); an explicit
            // "interrupt at" is mandatory.
            if (!_test.threads[static_cast<std::size_t>(t)].interruptAt &&
                    thread.finished) {
                out.push_back({Transition::Kind::ForgoInterrupt, t, -1});
            }
        }
    }
    return out;
}

void
Machine::enterHandler(ThreadState &thread, std::uint64_t return_pc)
{
    thread.sysregs[sysregIndex(Sysreg::ELR_EL1)] = return_pc;
    thread.sysregs[sysregIndex(Sysreg::SPSR_EL1)] =
        thread.masked ? 1 : 0;
    thread.savedMasked = thread.masked;
    thread.masked = true;
    thread.inHandler = true;
    thread.handlerPc = 0;
    thread.finished = false;
}

void
Machine::takeFault(int tid, std::uint64_t address)
{
    ThreadState &thread = _threads[static_cast<std::size_t>(tid)];
    if (_test.threads[static_cast<std::size_t>(tid)].handler.code.empty())
        fatal("operational: fault with no handler in " + _test.name);
    thread.sysregs[sysregIndex(Sysreg::ESR_EL1)] = sem::syndromeFor(
        ExceptionClass::DataAbortTranslation, 0);
    thread.sysregs[sysregIndex(Sysreg::FAR_EL1)] = address;
    enterHandler(thread, sem::preferredReturn(
        ExceptionClass::DataAbortTranslation, thread.pc));
}

void
Machine::takeInterrupt(int tid)
{
    ThreadState &thread = _threads[static_cast<std::size_t>(tid)];
    if (_test.threads[static_cast<std::size_t>(tid)].handler.code.empty())
        fatal("operational: interrupt with no handler in " + _test.name);
    ++thread.interruptsTaken;
    enterHandler(thread, thread.pc);
}

void
Machine::issue(int tid)
{
    ThreadState &thread = _threads[static_cast<std::size_t>(tid)];
    const LitmusThread &spec = _test.threads[static_cast<std::size_t>(tid)];
    const isa::Program &prog = thread.inHandler ? spec.handler
                                                : spec.program;
    std::size_t idx = thread.inHandler ? thread.handlerPc : thread.pc;

    if (idx >= prog.code.size()) {
        // Falling off the handler's end terminates the thread; falling
        // off the program's end finishes it (in-flight ops may drain).
        thread.finished = true;
        thread.inHandler = false;
        return;
    }

    const Instruction &inst = prog.code[idx];
    auto advance = [&]() {
        if (thread.inHandler)
            ++thread.handlerPc;
        else
            ++thread.pc;
    };

    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Label:
        advance();
        return;

      case Opcode::MovImm:
        thread.regs[inst.rd] =
            static_cast<std::uint64_t>(inst.imm) << inst.shift;
        thread.regSource[inst.rd] = -1;
        advance();
        return;

      case Opcode::MovReg:
        thread.regs[inst.rd] = thread.regs[inst.rn];
        thread.regSource[inst.rd] = -1;
        advance();
        return;

      case Opcode::Alu: {
        std::uint64_t lhs = thread.regs[inst.rn];
        std::uint64_t rhs = inst.aluImmediate
            ? static_cast<std::uint64_t>(inst.imm)
            : thread.regs[inst.rm];
        std::uint64_t result = 0;
        switch (inst.alu) {
          case isa::AluOp::Add: result = lhs + rhs; break;
          case isa::AluOp::Sub: result = lhs - rhs; break;
          case isa::AluOp::Eor: result = lhs ^ rhs; break;
          case isa::AluOp::And: result = lhs & rhs; break;
          case isa::AluOp::Orr: result = lhs | rhs; break;
        }
        thread.regs[inst.rd] = result;
        thread.regSource[inst.rd] = -1;
        advance();
        return;
      }

      case Opcode::Cmp:
        thread.cmpLhs = static_cast<std::int64_t>(thread.regs[inst.rn]);
        thread.cmpRhs = inst.aluImmediate
            ? inst.imm
            : static_cast<std::int64_t>(thread.regs[inst.rm]);
        advance();
        return;

      case Opcode::BCond: {
        bool taken =
            isa::condHoldsFor(inst.cond, thread.cmpLhs, thread.cmpRhs);
        if (taken) {
            std::size_t target = prog.labelIndex(inst.label);
            if (thread.inHandler)
                thread.handlerPc = target;
            else
                thread.pc = target;
        } else {
            advance();
        }
        return;
      }

      case Opcode::Cbz:
      case Opcode::Cbnz: {
        bool zero = thread.regs[inst.rd] == 0;
        bool taken = inst.op == Opcode::Cbz ? zero : !zero;
        if (taken) {
            std::size_t target = prog.labelIndex(inst.label);
            if (thread.inHandler)
                thread.handlerPc = target;
            else
                thread.pc = target;
        } else {
            advance();
        }
        return;
      }

      case Opcode::B: {
        std::size_t target = prog.labelIndex(inst.label);
        if (thread.inHandler)
            thread.handlerPc = target;
        else
            thread.pc = target;
        return;
      }

      case Opcode::Dmb:
      case Opcode::Dsb:
      case Opcode::Isb: {
        InFlightOp op;
        op.kind = InFlightOp::Kind::Barrier;
        op.barrier = inst.barrier;
        // ISB is a no-op here: the machine never speculates.
        op.done = inst.op == Opcode::Isb;
        thread.ops.push_back(op);
        advance();
        completeBarriers();
        return;
      }

      case Opcode::Svc: {
        rexAssert(!thread.inHandler,
                  "operational: SVC inside handler unsupported");
        if (spec.handler.code.empty())
            fatal("operational: SVC with no handler in " + _test.name);
        thread.sysregs[sysregIndex(Sysreg::ESR_EL1)] =
            sem::syndromeFor(ExceptionClass::Svc, 0);
        enterHandler(thread, thread.pc + 1);
        return;
      }

      case Opcode::Eret: {
        rexAssert(thread.inHandler, "operational: ERET outside handler");
        std::uint64_t target =
            thread.sysregs[sysregIndex(Sysreg::ELR_EL1)];
        if (target > spec.program.code.size())
            fatal("operational: ERET to bad address in " + _test.name);
        thread.inHandler = false;
        thread.pc = static_cast<std::size_t>(target);
        thread.masked = thread.savedMasked;
        return;
      }

      case Opcode::Mrs: {
        std::uint64_t value;
        if (inst.sysreg == Sysreg::ICC_IAR1_EL1)
            value = cpuInterface(tid).readIar();
        else
            value = thread.sysregs[sysregIndex(inst.sysreg)];
        thread.regs[inst.rd] = value;
        thread.regSource[inst.rd] = -1;
        advance();
        return;
      }

      case Opcode::Msr: {
        std::uint64_t value = thread.regs[inst.rn];
        switch (inst.sysreg) {
          case Sysreg::ICC_SGI1R_EL1:
            _gic.sendSgi(sem::decodeSgi1r(value),
                         static_cast<std::uint32_t>(tid));
            break;
          case Sysreg::ICC_EOIR1_EL1:
            cpuInterface(tid).writeEoir(value);
            break;
          case Sysreg::ICC_DIR_EL1:
            cpuInterface(tid).writeDir(value);
            break;
          case Sysreg::ICC_PMR_EL1:
            cpuInterface(tid).writePmr(value);
            break;
          default:
            thread.sysregs[sysregIndex(inst.sysreg)] = value;
            break;
        }
        advance();
        return;
      }

      case Opcode::MsrDaifSet:
      case Opcode::MsrDaifClr:
        if (inst.imm & 0x2)
            thread.masked = inst.op == Opcode::MsrDaifSet;
        advance();
        return;

      case Opcode::Ldp:
      case Opcode::Stp:
        panic("pair access not expanded by the assembler");

      case Opcode::Ldr:
      case Opcode::Ldar:
      case Opcode::Ldapr:
      case Opcode::Ldxr:
      case Opcode::Str:
      case Opcode::Stlr:
      case Opcode::Stxr: {
        std::uint64_t address = thread.regs[inst.rn];
        if (inst.mode == isa::AddrMode::BaseReg)
            address += thread.regs[inst.rm];
        else if (inst.mode == isa::AddrMode::BaseImm ||
                 inst.mode == isa::AddrMode::PreIndex)
            address += static_cast<std::uint64_t>(inst.imm);

        auto loc = addressToLocation(address, _test.locations.size());
        if (!loc) {
            // Faulting access: no writeback (§3.4), handler entry.
            takeFault(tid, address);
            return;
        }

        InFlightOp op;
        op.loc = *loc;
        if (inst.isLoad()) {
            op.kind = InFlightOp::Kind::Load;
            op.destReg = inst.rd;
            op.acquire = inst.op == Opcode::Ldar;
            op.acquirePc = inst.op == Opcode::Ldapr;
            op.exclusive = inst.op == Opcode::Ldxr;
            if (inst.rd != isa::kZeroReg) {
                thread.regSource[inst.rd] =
                    static_cast<int>(thread.ops.size());
            }
        } else {
            op.kind = InFlightOp::Kind::Store;
            op.storeValue = thread.regs[inst.rd];
            op.release = inst.op == Opcode::Stlr;
            op.exclusive = inst.op == Opcode::Stxr;
            if (inst.op == Opcode::Stxr) {
                op.statusReg = inst.rs;
                if (inst.rs != isa::kZeroReg) {
                    thread.regSource[inst.rs] =
                        static_cast<int>(thread.ops.size());
                }
            }
        }
        thread.ops.push_back(op);

        // Post/pre-index writeback (only reached when non-faulting).
        if (inst.mode == isa::AddrMode::PostIndex)
            thread.regs[inst.rn] += static_cast<std::uint64_t>(inst.imm);
        else if (inst.mode == isa::AddrMode::PreIndex)
            thread.regs[inst.rn] = address;
        advance();
        return;
      }
    }
    panic("operational: unhandled opcode at issue");
}

void
Machine::satisfy(int tid, int op_index)
{
    ThreadState &thread = _threads[static_cast<std::size_t>(tid)];
    InFlightOp &load = thread.ops[static_cast<std::size_t>(op_index)];

    int src = forwardingSource(thread, op_index, load.loc);
    std::uint64_t value = src >= 0
        ? thread.ops[static_cast<std::size_t>(src)].storeValue
        : _memory[load.loc];

    load.loadedValue = value;
    load.done = true;
    if (load.destReg != isa::kZeroReg &&
            thread.regSource[load.destReg] == op_index) {
        thread.regs[load.destReg] = value;
        thread.regSource[load.destReg] = -1;
    }
    if (load.exclusive)
        thread.monitor = {{load.loc, _memVersion[load.loc]}};
    completeBarriers();
}

void
Machine::commit(int tid, int op_index)
{
    ThreadState &thread = _threads[static_cast<std::size_t>(tid)];
    InFlightOp &store = thread.ops[static_cast<std::size_t>(op_index)];

    bool success = true;
    if (store.exclusive) {
        success = thread.monitor && thread.monitor->first == store.loc &&
            _memVersion[store.loc] == thread.monitor->second;
        thread.monitor.reset();
        if (store.statusReg != isa::kZeroReg &&
                thread.regSource[store.statusReg] == op_index) {
            thread.regs[store.statusReg] = success ? 0 : 1;
            thread.regSource[store.statusReg] = -1;
        }
    }
    if (success) {
        _memory[store.loc] = store.storeValue;
        ++_memVersion[store.loc];
    }
    store.done = true;
    completeBarriers();
}

void
Machine::completeBarriers()
{
    // Barriers complete eagerly once their constraints hold; completion
    // has no side effect beyond enabling later operations, so eager
    // completion preserves the reachable-outcome set.
    bool changed = true;
    while (changed) {
        changed = false;
        for (ThreadState &thread : _threads) {
            for (std::size_t i = 0; i < thread.ops.size(); ++i) {
                InFlightOp &op = thread.ops[i];
                if (op.done || op.kind != InFlightOp::Kind::Barrier)
                    continue;
                bool ok = true;
                for (std::size_t j = 0; j < i && ok; ++j) {
                    const InFlightOp &prev = thread.ops[j];
                    if (prev.done)
                        continue;
                    if (prev.kind == InFlightOp::Kind::Load &&
                            barrierOrdersLoads(op.barrier)) {
                        ok = false;
                    }
                    if (prev.kind == InFlightOp::Kind::Store &&
                            barrierOrdersStores(op.barrier)) {
                        ok = false;
                    }
                    if (prev.kind == InFlightOp::Kind::Barrier)
                        ok = false;
                }
                if (ok) {
                    op.done = true;
                    changed = true;
                }
            }
        }
    }
}

void
Machine::apply(const Transition &transition)
{
    switch (transition.kind) {
      case Transition::Kind::Issue:
        issue(transition.thread);
        return;
      case Transition::Kind::Satisfy:
        satisfy(transition.thread, transition.opIndex);
        return;
      case Transition::Kind::Commit:
        commit(transition.thread, transition.opIndex);
        return;
      case Transition::Kind::TakeInterrupt:
        takeInterrupt(transition.thread);
        return;
      case Transition::Kind::ForgoInterrupt:
        _threads[static_cast<std::size_t>(transition.thread)]
            .forgoInterrupt = true;
        return;
    }
    panic("operational: unhandled transition kind");
}

bool
Machine::done() const
{
    for (int t = 0; t < static_cast<int>(_threads.size()); ++t) {
        const ThreadState &thread = _threads[static_cast<std::size_t>(t)];
        if (!thread.finished)
            return false;
        if (inFlightCount(thread) > 0)
            return false;
        if (interruptDeliverable(t))
            return false;  // must be taken or forgone first
    }
    return true;
}

Outcome
Machine::outcome() const
{
    Outcome out;
    for (const CondAtom &atom : _test.finalCond.atoms) {
        if (atom.kind != CondAtom::Kind::Register)
            continue;
        const ThreadState &thread =
            _threads[static_cast<std::size_t>(atom.tid)];
        out.values[std::to_string(atom.tid) + ":" +
                   isa::regName(atom.reg)] = thread.regs[atom.reg];
    }
    for (LocationId loc = 0; loc < _test.locations.size(); ++loc)
        out.values["*" + _test.locations[loc]] = _memory[loc];
    return out;
}

std::string
Machine::stateKey() const
{
    std::string key;
    auto u64 = [&](std::uint64_t v) {
        key.append(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    for (const ThreadState &thread : _threads) {
        u64(thread.pc);
        u64(thread.handlerPc);
        key += static_cast<char>(
            (thread.inHandler << 0) | (thread.finished << 1) |
            (thread.masked << 2) | (thread.savedMasked << 3) |
            (thread.forgoInterrupt << 4));
        key += static_cast<char>(thread.interruptsTaken);
        u64(static_cast<std::uint64_t>(thread.cmpLhs));
        u64(static_cast<std::uint64_t>(thread.cmpRhs));
        for (std::size_t r = 0; r < isa::kNumRegs; ++r) {
            u64(thread.regs[r]);
            key += static_cast<char>(thread.regSource[r] & 0xFF);
        }
        for (std::uint64_t sr : thread.sysregs)
            u64(sr);
        if (thread.monitor) {
            u64(thread.monitor->first);
            u64(thread.monitor->second);
        } else {
            key += 'n';
        }
        u64(thread.ops.size());
        for (const InFlightOp &op : thread.ops) {
            key += static_cast<char>(op.kind);
            key += op.done ? '1' : '0';
            u64(op.loc);
            u64(op.storeValue);
            u64(op.loadedValue);
        }
        key += '|';
    }
    for (std::uint64_t v : _memory)
        u64(v);
    for (std::uint64_t v : _memVersion)
        u64(v);
    for (std::size_t pe = 0; pe < _gic.numPes(); ++pe) {
        const gic::Redistributor &redist = _gic.redistributor(pe);
        for (std::uint32_t intid = 0; intid < 16; ++intid)
            key += static_cast<char>(redist.state(intid));
        key += static_cast<char>(redist.runningPriority());
    }
    return key;
}

} // namespace rex::op
