#include "operational/explorer.hh"

#include <unordered_set>
#include <vector>

namespace rex::op {

namespace {

/** DFS frame: the transition sequence that led here is implicit in the
 *  machine replays (the machine is copied per frame — states are small
 *  and litmus tests shallow). */
struct Frame {
    Machine machine;
    std::vector<Machine::Transition> transitions;
    std::size_t next = 0;
};

} // namespace

ExploreResult
explore(const LitmusTest &test, const CoreProfile &profile,
        std::size_t max_states)
{
    ExploreResult result;
    std::unordered_set<std::string> visited;

    Machine initial(test, profile);
    std::vector<Frame> stack;
    stack.push_back({initial, initial.enabled(), 0});
    visited.insert(initial.stateKey());

    while (!stack.empty()) {
        Frame &frame = stack.back();
        if (frame.machine.done()) {
            Outcome outcome = frame.machine.outcome();
            result.outcomes.insert(outcome.key());
            if (outcome.satisfiesCondition(test))
                result.conditionReachable = true;
            stack.pop_back();
            continue;
        }
        if (frame.next >= frame.transitions.size()) {
            stack.pop_back();
            continue;
        }
        Machine next = frame.machine;
        next.apply(frame.transitions[frame.next++]);
        std::string key = next.stateKey();
        if (visited.count(key))
            continue;
        if (visited.size() >= max_states) {
            result.truncated = true;
            stack.clear();
            break;
        }
        visited.insert(key);
        auto transitions = next.enabled();
        stack.push_back({std::move(next), std::move(transitions), 0});
    }

    result.statesVisited = visited.size();
    return result;
}

} // namespace rex::op
