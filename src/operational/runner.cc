#include "operational/runner.hh"

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex::op {

std::string
RunStats::cell() const
{
    return format("%llu/%llu",
                  static_cast<unsigned long long>(observed),
                  static_cast<unsigned long long>(runs));
}

Runner::Runner(const CoreProfile &profile, std::uint64_t seed)
    : _profile(profile), _state(seed ? seed : 0x9E3779B97F4A7C15ull)
{
}

std::uint64_t
Runner::nextRandom()
{
    // xorshift64*: fast, deterministic, good enough for scheduling.
    _state ^= _state >> 12;
    _state ^= _state << 25;
    _state ^= _state >> 27;
    return _state * 0x2545F4914F6CDD1Dull;
}

RunStats
Runner::run(const LitmusTest &test, std::uint64_t runs)
{
    RunStats stats;
    Machine machine(test, _profile);
    for (std::uint64_t r = 0; r < runs; ++r) {
        machine.reset();
        std::uint64_t steps = 0;
        while (!machine.done()) {
            auto transitions = machine.enabled();
            if (transitions.empty()) {
                fatal("operational machine stuck in test " + test.name);
            }
            const auto &pick = transitions[
                nextRandom() % transitions.size()];
            machine.apply(pick);
            if (++steps > 100000)
                fatal("operational machine diverged in test " + test.name);
        }
        Outcome outcome = machine.outcome();
        ++stats.runs;
        if (outcome.satisfiesCondition(test))
            ++stats.observed;
        ++stats.histogram[outcome.key()];
    }
    return stats;
}

} // namespace rex::op
