/**
 * @file
 * The abstract-microarchitectural operational machine.
 *
 * This is the repository's substitute for the paper's hardware testing:
 * an executable machine in the style of Fig. 1/Fig. 3's tree of FDX
 * instances, restricted to non-speculative issue (it never rolls back),
 * with out-of-order load satisfaction, store buffering, forwarding, and
 * exception/interrupt machinery. A CoreProfile controls which
 * reorderings are performed.
 *
 * Machine transitions:
 *  - Issue: fetch-decode-execute the next instruction in (program-order)
 *    issue; register ops complete at issue, memory ops enter the
 *    in-flight window;
 *  - Satisfy: an eligible in-flight load reads (memory or forwarded);
 *  - Commit: an eligible in-flight store propagates to memory;
 *  - TakeInterrupt / ForgoInterrupt: deliverable IRQs at FDX boundaries.
 *
 * Synchronous faults drain the window before redirecting (the
 * FEAT_ETS2 behaviour, §3.3); SVC/ERET redirect without draining, which
 * is what lets accesses reorder across exception boundaries (§3.2).
 *
 * A scheduler (random or exhaustive; see runner.hh / explorer.hh) picks
 * among enabled transitions.
 */

#ifndef REX_OPERATIONAL_MACHINE_HH
#define REX_OPERATIONAL_MACHINE_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gic/cpu_interface.hh"
#include "gic/gic.hh"
#include "litmus/litmus.hh"
#include "operational/profile.hh"

namespace rex::op {

/**
 * The final-state projection of one run: the condition-relevant
 * registers and all memory locations.
 */
struct Outcome {
    std::map<std::string, std::uint64_t> values;

    /** Canonical string form, usable as a histogram key. */
    std::string key() const;

    /** Does this outcome satisfy the test's final condition? */
    bool satisfiesCondition(const LitmusTest &test) const;
};

/** The operational machine for one litmus test run. */
class Machine
{
  public:
    Machine(const LitmusTest &test, const CoreProfile &profile);

    /** One schedulable transition. */
    struct Transition {
        enum class Kind : std::uint8_t {
            Issue,
            Satisfy,
            Commit,
            TakeInterrupt,
            ForgoInterrupt,
        };
        Kind kind = Kind::Issue;
        int thread = 0;
        int opIndex = -1;  //!< for Satisfy/Commit

        std::string toString() const;
    };

    /** Reset to the initial state. */
    void reset();

    /** All transitions enabled in the current state. */
    std::vector<Transition> enabled() const;

    /** Apply one (enabled) transition. */
    void apply(const Transition &transition);

    /** True when every thread has finished and drained. */
    bool done() const;

    /** The final-state projection (valid when done()). */
    Outcome outcome() const;

    /**
     * A canonical serialisation of the state, for memoisation in
     * exhaustive exploration.
     */
    std::string stateKey() const;

  private:
    /** One in-flight memory operation. */
    struct InFlightOp {
        enum class Kind : std::uint8_t { Load, Store, Barrier };
        Kind kind = Kind::Load;
        LocationId loc = 0;
        std::uint64_t storeValue = 0;
        isa::RegId destReg = isa::kZeroReg;  //!< load target / STXR status
        BarrierKind barrier = BarrierKind::DmbSy;
        bool acquire = false;
        bool acquirePc = false;
        bool release = false;
        bool exclusive = false;
        isa::RegId statusReg = isa::kZeroReg;  //!< STXR status register
        bool done = false;
        std::uint64_t loadedValue = 0;
    };

    /** One simulated hardware thread. */
    struct ThreadState {
        std::size_t pc = 0;
        bool inHandler = false;
        std::size_t handlerPc = 0;
        bool finished = false;

        std::array<std::uint64_t, isa::kNumRegs> regs{};
        /** In-flight op index producing the register, or -1 if ready. */
        std::array<int, isa::kNumRegs> regSource{};

        std::array<std::uint64_t, isa::kNumSysregs> sysregs{};

        bool masked = false;
        bool savedMasked = false;

        /** NZCV state: the last comparison's operands. */
        std::int64_t cmpLhs = 0;
        std::int64_t cmpRhs = 0;
        int interruptsTaken = 0;
        bool forgoInterrupt = false;

        /** Exclusive monitor: location and memory version at LDXR. */
        std::optional<std::pair<LocationId, std::uint64_t>> monitor;

        std::vector<InFlightOp> ops;
    };

    bool regReady(const ThreadState &thread, isa::RegId reg) const;
    std::size_t inFlightCount(const ThreadState &thread) const;

    bool canIssue(int tid) const;
    bool canSatisfy(int tid, int op_index) const;
    bool canCommit(int tid, int op_index) const;
    bool atInterruptPoint(int tid) const;
    bool interruptDeliverable(int tid) const;

    void issue(int tid);
    void satisfy(int tid, int op_index);
    void commit(int tid, int op_index);
    void takeInterrupt(int tid);

    void enterHandler(ThreadState &thread, std::uint64_t return_pc);
    void takeFault(int tid, std::uint64_t address);
    void completeBarriers();

    /** Find the youngest not-done earlier same-location store. */
    int forwardingSource(const ThreadState &thread, int op_index,
                         LocationId loc) const;

    const LitmusTest &_test;
    CoreProfile _profile;

    std::vector<ThreadState> _threads;
    std::vector<std::uint64_t> _memory;
    std::vector<std::uint64_t> _memVersion;
    gic::Gic _gic;

    /** The (stateless) CPU-interface view for one PE. */
    gic::CpuInterface cpuInterface(int tid) const;
};

} // namespace rex::op

#endif // REX_OPERATIONAL_MACHINE_HH
