/**
 * @file
 * Exhaustive exploration of the operational machine: enumerates every
 * reachable final state (memoised on machine state), used to check the
 * simulator sound against the axiomatic model — every operationally
 * reachable outcome must be axiomatically allowed.
 */

#ifndef REX_OPERATIONAL_EXPLORER_HH
#define REX_OPERATIONAL_EXPLORER_HH

#include <set>
#include <string>

#include "litmus/litmus.hh"
#include "operational/machine.hh"
#include "operational/profile.hh"

namespace rex::op {

/** Result of exhaustive exploration. */
struct ExploreResult {
    /** Keys of all reachable final outcomes. */
    std::set<std::string> outcomes;

    /** True when some reachable outcome satisfies the condition. */
    bool conditionReachable = false;

    /** Number of distinct states visited. */
    std::size_t statesVisited = 0;

    /** True when exploration hit the state cap and stopped early. */
    bool truncated = false;
};

/**
 * Exhaustively explore @p test on @p profile.
 * @param max_states cap on distinct visited states.
 */
ExploreResult explore(const LitmusTest &test, const CoreProfile &profile,
                      std::size_t max_states = 2'000'000);

} // namespace rex::op

#endif // REX_OPERATIONAL_EXPLORER_HH
