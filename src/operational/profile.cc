#include "operational/profile.hh"

#include "base/logging.hh"

namespace rex::op {

CoreProfile
CoreProfile::cortexA53()
{
    CoreProfile p;
    p.name = "cortex-a53";
    p.windowSize = 8;
    return p;
}

CoreProfile
CoreProfile::cortexA72()
{
    CoreProfile p;
    p.name = "cortex-a72";
    p.storeStoreReorder = true;
    return p;
}

CoreProfile
CoreProfile::cortexA76()
{
    CoreProfile p;
    p.name = "cortex-a76";
    p.storeStoreReorder = true;
    p.windowSize = 32;
    return p;
}

CoreProfile
CoreProfile::cortexA73()
{
    CoreProfile p;
    p.name = "cortex-a73";
    p.loadLoadReorder = true;
    p.storeStoreReorder = true;
    p.loadStoreReorder = true;
    return p;
}

CoreProfile
CoreProfile::sequential()
{
    CoreProfile p;
    p.name = "sequential";
    p.forwarding = true;
    p.windowSize = 1;
    return p;
}

CoreProfile
CoreProfile::maxRelaxed()
{
    CoreProfile p;
    p.name = "max-relaxed";
    p.loadLoadReorder = true;
    p.storeStoreReorder = true;
    p.loadStoreReorder = true;
    p.windowSize = 32;
    return p;
}

std::vector<CoreProfile>
CoreProfile::paperDevices()
{
    return {cortexA53(), cortexA72(), cortexA76(), cortexA73()};
}

CoreProfile
CoreProfile::byName(const std::string &name)
{
    for (const CoreProfile &p : {cortexA53(), cortexA72(), cortexA76(),
                                 cortexA73(), sequential(), maxRelaxed()}) {
        if (p.name == name)
            return p;
    }
    fatal("unknown core profile '" + name + "'");
}

} // namespace rex::op
