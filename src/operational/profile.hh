/**
 * @file
 * Core profiles for the operational simulator.
 *
 * The paper tests four implementations (Cortex-A53/A72/A76/A73); our
 * simulator substitutes for them with profiles controlling which
 * reorderings the abstract microarchitecture performs. The profiles are
 * calibrated so that *which* relaxed outcomes each profile can exhibit
 * mirrors which devices observed which tests (§3.2): all four have store
 * buffers with forwarding; only the A73 profile reorders loads (the
 * paper observed MP+dmb.sy+svc only on the ODROID-N2+'s A73 cores).
 * Absolute frequencies are synthetic.
 */

#ifndef REX_OPERATIONAL_PROFILE_HH
#define REX_OPERATIONAL_PROFILE_HH

#include <string>
#include <vector>

namespace rex::op {

/** Reordering capabilities of a simulated core. */
struct CoreProfile {
    std::string name;

    /** Loads may satisfy while older loads are unsatisfied. */
    bool loadLoadReorder = false;

    /** Stores may commit while older (other-location) stores are
     *  uncommitted. */
    bool storeStoreReorder = false;

    /** Stores may commit while older loads are unsatisfied
     *  (enables load-buffering shapes). */
    bool loadStoreReorder = false;

    /** Loads may forward from uncommitted older same-address stores. */
    bool forwarding = true;

    /** Maximum in-flight operations per thread. */
    unsigned windowSize = 16;

    /** An in-order core with a store buffer (Cortex-A53-like). */
    static CoreProfile cortexA53();

    /** Out-of-order, conservative loads (Cortex-A72-like). */
    static CoreProfile cortexA72();

    /** Out-of-order, conservative loads (Cortex-A76-like). */
    static CoreProfile cortexA76();

    /** Aggressive out-of-order incl. load-load reordering
     *  (Cortex-A73-like). */
    static CoreProfile cortexA73();

    /** Fully in-order, no store buffer: sequentially consistent-ish
     *  reference. */
    static CoreProfile sequential();

    /** Everything the simulator can reorder: coverage-maximising. */
    static CoreProfile maxRelaxed();

    /** The four device profiles in the paper's hw-refs order. */
    static std::vector<CoreProfile> paperDevices();

    /** Look up by name; fatal() when unknown. */
    static CoreProfile byName(const std::string &name);
};

} // namespace rex::op

#endif // REX_OPERATIONAL_PROFILE_HH
