/**
 * @file
 * Core suite: classic exception-free shapes, anchoring the baseline model
 * against the well-known Armv8 verdicts (Pulte et al.'s model, which
 * Figure 9 extends). Where §4.1 strengthens a verdict under the SEA
 * variants, the expectation is recorded as a `variant` line.
 */

#include "litmus/registry.hh"

namespace rex {

namespace {

const char *kCoreTests[] = {

// ---- Coherence ----------------------------------------------------

R"(name: CoRR
desc: a thread may not read a location's values against coherence order
init: *x=0; 0:X1=x; 1:X1=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
thread 1:
    LDR X0,[X1]
    LDR X2,[X1]
forbidden: 1:X0=1 & 1:X2=0
)",

R"(name: CoWW
desc: same-thread writes to one location propagate in program order
init: *x=0; 0:X1=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#2
    STR X2,[X1]
forbidden: *x=1
)",

R"(name: CoWR
desc: a read may not ignore a program-order-earlier write to the same location
init: *x=0; 0:X1=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    LDR X2,[X1]
forbidden: 0:X2=0
)",

R"(name: CoRW1
desc: a read may not be satisfied by a program-order-later write
init: *x=0; 0:X1=x
thread 0:
    LDR X0,[X1]
    MOV X2,#1
    STR X2,[X1]
forbidden: 0:X0=1
)",

// ---- Message passing ----------------------------------------------

R"(name: MP+pos
desc: plain message passing is relaxed in both directions
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    LDR X2,[X3]
allowed: 1:X0=1 & 1:X2=0
)",

R"(name: MP+dmb.sys
desc: DMB SY on both sides restores message passing
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    DMB SY
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
)",

R"(name: MP+dmb.sy+addr
desc: an address dependency orders the reads
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X6,X0,X0
    LDR X4,[X5,X6]
forbidden: 1:X0=1 & 1:X4=0
)",

R"(name: MP+dmb.sy+po
desc: plain program order between the reads is not enough
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    LDR X2,[X3]
allowed: 1:X0=1 & 1:X2=0
)",

R"(name: MP+po+addr
desc: without a writer-side barrier the writes may reorder; under SEA_W
desc: stores may abort synchronously, so later instances are speculative
desc: until the store propagates, forbidding the write-write reordering
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X6,X0,X0
    LDR X4,[X5,X6]
allowed: 1:X0=1 & 1:X4=0
variant SEA_W: forbidden
variant SEA_RW: forbidden
variant ExS: allowed
variant SEA_R: allowed
)",

R"(name: MP+dmb.sy+ctrl
desc: a control dependency does not order read-read pairs
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    CBNZ X0,LC00
LC00:
    LDR X2,[X3]
allowed: 1:X0=1 & 1:X2=0
)",

R"(name: MP+dmb.sy+ctrlisb
desc: control dependency plus ISB orders the reads
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    CBNZ X0,LC00
LC00:
    ISB
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
)",

R"(name: MP+dmb.sy+isb
desc: a plain ISB (no dependency into it) does not order the reads; under
desc: SEA_R the first load makes later instances speculative, so the ISB
desc: bites (s4.1)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    ISB
    LDR X2,[X3]
allowed: 1:X0=1 & 1:X2=0
variant SEA_R: forbidden
variant SEA_RW: forbidden
variant ExS: allowed
variant SEA_W: allowed
)",

R"(name: MP+dmb.st+addr
desc: DMB ST suffices on the writer side
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB ST
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X6,X0,X0
    LDR X4,[X5,X6]
forbidden: 1:X0=1 & 1:X4=0
)",

R"(name: MP+rel+addr
desc: store-release on the writer side orders the writes
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1
    STLR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X6,X0,X0
    LDR X4,[X5,X6]
forbidden: 1:X0=1 & 1:X4=0
)",

R"(name: MP+rel+acq
desc: release/acquire message passing
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1
    STLR X2,[X3]
thread 1:
    LDAR X0,[X1]
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
)",

// ---- Store buffering ----------------------------------------------

R"(name: SB+pos
desc: store buffering is observable without barriers
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    LDR X2,[X3]
allowed: 0:X2=0 & 1:X2=0
)",

R"(name: SB+dmb.sys
desc: DMB SY on both sides forbids store buffering
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
forbidden: 0:X2=0 & 1:X2=0
)",

R"(name: SB+rel+acq
desc: STLR-LDAR pairs order write before read (RCsc), forbidding SB
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STLR X0,[X1]
    LDAR X2,[X3]
thread 1:
    MOV X0,#1
    STLR X0,[X1]
    LDAR X2,[X3]
forbidden: 0:X2=0 & 1:X2=0
)",

// ---- Load buffering ------------------------------------------------

R"(name: LB+pos
desc: load buffering is architecturally allowed; under SEA_R a load may
desc: abort synchronously, so the later store is speculative until the
desc: load completes, ruling LB out (s4.1, s4.2)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1; 1:X1=y; 1:X3=x; 1:X2=1
thread 0:
    LDR X0,[X1]
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    STR X2,[X3]
allowed: 0:X0=1 & 1:X0=1
variant SEA_R: forbidden
variant SEA_RW: forbidden
variant ExS: allowed
variant SEA_W: allowed
)",

R"(name: LB+datas
desc: data dependencies forbid load buffering
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    LDR X0,[X1]
    EOR X2,X0,X0
    ADD X2,X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X2,X0,X0
    ADD X2,X2,#1
    STR X2,[X3]
forbidden: 0:X0=1 & 1:X0=1
)",

R"(name: LB+addrs
desc: address dependencies forbid load buffering
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1; 1:X1=y; 1:X3=x; 1:X2=1
thread 0:
    LDR X0,[X1]
    EOR X4,X0,X0
    STR X2,[X3,X4]
thread 1:
    LDR X0,[X1]
    EOR X4,X0,X0
    STR X2,[X3,X4]
forbidden: 0:X0=1 & 1:X0=1
)",

R"(name: LB+acqs
desc: acquire loads order everything program-order-later
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1; 1:X1=y; 1:X3=x; 1:X2=1
thread 0:
    LDAR X0,[X1]
    STR X2,[X3]
thread 1:
    LDAR X0,[X1]
    STR X2,[X3]
forbidden: 0:X0=1 & 1:X0=1
)",

// ---- Other classic shapes ------------------------------------------

R"(name: S+dmb.sy+data
desc: the S shape with a barrier and a data dependency
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#2
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X2,X0,X0
    ADD X2,X2,#1
    STR X2,[X3]
forbidden: 1:X0=1 & *x=2
)",

R"(name: R+dmb.sys
desc: the R shape with barriers on both sides
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    MOV X0,#2
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
forbidden: *y=2 & 1:X2=0
)",

R"(name: 2+2W+pos
desc: write-write reordering across two threads is observable
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#2
    STR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#2
    STR X2,[X3]
allowed: *x=1 & *y=1
)",

R"(name: 2+2W+dmb.sys
desc: barriers forbid the 2+2W shape
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#2
    STR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#2
    STR X2,[X3]
forbidden: *x=1 & *y=1
)",

R"(name: WRC+addrs
desc: write-to-read causality with address dependencies (multicopy
desc: atomicity)
init: *x=0; *y=0; 0:X1=x; 1:X1=x; 1:X3=y; 1:X6=1; 2:X1=y; 2:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
thread 1:
    LDR X0,[X1]
    EOR X2,X0,X0
    STR X6,[X3,X2]
thread 2:
    LDR X0,[X1]
    EOR X2,X0,X0
    LDR X4,[X5,X2]
forbidden: 1:X0=1 & 2:X0=1 & 2:X4=0
)",

R"(name: WRC+pos
desc: without dependencies the WRC shape is observable
init: *x=0; *y=0; 0:X1=x; 1:X1=x; 1:X3=y; 1:X6=1; 2:X1=y; 2:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
thread 1:
    LDR X0,[X1]
    STR X6,[X3]
thread 2:
    LDR X0,[X1]
    LDR X4,[X5]
allowed: 1:X0=1 & 2:X0=1 & 2:X4=0
)",

R"(name: ISA2+dmb.sy+addr+addr
desc: the ISA2 shape: barrier then two dependency hops
init: *x=0; *y=0; *z=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=z; 1:X6=1; 2:X1=z; 2:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X2,X0,X0
    STR X6,[X3,X2]
thread 2:
    LDR X0,[X1]
    EOR X2,X0,X0
    LDR X4,[X5,X2]
forbidden: 1:X0=1 & 2:X0=1 & 2:X4=0
)",

R"(name: S+pos
desc: the S shape without barriers or dependencies is observable
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#2
    STR X0,[X1]
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    MOV X2,#1
    STR X2,[X3]
allowed: 1:X0=1 & *x=2
)",

R"(name: R+pos
desc: the R shape without barriers is observable
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1
    STR X2,[X3]
thread 1:
    MOV X0,#2
    STR X0,[X1]
    LDR X2,[X3]
allowed: *y=2 & 1:X2=0
)",

R"(name: IRIW+pos
desc: independent readers may disagree on write order when nothing
desc: orders their reads
init: *x=0; *y=0; 0:X1=x; 1:X1=y; 2:X1=x; 2:X3=y; 3:X1=y; 3:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
thread 1:
    MOV X0,#1
    STR X0,[X1]
thread 2:
    LDR X0,[X1]
    LDR X2,[X3]
thread 3:
    LDR X0,[X1]
    LDR X2,[X3]
allowed: 2:X0=1 & 2:X2=0 & 3:X0=1 & 3:X2=0
)",

R"(name: IRIW+addrs
desc: with address dependencies, other-multicopy-atomicity forbids the
desc: readers from disagreeing on the write order
init: *x=0; *y=0; 0:X1=x; 1:X1=y; 2:X1=x; 2:X3=y; 3:X1=y; 3:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
thread 1:
    MOV X0,#1
    STR X0,[X1]
thread 2:
    LDR X0,[X1]
    EOR X4,X0,X0
    LDR X2,[X3,X4]
thread 3:
    LDR X0,[X1]
    EOR X4,X0,X0
    LDR X2,[X3,X4]
forbidden: 2:X0=1 & 2:X2=0 & 3:X0=1 & 3:X2=0
)",

R"(name: LB+cmp-ctrls
desc: control dependencies through the NZCV flags (CMP + B.cond)
desc: forbid load buffering like register-value control dependencies
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1; 1:X1=y; 1:X3=x; 1:X2=1
thread 0:
    LDR X0,[X1]
    CMP X0,#0
    B.EQ LC00
LC00:
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    CMP X0,#0
    B.EQ LC10
LC10:
    STR X2,[X3]
forbidden: 0:X0=1 & 1:X0=1
)",

R"(name: MP+dmb.sy+cmp-ctrlisb
desc: a flags-mediated control dependency plus ISB orders the reads
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    CMP X0,#1
    B.NE LC00
LC00:
    ISB
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
)",

R"(name: MP+dmb.sy+cmp-ctrlsvc
desc: Figure 5's shape with the control dependency through CMP/B.cond
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    CMP X0,#1
    B.GE LC00
LC00:
    SVC #0
handler 1:
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
variant ExS: allowed
)",

// ---- Exclusives ----------------------------------------------------

R"(name: ATOM-2+2
desc: two successful exclusive pairs on one location cannot both read the
desc: initial value (atomic axiom)
init: *x=0; 0:X1=x; 1:X1=x
thread 0:
    LDXR X0,[X1]
    MOV X2,#1
    STXR W3,X2,[X1]
thread 1:
    LDXR X0,[X1]
    MOV X2,#2
    STXR W3,X2,[X1]
forbidden: 0:X0=0 & 1:X0=0 & 0:X3=0 & 1:X3=0
)",

R"(name: ATOM-fail
desc: a store-exclusive may fail, leaving the other pair intact
init: *x=0; 0:X1=x; 1:X1=x
thread 0:
    LDXR X0,[X1]
    MOV X2,#1
    STXR W3,X2,[X1]
thread 1:
    LDXR X0,[X1]
    MOV X2,#2
    STXR W3,X2,[X1]
allowed: 0:X0=0 & 1:X0=0 & 0:X3=0 & 1:X3=1
)",

// ---- Post-index writeback (s3.4) ------------------------------------

R"(name: LB+pos+wb
desc: post-index writeback publishes the base register early; the
desc: writeback carries no dependency from the loaded data
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1; 1:X1=y; 1:X3=x; 1:X2=1
thread 0:
    LDR X0,[X1],#8
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    STR X2,[X3]
allowed: 0:X0=1 & 1:X0=1
variant SEA_R: forbidden
)",

};

} // namespace

void
registerCoreSuite(TestRegistry &registry)
{
    for (const char *text : kCoreTests)
        registry.add("core", text);
}

} // namespace rex
