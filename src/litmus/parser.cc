#include "litmus/parser.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "base/strings.hh"
#include "litmus/herd_parser.hh"

namespace rex {

namespace {

/** Find-or-create a location id by name. */
LocationId
internLocation(LitmusTest &test, const std::string &name)
{
    for (LocationId i = 0; i < test.locations.size(); ++i) {
        if (test.locations[i] == name)
            return i;
    }
    if (test.locations.size() >= kMaxLocations)
        fatal(format("too many locations (max %zu): %s", kMaxLocations,
                     name.c_str()));
    test.locations.push_back(name);
    test.initValues.push_back(0);
    return static_cast<LocationId>(test.locations.size() - 1);
}

void
ensureThread(LitmusTest &test, std::size_t tid)
{
    if (tid >= kMaxThreads)
        fatal(format("thread id %zu out of range (max %zu threads)", tid,
                     kMaxThreads));
    if (test.threads.size() <= tid)
        test.threads.resize(tid + 1);
}

bool
looksLikeLocationName(const std::string &text)
{
    if (text.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(text[0])) &&
            text[0] != '_') {
        return false;
    }
    return true;
}

/** Parse one init entry ("*x=0", "0:X1=x", "1:PSTATE.I=1", ...). */
void
parseInitEntry(LitmusTest &test, const std::string &entry)
{
    auto eq = entry.find('=');
    if (eq == std::string::npos)
        fatal("init entry without '=': " + entry);
    std::string lhs = trim(entry.substr(0, eq));
    std::string rhs = trim(entry.substr(eq + 1));

    if (startsWith(lhs, "*")) {
        std::string name = trim(lhs.substr(1));
        std::int64_t value;
        if (!parseInteger(rhs, value))
            fatal("bad memory init value: " + entry);
        LocationId loc = internLocation(test, name);
        test.initValues[loc] = static_cast<std::uint64_t>(value);
        return;
    }

    auto colon = lhs.find(':');
    if (colon == std::string::npos)
        fatal("bad init entry: " + entry);
    std::int64_t tid_value;
    if (!parseInteger(lhs.substr(0, colon), tid_value) || tid_value < 0)
        fatal("bad thread id in init entry: " + entry);
    std::size_t tid = static_cast<std::size_t>(tid_value);
    ensureThread(test, tid);
    LitmusThread &thread = test.threads[tid];
    std::string target = toUpper(trim(lhs.substr(colon + 1)));

    std::int64_t value;
    bool is_int = parseInteger(rhs, value);

    if (target == "PSTATE.EL" || target == "EL") {
        if (!is_int)
            fatal("bad EL init: " + entry);
        thread.initialEl = static_cast<int>(value);
        return;
    }
    if (target == "PSTATE.I" || target == "DAIF.I") {
        if (!is_int)
            fatal("bad mask init: " + entry);
        thread.initialMasked = value != 0;
        return;
    }
    if (target == "EOIMODE") {
        if (!is_int)
            fatal("bad EOImode init: " + entry);
        thread.eoiMode1 = value != 0;
        return;
    }

    auto reg = isa::parseReg(target);
    if (!reg)
        fatal("bad register in init entry: " + entry);
    if (is_int) {
        thread.initRegs[*reg] = static_cast<std::uint64_t>(value);
    } else if (looksLikeLocationName(rhs)) {
        LocationId loc = internLocation(test, rhs);
        thread.initRegs[*reg] = locationAddress(loc);
    } else {
        fatal("bad init value: " + entry);
    }
}

/** Parse one condition atom ("0:X2=0" or "*x=1"). */
CondAtom
parseCondAtom(LitmusTest &test, const std::string &text)
{
    auto eq = text.find('=');
    if (eq == std::string::npos)
        fatal("condition atom without '=': " + text);
    std::string lhs = trim(text.substr(0, eq));
    std::string rhs = trim(text.substr(eq + 1));
    std::int64_t value;
    if (!parseInteger(rhs, value))
        fatal("bad condition value: " + text);

    CondAtom atom;
    atom.value = static_cast<std::uint64_t>(value);
    if (startsWith(lhs, "*")) {
        atom.kind = CondAtom::Kind::Memory;
        atom.loc = internLocation(test, trim(lhs.substr(1)));
        return atom;
    }
    auto colon = lhs.find(':');
    if (colon == std::string::npos)
        fatal("bad condition atom: " + text);
    std::int64_t tid;
    if (!parseInteger(lhs.substr(0, colon), tid) || tid < 0)
        fatal("bad thread id in condition atom: " + text);
    auto reg = isa::parseReg(trim(lhs.substr(colon + 1)));
    if (!reg)
        fatal("bad register in condition atom: " + text);
    atom.kind = CondAtom::Kind::Register;
    atom.tid = static_cast<ThreadId>(tid);
    atom.reg = *reg;
    return atom;
}

void
parseCondition(LitmusTest &test, const std::string &text)
{
    // Accept '&' and '/\' as conjunction.
    std::string normalised;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '\\') {
            normalised += '&';
            ++i;
        } else {
            normalised += text[i];
        }
    }
    for (const std::string &atom : split(normalised, '&')) {
        std::string t = trim(atom);
        if (!t.empty())
            test.finalCond.atoms.push_back(parseCondAtom(test, t));
    }
}

} // namespace

LitmusTest
parseLitmus(const std::string &text)
{
    // Classic herdtools files ("AArch64 <name>" header) are dispatched
    // to the herd-format parser; everything else uses the native
    // sectioned format documented in this header.
    if (looksLikeHerdFormat(text)) {
        LitmusTest herd = parseHerdLitmus(text);
        herd.sourceText = text;
        return herd;
    }

    LitmusTest test;
    test.sourceText = text;

    enum class Section { None, Thread, Handler };
    Section section = Section::None;
    std::size_t section_tid = 0;
    std::string body;
    bool have_cond = false;

    auto flushSection = [&]() {
        if (section == Section::None)
            return;
        ensureThread(test, section_tid);
        isa::Program program = isa::assemble(body);
        if (program.code.size() > kMaxProgramInstructions) {
            fatal(format("program of thread %zu too large: %zu "
                         "instructions (max %zu)",
                         section_tid, program.code.size(),
                         kMaxProgramInstructions));
        }
        if (section == Section::Thread)
            test.threads[section_tid].program = std::move(program);
        else
            test.threads[section_tid].handler = std::move(program);
        section = Section::None;
        body.clear();
    };

    for (const std::string &raw_line : split(text, '\n')) {
        // Strip comments.
        std::string line = raw_line;
        auto comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        std::string stripped = trim(line);
        if (stripped.empty())
            continue;

        std::string lower = toLower(stripped);
        auto headerValue = [&](const char *key) -> std::optional<std::string> {
            std::string prefix = std::string(key);
            if (startsWith(lower, prefix))
                return trim(stripped.substr(prefix.size()));
            return std::nullopt;
        };

        if (auto v = headerValue("name:")) {
            flushSection();
            test.name = *v;
            continue;
        }
        if (auto v = headerValue("desc:")) {
            flushSection();
            if (!test.description.empty())
                test.description += " ";
            test.description += *v;
            continue;
        }
        if (auto v = headerValue("init:")) {
            flushSection();
            for (const std::string &entry : split(*v, ';')) {
                std::string e = trim(entry);
                if (!e.empty())
                    parseInitEntry(test, e);
            }
            continue;
        }
        if (startsWith(lower, "thread ") || startsWith(lower, "handler ")) {
            flushSection();
            bool is_thread = startsWith(lower, "thread ");
            std::string rest = trim(stripped.substr(is_thread ? 7 : 8));
            if (!rest.empty() && rest.back() == ':')
                rest.pop_back();
            std::int64_t tid;
            if (!parseInteger(trim(rest), tid) || tid < 0)
                fatal("bad thread id in section header: " + stripped);
            section = is_thread ? Section::Thread : Section::Handler;
            section_tid = static_cast<std::size_t>(tid);
            continue;
        }
        if (startsWith(lower, "interrupt ")) {
            flushSection();
            // "interrupt N at LABEL [intid K]"
            std::vector<std::string> words = splitWhitespace(stripped);
            if (words.size() < 4 || toLower(words[2]) != "at")
                fatal("bad interrupt directive: " + stripped);
            std::int64_t tid;
            if (!parseInteger(words[1], tid) || tid < 0)
                fatal("bad thread id in interrupt directive: " + stripped);
            ensureThread(test, static_cast<std::size_t>(tid));
            LitmusThread &thread = test.threads[
                static_cast<std::size_t>(tid)];
            thread.interruptAt = words[3];
            if (words.size() >= 6 && toLower(words[4]) == "intid") {
                std::int64_t intid;
                if (!parseInteger(words[5], intid) || intid < 0)
                    fatal("bad intid: " + stripped);
                thread.interruptIntid = static_cast<std::uint32_t>(intid);
            }
            continue;
        }
        if (auto v = headerValue("allowed:")) {
            flushSection();
            test.expectedAllowed = true;
            parseCondition(test, *v);
            have_cond = true;
            continue;
        }
        if (auto v = headerValue("forbidden:")) {
            flushSection();
            test.expectedAllowed = false;
            parseCondition(test, *v);
            have_cond = true;
            continue;
        }
        if (startsWith(lower, "variant ")) {
            flushSection();
            auto colon = stripped.find(':');
            if (colon == std::string::npos)
                fatal("bad variant line: " + stripped);
            std::string variant = trim(stripped.substr(8, colon - 8));
            std::string verdict = toLower(trim(stripped.substr(colon + 1)));
            if (verdict != "allowed" && verdict != "forbidden")
                fatal("bad variant verdict: " + stripped);
            test.variantAllowed[variant] = verdict == "allowed";
            continue;
        }

        // Anything else is section body.
        if (section == Section::None)
            fatal("statement outside any section: " + stripped);
        body += stripped;
        body += '\n';
    }
    flushSection();

    if (test.name.empty())
        fatal("litmus test without a name");
    if (!have_cond)
        fatal("litmus test without a final condition: " + test.name);
    if (test.threads.empty())
        fatal("litmus test without threads: " + test.name);

    // Mark SGI receivers: threads with a handler, no explicit interrupt
    // point, and some SGI generated somewhere in the test.
    if (test.generatesSgis()) {
        for (LitmusThread &thread : test.threads) {
            if (!thread.handler.code.empty() && !thread.interruptAt)
                thread.sgiReceiver = true;
        }
    }

    return test;
}

LitmusTest
parseLitmusFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open litmus file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parseLitmus(text.str());
}

} // namespace rex
