#include "litmus/litmus.hh"

#include "base/logging.hh"

namespace rex {

std::optional<LocationId>
addressToLocation(std::uint64_t address, std::size_t num_locations)
{
    if (address == 0 || address % kLocationStride != 0)
        return std::nullopt;
    std::uint64_t index = address / kLocationStride - 1;
    if (index >= num_locations)
        return std::nullopt;
    return static_cast<LocationId>(index);
}

LocationId
LitmusTest::locationId(const std::string &name) const
{
    for (LocationId i = 0; i < locations.size(); ++i) {
        if (locations[i] == name)
            return i;
    }
    fatal("unknown location '" + name + "' in test " + this->name);
}

bool
LitmusTest::generatesSgis() const
{
    for (const LitmusThread &thread : threads) {
        for (const isa::Instruction &inst : thread.program.code) {
            if (inst.op == isa::Opcode::Msr &&
                    inst.sysreg == isa::Sysreg::ICC_SGI1R_EL1) {
                return true;
            }
        }
        for (const isa::Instruction &inst : thread.handler.code) {
            if (inst.op == isa::Opcode::Msr &&
                    inst.sysreg == isa::Sysreg::ICC_SGI1R_EL1) {
                return true;
            }
        }
    }
    return false;
}

} // namespace rex
