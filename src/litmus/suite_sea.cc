/**
 * @file
 * Synchronous-external-abort suite (§4).
 *
 * When loads (SEA_R) or stores (SEA_W) may report external aborts
 * synchronously, program-order-later instances are speculative until the
 * access completes. Writes cannot be speculative, so SEA_R forbids
 * load-buffering shapes and SEA_W forbids write-write reordering, while
 * read speculation (R-R reordering) stays allowed. These tests exercise
 * those consequences directly; the core suite's LB+pos / MP+po+addr /
 * MP+dmb.sy+isb record the same strengthening via variant lines.
 */

#include "litmus/registry.hh"

namespace rex {

namespace {

const char *kSeaTests[] = {

R"(name: LB+svc+po
desc: under SEA_R a load is ordered before a later context-synchronising
desc: exception entry, pinning the handler's store
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x; 1:X2=1
thread 0:
    LDR X0,[X1]
    SVC #0
thread 1:
    LDR X0,[X1]
    STR X2,[X3]
handler 0:
    MOV X2,#1
    STR X2,[X3]
allowed: 0:X0=1 & 1:X0=1
variant SEA_R: forbidden
variant SEA_RW: forbidden
variant SEA_W: allowed
variant ExS: allowed
)",

R"(name: S+po+data
desc: writer-side write-write reordering is allowed until stores may
desc: abort synchronously
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#2
    STR X0,[X1]
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X2,X0,X0
    ADD X2,X2,#1
    STR X2,[X3]
allowed: 1:X0=1 & *x=2
variant SEA_W: forbidden
variant SEA_RW: forbidden
variant SEA_R: allowed
variant ExS: allowed
)",

R"(name: R+po+dmb.sy
desc: the R shape with only program order on the writer side
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1
    STR X2,[X3]
thread 1:
    MOV X0,#2
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
allowed: *y=2 & 1:X2=0
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

R"(name: MP+po+po-rr
desc: read-read reordering survives all SEA variants: reads may be
desc: satisfied speculatively (s4.1)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    LDR X2,[X3]
allowed: 1:X0=1 & 1:X2=0
variant SEA_R: allowed
variant SEA_W: allowed
variant SEA_RW: allowed
variant ExS: allowed
)",

R"(name: LB+wb-base+po
desc: the post-index writeback publishes the new base early (s3.4): a
desc: store addressing through the written-back base has no dependency on
desc: the loaded data, so LB is allowed -- until SEA_R pins it (x is at
desc: 0x1000 and y at 0x2000, so the post-index offset 4096 retargets the
desc: base from x to y)
init: *x=0; *y=0; 0:X1=x; 0:X2=1; 1:X1=y; 1:X3=x; 1:X2=1
thread 0:
    LDR X0,[X1],#4096
    STR X2,[X1]
thread 1:
    LDR X0,[X1]
    STR X2,[X3]
allowed: 0:X0=1 & 1:X0=1
variant SEA_R: forbidden
variant SEA_RW: forbidden
)",

R"(name: SB+sea+isb
desc: an ISB after the first load orders it under SEA_R (the
desc: MP+dmb.sy+isb mechanism in an SB shape: still allowed, since the
desc: ISB only orders reads after it, not the store buffering itself)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    ISB
    LDR X2,[X3]
allowed: 0:X2=0 & 1:X2=0
variant SEA_R: allowed
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

};

} // namespace

void
registerSeaSuite(TestRegistry &registry)
{
    for (const char *text : kSeaTests)
        registry.add("sea", text);
}

} // namespace rex
