/**
 * @file
 * Generated suite: tests synthesized by src/gen and promoted into the
 * registry by the hammer's promotion pipeline (`example_rex_hammer
 * --promote SEED NAME`). Each entry is pinned source text (committed,
 * not regenerated at build time) with checker-computed verdict lines —
 * re-promoting must reproduce the verdicts byte-for-byte, a model
 * regression shows up as a verdict change, and
 * tests/test_operational.cc cross-checks every entry's operational
 * outcomes against the axiomatic model like any hand-written test.
 *
 * gen-stxr-fwd pins the soundness violation the hammer found at random
 * seed 426 (campaign `--seeds 0:2000`): the operational machine
 * forwarded the value of an *uncommitted* STXR to a po-later dependent
 * load, so a load could observe a store-exclusive that subsequently
 * failed. Its condition is the once-reachable outcome; the axiomatic
 * atomic axiom and the fixed machine (operational/machine.cc
 * canSatisfy) agree it is forbidden.
 */

#include "litmus/registry.hh"

namespace rex {

namespace {

const char *kGeneratedTests[] = {

// ---- Promoted cycle-mode shapes -------------------------------------

// cyc-DmbdRR-Fre-DmbdWW-Rfe (inventory index 217): the classic
// MP+dmb.sy+dmb.sy shape, re-derived from the cycle enumerator as a
// generator-pinning anchor.
R"(name: gen-mp-dmbs
desc: promoted cycle cyc-DmbdRR-Fre-DmbdWW-Rfe (message passing, both
desc: threads fenced) -- forbidden everywhere
init: *x=0; *y=0; 0:X10=x; 0:X11=y; 1:X10=x; 1:X11=y
thread 0:
    LDR X0,[X10]
    DMB SY
    LDR X1,[X11]
thread 1:
    MOV X6,#1
    STR X6,[X11]
    DMB SY
    MOV X6,#1
    STR X6,[X10]
forbidden: 0:X1=0 & 0:X0=1 & *x=1 & *y=1
variant ExS: forbidden
variant SEA_R: forbidden
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

// cyc-Coe-SvcdWR-EretdRR-Fre (inventory index 167): coherence through
// an SVC entry and an ERET return; ctxob makes the boundary
// order-preserving, so the cycle stays forbidden.
R"(name: gen-svc-eret-coe
desc: promoted cycle cyc-Coe-SvcdWR-EretdRR-Fre (coherence chained
desc: through SVC entry and ERET return) -- forbidden everywhere
init: *x=0; *y=0; 0:X10=x; 0:X11=y; 1:X10=x; 1:X11=y
thread 0:
    MOV X6,#1
    STR X6,[X10]
thread 1:
    MOV X6,#2
    STR X6,[X10]
    SVC #0
    LDR X1,[X10]
handler 1:
    LDR X0,[X11]
    ERET
forbidden: 1:X1=0 & *x=2
variant ExS: forbidden
variant SEA_R: forbidden
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

// cyc-Coe-IntdWR-DmbdRR-Fre (inventory index 172): the same chain but
// the boundary is a pended asynchronous interrupt (asyncob edges).
R"(name: gen-int-dmb-coe
desc: promoted cycle cyc-Coe-IntdWR-DmbdRR-Fre (coherence chained
desc: through a pended async interrupt) -- forbidden everywhere
init: *x=0; *y=0; 0:X10=x; 0:X11=y; 1:X10=x; 1:X11=y
thread 0:
    MOV X6,#1
    STR X6,[X10]
thread 1:
    MOV X6,#2
    STR X6,[X10]
LI1:
handler 1:
    LDR X0,[X11]
    DMB SY
    LDR X1,[X10]
interrupt 1 at LI1
forbidden: 1:X1=0 & *x=2
variant ExS: forbidden
variant SEA_R: forbidden
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

// ---- Promoted hammer findings ---------------------------------------

// Random seed 426: regression pin for the uncommitted-STXR forwarding
// bug (see the file comment). The condition is the outcome the broken
// machine reached: both exclusive pairs read 0 yet both STXRs succeed,
// and thread 1's dependent load observes the failed exclusive's value.
R"(name: gen-stxr-fwd
desc: hammer seed 426 -- a load must never observe the value of a
desc: store-exclusive that fails; the atomic axiom forbids two
desc: successful RMWs reading the same write
init: *x=0; *y=0; 0:X10=x; 0:X11=y; 1:X10=x; 1:X11=y
thread 0:
    DMB ST
    DMB ST
LI0:
thread 1:
    LDXR X0,[X10]
    EOR X6,X0,X0
    ADD X6,X6,#1
    STXR W8,X6,[X10]
    EOR X5,X0,X0
    ADD X7,X10,X5
    LDR X1,[X7]
handler 0:
    LDXR X0,[X10]
    EOR X6,X0,X0
    ADD X6,X6,#3
    STXR W8,X6,[X10]
interrupt 0 at LI0
forbidden: 0:X0=0 & 1:X0=0 & 1:X1=1 & *x=3
variant ExS: forbidden
variant SEA_R: forbidden
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

};

} // namespace

void
registerGeneratedSuite(TestRegistry &registry)
{
    for (const char *text : kGeneratedTests)
        registry.add("generated", text);
}

} // namespace rex
