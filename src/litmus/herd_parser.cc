#include "litmus/herd_parser.hh"

#include <cctype>

#include "base/logging.hh"
#include "base/strings.hh"
#include "isa/assembler.hh"

namespace rex {

namespace {

/** Find-or-create a location id by name (shared with the native
 *  parser's convention: first seen = lowest id). */
LocationId
internLocation(LitmusTest &test, const std::string &name)
{
    for (LocationId i = 0; i < test.locations.size(); ++i) {
        if (test.locations[i] == name)
            return i;
    }
    if (test.locations.size() >= kMaxLocations)
        fatal(format("too many locations (max %zu): %s", kMaxLocations,
                     name.c_str()));
    test.locations.push_back(name);
    test.initValues.push_back(0);
    return static_cast<LocationId>(test.locations.size() - 1);
}

void
ensureThread(LitmusTest &test, std::size_t tid)
{
    if (tid >= kMaxThreads)
        fatal(format("thread id %zu out of range (max %zu threads)", tid,
                     kMaxThreads));
    if (test.threads.size() <= tid)
        test.threads.resize(tid + 1);
}

/** Strip an optional C-style type annotation ("uint64_t x" -> "x"). */
std::string
stripType(const std::string &lhs)
{
    auto tokens = splitWhitespace(lhs);
    return tokens.empty() ? lhs : tokens.back();
}

void
parseInitEntry(LitmusTest &test, const std::string &entry)
{
    auto eq = entry.find('=');
    if (eq == std::string::npos)
        fatal("herd init entry without '=': " + entry);
    std::string lhs = trim(entry.substr(0, eq));
    std::string rhs = trim(entry.substr(eq + 1));

    auto colon = lhs.find(':');
    if (colon != std::string::npos) {
        // Register binding "T:Xn=value".
        std::int64_t tid;
        if (!parseInteger(lhs.substr(0, colon), tid) || tid < 0)
            fatal("bad thread id in herd init entry: " + entry);
        ensureThread(test, static_cast<std::size_t>(tid));
        LitmusThread &thread = test.threads[static_cast<std::size_t>(tid)];
        std::string target = toUpper(trim(lhs.substr(colon + 1)));
        if (target == "PSTATE.EL" || target == "EL") {
            std::int64_t el;
            if (!parseInteger(rhs, el))
                fatal("bad EL in herd init entry: " + entry);
            thread.initialEl = static_cast<int>(el);
            return;
        }
        auto reg = isa::parseReg(target);
        if (!reg)
            fatal("bad register in herd init entry: " + entry);
        std::int64_t value;
        if (parseInteger(rhs, value)) {
            thread.initRegs[*reg] = static_cast<std::uint64_t>(value);
        } else {
            thread.initRegs[*reg] =
                locationAddress(internLocation(test, rhs));
        }
        return;
    }

    // Memory cell: "x=1", "*x=1", or "uint64_t x=1".
    std::string name = stripType(lhs);
    if (!name.empty() && name[0] == '*')
        name = trim(name.substr(1));
    std::int64_t value;
    if (!parseInteger(rhs, value))
        fatal("bad memory value in herd init entry: " + entry);
    LocationId loc = internLocation(test, name);
    test.initValues[loc] = static_cast<std::uint64_t>(value);
}

CondAtom
parseCondAtom(LitmusTest &test, const std::string &text)
{
    auto eq = text.find('=');
    if (eq == std::string::npos)
        fatal("herd condition atom without '=': " + text);
    std::string lhs = trim(text.substr(0, eq));
    std::string rhs = trim(text.substr(eq + 1));
    std::int64_t value;
    if (!parseInteger(rhs, value))
        fatal("bad herd condition value: " + text);

    CondAtom atom;
    atom.value = static_cast<std::uint64_t>(value);
    auto colon = lhs.find(':');
    if (colon != std::string::npos) {
        std::int64_t tid;
        if (!parseInteger(lhs.substr(0, colon), tid) || tid < 0)
            fatal("bad thread id in herd condition atom: " + text);
        auto reg = isa::parseReg(trim(lhs.substr(colon + 1)));
        if (!reg)
            fatal("bad register in herd condition atom: " + text);
        atom.kind = CondAtom::Kind::Register;
        atom.tid = static_cast<ThreadId>(tid);
        atom.reg = *reg;
        return atom;
    }
    // Memory atom: "x=1" or "[x]=1".
    std::string name = lhs;
    if (!name.empty() && name.front() == '[' && name.back() == ']')
        name = trim(name.substr(1, name.size() - 2));
    if (!name.empty() && name[0] == '*')
        name = trim(name.substr(1));
    atom.kind = CondAtom::Kind::Memory;
    atom.loc = internLocation(test, name);
    return atom;
}

} // namespace

bool
looksLikeHerdFormat(const std::string &text)
{
    for (const std::string &raw : split(text, '\n')) {
        std::string line = trim(raw);
        if (line.empty() || startsWith(line, "(*") ||
                startsWith(line, "//")) {
            continue;
        }
        return startsWith(line, "AArch64 ") || startsWith(line, "AARCH64 ");
    }
    return false;
}

LitmusTest
parseHerdLitmus(const std::string &text)
{
    LitmusTest test;

    enum class Phase { Header, Init, Programs, Condition };
    Phase phase = Phase::Header;

    // Per-thread assembly accumulated from the column rows.
    std::vector<std::string> bodies;
    bool have_cond = false;

    for (const std::string &raw : split(text, '\n')) {
        std::string line = trim(raw);
        // Strip (* ... *) single-line comments and blank lines.
        if (line.empty() || startsWith(line, "(*"))
            continue;

        switch (phase) {
          case Phase::Header: {
            if (startsWith(toUpper(line), "AARCH64")) {
                test.name = trim(line.substr(7));
                continue;
            }
            if (line.front() == '"') {
                std::string desc = line;
                if (desc.front() == '"')
                    desc.erase(0, 1);
                if (!desc.empty() && desc.back() == '"')
                    desc.pop_back();
                test.description = desc;
                continue;
            }
            if (line.front() == '{') {
                // Init entries may share the brace lines:
                // "{ x=0; 0:X1=x; }" or "{ x=0;" ... "}".
                std::string rest = trim(line.substr(1));
                bool closed = !rest.empty() && rest.back() == '}';
                if (closed)
                    rest = trim(rest.substr(0, rest.size() - 1));
                for (const std::string &entry : split(rest, ';')) {
                    std::string e = trim(entry);
                    if (!e.empty())
                        parseInitEntry(test, e);
                }
                phase = closed ? Phase::Programs : Phase::Init;
                continue;
            }
            fatal("unexpected herd header line: " + line);
          }

          case Phase::Init: {
            std::string content = line;
            bool closed = content.back() == '}';
            if (closed)
                content = trim(content.substr(0, content.size() - 1));
            for (const std::string &entry : split(content, ';')) {
                std::string e = trim(entry);
                if (!e.empty())
                    parseInitEntry(test, e);
            }
            if (closed)
                phase = Phase::Programs;
            continue;
          }

          case Phase::Programs: {
            if (startsWith(line, "exists") || startsWith(line, "~exists") ||
                    startsWith(line, "forall") ||
                    startsWith(line, "locations")) {
                phase = Phase::Condition;
                // Fall through to condition handling below by
                // re-dispatching this line.
            } else {
                // A program row: columns separated by '|', ';'-terminated.
                std::string row = line;
                if (!row.empty() && row.back() == ';')
                    row.pop_back();
                std::vector<std::string> cells = split(row, '|');
                if (bodies.size() < cells.size())
                    bodies.resize(cells.size());
                bool is_header = trim(cells[0]).size() >= 2 &&
                    trim(cells[0])[0] == 'P';
                for (std::size_t t = 0; t < cells.size(); ++t) {
                    std::string cell = trim(cells[t]);
                    if (is_header || cell.empty())
                        continue;
                    bodies[t] += cell + "\n";
                }
                continue;
            }
            [[fallthrough]];
          }

          case Phase::Condition: {
            if (startsWith(line, "locations"))
                continue;  // display directive
            bool negated = false;
            std::string cond = line;
            if (startsWith(cond, "~exists")) {
                negated = true;
                cond = trim(cond.substr(7));
            } else if (startsWith(cond, "exists")) {
                cond = trim(cond.substr(6));
            } else if (startsWith(cond, "forall")) {
                fatal("herd 'forall' conditions are unsupported");
            }
            if (!cond.empty() && cond.front() == '(' &&
                    cond.back() == ')') {
                cond = trim(cond.substr(1, cond.size() - 2));
            }
            if (cond.find("\\/") != std::string::npos ||
                    cond.find("~(") != std::string::npos) {
                fatal("herd condition uses disjunction/negation; only "
                      "conjunctions are supported: " + cond);
            }
            // Split on /\ conjunctions.
            std::string normalised;
            for (std::size_t i = 0; i < cond.size(); ++i) {
                if (cond[i] == '/' && i + 1 < cond.size() &&
                        cond[i + 1] == '\\') {
                    normalised += '&';
                    ++i;
                } else {
                    normalised += cond[i];
                }
            }
            for (const std::string &atom : split(normalised, '&')) {
                std::string a = trim(atom);
                if (!a.empty()) {
                    test.finalCond.atoms.push_back(
                        parseCondAtom(test, a));
                }
            }
            test.expectedAllowed = !negated;
            have_cond = true;
            continue;
          }
        }
    }

    if (test.name.empty())
        fatal("herd litmus test without a name");
    if (!have_cond)
        fatal("herd litmus test without a condition: " + test.name);
    ensureThread(test, bodies.empty() ? 0 : bodies.size() - 1);
    for (std::size_t t = 0; t < bodies.size(); ++t) {
        test.threads[t].program = isa::assemble(bodies[t]);
        if (test.threads[t].program.code.size() >
                kMaxProgramInstructions) {
            fatal(format("program of P%zu too large: %zu instructions "
                         "(max %zu)",
                         t, test.threads[t].program.code.size(),
                         kMaxProgramInstructions));
        }
    }
    if (test.threads.empty())
        fatal("herd litmus test without threads: " + test.name);
    return test;
}

} // namespace rex
