/**
 * @file
 * Litmus-test representation.
 *
 * A litmus test (§3.2) is a small multi-threaded program with an initial
 * state and a final-state condition, used to catalogue which relaxed
 * behaviours an architecture allows. This reproduction extends the classic
 * format with the paper's exception machinery: per-thread exception
 * handlers, pended interrupts at labelled program points (the Isla
 * construct of §5.1), initial exception level, and GIC EOImode.
 */

#ifndef REX_LITMUS_LITMUS_HH
#define REX_LITMUS_LITMUS_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "events/event.hh"
#include "isa/assembler.hh"
#include "isa/register.hh"

namespace rex {

/**
 * Memory addresses of locations: location i lives at (i + 1) * 0x1000.
 * Address 0 (and any other unmapped address) faults with a translation
 * abort, which is how fault tests (`MP+dmb.sy+fault`) trigger handlers.
 */
inline constexpr std::uint64_t kLocationStride = 0x1000;

/**
 * Parser input bounds. Litmus tests are tiny by construction (the
 * paper's largest uses 4 threads and a handful of locations); these
 * caps exist so a malformed or hostile input — a five-billion thread
 * id, a megabyte program — is a clean diagnostic instead of an
 * allocation blow-up. They bound what rexd will accept over the wire,
 * so keep docs/SERVER.md in sync when changing them.
 */
inline constexpr std::size_t kMaxThreads = 16;
inline constexpr std::size_t kMaxLocations = 64;
inline constexpr std::size_t kMaxProgramInstructions = 1024;

/** The address of location @p loc. */
inline constexpr std::uint64_t
locationAddress(LocationId loc)
{
    return (static_cast<std::uint64_t>(loc) + 1) * kLocationStride;
}

/** Map an address back to a location; nullopt when unmapped. */
std::optional<LocationId> addressToLocation(std::uint64_t address,
                                            std::size_t num_locations);

/** One thread of a litmus test. */
struct LitmusThread {
    /** Main program. */
    isa::Program program;

    /** Exception handler; empty when the thread takes no exceptions.
     *  A handler ending in ERET resumes the main program; a handler
     *  without ERET terminates the thread (as in the paper's tests). */
    isa::Program handler;

    /** Initial register values. */
    std::array<std::uint64_t, isa::kNumRegs> initRegs{};

    /** Initial exception level (PSTATE.EL). */
    int initialEl = 0;

    /** Initial interrupt mask (PSTATE.I); false = interrupts enabled. */
    bool initialMasked = false;

    /** GIC EOImode for this PE (EOImode=1 splits drop/deactivate). */
    bool eoiMode1 = false;

    /**
     * When set, an asynchronous interrupt is pended at this label of the
     * main program ("interrupt at=L", §5.1); the thread takes it exactly
     * there.
     */
    std::optional<std::string> interruptAt;

    /** INTID of the pended interrupt (for interruptAt). */
    std::uint32_t interruptIntid = 0;

    /**
     * True when this thread may receive SGIs: the enumerator considers
     * executions where a generated SGI targeting this thread is taken at
     * each unmasked program point (and executions where it is not taken).
     * Set automatically by the parser when the thread has a handler and
     * the test generates SGIs.
     */
    bool sgiReceiver = false;
};

/** One conjunct of the final-state condition. */
struct CondAtom {
    enum class Kind : std::uint8_t {
        Register,  //!< tid:Xn = value
        Memory,    //!< *loc = value
    };
    Kind kind = Kind::Register;
    ThreadId tid = 0;
    isa::RegId reg = 0;
    LocationId loc = 0;
    std::uint64_t value = 0;
};

/** The final-state condition: a conjunction of atoms. */
struct Condition {
    std::vector<CondAtom> atoms;
};

/** A complete litmus test. */
struct LitmusTest {
    std::string name;
    std::string description;

    /**
     * The verbatim text this test was parsed from (either format);
     * empty for tests constructed programmatically. This is what makes
     * a test re-parseable in another process: the engine's supervised
     * (worker-pool) mode ships it over the job IPC instead of trying to
     * serialise the parsed structure.
     */
    std::string sourceText;

    std::vector<LitmusThread> threads;

    /** Location names, indexed by LocationId. */
    std::vector<std::string> locations;

    /** Initial memory values, indexed by LocationId. */
    std::vector<std::uint64_t> initValues;

    /** The interesting final state. */
    Condition finalCond;

    /** Architectural intent under the baseline model: is the final state
     *  observable? */
    bool expectedAllowed = false;

    /**
     * Expected verdicts under named model variants, where they differ
     * from or refine the baseline (the paper's param-refs columns).
     * Keys: "base", "ExS", "SEA_R", "SEA_W", "SEA_RW".
     */
    std::map<std::string, bool> variantAllowed;

    /** Find a location id by name; fatal() when absent. */
    LocationId locationId(const std::string &name) const;

    /** True when any thread's code writes ICC_SGI1R_EL1. */
    bool generatesSgis() const;
};

} // namespace rex

#endif // REX_LITMUS_LITMUS_HH
