#include "litmus/registry.hh"

#include <algorithm>

#include "base/logging.hh"
#include "litmus/parser.hh"

namespace rex {

const TestRegistry &
TestRegistry::instance()
{
    static TestRegistry *registry = [] {
        auto *r = new TestRegistry();
        registerCoreSuite(*r);
        registerExceptionSuite(*r);
        registerSeaSuite(*r);
        registerGicSuite(*r);
        registerGeneratedSuite(*r);
        return r;
    }();
    return *registry;
}

void
TestRegistry::add(const std::string &suite_name, const std::string &text)
{
    LitmusTest test = parseLitmus(text);
    if (_byName.count(test.name))
        fatal("duplicate litmus test name '" + test.name + "'");
    _byName[test.name] = _entries.size();
    _entries.push_back({suite_name, std::move(test), text});
}

const std::string &
TestRegistry::sourceText(const std::string &name) const
{
    auto it = _byName.find(name);
    if (it == _byName.end())
        fatal("unknown litmus test '" + name + "'");
    return _entries[it->second].text;
}

const LitmusTest &
TestRegistry::get(const std::string &name) const
{
    auto it = _byName.find(name);
    if (it == _byName.end())
        fatal("unknown litmus test '" + name + "'");
    return _entries[it->second].test;
}

bool
TestRegistry::has(const std::string &name) const
{
    return _byName.count(name) > 0;
}

std::vector<const LitmusTest *>
TestRegistry::suite(const std::string &name) const
{
    std::vector<const LitmusTest *> out;
    for (const Entry &entry : _entries) {
        if (entry.suite == name)
            out.push_back(&entry.test);
    }
    return out;
}

std::vector<const LitmusTest *>
TestRegistry::all() const
{
    std::vector<const LitmusTest *> out;
    for (const Entry &entry : _entries)
        out.push_back(&entry.test);
    return out;
}

std::vector<std::string>
TestRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, index] : _byName)
        out.push_back(name);
    return out;
}

} // namespace rex
