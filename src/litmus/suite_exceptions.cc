/**
 * @file
 * Exceptions suite (§3): relaxed behaviour across exception boundaries.
 *
 * Contains every litmus test shown in the paper's figures 4-8, the
 * MP+dmb.sy+svc shape of §3.2.2, and further hand-written tests covering
 * the same mechanisms (entry-only / exit-only reordering, dependencies
 * crossing boundaries, system-register dependency composition, §3.4
 * writeback-unwinding, and the FEAT_ExS / FEAT_ETS2 parameter axes).
 *
 * Expected verdicts follow the paper's figures; `variant` lines record
 * the param-refs columns.
 */

#include "litmus/registry.hh"

namespace rex {

namespace {

const char *kExceptionTests[] = {

// ---- Figure 4 -------------------------------------------------------

R"(name: SB+dmb.sy+eret
desc: reads and writes execute out-of-order across exception entry+exit
desc: (Figure 4); under SEA_W the handler store pins the post-return read
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
thread 1:
    SVC #0
    LDR X2,[X3]
handler 1:
    MOV X0,#1
    STR X0,[X1]
    ERET
allowed: 0:X2=0 & 1:X2=0
variant ExS: allowed
variant SEA_R: allowed
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

// ---- Figure 5 -------------------------------------------------------

R"(name: MP+dmb.sy+ctrlsvc
desc: context-synchronising exception entry is never speculative
desc: (Figure 5): a control dependency into the SVC orders the reads
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    CBNZ X0,LC00
LC00:
    SVC #0
handler 1:
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
variant ExS: allowed
variant SEA_R: forbidden
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

// ---- Figure 6 -------------------------------------------------------

R"(name: SB+dmb.sy+rfisvc-addr
desc: a store forwards to a read inside the (non-speculative) handler
desc: (Figure 6)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=y; 1:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    SVC #0
handler 1:
    LDR X2,[X3]
    EOR X6,X2,X2
    LDR X4,[X5,X6]
allowed: 0:X2=0 & 1:X2=1 & 1:X4=0
variant ExS: allowed
variant SEA_R: allowed
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

// ---- Figure 7 -------------------------------------------------------

R"(name: MP.EL1+dmb.sy+dataesrsvc
desc: a dependent write to ESR composes with the SVC's context
desc: synchronisation (Figure 7, top)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:PSTATE.EL=1; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    MRS X4,ESR_EL1
    EOR X5,X0,X0
    ADD X5,X4,X5
    MSR ESR_EL1,X5
    SVC #0
handler 1:
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
variant ExS: allowed
)",

R"(name: MP+dmb.sy+ctrlelr
desc: a dependent write to the (self-synchronising) ELR is preserved and
desc: feeds the ERET (Figure 7, bottom; the paper's listing has X4 where
desc: the dependency chain requires X5)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    SVC #0
    LDR X2,[X3]
handler 1:
    LDR X0,[X1]
    MRS X4,ELR_EL1
    EOR X5,X0,X0
    ADD X5,X4,X5
    MSR ELR_EL1,X5
    ERET
forbidden: 1:X0=1 & 1:X2=0
variant ExS: allowed
variant SEA_R: forbidden
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

// ---- Figure 8 -------------------------------------------------------

R"(name: MP+dmb.sy+fault
desc: FEAT_ETS2 gives translation faults a barrier from program-order-
desc: earlier instances (Figure 8, top)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    MOV X5,#0
    LDR X4,[X5]
handler 1:
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
variant noETS2: allowed
)",

R"(name: MP+dmb.sy+int
desc: an asynchronous interrupt gets no such barrier: the handler read
desc: may satisfy before the program-order-earlier read (Figure 8,
desc: bottom)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
L:
    NOP
handler 1:
    LDR X2,[X3]
interrupt 1 at L
allowed: 1:X0=1 & 1:X2=0
)",

// ---- s3.2.2: MP+dmb.sy+svc -----------------------------------------

R"(name: MP+dmb.sy+svc
desc: exception entry+return act like an ISB with no dependency into it
desc: (s3.2.2): allowed, by analogy with MP+dmb.sy+isb; forbidden once
desc: loads may abort synchronously
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    SVC #0
    LDR X2,[X3]
handler 1:
    ERET
allowed: 1:X0=1 & 1:X2=0
variant ExS: allowed
variant SEA_R: forbidden
variant SEA_W: allowed
variant SEA_RW: forbidden
)",

// ---- Entry-only / exit-only reordering ------------------------------

R"(name: SB+dmb.sy+svc-entry
desc: a read in the handler may satisfy before the pre-SVC store
desc: propagates (entry-only reordering)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    SVC #0
handler 1:
    LDR X2,[X3]
allowed: 0:X2=0 & 1:X2=0
variant ExS: allowed
variant SEA_R: allowed
variant SEA_W: forbidden
variant SEA_RW: forbidden
)",

R"(name: SB+dmb.sy+svceret-both
desc: store and read reorder across the composition of exception entry
desc: and return (the store before SVC, the read after ERET)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    SVC #0
    LDR X2,[X3]
handler 1:
    ERET
allowed: 0:X2=0 & 1:X2=0
variant SEA_W: forbidden
)",

R"(name: SB+dmb.sy+erets
desc: exception boundaries on both threads still do not act as memory
desc: barriers
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    SVC #0
    LDR X2,[X3]
thread 1:
    SVC #0
    LDR X2,[X3]
handler 0:
    MOV X0,#1
    STR X0,[X1]
    ERET
handler 1:
    MOV X0,#1
    STR X0,[X1]
    ERET
allowed: 0:X2=0 & 1:X2=0
variant SEA_W: forbidden
)",

// ---- Dependencies crossing exception boundaries ---------------------

R"(name: MP+dmb.sy+addrsvc
desc: an address dependency from a pre-SVC load into a handler load is
desc: preserved across the boundary
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 1:
    LDR X0,[X1]
    EOR X4,X0,X0
    ADD X5,X3,X4
    SVC #0
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
handler 1:
    LDR X2,[X5]
forbidden: 1:X0=1 & 1:X2=0
)",

R"(name: LB+datasvc+data
desc: a data dependency through an exception boundary still forbids load
desc: buffering
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    LDR X0,[X1]
    SVC #0
thread 1:
    LDR X0,[X1]
    EOR X2,X0,X0
    ADD X2,X2,#1
    STR X2,[X3]
handler 0:
    EOR X2,X0,X0
    ADD X2,X2,#1
    STR X2,[X3]
forbidden: 0:X0=1 & 1:X0=1
)",

R"(name: MP+dmb.sy+ctrleret
desc: a control dependency into a context-synchronising ERET orders
desc: program-order-later reads
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    SVC #0
    LDR X2,[X3]
handler 1:
    LDR X0,[X1]
    CBNZ X0,LH00
LH00:
    ERET
forbidden: 1:X0=1 & 1:X2=0
variant ExS: allowed
variant ExS_EIS0: forbidden
variant ExS_EOS0: allowed
)",

R"(name: MP+dmb.sy+svc-noeret
desc: entry alone (handler never returns) is still context-synchronising
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    CBNZ X0,LC00
LC00:
    SVC #0
handler 1:
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
variant ExS: allowed
variant ExS_EIS0: allowed
variant ExS_EOS0: forbidden
)",

// ---- System-register dependency composition -------------------------

R"(name: MP+dmb.sy+msresr-nodep
desc: writing ESR with an independent value imposes no ordering: only
desc: *dependent* system-register writes compose with context sync
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:PSTATE.EL=1; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    MOV X5,#7
    MSR ESR_EL1,X5
    SVC #0
handler 1:
    LDR X2,[X3]
allowed: 1:X0=1 & 1:X2=0
)",

R"(name: MP.EL1+dmb.sy+datatpidrsvc
desc: TPIDR_EL1 is a plain system register, so a dependent write into it
desc: composes with context synchronisation like ESR (s3.2.5 notes Arm is
desc: still investigating whether TPIDR could be weaker)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:PSTATE.EL=1; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    MRS X4,TPIDR_EL1
    EOR X5,X0,X0
    ADD X5,X4,X5
    MSR TPIDR_EL1,X5
    SVC #0
handler 1:
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
variant ExS: allowed
)",

R"(name: MP+dmb.sy+dataelr-roundtrip
desc: a dependent ELR write read back by MRS carries the dependency to a
desc: handler store
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x; 1:X6=1
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    SVC #0
    NOP
handler 1:
    LDR X0,[X1]
    MRS X4,ELR_EL1
    EOR X5,X0,X0
    ADD X5,X4,X5
    MSR ELR_EL1,X5
    MRS X7,ELR_EL1
    EOR X8,X7,X7
    LDR X2,[X3,X8]
forbidden: 1:X0=1 & 1:X2=0
)",

// ---- Faults and s3.4 writeback --------------------------------------

R"(name: FAULT+wb-unchanged
desc: a faulting post-index access leaves the writeback register
desc: unchanged for instances after the exception boundary (s3.4)
init: *x=0; 0:X9=x
thread 0:
    MOV X5,#0
    LDR X4,[X5],#8
handler 0:
    MOV X6,#1
forbidden: 0:X5=8
)",

R"(name: FAULT+wb-success
desc: a non-faulting post-index access does write back (x lives at
desc: 0x1000, so the base advances to 0x1008)
init: *x=0; 0:X1=x
thread 0:
    LDR X4,[X1],#8
allowed: 0:X4=0 & 0:X1=4104
)",

R"(name: MP+dmb.sy+fault-addr
desc: with ETS2 the faulting access is ordered even when its address
desc: depends on the first load
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X5,X0,X0
    LDR X4,[X5]
handler 1:
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
variant noETS2: forbidden
)",

// ---- Interrupt ordering (s3.2.6) ------------------------------------

R"(name: MP+dmb.sy+interet
desc: a handler read and a post-return read are both ordered after the
desc: TakeInterrupt, but not with each other: still allowed
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
L:
    NOP
    LDR X2,[X3]
handler 1:
    LDR X0,[X1]
    ERET
interrupt 1 at L
allowed: 1:X0=1 & 1:X2=0
)",

R"(name: LB+ctrlint+data
desc: asynchronous exceptions cannot be taken speculatively (s3.2.6): a
desc: control dependency into the interrupt point orders the handler's
desc: store after the read
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 0:X2=1; 1:X1=y; 1:X3=x
thread 0:
    LDR X0,[X1]
    CBNZ X0,L
L:
    NOP
handler 0:
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X2,X0,X0
    ADD X2,X2,#1
    STR X2,[X3]
interrupt 0 at L
forbidden: 0:X0=1 & 1:X0=1
)",

R"(name: SB+dmb.sy+int
desc: a handler read may still satisfy early relative to a pre-interrupt
desc: store on the other thread
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
L:
    NOP
handler 1:
    LDR X2,[X3]
interrupt 1 at L
allowed: 0:X2=0 & 1:X2=0
variant SEA_W: forbidden
)",

// ---- Acquire/release across exception boundaries ---------------------

R"(name: MP+dmb.sy+svc-acq-eret
desc: an acquire load in the handler orders the post-return read
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    SVC #0
    LDR X2,[X3]
handler 1:
    LDAR X0,[X1]
    ERET
forbidden: 1:X0=1 & 1:X2=0
variant ExS: forbidden
)",

R"(name: SB+dmb.sy+eret-rel
desc: a store-release in the handler does not order a post-return read
desc: (releases order earlier accesses, not later reads)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    LDR X2,[X3]
thread 1:
    SVC #0
    LDR X2,[X3]
handler 1:
    MOV X0,#1
    STLR X0,[X1]
    ERET
allowed: 0:X2=0 & 1:X2=0
variant SEA_W: forbidden
)",

// ---- Classic shapes through exception boundaries ----------------------

R"(name: WRC+addrsvc+addr
desc: WRC with the dependent store inside an exception handler:
desc: dependencies and multicopy atomicity survive the boundary
init: *x=0; *y=0; 0:X1=x; 1:X1=x; 1:X3=y; 1:X6=1; 2:X1=y; 2:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
thread 1:
    LDR X0,[X1]
    EOR X2,X0,X0
    SVC #0
thread 2:
    LDR X0,[X1]
    EOR X2,X0,X0
    LDR X4,[X5,X2]
handler 1:
    STR X6,[X3,X2]
forbidden: 1:X0=1 & 2:X0=1 & 2:X4=0
)",

R"(name: S+dmb.sy+datasvc
desc: the S shape with the data-dependent store in the handler
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#2
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    SVC #0
handler 1:
    EOR X2,X0,X0
    ADD X2,X2,#1
    STR X2,[X3]
forbidden: 1:X0=1 & *x=2
)",

R"(name: MP+dmb.sy+ldsvc
desc: a DMB LD before the SVC orders the handler's read after the
desc: earlier load
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    DMB LD
    SVC #0
handler 1:
    LDR X2,[X3]
forbidden: 1:X0=1 & 1:X2=0
variant ExS: forbidden
)",

R"(name: CoRR+svc
desc: per-location coherence applies across exception boundaries
init: *x=0; 0:X1=x; 1:X1=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
thread 1:
    LDR X0,[X1]
    SVC #0
handler 1:
    LDR X2,[X1]
forbidden: 1:X0=1 & 1:X2=0
)",

R"(name: MP+rel+svc
desc: release on the writer with only an SVC between the reads: like
desc: MP+rel+isb-style shapes, the stale read survives
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1
    STLR X2,[X3]
thread 1:
    LDR X0,[X1]
    SVC #0
handler 1:
    LDR X2,[X3]
allowed: 1:X0=1 & 1:X2=0
variant SEA_R: forbidden
variant SEA_RW: forbidden
variant SEA_W: allowed
)",

// ---- More interrupt-boundary dependencies ----------------------------

R"(name: MP+dmb.sy+addrint
desc: an address dependency carried (through registers) into an
desc: interrupt handler still orders the reads
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X4,X0,X0
    ADD X5,X3,X4
L:
    NOP
handler 1:
    LDR X2,[X5]
interrupt 1 at L
forbidden: 1:X0=1 & 1:X2=0
)",

R"(name: ATOM+svc
desc: the exclusive monitor is not modelled as cleared by exception
desc: entry/return: an SVC spliced into the exclusive pair leaves the
desc: atomic axiom in force
init: *x=0; 0:X1=x; 1:X1=x
thread 0:
    LDXR X0,[X1]
    SVC #0
    MOV X2,#1
    STXR W3,X2,[X1]
thread 1:
    LDXR X0,[X1]
    MOV X2,#2
    STXR W3,X2,[X1]
handler 0:
    ERET
forbidden: 0:X0=0 & 1:X0=0 & 0:X3=0 & 1:X3=0
)",

R"(name: MP+dmb.sy+addr-pre
desc: an address dependency through a pre-index addressing mode is
desc: still a dependency
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X4,X0,X0
    ADD X5,X5,X4
    LDR X2,[X5,#0]!
forbidden: 1:X0=1 & 1:X2=0
)",

R"(name: MP.EL0+dmb.sy+svc
desc: the privilege level has little to no effect on these behaviours
desc: (s3.2.3): the EL0->EL1 system call behaves like the same-EL one
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:PSTATE.EL=0; 1:X1=y; 1:X3=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    SVC #0
    LDR X2,[X3]
handler 1:
    ERET
allowed: 1:X0=1 & 1:X2=0
variant SEA_R: forbidden
)",

R"(name: MP+dsb.sy+addr
desc: DSB SY is at least as strong as DMB SY (the barrier classes are
desc: upwards-closed, s5)
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X5=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DSB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDR X0,[X1]
    EOR X6,X0,X0
    LDR X4,[X5,X6]
forbidden: 1:X0=1 & 1:X4=0
)",

// ---- Pair accesses and s6's UNKNOWN side effects ----------------------

R"(name: STP+pair-unordered
desc: the two single-copy-atomic writes of an STP are not ordered with
desc: each other: a reader may see the second without the first (x and
desc: y occupy adjacent cells)
init: *x=0; *y=0; 0:X1=x; 0:X2=1; 0:X3=2; 1:X1=y; 1:X3=x
thread 0:
    STP X2,X3,[X1]
thread 1:
    LDR X0,[X1]
    EOR X4,X0,X0
    LDR X2,[X3,X4]
allowed: 1:X0=2 & 1:X2=0
)",

R"(name: STP+partial-fault-racy-read
desc: when the second element of an STP faults, the first element's
desc: write is an UNKNOWN-tinged side effect that a racy reader may
desc: observe (s6); the checker flags such candidates
init: *x=0; 0:X1=x; 0:X2=1; 0:X3=2; 1:X1=x
thread 0:
    STP X2,X3,[X1]
handler 0:
    MOV X6,#1
thread 1:
    LDR X0,[X1]
allowed: 0:X6=1 & 1:X0=1
)",

R"(name: LDP+pair-mp
desc: the two reads of an LDP are mutually unordered: the element
desc: reading the newer cell may see the message while the other misses
desc: the data
init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB SY
    MOV X2,#1
    STR X2,[X3]
thread 1:
    LDP X0,X2,[X1]
allowed: 1:X2=1 & 1:X0=0
)",

R"(name: FAULT+wb-pre-unchanged
desc: a faulting pre-index access also leaves the base register
desc: unchanged (s3.4)
init: *x=0; 0:X9=x
thread 0:
    MOV X5,#0
    LDR X4,[X5,#8]!
handler 0:
    MOV X6,#1
forbidden: 0:X5=8
)",

};

} // namespace

void
registerExceptionSuite(TestRegistry &registry)
{
    for (const char *text : kExceptionTests)
        registry.add("exceptions", text);
}

} // namespace rex
