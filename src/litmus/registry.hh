/**
 * @file
 * Registry of built-in litmus tests.
 *
 * The library (the analogue of the paper's 61 hand-written tests) is
 * organised in suites:
 *  - core:       classic shapes without exceptions (sanity-anchoring the
 *                base model against the well-known Armv8 verdicts);
 *  - exceptions: §3's reordering across exception boundaries;
 *  - sea:        §4's synchronous-external-abort strengthening;
 *  - gic:        §7's SGI/GIC tests (message passing via SGI, RCU,
 *                Verona asymmetric lock);
 *  - generated:  tests synthesized by src/gen and promoted by the
 *                soundness hammer's pipeline (suite_generated.cc).
 */

#ifndef REX_LITMUS_REGISTRY_HH
#define REX_LITMUS_REGISTRY_HH

#include <map>
#include <string>
#include <vector>

#include "litmus/litmus.hh"

namespace rex {

/** Singleton collection of all built-in tests. */
class TestRegistry
{
  public:
    /** The populated registry. */
    static const TestRegistry &instance();

    /** Look up a test by name; fatal() when absent. */
    const LitmusTest &get(const std::string &name) const;

    /**
     * The exact source text @p name was registered from; fatal() when
     * absent. This is what clients send over the wire to rexd: parsing
     * it yields a test identical to get(name), including properties a
     * re-serialisation could lose (e.g. LDP/STP pair expansion flags).
     */
    const std::string &sourceText(const std::string &name) const;

    /** True when a test with @p name exists. */
    bool has(const std::string &name) const;

    /** All tests in a named suite ("core", "exceptions", "sea", "gic"). */
    std::vector<const LitmusTest *> suite(const std::string &name) const;

    /** Every test, ordered by suite then name. */
    std::vector<const LitmusTest *> all() const;

    /** Sorted test names. */
    std::vector<std::string> names() const;

    /** Register a test from its text form into @p suite_name. */
    void add(const std::string &suite_name, const std::string &text);

  private:
    TestRegistry() = default;

    struct Entry {
        std::string suite;
        LitmusTest test;
        std::string text;
    };

    std::vector<Entry> _entries;
    std::map<std::string, std::size_t> _byName;
};

// Suite installers (defined in suite_*.cc).
void registerCoreSuite(TestRegistry &registry);
void registerExceptionSuite(TestRegistry &registry);
void registerSeaSuite(TestRegistry &registry);
void registerGicSuite(TestRegistry &registry);
void registerGeneratedSuite(TestRegistry &registry);

} // namespace rex

#endif // REX_LITMUS_REGISTRY_HH
