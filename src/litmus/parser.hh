/**
 * @file
 * Text format for litmus tests.
 *
 * The format is line-oriented:
 *
 * ```
 * name: SB+dmb.sy+eret
 * desc: reads execute out-of-order across exception entry+exit
 * init: *x=0; *y=0; 0:X1=x; 0:X3=y; 1:X1=y; 1:X3=x
 * thread 0:
 *     MOV X0,#1
 *     STR X0,[X1]
 *     DMB SY
 *     LDR X2,[X3]
 * thread 1:
 *     SVC #0
 *     LDR X2,[X3]
 * handler 1:
 *     MOV X0,#1
 *     STR X0,[X1]
 *     ERET
 * allowed: 0:X2=0 & 1:X2=0
 * variant SEA_W: forbidden
 * ```
 *
 * Sections:
 *  - `name:`, `desc:`: metadata.
 *  - `init:`: ';'-separated entries. `*x=v` declares location x with
 *    initial value v; `T:Xn=x` points a register at a location;
 *    `T:Xn=v` sets an integer; `T:PSTATE.EL=n` sets the initial
 *    exception level; `T:PSTATE.I=1` starts with interrupts masked;
 *    `T:EOIMode=1` selects GIC EOImode 1 for that PE.
 *  - `thread N:` / `handler N:`: assembly bodies (see isa/assembler.hh).
 *  - `interrupt N at LABEL [intid K]`: pend an asynchronous interrupt at
 *    the label (the Isla construct of §5.1).
 *  - `allowed:` / `forbidden:`: the final condition, '&'-separated atoms
 *    `T:Xn=v` or `*x=v`, and the baseline architectural expectation.
 *  - `variant NAME: allowed|forbidden`: expectation under a named model
 *    variant (ExS, SEA_R, SEA_W, SEA_RW).
 */

#ifndef REX_LITMUS_PARSER_HH
#define REX_LITMUS_PARSER_HH

#include <string>

#include "litmus/litmus.hh"

namespace rex {

/**
 * Parse a litmus test from its text form.
 * @throws FatalError on malformed input.
 */
LitmusTest parseLitmus(const std::string &text);

/**
 * Load and parse a litmus test from a file.
 * @throws FatalError when the file cannot be read or is malformed.
 */
LitmusTest parseLitmusFile(const std::string &path);

} // namespace rex

#endif // REX_LITMUS_PARSER_HH
