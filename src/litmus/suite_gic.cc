/**
 * @file
 * SGI / GIC suite (§7): message passing via software-generated
 * interrupts, the Linux-RCU system-wide memory barrier, and the Verona
 * asymmetric lock.
 *
 * These tests exercise the §7.5 draft axiomatic extension: the
 * `interrupt` witness (GenerateInterrupt -> TakeInterrupt) is in
 * ordered-before, GIC effect events sit iio-after their register
 * accesses, and only DSBs order GIC effects with program order.
 */

#include "litmus/registry.hh"

namespace rex {

namespace {

const char *kGicTests[] = {

// ---- Figure 12 ------------------------------------------------------

R"(name: MPviaSGI
desc: message passing via an SGI with no synchronisation: the SGI's
desc: generation and delivery may outrun the po-earlier data write
desc: (Figure 12)
init: *x=0; 0:X1=x; 0:PSTATE.EL=1; 1:X2=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
thread 1:
    NOP
handler 1:
    MOV X0,#1
    LDR X1,[X2]
    ERET
allowed: 1:X0=1 & 1:X1=0
)",

R"(name: MPviaSGI+dsb.st
desc: a DSB ST between the data write and the SGI generation orders the
desc: write before GenerateInterrupt, hence before delivery and the
desc: handler's read
init: *x=0; 0:X1=x; 0:PSTATE.EL=1; 1:X2=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DSB ST
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
thread 1:
    NOP
handler 1:
    MOV X0,#1
    LDR X1,[X2]
    ERET
forbidden: 1:X0=1 & 1:X1=0
)",

// ---- Figure 11 ------------------------------------------------------

R"(name: MPviaSGIEIOmode1sequence
desc: synchronisation via SGI with the full acknowledge / priority-drop /
desc: deactivate sequence appropriate for EOImode=1 (Figure 11)
init: *x=0; 0:X1=x; 0:PSTATE.EL=1; 1:EOIMode=1; 1:X2=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DSB ST
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
    ISB
thread 1:
    NOP
handler 1:
    MRS X3,IAR
    AND X3,X3,#0xFFFFFF
    DSB SY
    MSR EOIR,X3
    ISB
    MOV X0,#1
    LDR X1,[X2]
    DSB SY
    MSR DIR,X3
    ERET
forbidden: 1:X0=1 & 1:X1=0
)",

// ---- Figure 13: RCU -------------------------------------------------

R"(name: RCU-MP
desc: the key RCU test (Figure 13): writes separated by an SGI-based
desc: system-wide barrier versus an interrupt-masked read section;
desc: without a DSB ST before the SGI the data write may lag
init: *x=0; *y=0; *z=0; 0:X1=x; 0:X4=y; 0:X6=z; 1:X1=y; 1:X3=x; 1:X5=z; 1:EOIMode=1
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
    LDAR X5,[X6]
    MOV X3,#1
    STR X3,[X4]
thread 1:
    MSR DAIFSet,#0xf
    LDR X0,[X1]
    LDR X2,[X3]
    MSR DAIFClr,#0xf
handler 1:
    MRS X6,IAR
    DSB SY
    MSR EOIR,X6
    MSR DIR,X6
    MOV X2,#1
    STLR X2,[X5]
    ERET
allowed: 0:X5=1 & 1:X0=1 & 1:X2=0
)",

R"(name: RCU-MP+dsb.st
desc: with the DSB ST the synchronize_rcu barrier is sound: the masked
desc: read section sees the data write once it sees the flag
init: *x=0; *y=0; *z=0; 0:X1=x; 0:X4=y; 0:X6=z; 1:X1=y; 1:X3=x; 1:X5=z; 1:EOIMode=1
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DSB ST
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
    LDAR X5,[X6]
    MOV X3,#1
    STR X3,[X4]
thread 1:
    MSR DAIFSet,#0xf
    LDR X0,[X1]
    LDR X2,[X3]
    MSR DAIFClr,#0xf
handler 1:
    MRS X6,IAR
    DSB SY
    MSR EOIR,X6
    MSR DIR,X6
    MOV X2,#1
    STLR X2,[X5]
    ERET
forbidden: 0:X5=1 & 1:X0=1 & 1:X2=0
)",

// ---- Verona asymmetric lock (§7.3) ----------------------------------

R"(name: VERONA-asymlock
desc: the Verona asymmetric lock: the owner's cheap internal acquire
desc: (plain write of the external flag then read of the internal flag)
desc: against an external acquire using a system-wide barrier; precision
desc: of the interrupt ensures mutual exclusion (at least one side sees
desc: the other's interest)
init: *intf=0; *extf=0; *ack=0; 0:X1=intf; 0:X3=extf; 0:X6=ack; 1:X1=extf; 1:X3=intf; 1:X5=ack
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DSB ST
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
    LDAR X5,[X6]
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    LDR X2,[X3]
handler 1:
    MRS X6,IAR
    DSB SY
    MSR EOIR,X6
    MOV X7,#1
    STLR X7,[X5]
    ERET
forbidden: 0:X5=1 & 0:X2=0 & 1:X2=0
)",

R"(name: VERONA-asymlock-nodsb
desc: dropping the DSB ST from the external acquire breaks the lock: the
desc: internal-flag write may lag the SGI, letting both threads enter
init: *intf=0; *extf=0; *ack=0; 0:X1=intf; 0:X3=extf; 0:X6=ack; 1:X1=extf; 1:X3=intf; 1:X5=ack
thread 0:
    MOV X0,#1
    STR X0,[X1]
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
    LDAR X5,[X6]
    LDR X2,[X3]
thread 1:
    MOV X0,#1
    STR X0,[X1]
    LDR X2,[X3]
handler 1:
    MRS X6,IAR
    DSB SY
    MSR EOIR,X6
    MOV X7,#1
    STLR X7,[X5]
    ERET
allowed: 0:X5=1 & 0:X2=0 & 1:X2=0
)",

// ---- Interrupt-masking fundamentals ---------------------------------

R"(name: SGI-masked-section
desc: an SGI cannot be taken inside a DAIF-masked section: a handler
desc: effect observed between the section's reads is impossible; here the
desc: handler writes w, and the section reads w twice -- it cannot see
desc: the write appear between them
init: *w=0; 0:PSTATE.EL=1; 1:X1=w
thread 0:
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
thread 1:
    MSR DAIFSet,#0xf
    LDR X0,[X1]
    LDR X2,[X1]
    MSR DAIFClr,#0xf
handler 1:
    MOV X3,#1
    STR X3,[X1]
    ERET
forbidden: 1:X0=0 & 1:X2=1
)",

R"(name: SGI-unmasked-between
desc: without masking, the interrupt may land between the two reads
init: *w=0; 0:PSTATE.EL=1; 1:X1=w
thread 0:
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
thread 1:
    LDR X0,[X1]
    LDR X2,[X1]
handler 1:
    MOV X3,#1
    STR X3,[X1]
    ERET
allowed: 1:X0=0 & 1:X2=1
)",

// ---- SGI routing at the axiomatic level -------------------------------

R"(name: SGI-broadcast-two-targets
desc: a broadcast SGI (IRM=1) may be taken by every other PE
init: *w=0; 0:PSTATE.EL=1
thread 0:
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
thread 1:
    NOP
thread 2:
    NOP
handler 1:
    MOV X3,#1
    ERET
handler 2:
    MOV X3,#1
    ERET
allowed: 1:X3=1 & 2:X3=1
)",

R"(name: SGI-target-list-miss
desc: a target-list SGI is never taken by a PE outside the list
init: *w=0; 0:PSTATE.EL=1
thread 0:
    MOV X2,#2
    MSR ICC_SGI1R_EL1,X2
thread 1:
    NOP
thread 2:
    NOP
handler 1:
    MOV X3,#1
    ERET
handler 2:
    MOV X3,#1
    ERET
forbidden: 2:X3=1
)",

R"(name: SGI-self
desc: a PE may send an SGI to itself via an explicit target list
init: *w=0; 0:PSTATE.EL=1
thread 0:
    MOV X2,#1
    MSR ICC_SGI1R_EL1,X2
handler 0:
    MOV X3,#1
    ERET
allowed: 0:X3=1
)",

R"(name: MPviaSGI+dmb.st
desc: a DMB ST does not order the data write before the SGI generation:
desc: only DSBs order GIC effects (s7.4)
init: *x=0; 0:X1=x; 0:PSTATE.EL=1; 1:X2=x
thread 0:
    MOV X0,#1
    STR X0,[X1]
    DMB ST
    MOV X2,#1,LSL #40
    MSR ICC_SGI1R_EL1,X2
thread 1:
    NOP
handler 1:
    MOV X0,#1
    LDR X1,[X2]
    ERET
allowed: 1:X0=1 & 1:X1=0
)",

};

} // namespace

void
registerGicSuite(TestRegistry &registry)
{
    for (const char *text : kGicTests)
        registry.add("gic", text);
}

} // namespace rex
