/**
 * @file
 * Parser for the classic herdtools litmus format, so existing AArch64
 * .litmus corpora load directly:
 *
 * ```
 * AArch64 MP
 * "message passing"
 * {
 * 0:X1=x; 0:X3=y;
 * 1:X1=y; 1:X3=x;
 * }
 *  P0          | P1          ;
 *  MOV X0,#1   | LDR X0,[X1] ;
 *  STR X0,[X1] | LDR X2,[X3] ;
 * exists (1:X0=1 /\ 1:X2=0)
 * ```
 *
 * Supported: the `{...}` init block (memory cells with or without `*`,
 * register bindings, ignored C-style type annotations), column-aligned
 * thread programs separated by `|` and terminated by `;`, `locations`
 * directives (ignored), and `exists (...)` / `~exists (...)` final
 * conditions over conjunctions of atoms. Exception handlers and pended
 * interrupts have no classic-herd syntax; use the native format
 * (litmus/parser.hh) for those.
 */

#ifndef REX_LITMUS_HERD_PARSER_HH
#define REX_LITMUS_HERD_PARSER_HH

#include <string>

#include "litmus/litmus.hh"

namespace rex {

/** True when @p text looks like classic herd format ("AArch64 <name>"
 *  header). */
bool looksLikeHerdFormat(const std::string &text);

/**
 * Parse a classic-herd-format litmus test.
 * @throws FatalError on malformed or unsupported input.
 */
LitmusTest parseHerdLitmus(const std::string &text);

} // namespace rex

#endif // REX_LITMUS_HERD_PARSER_HH
