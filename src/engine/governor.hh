/**
 * @file
 * Per-job resource governor: deadlines, candidate ceilings, memory
 * budgets, and cooperative cancellation for candidate checking.
 *
 * A Budget declares how much a single check may consume along three
 * axes — wall clock, candidate count, approximate heap growth — and a
 * Governor enforces it: the checker calls admit() once per candidate
 * (the natural unit of work in this codebase; everything expensive
 * happens between two candidates), and the first axis to trip latches
 * into the governor's CancelToken. The token is shared by every shard
 * of a check, polled in the enumerator's odometer loop and between the
 * staged model clauses, so a trip anywhere stops work everywhere
 * within one candidate's worth of latency.
 *
 * This generalises the checker's pre-existing stop_at_first shard
 * cutoff (an atomic fetch-min that aborts shards past the earliest
 * witness) into one mechanism: the cutoff handles "a better answer
 * already exists", the token handles "the budget for any answer is
 * gone" — both are cooperative flags observed at candidate
 * granularity, never preemption.
 *
 * Axis semantics:
 *  - Candidates: exact and schedule-independent. admit() counts with
 *    one shared atomic, so exactly min(total, maxCandidates)
 *    candidates are admitted regardless of sharding — the partial
 *    count reported on a ceiling trip is deterministic across
 *    REX_JOBS values.
 *  - Deadline: checked against steady_clock on every admit; the trip
 *    is inherently schedule-dependent, but latency from deadline to
 *    stop is bounded by one candidate check per worker.
 *  - Memory: approximate — compares base/memtrack.hh's process-wide
 *    tracked-bytes counter against a baseline captured at governor
 *    construction (see memtrack.hh for what is and isn't counted).
 *  - Cancelled: an external CancelToken (e.g. a server shedding a
 *    request) observed through the same polling points.
 *
 * A budget-tripped check yields Verdict::kExhaustedBudget downstream:
 * partial statistics (candidates visited, stage reached, tripped axis)
 * flow through the JSONL schema and rexd, and the partial result is
 * never cached. With no budget configured the governor is bypassed
 * entirely (null pointer), so unbudgeted runs are byte-identical to
 * pre-governor output.
 */

#ifndef REX_ENGINE_GOVERNOR_HH
#define REX_ENGINE_GOVERNOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rex::engine {

/** The budget axis that stopped a job (None = still within budget). */
enum class BudgetAxis : std::uint8_t {
    None = 0,
    Deadline,    //!< wall-clock deadline passed
    Candidates,  //!< candidate-count ceiling reached
    Memory,      //!< approximate heap growth exceeded the cap
    Cancelled,   //!< an external CancelToken tripped
};

/** Stable lower-case name of @p axis ("deadline", "candidates", ...). */
const char *budgetAxisName(BudgetAxis axis);

/** Resource limits for one check; 0 on any axis means unlimited. */
struct Budget {
    /** Wall-clock deadline in microseconds from governor creation. */
    std::uint64_t deadlineMicros = 0;

    /** Candidate-execution ceiling (exact, schedule-independent). */
    std::uint64_t maxCandidates = 0;

    /** Approximate tracked-heap growth cap in bytes. */
    std::uint64_t maxHeapBytes = 0;

    bool
    unlimited() const
    {
        return deadlineMicros == 0 && maxCandidates == 0 &&
               maxHeapBytes == 0;
    }

    /** Convenience: a budget with only a deadline, in milliseconds. */
    static Budget
    withDeadlineMs(std::uint64_t ms)
    {
        Budget budget;
        budget.deadlineMicros = ms * 1000;
        return budget;
    }
};

/**
 * A latching cancellation flag shared across the threads of one job.
 * The first trip() wins and records its axis; cancelled() is a single
 * relaxed load, cheap enough to poll per candidate and per odometer
 * step.
 */
class CancelToken
{
  public:
    /** Latch the token; the first caller's @p axis is recorded. */
    void
    trip(BudgetAxis axis) const
    {
        std::uint8_t expected = 0;
        _axis.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(axis),
            std::memory_order_relaxed);
    }

    /**
     * Arm a wall-clock deadline: once steady_clock passes @p when, any
     * cancelled() poll trips the Deadline axis. This puts the deadline
     * check at every polling site — crucially including the phases
     * that run *between* candidate admissions (shard planning, the
     * skeleton builds, the staged model clauses), which on a large
     * test can individually outlast the whole budget. Call before the
     * token is shared; not thread-safe against concurrent polls.
     */
    void
    armDeadline(std::chrono::steady_clock::time_point when)
    {
        _deadline = when;
        _deadlineArmed.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        if (_axis.load(std::memory_order_relaxed) != 0)
            return true;
        if (_deadlineArmed.load(std::memory_order_acquire) &&
                std::chrono::steady_clock::now() >= _deadline) {
            trip(BudgetAxis::Deadline);
            return true;
        }
        return false;
    }

    BudgetAxis
    axis() const
    {
        return static_cast<BudgetAxis>(
            _axis.load(std::memory_order_relaxed));
    }

  private:
    /** Mutable: polling through a const pointer may latch the trip —
     *  the token is logically const once armed. */
    mutable std::atomic<std::uint8_t> _axis{0};
    std::atomic<bool> _deadlineArmed{false};
    std::chrono::steady_clock::time_point _deadline{};
};

/**
 * Enforces one Budget over one check. Thread-safe: every shard of a
 * sharded check calls admit() on the same governor.
 */
class Governor
{
  public:
    /**
     * @param budget   the limits to enforce (axes with 0 are off)
     * @param external an externally owned token to honour in addition
     *                 to the budget (tripping it stops the job with
     *                 axis Cancelled); may be null
     * @param live     when non-null, incremented once per admitted
     *                 candidate (relaxed) — the engine points this at
     *                 its live enumeration-progress gauge
     */
    explicit Governor(Budget budget,
                      const CancelToken *external = nullptr,
                      std::atomic<std::uint64_t> *live = nullptr);

    /**
     * Account one candidate against the budget.
     * @return true to proceed; false when the budget has tripped (the
     *         candidate is NOT counted as visited in that case).
     */
    bool admit();

    /** True once any axis has tripped. */
    bool tripped() const { return _token.cancelled(); }

    /** The axis that tripped (None while within budget). */
    BudgetAxis trippedAxis() const { return _token.axis(); }

    /** Candidates admitted so far (exact). */
    std::uint64_t
    candidatesVisited() const
    {
        return _admitted.load(std::memory_order_relaxed);
    }

    /**
     * The shared token, for polling sites below the checker (the
     * enumerator's odometer, the staged model clauses, shard startup).
     */
    const CancelToken *token() const { return &_token; }

    /**
     * Record the deepest pipeline stage reached ("plan", "enumerate",
     * "merge"). @p stage must point at static storage.
     */
    void
    noteStage(const char *stage)
    {
        _stage.store(stage, std::memory_order_relaxed);
    }

    /** Last stage noted; "" before any noteStage(). */
    const char *
    stageReached() const
    {
        const char *stage = _stage.load(std::memory_order_relaxed);
        return stage ? stage : "";
    }

    /** Microseconds since construction. */
    std::uint64_t elapsedMicros() const;

  private:
    Budget _budget;
    const CancelToken *_external;
    CancelToken _token;
    std::chrono::steady_clock::time_point _start;
    std::uint64_t _memBaseline = 0;
    std::atomic<std::uint64_t> _admitted{0};
    std::atomic<std::uint64_t> *_live;
    std::atomic<const char *> _stage{nullptr};
};

} // namespace rex::engine

#endif // REX_ENGINE_GOVERNOR_HH
