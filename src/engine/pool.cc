#include "engine/pool.hh"

#include "engine/faultinject.hh"

namespace rex::engine {

namespace {
thread_local bool tl_pool_worker = false;
} // namespace

bool
ThreadPool::onWorkerThread()
{
    return tl_pool_worker;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    _workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _workers.push_back(std::make_unique<Worker>());
    _threads.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_sleepMutex);
        _stopping.store(true);
    }
    _wakeup.notify_all();
    for (std::thread &thread : _threads)
        thread.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    if (faultInjector().shouldFail(FaultPoint::PoolSpawn)) {
        // Degraded spawn: run the task inline on the caller instead of
        // dispatching it. Slower (no parallelism for this task) but
        // fully correct — the packaged_task future completes as usual.
        ++_submitted;
        task();
        return;
    }
    // Round-robin placement; load imbalance is corrected by stealing.
    std::size_t target = _nextWorker.fetch_add(1) % _workers.size();
    {
        std::lock_guard<std::mutex> lock(_workers[target]->mutex);
        _workers[target]->tasks.push_back(std::move(task));
    }
    ++_submitted;
    {
        // Publish the count under the sleep mutex so a worker between
        // its emptiness check and wait() cannot miss the wakeup.
        std::lock_guard<std::mutex> lock(_sleepMutex);
        ++_queued;
    }
    _wakeup.notify_one();
}

bool
ThreadPool::tryRun(std::size_t index)
{
    std::function<void()> task;
    {
        // Own queue first, in submission order.
        Worker &own = *_workers[index];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.front());
            own.tasks.pop_front();
        }
    }
    for (std::size_t off = 1; !task && off < _workers.size(); ++off) {
        // Steal from the back of a sibling's queue.
        Worker &victim = *_workers[(index + off) % _workers.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.back());
            victim.tasks.pop_back();
        }
    }
    if (!task)
        return false;
    {
        std::lock_guard<std::mutex> lock(_sleepMutex);
        --_queued;
    }
    // packaged_task stores any exception into the task's future.
    task();
    return true;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    tl_pool_worker = true;
    while (true) {
        if (tryRun(index))
            continue;
        std::unique_lock<std::mutex> lock(_sleepMutex);
        if (_queued.load() > 0)
            continue;
        if (_stopping.load())
            return;
        _wakeup.wait(lock, [this] {
            return _queued.load() > 0 || _stopping.load();
        });
    }
}

} // namespace rex::engine
