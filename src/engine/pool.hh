/**
 * @file
 * A work-stealing thread pool with task futures and graceful shutdown.
 *
 * Tasks are placed round-robin onto per-worker deques; an idle worker
 * first drains its own deque in submission order, then steals from the
 * back of a sibling's deque. Results and exceptions propagate through
 * std::future (a task that throws stores the exception; future.get()
 * rethrows it in the waiting thread).
 *
 * Destruction is graceful: every task already submitted runs to
 * completion before the workers join, so no future is ever abandoned.
 *
 * Tasks must not block on futures of tasks in the same pool (the pool
 * has a fixed thread count and does not re-enter the scheduler while a
 * task waits); the engine's batch layer only ever waits from outside.
 */

#ifndef REX_ENGINE_POOL_HH
#define REX_ENGINE_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rex::engine {

/** Fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /** Start @p threads workers (0 is clamped to 1). */
    explicit ThreadPool(unsigned threads);

    /** Graceful shutdown: drains every queued task, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(_threads.size());
    }

    /** Tasks submitted over the pool's lifetime. */
    std::uint64_t submitted() const { return _submitted.load(); }

    /** Tasks queued and not yet picked up by a worker (a live gauge:
     *  rexd's /metrics reads it while workers run). */
    std::size_t queueDepth() const { return _queued.load(); }

    /**
     * True when the calling thread is a worker of *some* ThreadPool.
     * Code that would submit work and block on its futures (e.g. the
     * checker's intra-test sharding) must not do so from inside a pool
     * task — with a fixed thread count that deadlocks — and uses this
     * to fall back to the serial path instead.
     */
    static bool onWorkerThread();

    /**
     * Queue @p fn for execution on some worker.
     * @return a future for fn's result; rethrows fn's exception on get().
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>>
    {
        using Result = std::invoke_result_t<std::decay_t<Fn>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

  private:
    struct Worker {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
    };

    void enqueue(std::function<void()> task);
    void workerLoop(std::size_t index);
    bool tryRun(std::size_t index);

    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    /** Guards the queued-task count for sleep/wake handshakes. */
    std::mutex _sleepMutex;
    std::condition_variable _wakeup;
    std::atomic<bool> _stopping{false};
    std::atomic<std::size_t> _queued{0};
    std::atomic<std::size_t> _nextWorker{0};
    std::atomic<std::uint64_t> _submitted{0};
};

} // namespace rex::engine

#endif // REX_ENGINE_POOL_HH
