/**
 * @file
 * Process-isolated worker supervision: crash containment, quarantine,
 * and hard deadlines for checking jobs.
 *
 * PR 4's governor made jobs *cooperatively* cancellable, but a
 * segfault, abort(), stack overflow, or non-polling spin loop inside
 * one candidate enumeration still takes down the whole process — for
 * rexd, the daemon and every concurrent request with it. The
 * supervisor closes that hole by running each checking job in one of a
 * pool of pre-forked worker processes:
 *
 *  - Jobs travel over a per-worker socketpair as length-prefixed
 *    frames (4-byte big-endian length + a line-oriented text payload,
 *    same idiom as the cache entry format); the worker answers with
 *    one response frame per job.
 *  - A worker that dies mid-job (SIGSEGV/SIGABRT/SIGBUS, OOM kill, a
 *    stack overflow's SIGSEGV) surfaces as EOF on its socket; the
 *    dispatcher reaps it with waitpid(), names WTERMSIG, and returns a
 *    Crashed outcome carrying the signal plus the partial stats the
 *    worker left in its shared-memory status page (a CrashContext in a
 *    MAP_SHARED page: test, variant, stage, live candidate counter —
 *    written lock-free by the child, read post-mortem by the parent).
 *  - Hard deadlines: when the job has a wall-clock budget, the parent
 *    poll()s with timeout deadline + killGraceMs and SIGKILLs a worker
 *    that blows through it — the non-cooperative backstop behind the
 *    governor's cooperative one. Without a deadline there is no hard
 *    kill (rexd's --max-deadline-ms cap is the way to guarantee one).
 *  - A per-(test, variant, model-revision) crash ledger — keyed by the
 *    verdict-cache key hash, which is exactly that triple — counts
 *    crashes; once a key reaches the quarantine threshold, further
 *    jobs for it are refused immediately with a Quarantined outcome
 *    instead of burning respawns on a deterministic crasher.
 *  - Dead worker slots respawn with capped exponential backoff, driven
 *    by a monitor thread that also reaps workers dying *between* jobs
 *    (e.g. an external kill -9) with per-pid non-blocking waitpid — no
 *    global SIGCHLD handler, so embedding programs keep their own
 *    child-management intact.
 *
 * The worker never touches the parent's cache, results sink, or thread
 * pool: it parses the shipped litmus source, runs the plain in-process
 * check single-threaded under an always-present Governor (unlimited
 * budgets change nothing — admit() without limits only counts), and
 * streams the verdict back. Cache lookup/store and JSONL emission stay
 * in the parent (engine/batch.cc), so supervised and in-thread modes
 * share one cache and one results schema.
 *
 * Fault injection: the worker-crash / worker-hang points are consulted
 * in the PARENT at dispatch time and the decision travels in the job
 * frame (see faultinject.hh for why), so injected crash sequences are
 * deterministic across respawns.
 */

#ifndef REX_ENGINE_SUPERVISOR_HH
#define REX_ENGINE_SUPERVISOR_HH

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/cache.hh"
#include "engine/crashctx.hh"
#include "engine/governor.hh"

namespace rex::engine {

/** Supervision parameters (surfaced as rexd --workers /
 *  --crash-quarantine / --kill-grace-ms and the harness --isolate). */
struct SupervisorConfig {
    /** Worker processes to pre-fork. */
    unsigned workers = 2;

    /** Crashes of one (test, variant, revision) key before it is
     *  quarantined; 0 disables quarantine. */
    unsigned crashQuarantine = 3;

    /** Grace window past the cooperative deadline before SIGKILL. */
    std::uint64_t killGraceMs = 2000;

    /** Respawn backoff after a crash: initial delay, doubling per
     *  consecutive crash of the same slot, capped. */
    std::uint64_t respawnBackoffMs = 50;
    std::uint64_t respawnBackoffMaxMs = 2000;

    /** Crash-ledger entry cap (LRU-evicted beyond it), so a stream of
     *  distinct crashing keys cannot grow the ledger without bound.
     *  An evicted quarantined key starts its strikes over — bounded
     *  memory is worth the occasional repeat sentence. 0 = unbounded. */
    std::uint64_t ledgerMaxEntries = 4096;
};

/** What the supervisor learned about one dispatched job. */
struct SupervisedOutcome {
    enum class Kind {
        Ok,          //!< worker returned a completed verdict
        Exhausted,   //!< the worker's cooperative budget tripped
        Crashed,     //!< worker died (or broke protocol) mid-job
        Quarantined, //!< ledger refused to dispatch a repeat crasher
    };

    Kind kind = Kind::Crashed;

    /** The verdict (Ok), or partial counters (Exhausted/Crashed). */
    CachedVerdict verdict;

    /** Budget axis / stage, Exhausted only (stage also on Crashed). */
    std::string exhaustedAxis;
    std::string stage;

    /** Fatal signal name ("SIGSEGV", "SIGKILL", "exit:N", ...) for
     *  Crashed; the last crash's signal for Quarantined. */
    std::string signal;

    /** Ledger crash count for the job's key (Crashed/Quarantined). */
    std::uint64_t crashes = 0;
};

/** A pre-forked worker-process pool plus its supervising state. */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorConfig config);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /**
     * Run one checking job in a worker process, blocking until the
     * verdict arrives, the worker dies, or the hard deadline kills it.
     * Safe to call from any number of threads; callers queue on the
     * slot pool.
     *
     * @param sourceText litmus source (LitmusTest::sourceText) —
     *                   re-parsed inside the worker
     * @param testName   for crash attribution (the status page)
     * @param variant    ModelParams::byName key
     * @param ledgerKey  quarantine key; use VerdictKey::hashHex(),
     *                   which covers (test, variant, model revision)
     * @param budget     may be null/unlimited (no hard deadline then)
     */
    SupervisedOutcome run(const std::string &sourceText,
                          const std::string &testName,
                          const std::string &variant,
                          const std::string &ledgerKey,
                          const Budget *budget);

    const SupervisorConfig &config() const { return _config; }

    /** Configured slot count. */
    unsigned workers() const { return static_cast<unsigned>(_slots.size()); }

    /** Workers currently alive (the live-worker gauge). */
    unsigned liveWorkers() const;

    /** Worker crashes observed, total and broken down by signal name
     *  (sorted; for the /metrics exposition). */
    std::uint64_t crashes() const { return _crashes.load(); }
    std::vector<std::pair<std::string, std::uint64_t>>
    crashesBySignal() const;

    /** Workers re-forked after a death (initial spawns not counted). */
    std::uint64_t respawns() const { return _respawns.load(); }

    /** Quarantined verdicts served without dispatching. */
    std::uint64_t quarantinedServed() const
    {
        return _quarantinedServed.load();
    }

    /** Ledger keys at/over the quarantine threshold right now. */
    std::uint64_t quarantinedKeys() const;

    /** Keys currently tracked in the crash ledger (gauge). */
    std::uint64_t ledgerEntries() const;

    /** Ledger entries LRU-evicted by ledgerMaxEntries so far. */
    std::uint64_t ledgerEvictions() const
    {
        return _ledgerEvictions.load(std::memory_order_relaxed);
    }

    /** Candidate counters of busy workers, summed (progress gauge). */
    std::uint64_t liveCandidates() const;

  private:
    struct Slot {
        pid_t pid = -1;
        int fd = -1;                //!< parent end of the socketpair
        CrashContext *status = nullptr;  //!< this slot's shared page
        bool alive = false;
        bool busy = false;
        unsigned consecutiveCrashes = 0;
        std::chrono::steady_clock::time_point respawnAt{};
    };

    struct LedgerEntry {
        std::uint64_t crashes = 0;
        std::string lastSignal;

        /** Recency stamp (_ledgerSeq at last charge or quarantine
         *  lookup) driving LRU eviction. */
        std::uint64_t lastTouch = 0;
    };

    /** Fork slot @p index (monitor thread or ctor; _mutex held). */
    void spawnSlotLocked(std::size_t index);

    /** Mark slot @p index dead after a crash; schedules its respawn.
     *  (_mutex held.) */
    void retireSlotLocked(std::size_t index, const std::string &signal);

    /** Count one crash of @p signal against the stats (not the
     *  ledger). */
    void countCrash(const std::string &signal);

    /** Record a crash for @p ledgerKey; returns the new count. */
    std::uint64_t chargeLedger(const std::string &ledgerKey,
                               const std::string &signal);

    void monitorLoop();

    SupervisorConfig _config;

    mutable std::mutex _mutex;  //!< slots + spawn/retire state
    std::condition_variable _slotFree;
    std::vector<Slot> _slots;
    CrashContext *_statusPages = nullptr;  //!< one MAP_SHARED region
    bool _stopping = false;

    std::thread _monitor;
    std::condition_variable _monitorWake;

    mutable std::mutex _ledgerMutex;
    std::map<std::string, LedgerEntry> _ledger;
    std::uint64_t _ledgerSeq = 0;  //!< guarded by _ledgerMutex
    std::atomic<std::uint64_t> _ledgerEvictions{0};

    mutable std::mutex _crashMutex;
    std::map<std::string, std::uint64_t> _crashesBySignal;

    std::atomic<std::uint64_t> _crashes{0};
    std::atomic<std::uint64_t> _respawns{0};
    std::atomic<std::uint64_t> _quarantinedServed{0};
};

} // namespace rex::engine

#endif // REX_ENGINE_SUPERVISOR_HH
