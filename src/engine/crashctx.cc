#include "engine/crashctx.hh"

#include <csignal>
#include <cstring>
#include <mutex>

#include <unistd.h>

namespace rex::engine {

namespace {

thread_local CrashContext t_defaultContext;
thread_local CrashContext *t_target = &t_defaultContext;

/** Bounded, always-NUL-terminated copy into a fixed context field. */
template <std::size_t N>
void
copyField(char (&dst)[N], const char *src)
{
    if (!src)
        src = "";
    std::size_t i = 0;
    for (; i < N - 1 && src[i]; ++i)
        dst[i] = src[i];
    dst[i] = '\0';
}

/** Append @p text to the handler's stack buffer (async-signal-safe). */
void
append(char *buf, std::size_t cap, std::size_t &len, const char *text)
{
    while (*text && len < cap - 1)
        buf[len++] = *text++;
    buf[len] = '\0';
}

/** Append @p value in decimal (async-signal-safe, no snprintf). */
void
appendU64(char *buf, std::size_t cap, std::size_t &len,
          std::uint64_t value)
{
    char digits[24];
    std::size_t n = 0;
    do {
        digits[n++] = static_cast<char>('0' + value % 10);
        value /= 10;
    } while (value);
    while (n && len < cap - 1)
        buf[len++] = digits[--n];
    buf[len] = '\0';
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGILL,
                                 SIGFPE};

extern "C" void
crashAttributionHandler(int sig)
{
    const CrashContext *ctx = t_target;
    char line[320];
    std::size_t len = 0;
    append(line, sizeof(line), len, "rex: fatal ");
    const char *name = fatalSignalName(sig);
    if (name) {
        append(line, sizeof(line), len, name);
    } else {
        append(line, sizeof(line), len, "signal ");
        appendU64(line, sizeof(line), len,
                  static_cast<std::uint64_t>(sig));
    }
    if (ctx->test[0]) {
        append(line, sizeof(line), len, " in test '");
        append(line, sizeof(line), len, ctx->test);
        append(line, sizeof(line), len, "' variant '");
        append(line, sizeof(line), len, ctx->variant);
        append(line, sizeof(line), len, "'");
    } else {
        append(line, sizeof(line), len, " (no active engine job"
                                        " on this thread)");
    }
    if (ctx->stage[0]) {
        append(line, sizeof(line), len, " stage '");
        append(line, sizeof(line), len, ctx->stage);
        append(line, sizeof(line), len, "'");
    }
    const std::uint64_t candidates =
        ctx->candidates.load(std::memory_order_relaxed);
    if (candidates) {
        append(line, sizeof(line), len, " after ");
        appendU64(line, sizeof(line), len, candidates);
        append(line, sizeof(line), len, " candidates");
    }
    append(line, sizeof(line), len, "\n");
    [[maybe_unused]] ssize_t wrote =
        ::write(STDERR_FILENO, line, len);

    // Die for real: default disposition, unblocked, re-raised, so the
    // exit status (and any supervisor's WTERMSIG) names this signal.
    ::signal(sig, SIG_DFL);
    sigset_t unblock;
    sigemptyset(&unblock);
    sigaddset(&unblock, sig);
    ::sigprocmask(SIG_UNBLOCK, &unblock, nullptr);
    ::raise(sig);
}

} // namespace

CrashContext *
crashContext()
{
    return t_target;
}

CrashContext *
setCrashContextTarget(CrashContext *target)
{
    CrashContext *previous = t_target;
    t_target = target ? target : &t_defaultContext;
    return previous;
}

void
crashContextSetJob(const char *test, const char *variant)
{
    CrashContext *ctx = t_target;
    copyField(ctx->test, test);
    copyField(ctx->variant, variant);
    copyField(ctx->stage, "");
    ctx->candidates.store(0, std::memory_order_relaxed);
}

void
crashContextClearJob()
{
    crashContextSetJob("", "");
}

void
crashContextSetStage(const char *stage)
{
    copyField(t_target->stage, stage);
}

const char *
fatalSignalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS:  return "SIGBUS";
      case SIGILL:  return "SIGILL";
      case SIGFPE:  return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGTERM: return "SIGTERM";
      case SIGINT:  return "SIGINT";
      default:      return nullptr;
    }
}

void
installCrashAttributionHandler()
{
    static std::once_flag installed;
    std::call_once(installed, [] {
        struct sigaction action;
        std::memset(&action, 0, sizeof(action));
        action.sa_handler = crashAttributionHandler;
        // SA_NODEFER is unnecessary: we re-raise after restoring
        // SIG_DFL and explicitly unblocking, so the second delivery
        // terminates even from inside the handler.
        for (int sig : kFatalSignals)
            ::sigaction(sig, &action, nullptr);
    });
}

} // namespace rex::engine
