/**
 * @file
 * Structured results sink: one JSONL record per engine job.
 *
 * Every job the batch engine runs (axiomatic verdict, hw-sim profile
 * run, cat cross-check) appends one line of JSON to the configured
 * results file, so downstream tooling can aggregate verdicts, wall
 * times, and cache behaviour without scraping table output. The schema
 * is documented in docs/FORMAT.md; every record carries every field
 * (irrelevant ones are zero/empty) so consumers never branch on
 * presence.
 *
 * Appends are serialised under a mutex and each record is one write, so
 * lines from parallel jobs never interleave. Record order follows job
 * completion and is therefore schedule-dependent; consumers must key on
 * (test, kind, variant), not line number.
 */

#ifndef REX_ENGINE_RESULTS_HH
#define REX_ENGINE_RESULTS_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace rex::engine {

/** Escape @p text for inclusion in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/**
 * Install SIGINT/SIGTERM handlers that flush every open stdio stream
 * (and with them every open results sink — each sink is a FILE*), then
 * restore the default disposition and re-raise, so the process still
 * dies with the conventional signal exit status. Idempotent.
 *
 * This is the batch-harness interrupt path: a long check_file or bench
 * run killed mid-flight keeps every JSONL record written so far, ending
 * on a complete line (appends are single whole-line writes). rexd does
 * NOT use this — it drains gracefully instead (see server/server.hh).
 */
void installFlushOnExitSignals();

/** One engine job's outcome. */
struct JobRecord {
    /** "verdict", "hwsim", or "cat-crosscheck". */
    std::string kind = "verdict";

    /** Litmus test name. */
    std::string test;

    /** Model variant ("base", "SEA_R", ...) or device profile name. */
    std::string variant;

    /** "Allowed"/"Forbidden"; "agree"/"DISAGREE" for cross-checks. */
    std::string verdict;

    /** Candidate executions enumerated (verdict jobs). */
    std::uint64_t candidates = 0;

    /** Model-consistent candidates (verdict jobs). */
    std::uint64_t consistent = 0;

    /** Consistent candidates satisfying the condition (verdict jobs). */
    std::uint64_t witnesses = 0;

    /** Randomised runs performed (hwsim jobs). */
    std::uint64_t runs = 0;

    /** Runs observing the final state (hwsim jobs). */
    std::uint64_t observed = 0;

    /** Job wall time in microseconds. */
    std::uint64_t wallMicros = 0;

    /** True when the verdict came from the cache. */
    bool cacheHit = false;

    /** "axiom:3->7->12" summary for forbidden verdicts. */
    std::string forbidding;

    /**
     * Budget axis that stopped the job ("deadline", "candidates",
     * "memory", "cancelled"); empty for completed jobs. Non-empty goes
     * with verdict "ExhaustedBudget", and the count fields above become
     * partial statistics.
     */
    std::string exhaustedAxis;

    /** Pipeline stage reached when the budget tripped or the worker
     *  crashed ("plan", "enumerate", "merge"); empty for completed
     *  jobs. */
    std::string stage;

    /**
     * Fatal signal that killed the supervised worker ("SIGSEGV",
     * "SIGKILL", "exit:N"); empty unless the verdict is CrashedWorker
     * or Quarantined (then: the last crash's signal). Goes with
     * partial count fields, like exhaustedAxis.
     */
    std::string workerSignal;

    /** Crash-ledger count for this job's (test, variant) key; non-zero
     *  only with verdict CrashedWorker or Quarantined. */
    std::uint64_t crashes = 0;

    /**
     * `rex-cont-v1` resume token (engine/continuation.hh); non-empty
     * only on an ExhaustedBudget record from a resumable check. POSTing
     * it back to /check (or passing it to verdictRecordResumable)
     * continues the enumeration where this record stopped.
     */
    std::string continuation;

    /**
     * Render as a single JSON object (no trailing newline).
     *
     * The budget fields (exhausted_axis, stage) and the supervision
     * fields (signal, stage, crashes) are the exceptions to the
     * every-record-carries-every-field rule: they are emitted only
     * when exhaustedAxis / workerSignal is non-empty, so runs that
     * never trip a budget or crash a worker render byte-identically
     * to the pre-governor, pre-supervision schema.
     */
    std::string toJson() const;
};

/** Thread-safe JSONL writer; disabled until open() succeeds. */
class ResultsSink
{
  public:
    ResultsSink() = default;
    ~ResultsSink();

    ResultsSink(const ResultsSink &) = delete;
    ResultsSink &operator=(const ResultsSink &) = delete;

    /** Truncate and open @p path; warns and stays disabled on failure. */
    void open(const std::string &path);

    bool enabled() const { return _out != nullptr; }
    const std::string &path() const { return _path; }

    /** Append one record (no-op when disabled). */
    void append(const JobRecord &record);

    /** Flush buffered output to disk (no-op when disabled). */
    void flush();

    /** Flush and close the file; enabled() is false afterwards. */
    void close();

    /** Records appended so far. */
    std::uint64_t records() const { return _records.load(); }

    /** Records lost to short writes or injected sink faults. */
    std::uint64_t droppedRecords() const { return _dropped.load(); }

  private:
    std::mutex _mutex;
    std::FILE *_out = nullptr;
    std::string _path;
    std::atomic<std::uint64_t> _records{0};
    std::atomic<std::uint64_t> _dropped{0};
    bool _warnedDrop = false;  //!< guarded by _mutex
};

} // namespace rex::engine

#endif // REX_ENGINE_RESULTS_HH
