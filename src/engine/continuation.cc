#include "engine/continuation.hh"

#include <cinttypes>
#include <cstdlib>

#include "base/strings.hh"

namespace rex::engine {

namespace {

/**
 * FNV-1a with length-prefixed field mixing (the hammer checkpoint's
 * fingerprint idiom): structurally different inputs cannot collide by
 * concatenating to the same byte stream.
 */
struct Fnv {
    std::uint64_t hash = 0xcbf29ce484222325ull;

    void
    bytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash ^= p[i];
            hash *= 0x100000001b3ull;
        }
    }

    void
    u64(std::uint64_t value)
    {
        bytes(&value, sizeof(value));
    }

    void
    str(const std::string &value)
    {
        u64(value.size());
        bytes(value.data(), value.size());
    }
};

/** Parse one decimal std::uint64_t field, rejecting partial consumption
 *  and empty input. */
bool
parseU64(const std::string &field, std::uint64_t &out)
{
    if (field.empty())
        return false;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(field.c_str(), &end, 10);
    if (!end || *end != '\0')
        return false;
    out = parsed;
    return true;
}

/** Parse the fixed 16-digit hex fingerprint field. */
bool
parseHex64(const std::string &field, std::uint64_t &out)
{
    if (field.size() != 16)
        return false;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(field.c_str(), &end, 16);
    if (!end || *end != '\0')
        return false;
    out = parsed;
    return true;
}

/** Hex-encode @p text (2 lower-case digits per byte): axiom names stay
 *  one colon-free token whatever characters they contain. */
std::string
hexEncode(const std::string &text)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(text.size() * 2);
    for (unsigned char c : text) {
        out += digits[c >> 4];
        out += digits[c & 0xf];
    }
    return out;
}

bool
hexDecode(const std::string &hex, std::string &out)
{
    if (hex.size() % 2 != 0)
        return false;
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    out.clear();
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = nibble(hex[i]);
        int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out += static_cast<char>((hi << 4) | lo);
    }
    return true;
}

bool
fail(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

} // namespace

std::uint64_t
shardJobFingerprint(const std::string &source, const std::string &variant,
                    const std::string &revision, std::uint64_t planTarget)
{
    Fnv fnv;
    fnv.str(source);
    fnv.str(variant);
    fnv.str(revision);
    fnv.u64(planTarget);
    return fnv.hash;
}

std::uint64_t
continuationFingerprint(const std::string &source,
                        const std::string &variant,
                        const std::string &revision,
                        const ContinuationState &state)
{
    Fnv fnv;
    fnv.u64(shardJobFingerprint(source, variant, revision,
                                state.planTarget));
    fnv.u64(state.planSize);
    fnv.u64(state.nextShard);
    fnv.u64(state.nextOffset);
    fnv.u64(state.candidates);
    fnv.u64(state.consistent);
    fnv.u64(state.witnesses);
    fnv.u64(state.constrainedUnpredictable);
    fnv.u64(state.unknownSideEffects);
    fnv.str(state.forbiddingAxiom);
    fnv.u64(state.forbiddingCycle.size());
    for (std::uint32_t id : state.forbiddingCycle)
        fnv.u64(id);
    return fnv.hash;
}

std::string
serializeContinuation(const ContinuationState &state)
{
    std::string token = format(
        "%s:%016" PRIx64 ":%" PRIu64 ":%" PRIu64 ":%" PRIu64 ":%" PRIu64
        ":%" PRIu64 ":%" PRIu64 ":%" PRIu64 ":%" PRIu64 ":%" PRIu64
        ":%s:%zu",
        kContinuationMagic, state.fingerprint, state.planTarget,
        state.planSize, state.nextShard, state.nextOffset,
        state.candidates, state.consistent, state.witnesses,
        state.constrainedUnpredictable, state.unknownSideEffects,
        hexEncode(state.forbiddingAxiom).c_str(),
        state.forbiddingCycle.size());
    for (std::uint32_t id : state.forbiddingCycle)
        token += format(":%" PRIu32, id);
    return token;
}

bool
parseContinuation(const std::string &token, ContinuationState &out,
                  std::string *error)
{
    const std::vector<std::string> fields = split(token, ':');
    if (fields.size() < 13)
        return fail(error, "continuation: too few fields");
    if (fields[0] != kContinuationMagic) {
        return fail(error, "continuation: bad magic '" + fields[0] +
                           "' (want " + kContinuationMagic + ")");
    }
    ContinuationState state;
    if (!parseHex64(fields[1], state.fingerprint))
        return fail(error, "continuation: malformed fingerprint");
    struct FieldSlot {
        std::size_t index;
        std::uint64_t *value;
        const char *name;
    };
    const FieldSlot slots[] = {
        {2, &state.planTarget, "plan target"},
        {3, &state.planSize, "plan size"},
        {4, &state.nextShard, "next shard"},
        {5, &state.nextOffset, "next offset"},
        {6, &state.candidates, "candidates"},
        {7, &state.consistent, "consistent"},
        {8, &state.witnesses, "witnesses"},
        {9, &state.constrainedUnpredictable, "cu count"},
        {10, &state.unknownSideEffects, "unknown count"},
    };
    for (const FieldSlot &slot : slots) {
        if (!parseU64(fields[slot.index], *slot.value)) {
            return fail(error, std::string("continuation: malformed ") +
                               slot.name);
        }
    }
    if (!hexDecode(fields[11], state.forbiddingAxiom))
        return fail(error, "continuation: malformed axiom");
    std::uint64_t cycleLen = 0;
    if (!parseU64(fields[12], cycleLen))
        return fail(error, "continuation: malformed cycle length");
    if (fields.size() != 13 + cycleLen)
        return fail(error, "continuation: cycle length mismatch");
    state.forbiddingCycle.reserve(static_cast<std::size_t>(cycleLen));
    for (std::uint64_t i = 0; i < cycleLen; ++i) {
        std::uint64_t id = 0;
        if (!parseU64(fields[13 + static_cast<std::size_t>(i)], id) ||
                id > 0xffffffffull) {
            return fail(error, "continuation: malformed cycle event");
        }
        state.forbiddingCycle.push_back(static_cast<std::uint32_t>(id));
    }
    if (state.planTarget == 0)
        return fail(error, "continuation: zero plan target");
    out = std::move(state);
    return true;
}

} // namespace rex::engine
