#include "engine/batch.hh"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "base/logging.hh"
#include "engine/crashctx.hh"

namespace rex::engine {

namespace {

/** Parse a non-negative integer env var; @p fallback on absence or
 *  malformation (with a warning). */
std::uint64_t
envUnsigned(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end && *end == '\0')
        return parsed;
    warn(std::string("ignoring malformed ") + name + "='" + env + "'");
    return fallback;
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const char *env = std::getenv("REX_JOBS");
    if (env && *env) {
        char *end = nullptr;
        unsigned long parsed = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && parsed > 0)
            return static_cast<unsigned>(parsed);
        warn(std::string("ignoring malformed REX_JOBS='") + env + "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace

EngineConfig
EngineConfig::fromEnv()
{
    EngineConfig config;
    const char *cache = std::getenv("REX_CACHE");
    if (cache && std::string(cache) == "0")
        config.cacheEnabled = false;
    if (const char *dir = std::getenv("REX_CACHE_DIR"))
        config.cacheDir = dir;
    if (const char *cap = std::getenv("REX_CACHE_MAX_BYTES")) {
        char *end = nullptr;
        unsigned long long parsed = std::strtoull(cap, &end, 10);
        if (end && *end == '\0')
            config.cacheMaxBytes = parsed;
        else
            warn(std::string("ignoring malformed REX_CACHE_MAX_BYTES='") +
                 cap + "'");
    }
    if (const char *results = std::getenv("REX_RESULTS"))
        config.resultsPath = results;
    config.workers = static_cast<unsigned>(
        envUnsigned("REX_WORKERS", config.workers));
    config.crashQuarantine = static_cast<unsigned>(
        envUnsigned("REX_CRASH_QUARANTINE", config.crashQuarantine));
    config.killGraceMs = envUnsigned("REX_KILL_GRACE_MS",
                                     config.killGraceMs);
    config.crashLedgerMax = envUnsigned("REX_CRASH_LEDGER_MAX",
                                        config.crashLedgerMax);
    config.cacheMemMaxEntries = static_cast<std::size_t>(
        envUnsigned("REX_CACHE_MEM_MAX", config.cacheMemMaxEntries));
    // jobs stays 0: resolved (REX_JOBS, then hardware concurrency) at
    // engine construction, so explicit EngineConfig{.jobs = n} wins.
    return config;
}

Engine::Engine(EngineConfig config)
    : _config(std::move(config)),
      _jobs(resolveJobs(_config.jobs)),
      _cache(_config.cacheEnabled, _config.cacheDir,
             _config.cacheMaxBytes, _config.cacheMemMaxEntries)
{
    // Workers fork before the pool spawns threads: the initial worker
    // processes are forked from a single-threaded engine.
    if (_config.workers > 0) {
        SupervisorConfig supervision;
        supervision.workers = _config.workers;
        supervision.crashQuarantine = _config.crashQuarantine;
        supervision.killGraceMs = _config.killGraceMs;
        supervision.ledgerMaxEntries = _config.crashLedgerMax;
        _supervisor = std::make_unique<Supervisor>(supervision);
    }
    if (_jobs > 1)
        _pool = std::make_unique<ThreadPool>(_jobs);
    if (!_config.resultsPath.empty())
        _sink.open(_config.resultsPath);
}

CheckResult
Engine::verdict(const LitmusTest &test, const ModelParams &params)
{
    JobRecord record;
    return verdictCommon(test, params, record).toResult();
}

JobRecord
Engine::verdictRecord(const LitmusTest &test, const ModelParams &params)
{
    JobRecord record;
    verdictCommon(test, params, record);
    return record;
}

JobRecord
Engine::verdictRecord(const LitmusTest &test, const ModelParams &params,
                      const Budget &budget)
{
    JobRecord record;
    verdictCommon(test, params, record, &budget);
    return record;
}

CheckResult
Engine::verdict(const LitmusTest &test, const ModelParams &params,
                const Budget &budget)
{
    JobRecord record;
    CheckResult result = verdictCommon(test, params, record,
                                       &budget).toResult();
    result.exhaustedAxis = record.exhaustedAxis;
    result.observable = result.observable && result.complete();
    return result;
}

CachedVerdict
Engine::verdictCommon(const LitmusTest &test, const ModelParams &params,
                      JobRecord &record, const Budget *budget)
{
    auto start = std::chrono::steady_clock::now();
    VerdictKey key =
        VerdictKey::make(test, params, _config.modelRevision);

    record.test = test.name;
    record.variant = params.name();

    std::optional<CachedVerdict> cached = _cache.lookup(key);
    CachedVerdict verdict;
    bool exhausted = false;
    std::string verdictOverride;
    if (cached) {
        // A cached verdict is a completed one, so it satisfies any
        // budget: budgeted requests are served from the cache too.
        verdict = *cached;
        record.cacheHit = true;
    } else if (_supervisor && !test.sourceText.empty()) {
        // Supervised mode: the check runs in a worker process, so a
        // crash in enumeration costs this job, not this process. Only
        // tests carrying their source text can ship across the process
        // boundary; programmatic tests fall through to in-thread.
        const SupervisedOutcome outcome =
            _supervisor->run(test.sourceText, test.name, params.name(),
                             key.hashHex(), budget);
        verdict = outcome.verdict;
        switch (outcome.kind) {
          case SupervisedOutcome::Kind::Ok:
            _candidatesTotal.fetch_add(verdict.candidates,
                                       std::memory_order_relaxed);
            // Worker verdicts are real verdicts: cached like in-thread
            // ones (the worker re-derives the same pure function).
            _cache.store(key, verdict);
            break;
          case SupervisedOutcome::Kind::Exhausted:
            exhausted = true;
            record.exhaustedAxis = outcome.exhaustedAxis;
            record.stage = outcome.stage;
            _candidatesTotal.fetch_add(verdict.candidates,
                                       std::memory_order_relaxed);
            break;
          case SupervisedOutcome::Kind::Crashed:
            // The worker died (or broke protocol) mid-job: a verdict
            // for this request only, carrying the fatal signal and the
            // partial progress read from the worker's status page.
            verdictOverride = "CrashedWorker";
            record.workerSignal = outcome.signal;
            record.stage = outcome.stage;
            record.crashes = outcome.crashes;
            _candidatesTotal.fetch_add(verdict.candidates,
                                       std::memory_order_relaxed);
            break;
          case SupervisedOutcome::Kind::Quarantined:
            // The ledger refused to dispatch a repeat crasher; no
            // worker was burned on it.
            verdictOverride = "Quarantined";
            record.workerSignal = outcome.signal;
            record.crashes = outcome.crashes;
            break;
        }
        // Crashed/Quarantined (like Exhausted) are never cached: they
        // describe this execution, not the test's semantics.
    } else {
        // Witness-less, short-circuiting check: Allowed verdicts stop at
        // the first witnessing candidate. From the engine's own worker
        // threads the pool is withheld (checkTest would shard the
        // candidate space onto the same pool and deadlock waiting on
        // its futures); a direct caller gets intra-test sharding.
        ThreadPool *pool =
            ThreadPool::onWorkerThread() ? nullptr : _pool.get();
        // Crash attribution for the in-thread path: if this check
        // takes the process down, the fatal-signal handler (when the
        // harness installed it) names the test it died in.
        crashContextSetJob(test.name.c_str(), params.name().c_str());
        CheckResult result;
        if (budget && !budget->unlimited()) {
            Governor governor(*budget, nullptr, &_liveCandidates);
            result = checkTest(test, params,
                               /*stop_at_first=*/true,
                               /*capture_witness=*/false, pool, &governor);
            const std::uint64_t visited = governor.candidatesVisited();
            _liveCandidates.fetch_sub(visited, std::memory_order_relaxed);
            _candidatesTotal.fetch_add(visited, std::memory_order_relaxed);
            if (!result.complete()) {
                exhausted = true;
                record.exhaustedAxis = result.exhaustedAxis;
                record.stage = governor.stageReached();
            }
        } else {
            result = checkTest(test, params,
                               /*stop_at_first=*/true,
                               /*capture_witness=*/false, pool);
            _candidatesTotal.fetch_add(result.candidates,
                                       std::memory_order_relaxed);
        }
        crashContextClearJob();
        verdict = CachedVerdict::fromResult(result);
        // A partial result is not a verdict: caching it would poison
        // every future lookup of this key. A check that completed
        // within its budget is identical to an unbudgeted one and is
        // cached normally.
        if (!exhausted)
            _cache.store(key, verdict);
    }

    record.verdict =
        !verdictOverride.empty()
            ? verdictOverride
            : exhausted ? "ExhaustedBudget"
                        : (verdict.observable ? "Allowed" : "Forbidden");
    record.candidates = verdict.candidates;
    record.consistent = verdict.consistent;
    record.witnesses = verdict.witnesses;
    record.forbidding = verdict.forbiddingSummary();
    record.wallMicros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    _sink.append(record);
    return verdict;
}

JobRecord
Engine::verdictRecordResumable(const LitmusTest &test,
                               const ModelParams &params,
                               const Budget &budget,
                               const ContinuationState *resume,
                               RangeDispatcher *remote)
{
    auto start = std::chrono::steady_clock::now();
    JobRecord record;
    record.test = test.name;
    record.variant = params.name();
    VerdictKey key =
        VerdictKey::make(test, params, _config.modelRevision);

    auto finish = [&](const CachedVerdict &verdict) {
        record.candidates = verdict.candidates;
        record.consistent = verdict.consistent;
        record.witnesses = verdict.witnesses;
        record.forbidding = verdict.forbiddingSummary();
        record.wallMicros = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        _sink.append(record);
    };

    // A cached verdict is a completed one: it serves fresh and resumed
    // requests alike — the stitched outcome of any resume sequence
    // equals the uninterrupted run, which is exactly what the cache
    // holds.
    if (std::optional<CachedVerdict> cached = _cache.lookup(key)) {
        record.cacheHit = true;
        record.verdict = cached->observable ? "Allowed" : "Forbidden";
        finish(*cached);
        return record;
    }

    // Programmatic tests carry no source text; their continuations
    // fingerprint the registry name instead (still unique per test,
    // and the HTTP path always has the source).
    const std::string &fingerprintSource =
        test.sourceText.empty() ? test.name : test.sourceText;

    ShardRangeSpec spec;
    spec.planTarget = kCheckShardTarget;
    if (resume) {
        rexAssert(resume->planTarget == kCheckShardTarget,
                  "continuation plan target drift past its fingerprint");
        spec.shardBegin = resume->nextShard;
        spec.inShardOffset = resume->nextOffset;
    }
    spec.jobFingerprint =
        shardJobFingerprint(fingerprintSource, record.variant,
                            _config.modelRevision, spec.planTarget);
    spec.peerDeadlineMs = budget.deadlineMicros / 1000;

    std::optional<Governor> governor;
    if (!budget.unlimited())
        governor.emplace(budget, nullptr, &_liveCandidates);

    // Candidate-ceiling (and heap) budgets stay local: the ceiling is
    // an exact count shared through one atomic, which cannot span
    // nodes; deadline-only and unlimited budgets may fan out.
    RangeDispatcher *dispatcher =
        budget.maxCandidates == 0 && budget.maxHeapBytes == 0
            ? remote
            : nullptr;

    ThreadPool *pool =
        ThreadPool::onWorkerThread() ? nullptr : _pool.get();
    crashContextSetJob(test.name.c_str(), params.name().c_str());
    ShardRangeOutcome out =
        checkShardRange(test, params, spec, pool,
                        governor ? &*governor : nullptr, dispatcher);
    if (governor) {
        const std::uint64_t visited = governor->candidatesVisited();
        _liveCandidates.fetch_sub(visited, std::memory_order_relaxed);
        _candidatesTotal.fetch_add(visited, std::memory_order_relaxed);
    } else {
        _candidatesTotal.fetch_add(out.result.candidates,
                                   std::memory_order_relaxed);
    }
    crashContextClearJob();

    if (resume) {
        if (out.planned) {
            rexAssert(resume->planSize == out.planSize,
                      "continuation plan drift: fingerprint matched but "
                      "the re-derived shard plan differs");
        }
        // Prepend the token's already-merged enumeration-order prefix.
        out.result.candidates += resume->candidates;
        out.result.consistent += resume->consistent;
        out.result.witnesses += resume->witnesses;
        out.result.constrainedUnpredictable +=
            resume->constrainedUnpredictable;
        out.result.unknownSideEffects += resume->unknownSideEffects;
        if (!resume->forbiddingAxiom.empty()) {
            // The prefix is earlier in enumeration order: its first
            // satisfying rejection wins over anything this piece saw.
            out.result.forbiddingAxiom = resume->forbiddingAxiom;
            out.result.forbiddingCycle.assign(
                resume->forbiddingCycle.begin(),
                resume->forbiddingCycle.end());
        }
        out.result.observable = out.result.witnesses > 0;
    }

    const bool witnessed = out.result.witnesses > 0;
    const bool complete = witnessed || out.completed;
    CachedVerdict verdict = CachedVerdict::fromResult(out.result);
    if (complete) {
        // Indistinguishable from an uninterrupted check; cache it like
        // one so every later lookup (resumed or not) hits.
        out.result.exhaustedAxis.clear();
        verdict = CachedVerdict::fromResult(out.result);
        _cache.store(key, verdict);
        record.verdict = witnessed ? "Allowed" : "Forbidden";
        finish(verdict);
        return record;
    }

    record.verdict = "ExhaustedBudget";
    record.exhaustedAxis = out.result.exhaustedAxis;
    record.stage = governor ? governor->stageReached() : "";
    if (out.planned) {
        ContinuationState next;
        next.planTarget = spec.planTarget;
        next.planSize = out.planSize;
        next.nextShard = out.nextShard;
        next.nextOffset = out.nextOffset;
        next.candidates = out.result.candidates;
        next.consistent = out.result.consistent;
        next.witnesses = out.result.witnesses;
        next.constrainedUnpredictable =
            out.result.constrainedUnpredictable;
        next.unknownSideEffects = out.result.unknownSideEffects;
        next.forbiddingAxiom = out.result.forbiddingAxiom;
        next.forbiddingCycle.assign(out.result.forbiddingCycle.begin(),
                                    out.result.forbiddingCycle.end());
        next.fingerprint =
            continuationFingerprint(fingerprintSource, record.variant,
                                    _config.modelRevision, next);
        record.continuation = serializeContinuation(next);
    } else if (resume) {
        // Trace construction outran this piece's whole budget: no
        // progress, no new cursor — hand the same token back, loss-free.
        record.continuation = serializeContinuation(*resume);
    }
    finish(verdict);
    return record;
}

ShardRangeOutcome
Engine::runShardRange(const LitmusTest &test, const ModelParams &params,
                      const ShardRangeSpec &spec, const Budget *budget)
{
    std::optional<Governor> governor;
    if (budget && !budget->unlimited())
        governor.emplace(*budget, nullptr, &_liveCandidates);
    ThreadPool *pool =
        ThreadPool::onWorkerThread() ? nullptr : _pool.get();
    crashContextSetJob(test.name.c_str(), params.name().c_str());
    ShardRangeOutcome out = checkShardRange(
        test, params, spec, pool, governor ? &*governor : nullptr);
    if (governor) {
        const std::uint64_t visited = governor->candidatesVisited();
        _liveCandidates.fetch_sub(visited, std::memory_order_relaxed);
        _candidatesTotal.fetch_add(visited, std::memory_order_relaxed);
    } else {
        _candidatesTotal.fetch_add(out.result.candidates,
                                   std::memory_order_relaxed);
    }
    crashContextClearJob();
    return out;
}

Engine &
Engine::shared()
{
    // Leaked (like the registry and cat-model singletons) so worker
    // threads never race static destruction at exit.
    static Engine *engine = new Engine(EngineConfig::fromEnv());
    return *engine;
}

} // namespace rex::engine
