/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * The degradation paths this PR adds (cache entries going corrupt,
 * sink writes failing, pool spawns failing, sockets dying) are worth
 * nothing if they are merely written — they must be exercised. The
 * injector arms named failure points from a spec string and answers
 * shouldFail() at each site with a deterministic pseudo-random
 * decision, so tests and CI can replay exact failure sequences.
 *
 * Spec syntax (env REX_FAULT_SPEC, or FaultInjector::configure()):
 *
 *   point:probability:seed[,point:probability:seed...]
 *
 * e.g. REX_FAULT_SPEC="cache-write:1.0:7,sock-send:0.25:42"
 *
 * Points: cache-read, cache-write, sink-write, pool-spawn,
 * sock-accept, sock-send, worker-crash, worker-hang, peer-connect,
 * peer-send, peer-recv, peer-lie, peer-corrupt-frame,
 * peer-stale-revision. Probability is in [0, 1]; seed is a uint64.
 *
 * Determinism: each point keeps its own call counter k, and the k-th
 * call fails iff splitmix64(seed + k) maps below probability — the
 * per-point decision *sequence* is a pure function of (seed,
 * probability), independent of wall clock or ASLR. Under concurrency
 * the assignment of decisions to callers follows arrival order, but
 * the multiset of decisions over any N calls is fixed.
 *
 * Cost when unarmed (the production case): one relaxed atomic load
 * per site. Injected failures are counted per point so tests can
 * assert the failure path actually ran.
 *
 * What each armed point does is decided at the site, not here; the
 * contract (degrade, never hang or corrupt) is:
 *   cache-read    entry unreadable -> cache miss
 *   cache-write   entry published torn -> checksum rejects it later
 *   sink-write    JSONL record dropped (counted), never a torn line
 *   pool-spawn    task runs inline on the submitting thread
 *   sock-accept   accepted connection closed immediately
 *   sock-send     send fails -> peer sees a truncated response
 *   worker-crash  supervised worker raises SIGSEGV mid-job ->
 *                 CrashedWorker verdict, daemon unharmed
 *   worker-hang   supervised worker spins without polling -> SIGKILLed
 *                 at the hard deadline (deadline + kill grace)
 *   peer-connect  shard dispatch can't reach the peer -> the attempt
 *                 fails before any bytes are sent; retried with
 *                 capped backoff, then the peer is marked down and the
 *                 task re-dispatched to a survivor or run locally —
 *                 never a lost shard
 *   peer-send     shard request dies mid-send -> same retry /
 *                 re-dispatch / local-fallback ladder as peer-connect
 *   peer-recv     peer answered but the response is dropped before
 *                 parsing -> treated exactly like a transport failure;
 *                 if the answer lands later anyway, the per-task
 *                 first-fill-wins dedup drops it (counted), so a
 *                 slow-then-returning peer can never double-merge
 *   peer-lie      Byzantine wrong answer: the /shard handler perturbs
 *                 its computed counters *before* sealing the integrity
 *                 envelope, so the lie is self-consistently signed and
 *                 the envelope passes -> only the coordinator's audit
 *                 path (duplicate dispatch or local recompute,
 *                 server/peer.hh) catches it; the lying peer is
 *                 charged a confirmed lie and quarantined
 *   peer-corrupt-frame
 *                 a byte of the sealed /shard response body is flipped
 *                 after sealing -> the coordinator's envelope digest
 *                 check rejects it (counted, never merged) and the
 *                 task rides the retry/re-dispatch ladder
 *   peer-stale-revision
 *                 the /shard handler seals its envelope under a bogus
 *                 model revision (digest still valid over it, the way
 *                 a genuinely stale binary would sign) -> rejected by
 *                 the coordinator's revision check, same ladder
 *
 * The peer-lie / peer-corrupt-frame / peer-stale-revision points are
 * consulted on the RESPONDING peer (src/server/service.cc and
 * hammerdist.cc) — that is what rexd --byzantine-spec arms — and only
 * for requests that arrived over the wire: a coordinator recomputing
 * locally for audit ground truth never lies to itself.
 *
 * The worker-* points are consulted in the supervising PARENT at
 * dispatch time (src/engine/supervisor.cc), and the decision travels to
 * the worker in the job frame. Consulting them in the workers would
 * break determinism: each fork()ed worker would carry its own copy of
 * the injector with counters frozen at fork time, so every respawned
 * worker would replay decision k=0 and the global decision sequence
 * would depend on crash/respawn timing.
 */

#ifndef REX_ENGINE_FAULTINJECT_HH
#define REX_ENGINE_FAULTINJECT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rex::engine {

/** The named injection sites. */
enum class FaultPoint : std::size_t {
    CacheRead = 0,
    CacheWrite,
    SinkWrite,
    PoolSpawn,
    SockAccept,
    SockSend,
    WorkerCrash,
    WorkerHang,
    PeerConnect,
    PeerSend,
    PeerRecv,
    PeerLie,
    PeerCorruptFrame,
    PeerStaleRevision,
    kCount,
};

/** Spec name of @p point ("cache-read", ...). */
const char *faultPointName(FaultPoint point);

/** The process-wide fault injector. */
class FaultInjector
{
  public:
    /** The singleton, configured from REX_FAULT_SPEC at first use. */
    static FaultInjector &instance();

    /**
     * (Re)configure from @p spec; "" disarms everything. Malformed
     * clauses are warned about and skipped. Counters reset. Intended
     * for tests and process startup — arming new points while other
     * threads are mid-shouldFail() is safe (all fields are atomics)
     * but the exact cutover call is unspecified.
     */
    void configure(const std::string &spec);

    /** Should the call at @p point fail? Counts the call either way. */
    bool
    shouldFail(FaultPoint point)
    {
        if (!_anyArmed.load(std::memory_order_relaxed))
            return false;
        return shouldFailSlow(point);
    }

    /** True when @p point has a non-zero probability armed. */
    bool armed(FaultPoint point) const;

    /** Calls made to @p point since the last configure(). */
    std::uint64_t checked(FaultPoint point) const;

    /** Failures injected at @p point since the last configure(). */
    std::uint64_t injected(FaultPoint point) const;

  private:
    FaultInjector();

    bool shouldFailSlow(FaultPoint point);

    struct Point {
        std::atomic<bool> armed{false};
        std::atomic<double> probability{0.0};
        std::atomic<std::uint64_t> seed{0};
        std::atomic<std::uint64_t> calls{0};
        std::atomic<std::uint64_t> injected{0};
    };

    std::atomic<bool> _anyArmed{false};
    Point _points[static_cast<std::size_t>(FaultPoint::kCount)];
};

/** Shorthand for FaultInjector::instance(). */
inline FaultInjector &
faultInjector()
{
    return FaultInjector::instance();
}

} // namespace rex::engine

#endif // REX_ENGINE_FAULTINJECT_HH
