#include "engine/supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <sstream>

#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "axiomatic/checker.hh"
#include "axiomatic/params.hh"
#include "base/logging.hh"
#include "base/strings.hh"
#include "catc/cache.hh"
#include "engine/faultinject.hh"
#include "litmus/parser.hh"

namespace rex::engine {

namespace {

/** Upper bound on one IPC frame; a litmus source or a verdict payload
 *  is kilobytes, so anything near this is protocol corruption. */
constexpr std::size_t kMaxFrameBytes = std::size_t(1) << 26;

/** send() the whole buffer; MSG_NOSIGNAL so a dead peer surfaces as
 *  EPIPE, not a process-wide SIGPIPE (the harness does not ignore
 *  it the way rexd does). */
bool
sendAllFd(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** One length-prefixed frame: 4-byte big-endian length + payload. */
bool
sendFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    unsigned char header[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    return sendAllFd(fd, header, sizeof(header)) &&
           sendAllFd(fd, payload.data(), payload.size());
}

/** Blocking exact read (worker side); false on EOF or error. */
bool
recvExact(int fd, void *data, std::size_t len)
{
    char *p = static_cast<char *>(data);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n == 0)
            return false;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Blocking frame read (worker side); false on EOF/error/oversize. */
bool
recvFrame(int fd, std::string &payload)
{
    unsigned char header[4];
    if (!recvExact(fd, header, sizeof(header)))
        return false;
    const std::size_t len = (std::size_t(header[0]) << 24) |
                            (std::size_t(header[1]) << 16) |
                            (std::size_t(header[2]) << 8) |
                            std::size_t(header[3]);
    if (len > kMaxFrameBytes)
        return false;
    payload.resize(len);
    return len == 0 || recvExact(fd, payload.data(), len);
}

enum class RecvStatus { Ok, Eof, Timeout, Error };

/**
 * Parent-side frame read with an optional hard deadline: poll()s so a
 * worker that stops answering — crashed (EOF) or wedged (timeout) — is
 * always distinguishable and always bounded.
 */
RecvStatus
recvFrameDeadline(int fd,
                  const std::chrono::steady_clock::time_point *deadline,
                  std::string &payload)
{
    std::string buffer;
    std::optional<std::size_t> frameLen;
    for (;;) {
        if (!frameLen && buffer.size() >= 4) {
            const unsigned char *h =
                reinterpret_cast<const unsigned char *>(buffer.data());
            const std::size_t len = (std::size_t(h[0]) << 24) |
                                    (std::size_t(h[1]) << 16) |
                                    (std::size_t(h[2]) << 8) |
                                    std::size_t(h[3]);
            if (len > kMaxFrameBytes)
                return RecvStatus::Error;
            frameLen = len;
        }
        if (frameLen && buffer.size() >= 4 + *frameLen) {
            payload = buffer.substr(4, *frameLen);
            return RecvStatus::Ok;
        }

        int timeoutMs = -1;
        if (deadline) {
            const auto remain =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    *deadline - std::chrono::steady_clock::now())
                    .count();
            if (remain <= 0)
                return RecvStatus::Timeout;
            timeoutMs = static_cast<int>(
                std::min<long long>(remain, 3600 * 1000));
        }
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready == 0)
            return RecvStatus::Timeout;
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::Error;
        }
        char chunk[65536];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n == 0)
            return RecvStatus::Eof;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::Error;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

/** One dispatched job, as framed over the socketpair. */
struct Job {
    std::string variant;
    Budget budget;
    bool crash = false;  //!< injected worker-crash decision
    bool hang = false;   //!< injected worker-hang decision
    /** Compiled-model program id the parent expects the worker to use
     *  (catc::programId); empty = interpreted path. */
    std::string programId;
    std::string testText;
};

std::string
buildJobPayload(const std::string &sourceText, const std::string &variant,
                const Budget &budget, bool crash, bool hang,
                const std::string &program_id)
{
    std::string payload = "rex-job-v1\n";
    payload += "variant " + variant + "\n";
    if (!program_id.empty())
        payload += "program " + program_id + "\n";
    payload += format("deadline_us %" PRIu64 "\n", budget.deadlineMicros);
    payload += format("max_candidates %" PRIu64 "\n",
                      budget.maxCandidates);
    payload += format("max_heap %" PRIu64 "\n", budget.maxHeapBytes);
    payload += format("crash %d\n", crash ? 1 : 0);
    payload += format("hang %d\n", hang ? 1 : 0);
    payload += format("testlen %zu\n", sourceText.size());
    payload += sourceText;
    return payload;
}

bool
parseJobPayload(const std::string &payload, Job &job)
{
    std::size_t pos = 0;
    auto nextLine = [&](std::string &line) {
        const std::size_t eol = payload.find('\n', pos);
        if (eol == std::string::npos)
            return false;
        line = payload.substr(pos, eol - pos);
        pos = eol + 1;
        return true;
    };
    std::string line;
    if (!nextLine(line) || line != "rex-job-v1")
        return false;
    while (nextLine(line)) {
        const std::size_t space = line.find(' ');
        const std::string field = line.substr(0, space);
        const std::string rest =
            space == std::string::npos ? "" : line.substr(space + 1);
        if (field == "variant") {
            job.variant = rest;
        } else if (field == "program") {
            job.programId = rest;
        } else if (field == "deadline_us") {
            job.budget.deadlineMicros =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "max_candidates") {
            job.budget.maxCandidates =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "max_heap") {
            job.budget.maxHeapBytes =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "crash") {
            job.crash = rest == "1";
        } else if (field == "hang") {
            job.hang = rest == "1";
        } else if (field == "testlen") {
            const std::size_t len =
                std::strtoull(rest.c_str(), nullptr, 10);
            if (payload.size() - pos != len)
                return false;
            job.testText = payload.substr(pos, len);
            return true;
        } else {
            return false;
        }
    }
    return false;
}

/** A worker's answer: a completed/exhausted verdict or a job error. */
struct WireResponse {
    enum class Status { Ok, Exhausted, Error } status = Status::Error;
    CachedVerdict verdict;
    std::string axis;
    std::string stage;
    std::string error;
};

std::string
buildResponsePayload(const WireResponse &response)
{
    std::string payload = "rex-verdict-ipc-v1\n";
    const char *status =
        response.status == WireResponse::Status::Ok
            ? "ok"
            : response.status == WireResponse::Status::Exhausted
                  ? "exhausted"
                  : "error";
    payload += format("status %s\n", status);
    const CachedVerdict &v = response.verdict;
    payload += format("observable %d\n", v.observable ? 1 : 0);
    payload += format("candidates %" PRIu64 "\n", v.candidates);
    payload += format("consistent %" PRIu64 "\n", v.consistent);
    payload += format("witnesses %" PRIu64 "\n", v.witnesses);
    payload += format("cu %" PRIu64 "\n", v.constrainedUnpredictable);
    payload += format("unknown %" PRIu64 "\n", v.unknownSideEffects);
    if (!v.forbiddingAxiom.empty())
        payload += "axiom " + v.forbiddingAxiom + "\n";
    if (!v.forbiddingCycle.empty()) {
        payload += "cycle";
        for (EventId id : v.forbiddingCycle)
            payload += " " + std::to_string(id);
        payload += "\n";
    }
    if (!response.axis.empty())
        payload += "axis " + response.axis + "\n";
    if (!response.stage.empty())
        payload += "stage " + response.stage + "\n";
    if (!response.error.empty())
        payload += "error " + response.error + "\n";
    return payload;
}

bool
parseResponsePayload(const std::string &payload, WireResponse &response)
{
    std::istringstream stream(payload);
    std::string line;
    if (!std::getline(stream, line) || line != "rex-verdict-ipc-v1")
        return false;
    bool haveStatus = false;
    while (std::getline(stream, line)) {
        const std::size_t space = line.find(' ');
        const std::string field = line.substr(0, space);
        const std::string rest =
            space == std::string::npos ? "" : line.substr(space + 1);
        if (field == "status") {
            haveStatus = true;
            if (rest == "ok")
                response.status = WireResponse::Status::Ok;
            else if (rest == "exhausted")
                response.status = WireResponse::Status::Exhausted;
            else if (rest == "error")
                response.status = WireResponse::Status::Error;
            else
                return false;
        } else if (field == "observable") {
            response.verdict.observable = rest == "1";
        } else if (field == "candidates") {
            response.verdict.candidates =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "consistent") {
            response.verdict.consistent =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "witnesses") {
            response.verdict.witnesses =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "cu") {
            response.verdict.constrainedUnpredictable =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "unknown") {
            response.verdict.unknownSideEffects =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "axiom") {
            response.verdict.forbiddingAxiom = rest;
        } else if (field == "cycle") {
            for (const std::string &id : splitWhitespace(rest)) {
                response.verdict.forbiddingCycle.push_back(
                    static_cast<EventId>(
                        std::strtoul(id.c_str(), nullptr, 10)));
            }
        } else if (field == "axis") {
            response.axis = rest;
        } else if (field == "stage") {
            response.stage = rest;
        } else if (field == "error") {
            response.error = rest;
        } else {
            return false;
        }
    }
    return haveStatus;
}

std::string
errorResponse(const std::string &message)
{
    WireResponse response;
    response.status = WireResponse::Status::Error;
    // The payload is line-oriented; keep the message to one line.
    std::string flat = message;
    for (char &c : flat)
        if (c == '\n' || c == '\r')
            c = ' ';
    response.error = flat.empty() ? "unspecified" : flat;
    return buildResponsePayload(response);
}

/** Name a waitpid() status: the fatal signal, or "exit:N". */
std::string
describeWaitStatus(int status)
{
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        if (const char *name = fatalSignalName(sig))
            return name;
        return format("SIG%d", sig);
    }
    if (WIFEXITED(status))
        return format("exit:%d", WEXITSTATUS(status));
    return "unknown";
}

/** Blocking reap of @p pid; returns the described status. */
std::string
reapWorker(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return describeWaitStatus(status);
}

/**
 * The worker process: a single-threaded loop over job frames. Never
 * returns; _exit()s (no atexit handlers — the parent's are not ours to
 * run) when the parent closes the socket.
 */
[[noreturn]] void
workerLoop(int fd, CrashContext *status)
{
    // The parent's signal dispositions are not ours: rexd routes
    // SIGTERM/SIGINT into its drain pipe, which must not swallow a
    // worker kill.
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGPIPE, SIG_IGN);
    installCrashAttributionHandler();
    // All attribution — including the checker's stage notes — lands in
    // the shared status page, where the supervisor reads it post-mortem.
    setCrashContextTarget(status);

    std::string payload;
    while (recvFrame(fd, payload)) {
        Job job;
        if (!parseJobPayload(payload, job)) {
            if (!sendFrame(fd, errorResponse("malformed job frame")))
                break;
            continue;
        }
        if (job.crash) {
            // Injected worker-crash: die exactly like a real bug would,
            // through the attribution handler and then the default
            // disposition, so WTERMSIG names SIGSEGV.
            std::raise(SIGSEGV);
        }
        if (job.hang) {
            // Injected worker-hang: spin without ever polling a token —
            // only the supervisor's SIGKILL ends this.
            for (volatile std::uint64_t spin = 0;;)
                spin = spin + 1;
        }

        std::string reply;
        try {
            LitmusTest test = parseLitmus(job.testText);
            const ModelParams params = ModelParams::byName(job.variant);
            // The parent picks the model path: a program id matching
            // this worker's own compile (same variant, same model
            // revision) enables the compiled path, satisfied from the
            // worker's process-local cache; empty or mismatched falls
            // back to the interpreter. Safe to setenv: this loop is
            // the process's only thread.
            const bool compiled = !job.programId.empty() &&
                                  job.programId == catc::programId(params);
            ::setenv("REX_COMPILED_MODEL", compiled ? "1" : "0", 1);
            crashContextSetJob(test.name.c_str(), job.variant.c_str());
            // Always governed: an unlimited Governor only counts (the
            // live pointer feeds the shared progress counter), so the
            // verdict is identical to an ungoverned in-process check.
            Governor governor(job.budget, nullptr, &status->candidates);
            const CheckResult result =
                checkTest(test, params, /*stop_at_first=*/true,
                          /*capture_witness=*/false, nullptr, &governor);
            WireResponse response;
            if (result.complete()) {
                response.status = WireResponse::Status::Ok;
            } else {
                response.status = WireResponse::Status::Exhausted;
                response.axis = result.exhaustedAxis;
                response.stage = governor.stageReached();
            }
            response.verdict = CachedVerdict::fromResult(result);
            reply = buildResponsePayload(response);
        } catch (const std::exception &err) {
            reply = errorResponse(err.what());
        }
        crashContextClearJob();
        if (!sendFrame(fd, reply))
            break;
    }
    _exit(0);
}

/** Prefill @p page with the job about to be dispatched, so a crash
 *  before the worker's own bookkeeping still attributes correctly. */
void
prefillStatusPage(CrashContext *page, const std::string &test,
                  const std::string &variant)
{
    CrashContext *previous = setCrashContextTarget(page);
    crashContextSetJob(test.c_str(), variant.c_str());
    setCrashContextTarget(previous);
}

} // namespace

Supervisor::Supervisor(SupervisorConfig config) : _config(config)
{
    if (_config.workers == 0)
        _config.workers = 1;
    void *pages = ::mmap(nullptr,
                         sizeof(CrashContext) * _config.workers,
                         PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (pages == MAP_FAILED)
        fatal("supervisor: cannot map worker status pages");
    _statusPages = static_cast<CrashContext *>(pages);
    _slots.resize(_config.workers);
    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            _slots[i].status = new (&_statusPages[i]) CrashContext();
            spawnSlotLocked(i);
        }
    }
    _monitor = std::thread([this] { monitorLoop(); });
}

Supervisor::~Supervisor()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
        // Closing an idle worker's socket is its shutdown signal: its
        // blocking read returns EOF and it _exit(0)s.
        for (Slot &slot : _slots) {
            if (slot.fd >= 0 && !slot.busy) {
                ::close(slot.fd);
                slot.fd = -1;
            }
        }
    }
    _slotFree.notify_all();
    _monitorWake.notify_all();
    if (_monitor.joinable())
        _monitor.join();

    for (Slot &slot : _slots) {
        if (!slot.alive || slot.pid <= 0)
            continue;
        // Graceful exit first; SIGKILL any straggler (a worker wedged
        // mid-check when the supervisor dies — callers should have
        // drained, but shutdown must still terminate).
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(2);
        int status = 0;
        pid_t reaped = 0;
        while ((reaped = ::waitpid(slot.pid, &status, WNOHANG)) == 0 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (reaped == 0) {
            ::kill(slot.pid, SIGKILL);
            while (::waitpid(slot.pid, &status, 0) < 0 &&
                   errno == EINTR) {
            }
        }
        if (slot.fd >= 0)
            ::close(slot.fd);
    }
    ::munmap(_statusPages, sizeof(CrashContext) * _config.workers);
}

void
Supervisor::spawnSlotLocked(std::size_t index)
{
    Slot &slot = _slots[index];
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
        warn(std::string("supervisor: socketpair: ") +
             std::strerror(errno));
        slot.respawnAt = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(
                             _config.respawnBackoffMaxMs);
        return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        warn(std::string("supervisor: fork: ") + std::strerror(errno));
        ::close(fds[0]);
        ::close(fds[1]);
        slot.respawnAt = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(
                             _config.respawnBackoffMaxMs);
        return;
    }
    if (pid == 0) {
        // Child. Drop every descriptor inherited across the fork except
        // stdio and our own job socket. Respawns fork from a live
        // daemon, so the inherited set includes sibling sockets, the
        // listener, and accepted connections mid-response — a worker
        // holding a copy of any of those keeps the peer from ever
        // seeing EOF. Only close()/dup2() here: the parent is
        // multithreaded, so anything that can allocate may deadlock.
        int job = fds[1];
        if (job != 3) {
            ::dup2(job, 3);
            job = 3;
        }
#if defined(__linux__) && defined(__GLIBC__) && \
    (__GLIBC__ > 2 || __GLIBC_MINOR__ >= 34)
        ::close_range(4, ~0u, 0);
#else
        for (int fd = 4; fd < 4096; ++fd)
            ::close(fd);
#endif
        workerLoop(job, slot.status);
    }
    ::close(fds[1]);
    slot.pid = pid;
    slot.fd = fds[0];
    slot.alive = true;
    slot.busy = false;
}

void
Supervisor::retireSlotLocked(std::size_t index, const std::string &)
{
    Slot &slot = _slots[index];
    if (slot.fd >= 0) {
        ::close(slot.fd);
        slot.fd = -1;
    }
    slot.pid = -1;
    slot.alive = false;
    slot.busy = false;
    ++slot.consecutiveCrashes;
    // Capped exponential backoff before the respawn: one crash costs
    // almost nothing, a crash loop stops burning a core on forks.
    std::uint64_t backoff = _config.respawnBackoffMs;
    for (unsigned i = 1; i < slot.consecutiveCrashes &&
                         backoff < _config.respawnBackoffMaxMs;
         ++i) {
        backoff *= 2;
    }
    backoff = std::min(backoff, _config.respawnBackoffMaxMs);
    slot.respawnAt = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(backoff);
    _monitorWake.notify_all();
}

void
Supervisor::countCrash(const std::string &signal)
{
    _crashes.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(_crashMutex);
    ++_crashesBySignal[signal];
}

std::uint64_t
Supervisor::chargeLedger(const std::string &ledgerKey,
                         const std::string &signal)
{
    if (ledgerKey.empty())
        return 0;
    std::lock_guard<std::mutex> lock(_ledgerMutex);
    LedgerEntry &entry = _ledger[ledgerKey];
    ++entry.crashes;
    entry.lastSignal = signal;
    entry.lastTouch = ++_ledgerSeq;

    // LRU bound: a stream of distinct crashing keys must not grow the
    // ledger without limit. Linear scan is fine — eviction only runs
    // at the cap, and crashes are not a hot path.
    if (_config.ledgerMaxEntries != 0 &&
            _ledger.size() > _config.ledgerMaxEntries) {
        auto oldest = _ledger.end();
        for (auto it = _ledger.begin(); it != _ledger.end(); ++it) {
            if (it->first == ledgerKey)
                continue;
            if (oldest == _ledger.end() ||
                    it->second.lastTouch < oldest->second.lastTouch)
                oldest = it;
        }
        if (oldest != _ledger.end()) {
            _ledger.erase(oldest);
            _ledgerEvictions.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return entry.crashes;
}

SupervisedOutcome
Supervisor::run(const std::string &sourceText, const std::string &testName,
                const std::string &variant, const std::string &ledgerKey,
                const Budget *budget)
{
    SupervisedOutcome outcome;

    // Quarantine gate: a key that keeps killing workers is answered
    // immediately, with no dispatch and no respawn churn.
    if (_config.crashQuarantine != 0 && !ledgerKey.empty()) {
        std::lock_guard<std::mutex> lock(_ledgerMutex);
        auto it = _ledger.find(ledgerKey);
        if (it != _ledger.end() &&
                it->second.crashes >= _config.crashQuarantine) {
            // A hot quarantined key stays resident under LRU pressure.
            it->second.lastTouch = ++_ledgerSeq;
            _quarantinedServed.fetch_add(1, std::memory_order_relaxed);
            outcome.kind = SupervisedOutcome::Kind::Quarantined;
            outcome.signal = it->second.lastSignal;
            outcome.crashes = it->second.crashes;
            return outcome;
        }
    }

    // Fault decisions are made here, in the parent, and shipped in the
    // frame — one deterministic decision sequence regardless of how
    // many workers have crashed and respawned (see faultinject.hh).
    const bool injectCrash =
        faultInjector().shouldFail(FaultPoint::WorkerCrash);
    const bool injectHang =
        faultInjector().shouldFail(FaultPoint::WorkerHang);

    // Acquire a live, idle slot (callers queue here under load).
    std::size_t index = 0;
    int fd = -1;
    pid_t pid = -1;
    CrashContext *status = nullptr;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _slotFree.wait(lock, [&] {
            if (_stopping)
                return true;
            for (std::size_t i = 0; i < _slots.size(); ++i) {
                if (_slots[i].alive && !_slots[i].busy) {
                    index = i;
                    return true;
                }
            }
            return false;
        });
        if (_stopping) {
            outcome.kind = SupervisedOutcome::Kind::Crashed;
            outcome.signal = "shutdown";
            return outcome;
        }
        Slot &slot = _slots[index];
        slot.busy = true;
        fd = slot.fd;
        pid = slot.pid;
        status = slot.status;
    }

    prefillStatusPage(status, testName, variant);

    const Budget effective = budget ? *budget : Budget{};

    // Compile once in the parent — workers forked from now on inherit
    // the warm cache — and ship only the program id; each worker
    // satisfies it from its own per-process cache (compiling on first
    // use if it forked before the warm-up).
    std::string programId;
    if (catc::compiledModelEnabled())
        programId = catc::nativeStaged(ModelParams::byName(variant))->id;

    auto finishCrash = [&](const std::string &signal) {
        outcome.kind = SupervisedOutcome::Kind::Crashed;
        outcome.signal = signal;
        outcome.stage = status->stage;
        outcome.verdict.candidates =
            status->candidates.load(std::memory_order_relaxed);
        outcome.crashes = chargeLedger(ledgerKey, signal);
        countCrash(signal);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            retireSlotLocked(index, signal);
        }
        return outcome;
    };

    if (!sendFrame(fd, buildJobPayload(sourceText, variant, effective,
                                       injectCrash, injectHang,
                                       programId))) {
        // The worker died idle before this job ever reached it (an
        // external kill): reap it here — we own the busy slot.
        return finishCrash(reapWorker(pid));
    }

    // The hard deadline: cooperative deadline + grace, after which the
    // worker is SIGKILLed. Without a cooperative deadline there is no
    // hard one (rexd's --max-deadline-ms cap guarantees one there).
    std::optional<std::chrono::steady_clock::time_point> hardDeadline;
    if (effective.deadlineMicros != 0) {
        hardDeadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(
                           effective.deadlineMicros) +
                       std::chrono::milliseconds(_config.killGraceMs);
    }

    std::string payload;
    const RecvStatus received = recvFrameDeadline(
        fd, hardDeadline ? &*hardDeadline : nullptr, payload);
    if (received == RecvStatus::Timeout) {
        ::kill(pid, SIGKILL);
        return finishCrash(reapWorker(pid));  // "SIGKILL"
    }
    if (received != RecvStatus::Ok)
        return finishCrash(reapWorker(pid));

    WireResponse response;
    if (!parseResponsePayload(payload, response)) {
        // Protocol corruption: the worker is not trustworthy anymore.
        ::kill(pid, SIGKILL);
        reapWorker(pid);
        return finishCrash("protocol-error");
    }

    if (response.status == WireResponse::Status::Error) {
        // The worker survived but refused the job (a parse/validation
        // error the parent did not hit — deterministic, so it counts
        // toward quarantine). The slot stays alive.
        warn("supervised worker error: " + response.error);
        outcome.kind = SupervisedOutcome::Kind::Crashed;
        outcome.signal = "worker-error";
        outcome.stage = status->stage;
        outcome.crashes = chargeLedger(ledgerKey, "worker-error");
        countCrash("worker-error");
    } else {
        outcome.kind = response.status == WireResponse::Status::Ok
                           ? SupervisedOutcome::Kind::Ok
                           : SupervisedOutcome::Kind::Exhausted;
        outcome.verdict = response.verdict;
        outcome.exhaustedAxis = response.axis;
        outcome.stage = response.stage;
    }

    {
        std::lock_guard<std::mutex> lock(_mutex);
        Slot &slot = _slots[index];
        slot.busy = false;
        slot.consecutiveCrashes = 0;
    }
    _slotFree.notify_one();
    return outcome;
}

void
Supervisor::monitorLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (!_stopping) {
        _monitorWake.wait_for(lock, std::chrono::milliseconds(20));
        if (_stopping)
            break;
        const auto now = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            Slot &slot = _slots[i];
            if (slot.alive && !slot.busy) {
                // Reap workers dying between jobs (external kill -9,
                // OOM): per-pid WNOHANG — never waitpid(-1), never a
                // SIGCHLD handler, so the embedding program's own
                // children are untouched. Busy slots belong to their
                // dispatcher, which sees the EOF and reaps itself.
                int status = 0;
                const pid_t reaped =
                    ::waitpid(slot.pid, &status, WNOHANG);
                if (reaped == slot.pid) {
                    countCrash(describeWaitStatus(status));
                    retireSlotLocked(i, "");
                }
            } else if (!slot.alive && slot.pid < 0 &&
                       now >= slot.respawnAt) {
                spawnSlotLocked(i);
                if (slot.alive) {
                    _respawns.fetch_add(1, std::memory_order_relaxed);
                    _slotFree.notify_all();
                }
            }
        }
    }
}

unsigned
Supervisor::liveWorkers() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    unsigned live = 0;
    for (const Slot &slot : _slots)
        live += slot.alive ? 1 : 0;
    return live;
}

std::vector<std::pair<std::string, std::uint64_t>>
Supervisor::crashesBySignal() const
{
    std::lock_guard<std::mutex> lock(_crashMutex);
    return {_crashesBySignal.begin(), _crashesBySignal.end()};
}

std::uint64_t
Supervisor::ledgerEntries() const
{
    std::lock_guard<std::mutex> lock(_ledgerMutex);
    return _ledger.size();
}

std::uint64_t
Supervisor::quarantinedKeys() const
{
    if (_config.crashQuarantine == 0)
        return 0;
    std::lock_guard<std::mutex> lock(_ledgerMutex);
    std::uint64_t keys = 0;
    for (const auto &[key, entry] : _ledger) {
        (void)key;
        keys += entry.crashes >= _config.crashQuarantine ? 1 : 0;
    }
    return keys;
}

std::uint64_t
Supervisor::liveCandidates() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::uint64_t sum = 0;
    for (const Slot &slot : _slots) {
        if (slot.busy && slot.status) {
            sum += slot.status->candidates.load(
                std::memory_order_relaxed);
        }
    }
    return sum;
}

} // namespace rex::engine
