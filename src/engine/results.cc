#include "engine/results.hh"

#include <cinttypes>
#include <csignal>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/faultinject.hh"

namespace rex::engine {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += format("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

std::string
JobRecord::toJson() const
{
    std::string json = format(
        "{\"kind\":\"%s\",\"test\":\"%s\",\"variant\":\"%s\","
        "\"verdict\":\"%s\",\"candidates\":%" PRIu64
        ",\"consistent\":%" PRIu64 ",\"witnesses\":%" PRIu64
        ",\"runs\":%" PRIu64 ",\"observed\":%" PRIu64
        ",\"wall_us\":%" PRIu64 ",\"cache_hit\":%s,\"forbidding\":\"%s\"",
        jsonEscape(kind).c_str(), jsonEscape(test).c_str(),
        jsonEscape(variant).c_str(), jsonEscape(verdict).c_str(),
        candidates, consistent, witnesses, runs, observed, wallMicros,
        cacheHit ? "true" : "false", jsonEscape(forbidding).c_str());
    // Budget fields only when a budget tripped: completed records stay
    // byte-identical to the pre-governor schema.
    if (!exhaustedAxis.empty()) {
        json += format(",\"exhausted_axis\":\"%s\",\"stage\":\"%s\"",
                       jsonEscape(exhaustedAxis).c_str(),
                       jsonEscape(stage).c_str());
    }
    // Continuation token only on a resumable check's budget trip:
    // every other record keeps its existing byte shape.
    if (!continuation.empty()) {
        json += format(",\"continuation\":\"%s\"",
                       jsonEscape(continuation).c_str());
    }
    // Supervision fields only when a worker crashed (CrashedWorker /
    // Quarantined records): unsupervised runs keep the legacy schema.
    if (!workerSignal.empty()) {
        json += format(",\"signal\":\"%s\",\"stage\":\"%s\","
                       "\"crashes\":%" PRIu64,
                       jsonEscape(workerSignal).c_str(),
                       jsonEscape(stage).c_str(), crashes);
    }
    json += "}";
    return json;
}

ResultsSink::~ResultsSink()
{
    if (_out)
        std::fclose(_out);
}

void
ResultsSink::flush()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_out)
        std::fflush(_out);
}

void
ResultsSink::close()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_out) {
        std::fclose(_out);
        _out = nullptr;
    }
}

namespace {

extern "C" void
flushAndReraise(int sig)
{
    // Flush every stdio stream: results sinks are plain FILE*s, so this
    // pushes any buffered JSONL tail to the kernel. (fflush(nullptr) is
    // not formally async-signal-safe, but the alternative — dying with
    // a dirty buffer — loses records for certain; appends are one
    // whole-line fwrite each, so the file still ends on a record
    // boundary either way.)
    std::fflush(nullptr);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

void
installFlushOnExitSignals()
{
    static std::once_flag installed;
    std::call_once(installed, [] {
        std::signal(SIGINT, flushAndReraise);
        std::signal(SIGTERM, flushAndReraise);
    });
}

void
ResultsSink::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_out) {
        std::fclose(_out);
        _out = nullptr;
    }
    _out = std::fopen(path.c_str(), "w");
    if (!_out) {
        warn("results sink: cannot open '" + path + "'");
        return;
    }
    _path = path;
}

void
ResultsSink::append(const JobRecord &record)
{
    if (!_out)
        return;
    if (faultInjector().shouldFail(FaultPoint::SinkWrite)) {
        ++_dropped;
        return;
    }
    std::string line = record.toJson() + "\n";
    std::lock_guard<std::mutex> lock(_mutex);
    const std::size_t wrote =
        std::fwrite(line.data(), 1, line.size(), _out);
    std::fflush(_out);
    if (wrote != line.size()) {
        ++_dropped;
        if (!_warnedDrop) {
            _warnedDrop = true;
            warn("results sink: short write to '" + _path +
                 "'; counting dropped records");
        }
        return;
    }
    ++_records;
}

} // namespace rex::engine
