#include "engine/results.hh"

#include <cinttypes>
#include <csignal>

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex::engine {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += format("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

std::string
JobRecord::toJson() const
{
    return format(
        "{\"kind\":\"%s\",\"test\":\"%s\",\"variant\":\"%s\","
        "\"verdict\":\"%s\",\"candidates\":%" PRIu64
        ",\"consistent\":%" PRIu64 ",\"witnesses\":%" PRIu64
        ",\"runs\":%" PRIu64 ",\"observed\":%" PRIu64
        ",\"wall_us\":%" PRIu64 ",\"cache_hit\":%s,\"forbidding\":\"%s\"}",
        jsonEscape(kind).c_str(), jsonEscape(test).c_str(),
        jsonEscape(variant).c_str(), jsonEscape(verdict).c_str(),
        candidates, consistent, witnesses, runs, observed, wallMicros,
        cacheHit ? "true" : "false", jsonEscape(forbidding).c_str());
}

ResultsSink::~ResultsSink()
{
    if (_out)
        std::fclose(_out);
}

void
ResultsSink::flush()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_out)
        std::fflush(_out);
}

void
ResultsSink::close()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_out) {
        std::fclose(_out);
        _out = nullptr;
    }
}

namespace {

extern "C" void
flushAndReraise(int sig)
{
    // Flush every stdio stream: results sinks are plain FILE*s, so this
    // pushes any buffered JSONL tail to the kernel. (fflush(nullptr) is
    // not formally async-signal-safe, but the alternative — dying with
    // a dirty buffer — loses records for certain; appends are one
    // whole-line fwrite each, so the file still ends on a record
    // boundary either way.)
    std::fflush(nullptr);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

} // namespace

void
installFlushOnExitSignals()
{
    static std::once_flag installed;
    std::call_once(installed, [] {
        std::signal(SIGINT, flushAndReraise);
        std::signal(SIGTERM, flushAndReraise);
    });
}

void
ResultsSink::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_out) {
        std::fclose(_out);
        _out = nullptr;
    }
    _out = std::fopen(path.c_str(), "w");
    if (!_out) {
        warn("results sink: cannot open '" + path + "'");
        return;
    }
    _path = path;
}

void
ResultsSink::append(const JobRecord &record)
{
    if (!_out)
        return;
    std::string line = record.toJson() + "\n";
    std::lock_guard<std::mutex> lock(_mutex);
    std::fwrite(line.data(), 1, line.size(), _out);
    std::fflush(_out);
    ++_records;
}

} // namespace rex::engine
