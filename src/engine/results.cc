#include "engine/results.hh"

#include <cinttypes>

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex::engine {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += format("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

std::string
JobRecord::toJson() const
{
    return format(
        "{\"kind\":\"%s\",\"test\":\"%s\",\"variant\":\"%s\","
        "\"verdict\":\"%s\",\"candidates\":%" PRIu64
        ",\"consistent\":%" PRIu64 ",\"witnesses\":%" PRIu64
        ",\"runs\":%" PRIu64 ",\"observed\":%" PRIu64
        ",\"wall_us\":%" PRIu64 ",\"cache_hit\":%s,\"forbidding\":\"%s\"}",
        jsonEscape(kind).c_str(), jsonEscape(test).c_str(),
        jsonEscape(variant).c_str(), jsonEscape(verdict).c_str(),
        candidates, consistent, witnesses, runs, observed, wallMicros,
        cacheHit ? "true" : "false", jsonEscape(forbidding).c_str());
}

ResultsSink::~ResultsSink()
{
    if (_out)
        std::fclose(_out);
}

void
ResultsSink::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_out) {
        std::fclose(_out);
        _out = nullptr;
    }
    _out = std::fopen(path.c_str(), "w");
    if (!_out) {
        warn("results sink: cannot open '" + path + "'");
        return;
    }
    _path = path;
}

void
ResultsSink::append(const JobRecord &record)
{
    if (!_out)
        return;
    std::string line = record.toJson() + "\n";
    std::lock_guard<std::mutex> lock(_mutex);
    std::fwrite(line.data(), 1, line.size(), _out);
    std::fflush(_out);
    ++_records;
}

} // namespace rex::engine
