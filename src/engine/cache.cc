#include "engine/cache.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string_view>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "base/fsync.hh"
#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/faultinject.hh"
#include "isa/register.hh"

namespace rex::engine {

namespace {

/** FNV-1a over @p text, seeded by @p hash. */
std::uint64_t
fnv1a(std::uint64_t hash, std::string_view text)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/**
 * RAII flock(2) on `<dir>/.lock`, serialising eviction scans and
 * cap-trim deletions across *processes* sharing one cache directory
 * (supervised workers, parallel harness invocations, the cache-hammer
 * test). Entry reads and writes need no lock — O_EXCL temp files plus
 * atomic rename already make them safe — but two processes scanning
 * and deleting concurrently could double-delete or tally phantom
 * bytes. Never nested (flock with a second fd would self-deadlock):
 * take it before _diskMutex, at the call sites of scanDisk /
 * trimToCapLocked only.
 */
class FlockGuard
{
  public:
    explicit FlockGuard(const std::string &dir)
    {
        if (dir.empty())
            return;
        _fd = ::open((dir + "/.lock").c_str(),
                     O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (_fd < 0)
            return;
        while (::flock(_fd, LOCK_EX) < 0 && errno == EINTR) {
        }
    }

    ~FlockGuard()
    {
        if (_fd >= 0)
            ::close(_fd);  // closing the fd releases the lock
    }

    FlockGuard(const FlockGuard &) = delete;
    FlockGuard &operator=(const FlockGuard &) = delete;

  private:
    int _fd = -1;
};

void
appendProgram(std::string &out, const char *tag, int tid,
              const isa::Program &program)
{
    if (program.code.empty() && program.labels.empty())
        return;
    out += format("%s %d:\n", tag, tid);
    out += program.toString();
}

} // namespace

std::string
canonicalTestText(const LitmusTest &test)
{
    std::string out = "litmus-canonical-v1\n";
    out += "name " + test.name + "\n";
    out += "locations";
    for (std::size_t loc = 0; loc < test.locations.size(); ++loc) {
        out += format(" %s=%" PRIu64, test.locations[loc].c_str(),
                      test.initValues[loc]);
    }
    out += "\n";
    for (std::size_t t = 0; t < test.threads.size(); ++t) {
        const LitmusThread &thread = test.threads[t];
        out += format("thread %zu el=%d masked=%d eoimode1=%d sgirx=%d",
                      t, thread.initialEl, thread.initialMasked ? 1 : 0,
                      thread.eoiMode1 ? 1 : 0,
                      thread.sgiReceiver ? 1 : 0);
        if (thread.interruptAt) {
            out += format(" interrupt-at=%s intid=%u",
                          thread.interruptAt->c_str(),
                          thread.interruptIntid);
        }
        for (isa::RegId r = 0; r < isa::kNumRegs; ++r) {
            if (thread.initRegs[r] != 0) {
                out += format(" %s=%" PRIu64,
                              isa::regName(r).c_str(),
                              thread.initRegs[r]);
            }
        }
        out += "\n";
        appendProgram(out, "program", static_cast<int>(t),
                      thread.program);
        appendProgram(out, "handler", static_cast<int>(t),
                      thread.handler);
    }
    out += "final";
    for (const CondAtom &atom : test.finalCond.atoms) {
        if (atom.kind == CondAtom::Kind::Register) {
            out += format(" %d:%s=%" PRIu64, atom.tid,
                          isa::regName(atom.reg).c_str(), atom.value);
        } else {
            out += format(" *%s=%" PRIu64,
                          test.locations[atom.loc].c_str(), atom.value);
        }
    }
    out += "\n";
    return out;
}

std::string
canonicalParamsText(const ModelParams &params)
{
    return format("exs=%d eis=%d eos=%d seaR=%d seaW=%d ets2=%d gic=%d",
                  params.featExS ? 1 : 0, params.eis ? 1 : 0,
                  params.eos ? 1 : 0, params.seaR ? 1 : 0,
                  params.seaW ? 1 : 0, params.featEts2 ? 1 : 0,
                  params.gicExtension ? 1 : 0);
}

VerdictKey
VerdictKey::make(const LitmusTest &test, const ModelParams &params,
                 const std::string &revision)
{
    VerdictKey key;
    key.text = "revision " + revision + "\n" +
        "params " + canonicalParamsText(params) + "\n" +
        canonicalTestText(test);
    key.hash = fnv1a(kFnvOffset, key.text);
    return key;
}

std::string
VerdictKey::hashHex() const
{
    return format("%016" PRIx64, hash);
}

CachedVerdict
CachedVerdict::fromResult(const CheckResult &result)
{
    CachedVerdict verdict;
    verdict.observable = result.observable;
    verdict.candidates = result.candidates;
    verdict.consistent = result.consistent;
    verdict.witnesses = result.witnesses;
    verdict.constrainedUnpredictable = result.constrainedUnpredictable;
    verdict.unknownSideEffects = result.unknownSideEffects;
    verdict.forbiddingAxiom = result.forbiddingAxiom;
    verdict.forbiddingCycle = result.forbiddingCycle;
    return verdict;
}

CheckResult
CachedVerdict::toResult() const
{
    CheckResult result;
    result.observable = observable;
    result.candidates = candidates;
    result.consistent = consistent;
    result.witnesses = witnesses;
    result.constrainedUnpredictable = constrainedUnpredictable;
    result.unknownSideEffects = unknownSideEffects;
    result.forbiddingAxiom = forbiddingAxiom;
    result.forbiddingCycle = forbiddingCycle;
    return result;
}

std::string
CachedVerdict::forbiddingSummary() const
{
    if (observable || forbiddingAxiom.empty())
        return "";
    std::string out = forbiddingAxiom;
    for (std::size_t i = 0; i < forbiddingCycle.size(); ++i) {
        out += i ? "->" : ":";
        out += std::to_string(forbiddingCycle[i]);
    }
    return out;
}

VerdictCache::VerdictCache(bool enabled, std::string dir,
                           std::uint64_t maxBytes,
                           std::size_t memMaxEntries)
    : _enabled(enabled), _dir(std::move(dir)), _maxBytes(maxBytes),
      _memMaxEntries(memMaxEntries)
{
    if (_enabled && !_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(_dir, ec);
        if (ec) {
            warn("verdict cache: cannot create '" + _dir + "' (" +
                 ec.message() + "); persistence disabled");
            _dir.clear();
        }
    }
    if (_enabled && !_dir.empty()) {
        FlockGuard dirLock(_dir);
        std::lock_guard<std::mutex> lock(_diskMutex);
        scanDisk();
        trimToCapLocked();
    }
}

std::size_t
VerdictCache::entryCount()
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.size();
}

std::uint64_t
VerdictCache::diskBytes()
{
    std::lock_guard<std::mutex> lock(_diskMutex);
    return _diskBytes;
}

void
VerdictCache::scanDisk()
{
    _diskEntries.clear();
    _diskBytes = 0;
    std::error_code ec;
    for (const auto &entry :
             std::filesystem::directory_iterator(_dir, ec)) {
        if (!entry.is_regular_file() ||
                entry.path().extension() != ".rexv") {
            continue;  // skips .lock and any in-flight .tmp files too
        }
        DiskEntry tracked;
        tracked.path = entry.path().string();
        tracked.bytes = static_cast<std::uint64_t>(
            entry.file_size(ec));
        tracked.mtimeNanos =
            entry.last_write_time(ec).time_since_epoch().count();
        _diskEntries.push_back(std::move(tracked));
        _diskBytes += _diskEntries.back().bytes;
    }
}

void
VerdictCache::trimToCapLocked()
{
    if (_maxBytes == 0 || _diskBytes <= _maxBytes)
        return;
    // Oldest first; ties (same-nanosecond writes) break by path so the
    // trim order is deterministic.
    std::sort(_diskEntries.begin(), _diskEntries.end(),
              [](const DiskEntry &a, const DiskEntry &b) {
                  if (a.mtimeNanos != b.mtimeNanos)
                      return a.mtimeNanos < b.mtimeNanos;
                  return a.path < b.path;
              });
    std::size_t removed = 0;
    while (removed < _diskEntries.size() && _diskBytes > _maxBytes) {
        const DiskEntry &victim = _diskEntries[removed];
        std::error_code ec;
        std::filesystem::remove(victim.path, ec);
        _diskBytes -= std::min(_diskBytes, victim.bytes);
        ++_evictions;
        ++removed;
    }
    _diskEntries.erase(_diskEntries.begin(),
                       _diskEntries.begin() +
                           static_cast<std::ptrdiff_t>(removed));
}

std::string
VerdictCache::entryPath(const VerdictKey &key) const
{
    return _dir + "/" + key.hashHex() + ".rexv";
}

std::optional<CachedVerdict>
VerdictCache::lookup(const VerdictKey &key)
{
    if (!_enabled)
        return std::nullopt;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _entries.find(key.text);
        if (it != _entries.end()) {
            it->second.touch = ++_touchSeq;
            ++_hits;
            return it->second.verdict;
        }
    }
    if (!_dir.empty()) {
        std::optional<CachedVerdict> fromDisk = loadFromDisk(key);
        if (fromDisk) {
            std::lock_guard<std::mutex> lock(_mutex);
            _entries.insert_or_assign(key.text,
                                      MemEntry{*fromDisk, ++_touchSeq});
            trimMemLocked();
            ++_hits;
            return fromDisk;
        }
    }
    ++_misses;
    return std::nullopt;
}

void
VerdictCache::trimMemLocked()
{
    // Linear min-scan eviction: runs once per overflowing insert, and
    // the cap is large enough that an O(n) pass beats maintaining an
    // ordered index on the hot hit path.
    while (_memMaxEntries != 0 && _entries.size() > _memMaxEntries) {
        auto victim = _entries.begin();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->second.touch < victim->second.touch)
                victim = it;
        }
        _entries.erase(victim);
        _memEvictions.fetch_add(1, std::memory_order_relaxed);
    }
}

void
VerdictCache::store(const VerdictKey &key, const CachedVerdict &value)
{
    if (!_enabled)
        return;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _entries.insert_or_assign(key.text,
                                  MemEntry{value, ++_touchSeq});
        trimMemLocked();
    }
    if (!_dir.empty())
        writeToDisk(key, value);
}

void
VerdictCache::evictCorrupt(const std::string &path)
{
    ++_corrupt;
    warn("verdict cache: corrupt entry '" + path + "'; evicting");
    std::error_code ec;
    std::filesystem::remove(path, ec);
    std::lock_guard<std::mutex> lock(_diskMutex);
    for (auto it = _diskEntries.begin(); it != _diskEntries.end(); ++it) {
        if (it->path == path) {
            _diskBytes -= std::min(_diskBytes, it->bytes);
            _diskEntries.erase(it);
            break;
        }
    }
}

std::optional<CachedVerdict>
VerdictCache::loadFromDisk(const VerdictKey &key)
{
    if (faultInjector().shouldFail(FaultPoint::CacheRead))
        return std::nullopt;  // injected read failure: plain miss
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();

    // Header: magic line + checksum line; everything after them is the
    // checksummed payload. Any deviation (old format, torn tail, bit
    // rot) is corruption: count it, delete the entry, miss.
    constexpr std::string_view magic = "rex-verdict-v2\n";
    std::size_t pos = magic.size();
    if (content.size() < pos ||
            std::string_view(content).substr(0, pos) != magic) {
        evictCorrupt(path);
        return std::nullopt;
    }
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) {
        evictCorrupt(path);
        return std::nullopt;
    }
    const std::string checksumLine = content.substr(pos, eol - pos);
    const std::string payload = content.substr(eol + 1);
    if (checksumLine.rfind("checksum ", 0) != 0 ||
            checksumLine != format("checksum %016" PRIx64,
                                   fnv1a(kFnvOffset, payload))) {
        evictCorrupt(path);
        return std::nullopt;
    }

    std::istringstream stream(payload);
    std::string line;
    CachedVerdict verdict;
    std::size_t keylen = 0;
    while (std::getline(stream, line)) {
        std::size_t space = line.find(' ');
        std::string field = line.substr(0, space);
        std::string rest =
            space == std::string::npos ? "" : line.substr(space + 1);
        if (field == "observable") {
            verdict.observable = rest == "1";
        } else if (field == "candidates") {
            verdict.candidates = std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "consistent") {
            verdict.consistent = std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "witnesses") {
            verdict.witnesses = std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "cu") {
            verdict.constrainedUnpredictable =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "unknown") {
            verdict.unknownSideEffects =
                std::strtoull(rest.c_str(), nullptr, 10);
        } else if (field == "axiom") {
            verdict.forbiddingAxiom = rest;
        } else if (field == "cycle") {
            for (const std::string &id : splitWhitespace(rest)) {
                verdict.forbiddingCycle.push_back(static_cast<EventId>(
                    std::strtoul(id.c_str(), nullptr, 10)));
            }
        } else if (field == "keylen") {
            keylen = std::strtoull(rest.c_str(), nullptr, 10);
            break;
        } else {
            evictCorrupt(path);  // unknown field despite a good checksum
            return std::nullopt;
        }
    }
    if (keylen == 0) {
        evictCorrupt(path);
        return std::nullopt;
    }
    const std::streampos keyStart = stream.tellg();
    if (keyStart == std::streampos(-1) ||
            payload.size() - static_cast<std::size_t>(keyStart) != keylen) {
        evictCorrupt(path);
        return std::nullopt;
    }
    // The checksum already vouches for integrity; a key-text mismatch
    // here is a content-hash collision, not corruption — miss without
    // deleting the (valid) colliding entry.
    if (payload.compare(static_cast<std::size_t>(keyStart), keylen,
                        key.text) != 0) {
        return std::nullopt;
    }
    return verdict;
}

void
VerdictCache::writeToDisk(const VerdictKey &key,
                          const CachedVerdict &value)
{
    static std::atomic<std::uint64_t> counter{0};
    std::string path = entryPath(key);

    std::string payload;
    payload += format("observable %d\n", value.observable ? 1 : 0);
    payload += format("candidates %" PRIu64 "\n", value.candidates);
    payload += format("consistent %" PRIu64 "\n", value.consistent);
    payload += format("witnesses %" PRIu64 "\n", value.witnesses);
    payload += format("cu %" PRIu64 "\n", value.constrainedUnpredictable);
    payload += format("unknown %" PRIu64 "\n", value.unknownSideEffects);
    if (!value.forbiddingAxiom.empty())
        payload += "axiom " + value.forbiddingAxiom + "\n";
    if (!value.forbiddingCycle.empty()) {
        payload += "cycle";
        for (EventId id : value.forbiddingCycle)
            payload += " " + std::to_string(id);
        payload += "\n";
    }
    payload += format("keylen %zu\n", key.text.size());
    payload += key.text;

    // The checksum covers the payload exactly, so a write cut short
    // anywhere (crash mid-write, injected fault below) is detected on
    // the next load and the entry self-evicts.
    std::string entry = "rex-verdict-v2\n";
    entry += format("checksum %016" PRIx64 "\n",
                    fnv1a(kFnvOffset, payload));
    entry += payload;
    if (faultInjector().shouldFail(FaultPoint::CacheWrite)) {
        // Injected torn write: publish only half the entry. The rename
        // below still happens — exactly what a crash between write and
        // fsync can leave behind.
        entry.resize(entry.size() / 2);
    }
    // The temp file is created O_EXCL under a name no other writer —
    // thread OR process — can hold: pid disambiguates across processes
    // (supervised workers, parallel harness runs on one directory),
    // the counter across threads, and O_EXCL turns any residual
    // collision (pid reuse over a crashed run's leftovers) into a
    // retry instead of two writers interleaving into one file.
    std::string tmp;
    int fd = -1;
    for (int attempt = 0; attempt < 16; ++attempt) {
        tmp = path + format(".tmp%d.%" PRIu64,
                            static_cast<int>(::getpid()),
                            counter.fetch_add(1) + 1);
        fd = ::open(tmp.c_str(),
                    O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
        if (fd >= 0 || errno != EEXIST)
            break;
    }
    if (fd < 0) {
        warn("verdict cache: cannot write '" + tmp + "'");
        return;
    }
    const char *data = entry.data();
    std::size_t remaining = entry.size();
    while (remaining > 0) {
        const ssize_t wrote = ::write(fd, data, remaining);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            warn("verdict cache: cannot write '" + tmp + "'");
            return;
        }
        data += wrote;
        remaining -= static_cast<std::size_t>(wrote);
    }
    // Durability before publication: the rename below must never point
    // at data the disk hasn't accepted yet.
    fsyncFd(fd);
    ::close(fd);
    // Atomic publication: concurrent writers of the same key race
    // benignly (identical content), and readers never see a torn file.
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        warn("verdict cache: cannot publish '" + path + "'");
        return;
    }
    // And the rename itself: without syncing the parent directory a
    // host crash right here can forget the entry this process now
    // believes is committed (and will report as a warm cache).
    fsyncParentDir(path);

    // Lock order: the cross-process flock strictly before _diskMutex
    // (matching the constructor), only when a cap can actually trim.
    std::optional<FlockGuard> dirLock;
    if (_maxBytes != 0)
        dirLock.emplace(_dir);
    std::lock_guard<std::mutex> lock(_diskMutex);
    DiskEntry tracked;
    tracked.path = path;
    tracked.bytes = static_cast<std::uint64_t>(
        std::filesystem::file_size(path, ec));
    tracked.mtimeNanos = std::filesystem::last_write_time(path, ec)
                             .time_since_epoch()
                             .count();
    // Same-key overwrites (benign racing writers) would double-count:
    // drop any stale index entry for this path first.
    for (auto it = _diskEntries.begin(); it != _diskEntries.end(); ++it) {
        if (it->path == path) {
            _diskBytes -= std::min(_diskBytes, it->bytes);
            _diskEntries.erase(it);
            break;
        }
    }
    _diskBytes += tracked.bytes;
    _diskEntries.push_back(std::move(tracked));
    trimToCapLocked();
}

} // namespace rex::engine
