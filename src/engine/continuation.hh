/**
 * @file
 * `rex-cont-v1`: the compact serialized form of a budget-tripped staged
 * check — the enumeration cursor (shard index into the deterministic
 * plan, in-shard candidate offset) plus the partial counts accumulated
 * before the trip — fingerprinted so a resumed piece can only ever run
 * against the exact job that issued it.
 *
 * The fingerprint doubles as an integrity check: it hashes the job
 * identity (test source, variant, model revision, shard-plan target)
 * *and* every payload field of the token, so both a stale token (model
 * revision bumped, test source edited) and a tampered one (cursor or
 * counts altered) fail the same single comparison and are refused —
 * the same posture as the hammer checkpoint's fingerprint (gen/hammer).
 *
 * Resumed-in-pieces runs are byte-identical to uninterrupted ones: the
 * token's counts are the exact enumeration-order prefix below the
 * cursor, the cursor always points at the first candidate whose model
 * evaluation did not finish, and the plan the cursor indexes into is a
 * pure function of (test, planTarget) re-derived identically on every
 * node at the pinned model revision.
 */

#ifndef REX_ENGINE_CONTINUATION_HH
#define REX_ENGINE_CONTINUATION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rex::engine {

/** Token prefix; bump on any layout or semantics change. */
inline constexpr const char *kContinuationMagic = "rex-cont-v1";

/** A paused staged check: cursor + partial counts + diagnostics. */
struct ContinuationState {
    /** continuationFingerprint() over the job identity and every field
     *  below; recomputed and compared on acceptance. */
    std::uint64_t fingerprint = 0;

    /** Witness assignments per shard the plan was built with. */
    std::uint64_t planTarget = 0;

    /** Total shards in the plan (sanity-checked after re-planning). */
    std::uint64_t planSize = 0;

    /** First shard not yet fully merged. */
    std::uint64_t nextShard = 0;

    /** Candidates into that shard already merged. */
    std::uint64_t nextOffset = 0;

    /** Partial counts over the prefix below the cursor. */
    std::uint64_t candidates = 0;
    std::uint64_t consistent = 0;
    std::uint64_t witnesses = 0;
    std::uint64_t constrainedUnpredictable = 0;
    std::uint64_t unknownSideEffects = 0;

    /** First satisfying candidate's rejection, if one was seen. */
    std::string forbiddingAxiom;
    std::vector<std::uint32_t> forbiddingCycle;
};

/**
 * Fingerprint of a shard job's identity — what must match for two
 * nodes (or two points in time) to derive the same plan and mean the
 * same thing by "shard i": test source, variant, model revision, plan
 * target. This is the `/shard` wire fingerprint.
 */
std::uint64_t shardJobFingerprint(const std::string &source,
                                  const std::string &variant,
                                  const std::string &revision,
                                  std::uint64_t planTarget);

/** Full-token fingerprint: shardJobFingerprint() of the identity plus
 *  every payload field of @p state (state.fingerprint excluded). */
std::uint64_t continuationFingerprint(const std::string &source,
                                      const std::string &variant,
                                      const std::string &revision,
                                      const ContinuationState &state);

/** Render @p state as a single-line `rex-cont-v1:...` token. */
std::string serializeContinuation(const ContinuationState &state);

/**
 * Parse a token produced by serializeContinuation(). Strict: any
 * malformed field fails the whole parse.
 * @return false (with @p error set when non-null) on malformed input;
 *         fingerprint *validation* is the caller's job — parse only
 *         checks shape.
 */
bool parseContinuation(const std::string &token, ContinuationState &out,
                       std::string *error = nullptr);

} // namespace rex::engine

#endif // REX_ENGINE_CONTINUATION_HH
