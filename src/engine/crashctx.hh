/**
 * @file
 * Crash attribution: which test was the process working on when it
 * died?
 *
 * A segfault deep in candidate enumeration is useless without knowing
 * which litmus test, variant, and pipeline stage triggered it. This
 * module keeps a small plain-old-data CrashContext per thread — test
 * name, variant, stage, and a live candidate counter — updated by the
 * engine at job boundaries and by the checker at stage transitions,
 * and provides a fatal-signal handler that prints it to stderr before
 * re-raising, so even a non-isolated harness/CLI crash names its
 * killer in the core dump's last stderr line.
 *
 * The context is deliberately a fixed-size POD with a lock-free
 * counter: the supervised worker mode (engine/supervisor.hh) redirects
 * a worker's context into a MAP_SHARED page, so the *parent* process
 * can read the crash context post-mortem — the same struct serves the
 * in-process handler and the cross-process supervisor.
 *
 * Attribution is per-thread: the thread that calls the engine knows
 * test and variant; a pool worker thread sharding the same check only
 * records the stage it reached. In the single-threaded supervised
 * worker all updates land in one (shared) context, so attribution
 * there is exact.
 */

#ifndef REX_ENGINE_CRASHCTX_HH
#define REX_ENGINE_CRASHCTX_HH

#include <atomic>
#include <cstdint>

namespace rex::engine {

/**
 * One thread's crash-attribution state. POD layout (fixed char
 * arrays, a lock-free atomic counter) so an instance can live in a
 * shared anonymous mapping written by a child process and read by its
 * supervisor.
 */
struct CrashContext {
    char test[128];
    char variant[32];
    char stage[16];

    /** Candidates admitted so far; the Governor's live pointer target
     *  in supervised workers. */
    std::atomic<std::uint64_t> candidates{0};
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "CrashContext must work across a process boundary");

/** The calling thread's active context (never null). */
CrashContext *crashContext();

/**
 * Redirect this thread's context to @p target (e.g. a shared status
 * page); null restores the thread's own default context. Returns the
 * previous target.
 */
CrashContext *setCrashContextTarget(CrashContext *target);

/** Record the active job: copies (truncating) test and variant, clears
 *  stage, zeroes the candidate counter. */
void crashContextSetJob(const char *test, const char *variant);

/** Clear the active job (between engine jobs). */
void crashContextClearJob();

/** Record the pipeline stage ("traces", "plan", "enumerate", "merge");
 *  bounded copy, cheap enough for per-shard calls. */
void crashContextSetStage(const char *stage);

/** Static name of a fatal signal ("SIGSEGV", ...); null if unknown. */
const char *fatalSignalName(int sig);

/**
 * Install handlers for SIGSEGV/SIGABRT/SIGBUS/SIGILL/SIGFPE that write
 * the crashing thread's context to stderr (async-signal-safe: a single
 * write(2) of a stack-composed line) and then re-raise with the
 * default disposition, so the process still dies with the conventional
 * signal status (and supervisors still see WTERMSIG). Installing with
 * sigaction also takes precedence over a sanitizer's own SEGV
 * interception, which keeps death-by-signal observable under ASan.
 * Idempotent.
 */
void installCrashAttributionHandler();

} // namespace rex::engine

#endif // REX_ENGINE_CRASHCTX_HH
