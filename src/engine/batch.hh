/**
 * @file
 * The batch-execution engine: shards (test × variant) work across a
 * work-stealing thread pool, memoizes verdicts in the content-addressed
 * cache, and streams one JSONL record per job to the results sink.
 *
 * The engine is the single parallelism primitive of the library: the
 * harness, the bench matrices, the fuzz corpus, and the command-line
 * oracle all express their work as ordered map() calls over an Engine,
 * so results are assembled in deterministic submission order and the
 * rendered output is byte-identical for every job count. With jobs == 1
 * the engine runs every task inline on the calling thread — the exact
 * legacy serial path, with no pool and no reordering of any kind.
 *
 * Configuration knobs (CLI flags override the environment):
 *   REX_JOBS             worker count; 0/unset = hardware concurrency,
 *                        1 = serial
 *   REX_CACHE            "0" disables verdict memoization entirely
 *   REX_CACHE_DIR        on-disk persistence directory (".rex-cache")
 *   REX_CACHE_MAX_BYTES  on-disk cache byte cap; 0/unset = unlimited
 *   REX_RESULTS          JSONL results path
 *   REX_WORKERS          supervised worker processes; 0/unset = run
 *                        checks in-thread (the legacy path, default)
 *   REX_CRASH_QUARANTINE crashes before a (test, variant) key is
 *                        quarantined; 0 disables quarantine
 *   REX_KILL_GRACE_MS    grace past the cooperative deadline before a
 *                        supervised worker is SIGKILLed
 */

#ifndef REX_ENGINE_BATCH_HH
#define REX_ENGINE_BATCH_HH

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "axiomatic/checker.hh"
#include "axiomatic/params.hh"
#include "engine/cache.hh"
#include "engine/continuation.hh"
#include "engine/governor.hh"
#include "engine/pool.hh"
#include "engine/remote.hh"
#include "engine/results.hh"
#include "engine/supervisor.hh"
#include "litmus/litmus.hh"

namespace rex::engine {

/** Engine construction parameters. */
struct EngineConfig {
    /** Worker threads: 0 = hardware concurrency, 1 = inline/serial. */
    unsigned jobs = 0;

    /** Master switch for verdict memoization. */
    bool cacheEnabled = true;

    /** Cache persistence directory; empty = in-memory only. */
    std::string cacheDir;

    /** On-disk cache byte cap (oldest-mtime eviction); 0 = unlimited. */
    std::uint64_t cacheMaxBytes = 0;

    /** In-memory cache entry cap (LRU eviction); 0 = unbounded. */
    std::size_t cacheMemMaxEntries = 65536;

    /** JSONL results path; empty = no results file. */
    std::string resultsPath;

    /** Model revision baked into cache keys. */
    std::string modelRevision = kModelRevision;

    /**
     * Supervised worker processes (engine/supervisor.hh): 0 = disabled,
     * every check runs in-thread (the legacy path — byte-identical
     * output to engines predating supervision). With workers > 0, each
     * cache-missing check of a test that carries its source text runs
     * in a pre-forked worker process; a worker crash yields a
     * CrashedWorker verdict for that job only.
     */
    unsigned workers = 0;

    /** Crashes of one (test, variant) key before quarantine; 0 = off.
     *  Only meaningful with workers > 0. */
    unsigned crashQuarantine = 3;

    /** Grace past the cooperative deadline before SIGKILL (workers). */
    std::uint64_t killGraceMs = 2000;

    /** Crash-ledger entry cap (LRU eviction, rexd --crash-ledger-max);
     *  0 = unbounded. */
    std::uint64_t crashLedgerMax = 4096;

    /** Defaults from REX_JOBS / REX_CACHE / REX_CACHE_DIR / REX_RESULTS
     *  / REX_WORKERS / REX_CRASH_QUARANTINE / REX_KILL_GRACE_MS /
     *  REX_CRASH_LEDGER_MAX / REX_CACHE_MEM_MAX. */
    static EngineConfig fromEnv();
};

/** A configured batch-execution engine. */
class Engine
{
  public:
    explicit Engine(EngineConfig config = EngineConfig::fromEnv());

    /** Effective worker count (1 = inline serial execution). */
    unsigned jobs() const { return _jobs; }

    const EngineConfig &config() const { return _config; }
    VerdictCache &cache() { return _cache; }
    ResultsSink &results() { return _sink; }

    /** The worker-process supervisor; null when workers are disabled. */
    Supervisor *supervisor() { return _supervisor.get(); }
    const Supervisor *supervisor() const { return _supervisor.get(); }

    /**
     * Ordered parallel map: run fn(0) .. fn(count-1) across the pool and
     * return the results indexed by input — deterministic regardless of
     * schedule. Exceptions rethrow in the caller at the failing index.
     * With jobs == 1, runs inline in index order (the legacy path).
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn fn)
        -> std::vector<std::invoke_result_t<Fn, std::size_t>>
    {
        using Result = std::invoke_result_t<Fn, std::size_t>;
        std::vector<Result> out;
        out.reserve(count);
        if (!_pool) {
            for (std::size_t i = 0; i < count; ++i)
                out.push_back(fn(i));
            return out;
        }
        std::vector<std::future<Result>> futures;
        futures.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            futures.push_back(_pool->submit([fn, i]() { return fn(i); }));
        for (std::future<Result> &future : futures)
            out.push_back(future.get());
        return out;
    }

    /**
     * Verdict-only check of @p test under @p params: cached, witness-less
     * (the checker short-circuits on the first witness), recorded in the
     * results sink with wall time and cache-hit flag.
     */
    CheckResult verdict(const LitmusTest &test, const ModelParams &params);

    /**
     * Like verdict(), but returning the full JobRecord that was
     * appended to the results sink — verdict plus wall time and
     * cache-hit flag. This is rexd's serving path: the record is
     * exactly one JSONL response line.
     */
    JobRecord verdictRecord(const LitmusTest &test,
                            const ModelParams &params);

    /**
     * Budgeted verdict check: like verdictRecord(), but enforced by a
     * Governor built from @p budget. When the budget trips, the record
     * carries verdict "ExhaustedBudget" with partial statistics (the
     * tripped axis, the stage reached, candidates visited so far) and
     * is NOT stored in the verdict cache; a check that completes within
     * budget is indistinguishable from — and cached exactly like — an
     * unbudgeted one. An unlimited budget takes the legacy path.
     */
    JobRecord verdictRecord(const LitmusTest &test,
                            const ModelParams &params,
                            const Budget &budget);

    /** Budgeted variant of verdict(); see the budgeted verdictRecord(). */
    CheckResult verdict(const LitmusTest &test, const ModelParams &params,
                        const Budget &budget);

    /**
     * Resumable (and optionally distributable) verdict check over the
     * deterministic kCheckShardTarget shard plan.
     *
     * Like the budgeted verdictRecord(), except that a budget trip
     * yields an ExhaustedBudget record carrying a `rex-cont-v1` token
     * (record.continuation) whose state — cursor plus the partial
     * counts merged so far — this method accepts back as @p resume to
     * continue exactly where the previous piece stopped. Stitched
     * pieces converge to a final record whose verdict, counts, and
     * forbidding diagnostic are byte-identical to an uninterrupted
     * (unbudgeted) run at any split point and any REX_JOBS; the
     * intermediate pieces' partial counts are the merged
     * enumeration-order prefix (deadline splits are therefore
     * schedule-dependent, the final verdict never is).
     *
     * @p resume must have been fingerprint-validated by the caller
     * (service.cc refuses mismatches with 409 before calling); the
     * engine re-checks the plan shape and dies loudly on drift.
     *
     * @p remote when non-null, large ranges are offered to the
     * dispatcher (peer rexd instances); unfilled tasks run locally.
     * Distribution is only attempted for tests carrying source text
     * and budgets without a candidate ceiling (an exact shared ceiling
     * cannot span nodes).
     *
     * Runs in-thread (never supervised): the shard range path is the
     * coordinator's own merge loop. Completed verdicts hit and fill
     * the same cache as every other path.
     */
    JobRecord verdictRecordResumable(const LitmusTest &test,
                                     const ModelParams &params,
                                     const Budget &budget,
                                     const ContinuationState *resume =
                                         nullptr,
                                     RangeDispatcher *remote = nullptr);

    /**
     * Run one shard range of @p test (the `/shard` serving primitive):
     * checkShardRange() on the engine's pool with a governor built
     * from @p budget (null/unlimited = no governor), with the engine's
     * live-candidate accounting. Never dispatches further (peers do
     * not re-fan-out) and never touches the verdict cache or sink.
     */
    ShardRangeOutcome runShardRange(const LitmusTest &test,
                                    const ModelParams &params,
                                    const ShardRangeSpec &spec,
                                    const Budget *budget = nullptr);

    /** Tasks queued (not yet running) in the pool; 0 when serial. */
    std::size_t
    poolQueueDepth() const
    {
        return _pool ? _pool->queueDepth() : 0;
    }

    /**
     * Candidates enumerated over the engine's lifetime, including those
     * of checks still in flight — monotonic, for the /metrics counter.
     */
    std::uint64_t
    candidatesEnumerated() const
    {
        return _candidatesTotal.load(std::memory_order_relaxed) +
               liveCandidates();
    }

    /** Candidates admitted by checks currently in flight — in-thread
     *  budgeted checks plus busy supervised workers (their shared
     *  status-page counters) — the enumeration-progress gauge. */
    std::uint64_t
    liveCandidates() const
    {
        return _liveCandidates.load(std::memory_order_relaxed) +
               (_supervisor ? _supervisor->liveCandidates() : 0);
    }

    /** Convenience wrapper over verdict(). */
    bool
    isAllowed(const LitmusTest &test, const ModelParams &params)
    {
        return verdict(test, params).observable;
    }

    /**
     * The process-wide default engine (configured from the environment
     * at first use): what the harness entry points run on when no
     * explicit engine is passed.
     */
    static Engine &shared();

  private:
    /** Shared lookup/compute/record path behind verdict[Record]().
     *  @p budget may be null (or unlimited): the legacy path. */
    CachedVerdict verdictCommon(const LitmusTest &test,
                                const ModelParams &params,
                                JobRecord &record,
                                const Budget *budget = nullptr);

    EngineConfig _config;
    unsigned _jobs = 1;
    /** Created before (so forked before) any engine thread exists. */
    std::unique_ptr<Supervisor> _supervisor;
    std::unique_ptr<ThreadPool> _pool;
    VerdictCache _cache;
    ResultsSink _sink;
    std::atomic<std::uint64_t> _liveCandidates{0};
    std::atomic<std::uint64_t> _candidatesTotal{0};
};

} // namespace rex::engine

#endif // REX_ENGINE_BATCH_HH
