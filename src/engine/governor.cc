#include "engine/governor.hh"

#include "base/memtrack.hh"

namespace rex::engine {

const char *
budgetAxisName(BudgetAxis axis)
{
    switch (axis) {
      case BudgetAxis::None:       return "none";
      case BudgetAxis::Deadline:   return "deadline";
      case BudgetAxis::Candidates: return "candidates";
      case BudgetAxis::Memory:     return "memory";
      case BudgetAxis::Cancelled:  return "cancelled";
    }
    return "none";
}

Governor::Governor(Budget budget, const CancelToken *external,
                   std::atomic<std::uint64_t> *live)
    : _budget(budget), _external(external),
      _start(std::chrono::steady_clock::now()),
      _memBaseline(memtrack::currentBytes()), _live(live)
{
    // Arming the deadline inside the token means every polling site in
    // the stack — not just admit() — can trip it, bounding the phases
    // that run between candidate admissions (planning, skeleton
    // builds, staged clauses).
    if (_budget.deadlineMicros != 0) {
        _token.armDeadline(
            _start + std::chrono::microseconds(_budget.deadlineMicros));
    }
}

std::uint64_t
Governor::elapsedMicros() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - _start)
            .count());
}

bool
Governor::admit()
{
    if (_token.cancelled())
        return false;
    if (_external && _external->cancelled()) {
        _token.trip(BudgetAxis::Cancelled);
        return false;
    }
    // The deadline is folded into the token poll above (an armed token
    // reads the clock in cancelled()), so a candidate rejected on it
    // is never counted as visited. Memory is polled here, before
    // counting, for the same reason.
    if (_budget.maxHeapBytes != 0) {
        const std::uint64_t now = memtrack::currentBytes();
        if (now > _memBaseline &&
                now - _memBaseline > _budget.maxHeapBytes) {
            _token.trip(BudgetAxis::Memory);
            return false;
        }
    }
    // The candidate ceiling is the one exact axis: a single shared
    // fetch_add admits exactly min(total, maxCandidates) candidates no
    // matter how the shards interleave, so the partial count on a
    // ceiling trip is deterministic across REX_JOBS values.
    const std::uint64_t n =
        _admitted.fetch_add(1, std::memory_order_relaxed) + 1;
    if (_budget.maxCandidates != 0 && n > _budget.maxCandidates) {
        _admitted.fetch_sub(1, std::memory_order_relaxed);
        _token.trip(BudgetAxis::Candidates);
        return false;
    }
    if (_live)
        _live->fetch_add(1, std::memory_order_relaxed);
    return true;
}

} // namespace rex::engine
