/**
 * @file
 * Content-addressed verdict cache.
 *
 * A verdict (the result of checkTest on one litmus test under one set of
 * model parameters) is pure: it depends only on the test's program text,
 * the parameter values, and the model implementation itself. The cache
 * keys entries by a stable hash of exactly those three inputs:
 *
 *   key = (canonical litmus text, canonical params text, model revision)
 *
 * The canonical litmus text is a full serialisation of the parsed test
 * (programs, handlers, initial registers/EL/masking, locations, initial
 * memory, final condition), so two textual variants that parse to the
 * same test share an entry, and any semantic difference changes the key.
 * kModelRevision must be bumped whenever the axiomatic model's semantics
 * change; this is what invalidates stale on-disk entries.
 *
 * Entries live in a thread-safe in-memory table, optionally persisted
 * one-file-per-entry under a cache directory (conventionally
 * `.rex-cache/`), so repeated bench/ctest invocations skip verdicts that
 * are already proved. Disk entries embed the full key text and are
 * verified on load, so a (vanishingly unlikely) hash collision degrades
 * to a miss, never to a wrong verdict.
 *
 * Disk entries are crash-safe in both directions: writes publish via
 * rename so readers never see a half-written file, and each entry
 * carries a checksum over its payload, so an entry torn by a crash (or
 * corrupted on disk) is detected on load, counted, deleted, and served
 * as a miss — a damaged cache costs re-checks, never wrong verdicts or
 * a stuck poisoned entry.
 *
 * The on-disk footprint is bounded: a configurable byte cap (0 =
 * unlimited) trims oldest-mtime entries at construction (so a cap
 * applies retroactively to a directory grown by earlier runs) and
 * whenever a store overflows it. Eviction only deletes files — the
 * in-memory table and correctness are unaffected; an evicted verdict
 * simply costs a re-check on some future run.
 *
 * Cached verdicts never carry a witness execution (witnesses are large
 * and only needed for diagnostics); callers that need the witness run
 * the checker directly.
 */

#ifndef REX_ENGINE_CACHE_HH
#define REX_ENGINE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "axiomatic/checker.hh"
#include "axiomatic/params.hh"
#include "litmus/litmus.hh"

namespace rex::engine {

/**
 * Revision tag of the axiomatic model implementation. Bump whenever
 * src/axiomatic/model.cc (or anything feeding it: enumeration, thread
 * semantics) changes behaviour, so persisted verdicts are invalidated.
 */
inline constexpr const char *kModelRevision = "fig9-catc-r2";

/** Full, stable serialisation of a parsed litmus test. */
std::string canonicalTestText(const LitmusTest &test);

/** Stable serialisation of every model parameter. */
std::string canonicalParamsText(const ModelParams &params);

/** A cache key: the canonical text plus its content hash. */
struct VerdictKey {
    std::string text;
    std::uint64_t hash = 0;

    static VerdictKey make(const LitmusTest &test,
                           const ModelParams &params,
                           const std::string &revision = kModelRevision);

    /** 16-hex-digit content address (the on-disk file stem). */
    std::string hashHex() const;
};

/** The witness-less payload of a cached verdict. */
struct CachedVerdict {
    bool observable = false;
    std::uint64_t candidates = 0;
    std::uint64_t consistent = 0;
    std::uint64_t witnesses = 0;
    std::uint64_t constrainedUnpredictable = 0;
    std::uint64_t unknownSideEffects = 0;

    /** First satisfying candidate's failed axiom (forbidden verdicts). */
    std::string forbiddingAxiom;

    /** Its forbidding cycle, when the failure was a cyclicity check. */
    std::vector<EventId> forbiddingCycle;

    static CachedVerdict fromResult(const CheckResult &result);

    /** Rebuild a CheckResult (without witness). */
    CheckResult toResult() const;

    /** "axiom:3->7->12" summary for results records; "" when allowed. */
    std::string forbiddingSummary() const;
};

/** Thread-safe verdict memoization with optional on-disk persistence. */
class VerdictCache
{
  public:
    /**
     * @param enabled   disabled caches miss on every lookup and drop
     *                  every store (the engine's bypass switch)
     * @param dir       persistence directory; empty = in-memory only
     * @param maxBytes  on-disk byte cap; 0 = unlimited. Enforced by
     *                  deleting oldest-mtime entries at construction
     *                  and on overflow after each store.
     * @param memMaxEntries  in-memory entry cap; 0 = unlimited. The
     *                  least-recently-touched entry is evicted on
     *                  overflow (the on-disk copy, if any, survives,
     *                  so eviction costs a disk read, never a recheck).
     */
    explicit VerdictCache(bool enabled = true, std::string dir = "",
                          std::uint64_t maxBytes = 0,
                          std::size_t memMaxEntries = 65536);

    bool enabled() const { return _enabled; }
    const std::string &dir() const { return _dir; }
    std::uint64_t maxBytes() const { return _maxBytes; }

    /** Find a verdict, consulting memory then disk. */
    std::optional<CachedVerdict> lookup(const VerdictKey &key);

    /** Record a verdict in memory and (when configured) on disk. */
    void store(const VerdictKey &key, const CachedVerdict &value);

    std::uint64_t hits() const { return _hits.load(); }
    std::uint64_t misses() const { return _misses.load(); }

    /** On-disk entries evicted by the byte cap so far. */
    std::uint64_t evictions() const { return _evictions.load(); }

    /** Corrupt/torn on-disk entries detected and deleted so far. */
    std::uint64_t corruptEvictions() const { return _corrupt.load(); }

    /** In-memory entries evicted by the memMaxEntries cap so far. */
    std::uint64_t memEvictions() const { return _memEvictions.load(); }

    /** In-memory entries currently held. */
    std::size_t entryCount();

    /** Bytes currently persisted under dir() (0 when not persisting). */
    std::uint64_t diskBytes();

  private:
    std::optional<CachedVerdict> loadFromDisk(const VerdictKey &key);
    void writeToDisk(const VerdictKey &key, const CachedVerdict &value);
    std::string entryPath(const VerdictKey &key) const;

    /** Delete a corrupt entry and drop it from the eviction index. */
    void evictCorrupt(const std::string &path);

    /** Build the (path, mtime, size) index by scanning dir(). */
    void scanDisk();

    /** Delete oldest-mtime entries until the cap holds. Needs _diskMutex. */
    void trimToCapLocked();

    /** One memoized verdict plus its LRU recency stamp. */
    struct MemEntry {
        CachedVerdict verdict;
        std::uint64_t touch = 0;
    };

    /** Evict the least-recently-touched entry past the cap. Needs
     *  _mutex. */
    void trimMemLocked();

    bool _enabled;
    std::string _dir;
    std::uint64_t _maxBytes;
    std::size_t _memMaxEntries;
    std::mutex _mutex;
    std::unordered_map<std::string, MemEntry> _entries;
    std::uint64_t _touchSeq = 0;  //!< guarded by _mutex

    /** One persisted entry, as tracked by the eviction index. */
    struct DiskEntry {
        std::string path;
        std::int64_t mtimeNanos = 0;
        std::uint64_t bytes = 0;
    };

    /** Guards the on-disk index (separate from the hot in-memory path). */
    std::mutex _diskMutex;
    std::vector<DiskEntry> _diskEntries;
    std::uint64_t _diskBytes = 0;

    std::atomic<std::uint64_t> _hits{0};
    std::atomic<std::uint64_t> _misses{0};
    std::atomic<std::uint64_t> _evictions{0};
    std::atomic<std::uint64_t> _corrupt{0};
    std::atomic<std::uint64_t> _memEvictions{0};
};

} // namespace rex::engine

#endif // REX_ENGINE_CACHE_HH
