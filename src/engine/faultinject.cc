#include "engine/faultinject.hh"

#include <cstdlib>

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex::engine {

namespace {

/** splitmix64: a well-mixed 64->64 hash (public-domain constants). */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr std::size_t kPointCount =
    static_cast<std::size_t>(FaultPoint::kCount);

const char *const kPointNames[kPointCount] = {
    "cache-read", "cache-write", "sink-write",
    "pool-spawn", "sock-accept", "sock-send",
    "worker-crash", "worker-hang",
    "peer-connect", "peer-send", "peer-recv",
    "peer-lie", "peer-corrupt-frame", "peer-stale-revision",
};

int
pointIndexByName(const std::string &name)
{
    for (std::size_t i = 0; i < kPointCount; ++i) {
        if (name == kPointNames[i])
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace

const char *
faultPointName(FaultPoint point)
{
    const std::size_t index = static_cast<std::size_t>(point);
    return index < kPointCount ? kPointNames[index] : "?";
}

FaultInjector &
FaultInjector::instance()
{
    // Leaked-singleton pattern (like Engine::shared()): never destroyed,
    // so late-exiting threads can't race static teardown.
    static FaultInjector *injector = new FaultInjector();
    return *injector;
}

FaultInjector::FaultInjector()
{
    if (const char *spec = std::getenv("REX_FAULT_SPEC"))
        configure(spec);
}

void
FaultInjector::configure(const std::string &spec)
{
    for (Point &point : _points) {
        point.armed.store(false, std::memory_order_relaxed);
        point.probability.store(0.0, std::memory_order_relaxed);
        point.seed.store(0, std::memory_order_relaxed);
        point.calls.store(0, std::memory_order_relaxed);
        point.injected.store(0, std::memory_order_relaxed);
    }
    bool any = false;
    for (const std::string &raw : split(spec, ',')) {
        const std::string clause = trim(raw);
        if (clause.empty())
            continue;
        const std::vector<std::string> parts = split(clause, ':');
        if (parts.size() != 3) {
            warn("fault spec: ignoring malformed clause '" + clause +
                 "' (want point:probability:seed)");
            continue;
        }
        const int index = pointIndexByName(trim(parts[0]));
        if (index < 0) {
            warn("fault spec: unknown point '" + trim(parts[0]) + "'");
            continue;
        }
        char *end = nullptr;
        const double probability =
            std::strtod(parts[1].c_str(), &end);
        if (!end || *end != '\0' || probability < 0.0 ||
                probability > 1.0) {
            warn("fault spec: bad probability '" + parts[1] + "'");
            continue;
        }
        const std::uint64_t seed =
            std::strtoull(parts[2].c_str(), &end, 10);
        if (!end || *end != '\0') {
            warn("fault spec: bad seed '" + parts[2] + "'");
            continue;
        }
        Point &point = _points[index];
        point.probability.store(probability, std::memory_order_relaxed);
        point.seed.store(seed, std::memory_order_relaxed);
        point.armed.store(probability > 0.0, std::memory_order_relaxed);
        any |= probability > 0.0;
    }
    _anyArmed.store(any, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFailSlow(FaultPoint point)
{
    Point &p = _points[static_cast<std::size_t>(point)];
    if (!p.armed.load(std::memory_order_relaxed))
        return false;
    const std::uint64_t k =
        p.calls.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t hash =
        splitmix64(p.seed.load(std::memory_order_relaxed) + k);
    // Top 53 bits -> uniform double in [0, 1).
    const double draw =
        static_cast<double>(hash >> 11) * 0x1.0p-53;
    if (draw >= p.probability.load(std::memory_order_relaxed))
        return false;
    p.injected.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
FaultInjector::armed(FaultPoint point) const
{
    return _points[static_cast<std::size_t>(point)].armed.load(
        std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::checked(FaultPoint point) const
{
    return _points[static_cast<std::size_t>(point)].calls.load(
        std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::injected(FaultPoint point) const
{
    return _points[static_cast<std::size_t>(point)].injected.load(
        std::memory_order_relaxed);
}

} // namespace rex::engine
