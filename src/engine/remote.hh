/**
 * @file
 * Range-dispatch interface: how a staged check hands contiguous runs of
 * its shard plan to another executor (in practice: peer rexd instances,
 * server/peer.hh) while the checker keeps the deterministic in-order
 * merge to itself.
 *
 * The contract is best-effort fill: runTasks() may return with any
 * subset of the tasks unfilled (peer died, timed out, answered with an
 * incompatible fingerprint) or filled only partially (the peer's own
 * budget tripped mid-task and it answered with a cursor). The caller —
 * checkShardRange() — finishes every unfilled or partial task locally
 * before merging past it, so a failed dispatch can never lose a shard,
 * and fills are deduplicated per task slot by the dispatcher, so a
 * slow-then-returning peer can never double-merge one.
 *
 * This header is dependency-free on purpose: the axiomatic checker
 * implements the merge side and the server library implements the
 * dispatch side, and neither may include the other's headers.
 */

#ifndef REX_ENGINE_REMOTE_HH
#define REX_ENGINE_REMOTE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rex::engine {

class CancelToken;

/** A peer's answer for one task: partial counts over the task's range
 *  prefix, mirroring CheckResult minus the witness payload. */
struct RangePartial {
    std::uint64_t candidates = 0;
    std::uint64_t consistent = 0;
    std::uint64_t witnesses = 0;
    std::uint64_t constrainedUnpredictable = 0;
    std::uint64_t unknownSideEffects = 0;
    std::string forbiddingAxiom;
    std::vector<std::uint32_t> forbiddingCycle;

    /** A witness settled the range (stop_at_first semantics). */
    bool witnessed = false;

    /** The whole task range was enumerated without a witness. */
    bool completed = false;

    /** Resume cursor when neither witnessed nor completed. */
    std::uint64_t nextShard = 0;
    std::uint64_t nextOffset = 0;
};

/** One dispatchable slice of the shard plan: shards
 *  [shardBegin, shardEnd), the first entered inShardOffset candidates
 *  past its start. */
struct RangeTask {
    std::uint64_t shardBegin = 0;
    std::uint64_t shardEnd = 0;
    std::uint64_t inShardOffset = 0;

    /** Set by the dispatcher exactly once per task (first fill wins;
     *  later duplicate answers are dropped and counted). */
    bool filled = false;
    RangePartial result;
};

/** Everything a peer needs to reproduce the plan and verify it is
 *  running the same job: the wire-level identity of a shard range. */
struct RangeJobContext {
    const std::string *testSource = nullptr;
    const std::string *variantName = nullptr;
    std::uint64_t planTarget = 0;
    std::uint64_t planSize = 0;

    /** shardJobFingerprint() over (source, variant, model revision,
     *  planTarget) — peers refuse a mismatch with 409. */
    std::uint64_t fingerprint = 0;

    /** Remaining wall-budget hint in ms (0 = none) so peers bound
     *  their own enumeration instead of outliving the coordinator. */
    std::uint64_t deadlineMs = 0;

    /** Coordinator's cancel token; dispatchers should stop waiting on
     *  stragglers once it trips. May be null. */
    const CancelToken *cancel = nullptr;
};

/** Best-effort remote executor for shard-range tasks. */
class RangeDispatcher
{
  public:
    virtual ~RangeDispatcher() = default;

    /** True when dispatching is worth attempting (some peer healthy).
     *  Polled once per eligible check, so implementations may count
     *  degradation here. */
    virtual bool available() = 0;

    /** Preferred shards per task (coordinator batches accordingly). */
    virtual std::uint64_t shardsPerTask() const = 0;

    /** Minimum shards in a range before dispatch beats local compute. */
    virtual std::uint64_t minShardsToDistribute() const = 0;

    /** Fill as many of @p tasks as possible; returns when every task is
     *  filled, failed beyond retry, or @p ctx.cancel tripped. */
    virtual void runTasks(const RangeJobContext &ctx,
                          std::vector<RangeTask> &tasks) = 0;
};

} // namespace rex::engine

#endif // REX_ENGINE_REMOTE_HH
