#include "events/candidate.hh"

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex {

EventSet
CandidateExecution::allEvents() const
{
    return EventSet::universe(size());
}

EventSet
CandidateExecution::eventsOfKind(EventKind kind) const
{
    EventSet set(size());
    for (const Event &e : events) {
        if (e.kind == kind)
            set.insert(e.id);
    }
    return set;
}

EventSet
CandidateExecution::reads() const
{
    return eventsOfKind(EventKind::ReadMem);
}

EventSet
CandidateExecution::writes() const
{
    return eventsOfKind(EventKind::WriteMem);
}

EventSet
CandidateExecution::initialWrites() const
{
    EventSet set(size());
    for (const Event &e : events) {
        if (e.isWrite() && e.initial)
            set.insert(e.id);
    }
    return set;
}

EventSet
CandidateExecution::acquires() const
{
    EventSet set(size());
    for (const Event &e : events) {
        if (e.isRead() && e.flags.acquire)
            set.insert(e.id);
    }
    return set;
}

EventSet
CandidateExecution::acquirePcs() const
{
    EventSet set(size());
    for (const Event &e : events) {
        if (e.isRead() && e.flags.acquirePc)
            set.insert(e.id);
    }
    return set;
}

EventSet
CandidateExecution::releases() const
{
    EventSet set(size());
    for (const Event &e : events) {
        if (e.isWrite() && e.flags.release)
            set.insert(e.id);
    }
    return set;
}

EventSet
CandidateExecution::barriersOf(BarrierKind kind) const
{
    EventSet set(size());
    for (const Event &e : events) {
        if (e.isBarrier() && e.barrier == kind)
            set.insert(e.id);
    }
    return set;
}

EventSet
CandidateExecution::dmbLd() const
{
    return barriersOf(BarrierKind::DmbLd) | barriersOf(BarrierKind::DmbSy) |
        barriersOf(BarrierKind::DsbLd) | barriersOf(BarrierKind::DsbSy);
}

EventSet
CandidateExecution::dmbSt() const
{
    return barriersOf(BarrierKind::DmbSt) | barriersOf(BarrierKind::DmbSy) |
        barriersOf(BarrierKind::DsbSt) | barriersOf(BarrierKind::DsbSy);
}

EventSet
CandidateExecution::dsb() const
{
    return barriersOf(BarrierKind::DsbLd) | barriersOf(BarrierKind::DsbSt) |
        barriersOf(BarrierKind::DsbSy);
}

EventSet
CandidateExecution::isb() const
{
    return barriersOf(BarrierKind::Isb);
}

EventSet
CandidateExecution::takeExceptions() const
{
    return eventsOfKind(EventKind::TakeException);
}

EventSet
CandidateExecution::translationFaults() const
{
    EventSet set(size());
    for (const Event &e : events) {
        if (e.kind == EventKind::TakeException &&
                e.exceptionClass == ExceptionClass::DataAbortTranslation) {
            set.insert(e.id);
        }
    }
    return set;
}

EventSet
CandidateExecution::erets() const
{
    return eventsOfKind(EventKind::ExceptionReturn);
}

EventSet
CandidateExecution::mrsEvents() const
{
    return eventsOfKind(EventKind::ReadSysreg);
}

EventSet
CandidateExecution::msrEvents() const
{
    return eventsOfKind(EventKind::WriteSysreg);
}

EventSet
CandidateExecution::takeInterrupts() const
{
    return eventsOfKind(EventKind::TakeInterrupt);
}

EventSet
CandidateExecution::gicEvents() const
{
    EventSet set(size());
    for (const Event &e : events) {
        if (e.isGicEvent())
            set.insert(e.id);
    }
    return set;
}

Relation
CandidateExecution::sameLoc() const
{
    Relation rel(size());
    for (const Event &a : events) {
        if (!a.isMemory())
            continue;
        for (const Event &b : events) {
            if (b.isMemory() && a.loc == b.loc)
                rel.add(a.id, b.id);
        }
    }
    return rel;
}

Relation
CandidateExecution::poLoc() const
{
    return po & sameLoc();
}

Relation
CandidateExecution::internalPairs() const
{
    Relation rel(size());
    for (const Event &a : events) {
        if (a.tid == kInitialThread)
            continue;
        for (const Event &b : events) {
            if (b.tid == a.tid && b.id != a.id)
                rel.add(a.id, b.id);
        }
    }
    return rel;
}

Relation
CandidateExecution::rfi() const
{
    return rf & internalPairs();
}

Relation
CandidateExecution::rfe() const
{
    return rf - internalPairs();
}

Relation
CandidateExecution::fr() const
{
    // Classical definition: a read r from-reads to every write co-after
    // the write it read from.
    return rf.inverse().seq(co);
}

Relation
CandidateExecution::fri() const
{
    return fr() & internalPairs();
}

Relation
CandidateExecution::fre() const
{
    return fr() - internalPairs();
}

Relation
CandidateExecution::coi() const
{
    return co & internalPairs();
}

Relation
CandidateExecution::coe() const
{
    return co - internalPairs();
}

std::uint64_t
CandidateExecution::finalMemValue(LocationId loc) const
{
    // The co-maximal write to loc. co totally orders all writes to a
    // location (with the initial write first), so the write with no
    // outgoing co edge is the final one.
    const Event *last = nullptr;
    for (const Event &e : events) {
        if (!e.isWrite() || e.loc != loc)
            continue;
        bool has_successor = false;
        for (const Event &f : events) {
            if (f.isWrite() && f.loc == loc && co.contains(e.id, f.id)) {
                has_successor = true;
                break;
            }
        }
        if (!has_successor) {
            rexAssert(last == nullptr,
                      "co is not total over writes to a location");
            last = &e;
        }
    }
    rexAssert(last != nullptr, "location has no writes at all");
    return last->value;
}

std::string
CandidateExecution::eventLabel(EventId id) const
{
    std::string label;
    EventId n = id;
    do {
        label.insert(label.begin(),
                     static_cast<char>('a' + static_cast<int>(n % 26)));
        n /= 26;
    } while (n > 0);
    return label + ":";
}

std::string
CandidateExecution::toDot() const
{
    std::string out = "digraph execution {\n"
        "  node [shape=plaintext, fontname=\"monospace\"];\n"
        "  rankdir=TB;\n";

    // One cluster per thread; initial writes float outside.
    for (std::size_t t = 0; t < numThreads; ++t) {
        out += format("  subgraph cluster_t%zu {\n"
                      "    label=\"Thread %zu\";\n", t, t);
        for (const Event &e : events) {
            if (e.tid == static_cast<ThreadId>(t)) {
                out += format("    e%u [label=\"%s %s\"];\n", e.id,
                              eventLabel(e.id).c_str(),
                              e.toString(locNames).c_str());
            }
        }
        out += "  }\n";
    }
    for (const Event &e : events) {
        if (e.tid == kInitialThread) {
            out += format("  e%u [label=\"%s\", fontcolor=gray];\n",
                          e.id, e.toString(locNames).c_str());
        }
    }

    struct EdgeStyle {
        const Relation *rel;
        const char *name;
        const char *colour;
        bool transitiveReduce;
    };
    Relation fr_rel = fr();
    const EdgeStyle styles[] = {
        {&po, "po", "black", true},
        {&rf, "rf", "red", false},
        {&co, "co", "blue", true},
        {&fr_rel, "fr", "orange", false},
        {&addr, "addr", "darkgreen", false},
        {&data, "data", "darkgreen", false},
        {&ctrl, "ctrl", "purple", false},
        {&interruptWitness, "interrupt", "brown", false},
        {&iio, "iio", "gray", false},
    };
    for (const EdgeStyle &style : styles) {
        for (auto [a, b] : style.rel->pairs()) {
            if (style.transitiveReduce) {
                // Drop edges implied by a one-hop detour, to keep po/co
                // chains readable.
                bool implied = false;
                for (EventId m = 0; m < size() && !implied; ++m) {
                    if (m != a && m != b && style.rel->contains(a, m) &&
                            style.rel->contains(m, b)) {
                        implied = true;
                    }
                }
                if (implied)
                    continue;
            }
            out += format("  e%u -> e%u [label=\"%s\", color=%s, "
                          "fontcolor=%s];\n", a, b, style.name,
                          style.colour, style.colour);
        }
    }
    out += "}\n";
    return out;
}

std::string
CandidateExecution::dump() const
{
    std::string out;
    for (const Event &e : events) {
        out += format("%-4s T%-2d po=%-3d %s\n", eventLabel(e.id).c_str(),
                      e.tid, e.poIndex, e.toString(locNames).c_str());
    }
    out += "rf:   " + rf.toString() + "\n";
    out += "co:   " + co.toString() + "\n";
    out += "addr: " + addr.toString() + "\n";
    out += "data: " + data.toString() + "\n";
    out += "ctrl: " + ctrl.toString() + "\n";
    return out;
}

} // namespace rex
