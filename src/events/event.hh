/**
 * @file
 * Candidate-execution events.
 *
 * A candidate execution (§2.3.2 of the paper) contains the events of the
 * architecturally-executed FDX instances of each thread. Beyond the
 * classical reads/writes/barriers, the paper's model (§5) adds:
 *  - TE ("take exception") and ERET events, the synchronisation points of
 *    exception entry/return;
 *  - MRS/MSR events for system-register reads/writes;
 *  - TakeInterrupt events for asynchronous exceptions;
 *  - and, in the §7.5 draft GIC extension, GenerateInterrupt /
 *    Acknowledge / DropPriority / Deactivate events.
 */

#ifndef REX_EVENTS_EVENT_HH
#define REX_EVENTS_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/sysreg.hh"
#include "relation/event_set.hh"

namespace rex {

/** Dense id of a memory location within one litmus test. */
using LocationId = std::uint32_t;

/** Thread id within a litmus test; kInitialThread for initial writes. */
using ThreadId = std::int32_t;

/** Pseudo-thread owning the initial-state writes. */
inline constexpr ThreadId kInitialThread = -1;

/** What kind of event this is. */
enum class EventKind : std::uint8_t {
    ReadMem,            //!< R: memory read
    WriteMem,           //!< W: memory write (including initial writes)
    Barrier,            //!< DMB/DSB/ISB
    TakeException,      //!< TE: synchronous exception entry
    ExceptionReturn,    //!< ERET
    ReadSysreg,         //!< MRS
    WriteSysreg,        //!< MSR
    TakeInterrupt,      //!< asynchronous exception entry
    GenerateInterrupt,  //!< GIC: SGI sent (from ICC_SGI1R_EL1 write)
    Acknowledge,        //!< GIC: interrupt acknowledged (from IAR read)
    DropPriority,       //!< GIC: running priority dropped (EOIR write)
    Deactivate,         //!< GIC: interrupt deactivated (DIR/EOIR write)
};

/** Barrier flavours; classes are upwards-closed in the model (§5). */
enum class BarrierKind : std::uint8_t {
    DmbLd,
    DmbSt,
    DmbSy,
    DsbLd,
    DsbSt,
    DsbSy,
    Isb,
};

/** Why a synchronous exception (TE) was taken. */
enum class ExceptionClass : std::uint8_t {
    Svc,                  //!< exception-generating instruction (SVC)
    DataAbortTranslation, //!< translation fault / page fault
    PcAlignment,          //!< misaligned PC fetch
    SyncExternalAbort,    //!< synchronously-reported external abort (§4)
};

/** Memory-access ordering annotations. */
struct AccessFlags {
    bool acquire = false;    //!< A: load-acquire (LDAR)
    bool acquirePc = false;  //!< Q: load-acquirePC (LDAPR)
    bool release = false;    //!< L: store-release (STLR)
    bool exclusive = false;  //!< X: LDXR/STXR

    bool operator==(const AccessFlags &) const = default;
};

/**
 * One event of a candidate execution.
 *
 * A plain struct: events are produced by the thread semantics (src/sem)
 * and consumed read-only by the models.
 */
struct Event {
    EventId id = 0;
    ThreadId tid = kInitialThread;

    /** Position in the thread's architecturally-executed event sequence;
     *  -1 for initial writes. */
    std::int32_t poIndex = -1;

    /** Which FDX instance of the thread produced this event; -1 for
     *  initial writes. */
    std::int32_t instrIndex = -1;

    EventKind kind = EventKind::WriteMem;

    // --- memory access fields (ReadMem / WriteMem) ---
    LocationId loc = 0;
    std::uint64_t value = 0;
    AccessFlags flags;
    bool initial = false;   //!< true for initial-state writes

    // --- barrier fields ---
    BarrierKind barrier = BarrierKind::DmbSy;

    // --- exception fields (TakeException) ---
    ExceptionClass exceptionClass = ExceptionClass::Svc;

    // --- system-register fields (ReadSysreg / WriteSysreg) ---
    isa::Sysreg sysreg = isa::Sysreg::ESR_EL1;

    // --- GIC fields ---
    std::uint32_t intid = 0;       //!< interrupt id
    std::uint64_t targetMask = 0;  //!< GenerateInterrupt: target thread bits

    /** TakeInterrupt only: true when the interrupt was delivered by an
     *  SGI, so the candidate must witness a matching GenerateInterrupt;
     *  false for externally-pended interrupts ("interrupt at=L"). */
    bool sgiDelivered = false;

    bool isRead() const { return kind == EventKind::ReadMem; }
    bool isWrite() const { return kind == EventKind::WriteMem; }
    bool isMemory() const { return isRead() || isWrite(); }
    bool isBarrier() const { return kind == EventKind::Barrier; }

    /** True for GIC effect events (§7.5 GICEvents). */
    bool isGicEvent() const;

    /** Short human-readable rendering, e.g. "W x=1" or "TE(svc)". */
    std::string toString(const std::vector<std::string> &loc_names) const;
};

/** Name a barrier kind, e.g. "DMB.SY". */
std::string barrierName(BarrierKind kind);

/** Name an exception class, e.g. "svc". */
std::string exceptionClassName(ExceptionClass cls);

} // namespace rex

#endif // REX_EVENTS_EVENT_HH
