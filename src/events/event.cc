#include "events/event.hh"

#include "base/strings.hh"

namespace rex {

bool
Event::isGicEvent() const
{
    switch (kind) {
      case EventKind::GenerateInterrupt:
      case EventKind::Acknowledge:
      case EventKind::DropPriority:
      case EventKind::Deactivate:
        return true;
      default:
        return false;
    }
}

std::string
barrierName(BarrierKind kind)
{
    switch (kind) {
      case BarrierKind::DmbLd: return "DMB.LD";
      case BarrierKind::DmbSt: return "DMB.ST";
      case BarrierKind::DmbSy: return "DMB.SY";
      case BarrierKind::DsbLd: return "DSB.LD";
      case BarrierKind::DsbSt: return "DSB.ST";
      case BarrierKind::DsbSy: return "DSB.SY";
      case BarrierKind::Isb:   return "ISB";
    }
    return "?";
}

std::string
exceptionClassName(ExceptionClass cls)
{
    switch (cls) {
      case ExceptionClass::Svc:                  return "svc";
      case ExceptionClass::DataAbortTranslation: return "fault";
      case ExceptionClass::PcAlignment:          return "pc-align";
      case ExceptionClass::SyncExternalAbort:    return "sea";
    }
    return "?";
}

std::string
Event::toString(const std::vector<std::string> &loc_names) const
{
    auto loc_name = [&](LocationId l) {
        if (l < loc_names.size())
            return loc_names[l];
        return std::string("loc") + std::to_string(l);
    };

    switch (kind) {
      case EventKind::ReadMem: {
        std::string tag = "R";
        if (flags.acquire)
            tag = "Racq";
        else if (flags.acquirePc)
            tag = "Rq";
        if (flags.exclusive)
            tag += "x";
        return format("%s %s=%llu", tag.c_str(), loc_name(loc).c_str(),
                      static_cast<unsigned long long>(value));
      }
      case EventKind::WriteMem: {
        std::string tag = initial ? "Winit" : "W";
        if (flags.release)
            tag = "Wrel";
        if (flags.exclusive)
            tag += "x";
        return format("%s %s=%llu", tag.c_str(), loc_name(loc).c_str(),
                      static_cast<unsigned long long>(value));
      }
      case EventKind::Barrier:
        return barrierName(barrier);
      case EventKind::TakeException:
        return format("TE(%s)", exceptionClassName(exceptionClass).c_str());
      case EventKind::ExceptionReturn:
        return "ERET";
      case EventKind::ReadSysreg:
        return "MRS " + isa::sysregName(sysreg);
      case EventKind::WriteSysreg:
        return "MSR " + isa::sysregName(sysreg);
      case EventKind::TakeInterrupt:
        return format("TakeInterrupt(intid=%u)", intid);
      case EventKind::GenerateInterrupt:
        return format("GenerateInterrupt(intid=%u, targets=0x%llx)", intid,
                      static_cast<unsigned long long>(targetMask));
      case EventKind::Acknowledge:
        return format("Acknowledge(intid=%u)", intid);
      case EventKind::DropPriority:
        return format("DropPriority(intid=%u)", intid);
      case EventKind::Deactivate:
        return format("Deactivate(intid=%u)", intid);
    }
    return "?";
}

} // namespace rex
