/**
 * @file
 * Candidate executions: events plus the primitive relations over them.
 *
 * A candidate execution packages one possible architecturally-executed
 * behaviour of a litmus test: the per-thread event sequences (with concrete
 * read values), the syntactic dependency relations computed by the thread
 * semantics (addr/data/ctrl), and the existentially-quantified witness
 * relations (rf, co, and — for the GIC extension — interrupt).
 *
 * The axiomatic model (src/axiomatic, src/cat) consumes candidates
 * read-only and decides whether each is consistent.
 */

#ifndef REX_EVENTS_CANDIDATE_HH
#define REX_EVENTS_CANDIDATE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "events/event.hh"
#include "isa/register.hh"
#include "relation/relation.hh"

namespace rex {

/**
 * One candidate execution of a litmus test.
 */
class CandidateExecution
{
  public:
    /** All events; Event::id equals the index. Initial writes first. */
    std::vector<Event> events;

    /** Names of memory locations, indexed by LocationId. */
    std::vector<std::string> locNames;

    /** Number of (real) threads. */
    std::size_t numThreads = 0;

    // ------------------------------------------------------------------
    // Primitive relations. All have universe size events.size().
    // ------------------------------------------------------------------

    /** Program order (per thread, initial writes excluded). */
    Relation po;

    /** Intra-instruction order: GIC effect events after the register
     *  access that caused them (§7.5). */
    Relation iio;

    /** Address dependencies: R -> memory access whose address depends on
     *  the read value. */
    Relation addr;

    /** Data dependencies: R -> W (or R -> MSR) whose written value depends
     *  on the read value. */
    Relation data;

    /** Control dependencies: R -> any event po-after a branch whose
     *  condition depends on the read value. */
    Relation ctrl;

    /** Load/store-exclusive pairs (LDXR -> matching STXR). */
    Relation rmw;

    /** Reads-from witness: W -> R, same location and value. */
    Relation rf;

    /** Coherence witness: per-location strict total order on writes,
     *  initial write first. */
    Relation co;

    /** GIC witness: GenerateInterrupt -> TakeInterrupt it caused (§7.5). */
    Relation interruptWitness;

    // ------------------------------------------------------------------
    // Final architectural state, filled in by the thread semantics.
    // ------------------------------------------------------------------

    /** Final general-purpose register values, per thread. */
    std::vector<std::array<std::uint64_t, isa::kNumRegs>> finalRegs;

    /** Some thread triggered constrained-unpredictable behaviour
     *  (s1.2); the model's verdict for such candidates carries no
     *  architectural guarantee. */
    bool constrainedUnpredictable = false;

    /** Some pair access faulted partially, leaving UNKNOWN-tinged side
     *  effects (s6); this candidate models the performed outcome. */
    bool unknownSideEffects = false;

    // ------------------------------------------------------------------
    // Event classification sets (cat's built-in sets).
    // ------------------------------------------------------------------

    std::size_t size() const { return events.size(); }

    EventSet allEvents() const;
    EventSet eventsOfKind(EventKind kind) const;

    EventSet reads() const;          //!< R (memory reads)
    EventSet writes() const;         //!< W (memory writes, incl. initial)
    EventSet initialWrites() const;  //!< IW
    EventSet acquires() const;       //!< A (LDAR)
    EventSet acquirePcs() const;     //!< Q (LDAPR)
    EventSet releases() const;       //!< L (STLR)

    /** Barrier events of exactly @p kind. */
    EventSet barriersOf(BarrierKind kind) const;

    /** Upwards-closed dmb ld class: DMB.LD|DMB.SY|DSB.LD|DSB.SY (§5). */
    EventSet dmbLd() const;
    /** Upwards-closed dmb st class: DMB.ST|DMB.SY|DSB.ST|DSB.SY. */
    EventSet dmbSt() const;
    /** All DSB events (any domain). */
    EventSet dsb() const;
    /** ISB events. */
    EventSet isb() const;

    EventSet takeExceptions() const;    //!< TE
    /** TE events from translation faults (FEAT_ETS2 clause). */
    EventSet translationFaults() const;
    EventSet erets() const;             //!< ERET
    EventSet mrsEvents() const;         //!< MRS
    EventSet msrEvents() const;         //!< MSR
    EventSet takeInterrupts() const;    //!< TakeInterrupt (ASYNC)
    EventSet gicEvents() const;         //!< GICEvents (§7.5)

    // ------------------------------------------------------------------
    // Derived relations.
    // ------------------------------------------------------------------

    /** Same-location equivalence on memory accesses. */
    Relation sameLoc() const;

    /** po restricted to same-location memory accesses. */
    Relation poLoc() const;

    /** Same-thread pairs (initial writes belong to no thread). */
    Relation internalPairs() const;

    Relation rfi() const;  //!< rf within a thread
    Relation rfe() const;  //!< rf across threads
    Relation fr() const;   //!< from-reads: rf^-1 ; co
    Relation fri() const;
    Relation fre() const;
    Relation coi() const;
    Relation coe() const;

    /**
     * The final (co-maximal) write value at @p loc; the initial value
     * when no write exists.
     */
    std::uint64_t finalMemValue(LocationId loc) const;

    /** Pretty-print the whole candidate for diagnostics. */
    std::string dump() const;

    /**
     * Render the candidate as a Graphviz dot graph in the style of the
     * paper's candidate-execution figures: one cluster per thread,
     * events labelled "a: W x=1", with po/rf/co/fr/addr/data/ctrl and
     * interrupt edges.
     */
    std::string toDot() const;

    /** Label an event like the paper's figures: "a:", "b:", ... */
    std::string eventLabel(EventId id) const;
};

} // namespace rex

#endif // REX_EVENTS_CANDIDATE_HH
