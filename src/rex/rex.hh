/**
 * @file
 * Umbrella header for the rex ("Relaxed EXceptions") library: the public
 * API for reproducing "Precise exceptions in relaxed architectures".
 *
 * Typical use:
 *
 * @code
 *   #include "rex/rex.hh"
 *
 *   const rex::LitmusTest &test =
 *       rex::TestRegistry::instance().get("SB+dmb.sy+eret");
 *   bool allowed = rex::isAllowed(test, rex::ModelParams::base());
 * @endcode
 *
 * Layers (bottom-up):
 *  - relation/  dense relation algebra over candidate-execution events
 *  - isa/       the AArch64-subset assembler and instruction model
 *  - events/    candidate executions (events + witness relations)
 *  - sem/       per-thread micro-operational semantics
 *  - litmus/    litmus tests: format, parser, built-in library
 *  - axiomatic/ the Figure 9 model, candidate enumeration, checker
 *  - cat/       the cat-language interpreter and shipped .cat models
 *  - gic/       the GICv3 SGI model (Figure 10 automaton)
 *  - operational/ the abstract-microarchitecture simulator
 *  - engine/    parallel batch execution, verdict cache, JSONL results
 *  - harness/   paper-figure reproduction and table rendering
 */

#ifndef REX_REX_HH
#define REX_REX_HH

#include "axiomatic/checker.hh"
#include "axiomatic/enumerate.hh"
#include "axiomatic/model.hh"
#include "axiomatic/params.hh"
#include "cat/catmodel.hh"
#include "engine/batch.hh"
#include "engine/cache.hh"
#include "engine/pool.hh"
#include "engine/results.hh"
#include "events/candidate.hh"
#include "gic/cpu_interface.hh"
#include "gic/gic.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "isa/assembler.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "operational/explorer.hh"
#include "operational/runner.hh"

#endif // REX_REX_HH
