#include "relation/relation.hh"

#include <bit>

#include "base/logging.hh"

namespace rex {

Relation::Relation(std::size_t universe_size)
    : _size(universe_size), _bits(universe_size * ((universe_size + 63) / 64), 0)
{
}

void
Relation::reset(std::size_t universe_size)
{
    _size = universe_size;
    // assign() reuses the vector's capacity; a fresh Relation would
    // reallocate on every call, which the enumerator's combo reuse
    // (see ComboSpace) is designed to avoid.
    _bits.assign(universe_size * ((universe_size + 63) / 64), 0);
}

const std::uint64_t *
Relation::row(EventId r) const
{
    return _bits.data() + static_cast<std::size_t>(r) * rowWords();
}

std::uint64_t *
Relation::row(EventId r)
{
    return _bits.data() + static_cast<std::size_t>(r) * rowWords();
}

Relation
Relation::identity(const EventSet &set)
{
    Relation rel(set.size());
    for (EventId id : set.members())
        rel.add(id, id);
    return rel;
}

Relation
Relation::identity(std::size_t universe_size)
{
    return identity(EventSet::universe(universe_size));
}

Relation
Relation::cartesian(const EventSet &from, const EventSet &to)
{
    rexAssert(from.size() == to.size(),
              "Relation::cartesian over mismatched universes");
    Relation rel(from.size());
    for (EventId a : from.members()) {
        for (EventId b : to.members())
            rel.add(a, b);
    }
    return rel;
}

std::size_t
Relation::pairCount() const
{
    std::size_t n = 0;
    for (std::uint64_t w : _bits)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool
Relation::empty() const
{
    for (std::uint64_t w : _bits) {
        if (w != 0)
            return false;
    }
    return true;
}

void
Relation::add(EventId from, EventId to)
{
    rexAssert(from < _size && to < _size, "Relation::add out of range");
    row(from)[to / 64] |= std::uint64_t{1} << (to % 64);
}

void
Relation::remove(EventId from, EventId to)
{
    rexAssert(from < _size && to < _size, "Relation::remove out of range");
    row(from)[to / 64] &= ~(std::uint64_t{1} << (to % 64));
}

bool
Relation::contains(EventId from, EventId to) const
{
    if (from >= _size || to >= _size)
        return false;
    return (row(from)[to / 64] >> (to % 64)) & 1;
}

void
Relation::checkCompatible(const Relation &other) const
{
    rexAssert(_size == other._size,
              "Relation operation over mismatched universes");
}

Relation
Relation::operator|(const Relation &other) const
{
    Relation out = *this;
    out |= other;
    return out;
}

Relation
Relation::operator&(const Relation &other) const
{
    Relation out = *this;
    out &= other;
    return out;
}

Relation
Relation::operator-(const Relation &other) const
{
    Relation out = *this;
    out -= other;
    return out;
}

Relation &
Relation::operator|=(const Relation &other)
{
    checkCompatible(other);
    for (std::size_t i = 0; i < _bits.size(); ++i)
        _bits[i] |= other._bits[i];
    return *this;
}

Relation &
Relation::operator&=(const Relation &other)
{
    checkCompatible(other);
    for (std::size_t i = 0; i < _bits.size(); ++i)
        _bits[i] &= other._bits[i];
    return *this;
}

Relation &
Relation::operator-=(const Relation &other)
{
    checkCompatible(other);
    for (std::size_t i = 0; i < _bits.size(); ++i)
        _bits[i] &= ~other._bits[i];
    return *this;
}

Relation
Relation::seq(const Relation &other) const
{
    checkCompatible(other);
    Relation out(_size);
    const std::size_t words = rowWords();
    // Raw pointers hoisted for the same aliasing reason as in
    // transitiveClosure().
    const std::uint64_t *abits = _bits.data();
    const std::uint64_t *bbits = other._bits.data();
    std::uint64_t *obits = out._bits.data();
    for (EventId a = 0; a < _size; ++a) {
        const std::uint64_t *arow = abits + a * words;
        std::uint64_t *orow = obits + a * words;
        for (std::size_t wi = 0; wi < words; ++wi) {
            std::uint64_t bits = arow[wi];
            while (bits != 0) {
                const EventId b = static_cast<EventId>(
                    wi * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits)));
                bits &= bits - 1;
                const std::uint64_t *brow = bbits + b * words;
                for (std::size_t w = 0; w < words; ++w)
                    orow[w] |= brow[w];
            }
        }
    }
    return out;
}

Relation
Relation::transitiveClosure() const
{
    // Floyd-Warshall on bit rows: for each intermediate k, any row that
    // reaches k absorbs k's row.
    Relation out = *this;
    const std::size_t words = rowWords();
    // Hoisted raw pointer: row() re-reads the storage pointer through
    // the object after every word store (a size_t member aliases
    // uint64_t stores under TBAA), which the inner loop cannot afford.
    std::uint64_t *bits = out._bits.data();
    for (EventId k = 0; k < _size; ++k) {
        const std::uint64_t mask = std::uint64_t{1} << (k % 64);
        const std::size_t kword = k / 64;
        const std::uint64_t *krow = bits + k * words;
        std::uint64_t *irow = bits;
        for (EventId i = 0; i < _size; ++i, irow += words) {
            if (irow[kword] & mask) {
                for (std::size_t w = 0; w < words; ++w)
                    irow[w] |= krow[w];
            }
        }
    }
    return out;
}

Relation
Relation::reflexiveTransitiveClosure() const
{
    return transitiveClosure() | identity(_size);
}

Relation
Relation::optional() const
{
    return *this | identity(_size);
}

Relation
Relation::inverse() const
{
    Relation out(_size);
    const std::size_t words = rowWords();
    for (EventId a = 0; a < _size; ++a) {
        const std::uint64_t *arow = row(a);
        for (std::size_t wi = 0; wi < words; ++wi) {
            std::uint64_t bits = arow[wi];
            while (bits != 0) {
                const EventId b = static_cast<EventId>(
                    wi * 64 +
                    static_cast<std::size_t>(std::countr_zero(bits)));
                bits &= bits - 1;
                out.add(b, a);
            }
        }
    }
    return out;
}

Relation
Relation::restrictDomain(const EventSet &set) const
{
    rexAssert(set.size() == _size,
              "Relation::restrictDomain over mismatched universes");
    Relation out(_size);
    const std::size_t words = rowWords();
    for (EventId a = 0; a < _size; ++a) {
        if (!set.contains(a))
            continue;
        const std::uint64_t *arow = row(a);
        std::uint64_t *orow = out.row(a);
        for (std::size_t w = 0; w < words; ++w)
            orow[w] = arow[w];
    }
    return out;
}

Relation
Relation::restrictRange(const EventSet &set) const
{
    rexAssert(set.size() == _size,
              "Relation::restrictRange over mismatched universes");
    Relation out = *this;
    const std::size_t words = rowWords();
    for (EventId a = 0; a < _size; ++a) {
        std::uint64_t *arow = out.row(a);
        for (std::size_t w = 0; w < words; ++w)
            arow[w] &= set._words[w];
    }
    return out;
}

Relation
Relation::restricted(const EventSet &dom, const EventSet &rng) const
{
    rexAssert(dom.size() == _size && rng.size() == _size,
              "Relation::restricted over mismatched universes");
    Relation out(_size);
    const std::size_t words = rowWords();
    for (EventId a = 0; a < _size; ++a) {
        if (!dom.contains(a))
            continue;
        const std::uint64_t *arow = row(a);
        std::uint64_t *orow = out.row(a);
        for (std::size_t w = 0; w < words; ++w)
            orow[w] = arow[w] & rng._words[w];
    }
    return out;
}

EventSet
Relation::domain() const
{
    EventSet out(_size);
    for (EventId a = 0; a < _size; ++a) {
        const std::uint64_t *arow = row(a);
        for (std::size_t w = 0; w < rowWords(); ++w) {
            if (arow[w] != 0) {
                out.insert(a);
                break;
            }
        }
    }
    return out;
}

EventSet
Relation::range() const
{
    EventSet out(_size);
    for (EventId a = 0; a < _size; ++a) {
        for (std::size_t w = 0; w < rowWords(); ++w)
            out._words[w] |= row(a)[w];
    }
    // Clear any excess bits copied from rows (rows never set them, but be
    // defensive about the invariant).
    return out;
}

bool
Relation::irreflexive() const
{
    for (EventId a = 0; a < _size; ++a) {
        if (contains(a, a))
            return false;
    }
    return true;
}

bool
Relation::acyclic() const
{
    return transitiveClosure().irreflexive();
}

bool
Relation::hasCycle() const
{
    // Same tricolor DFS as findCycle(), but successors come straight
    // from the row words (countr_zero over the remaining bits) and no
    // cycle is reconstructed: this is the verdict-only fast path.
    enum class Colour : std::uint8_t { White, Grey, Black };
    std::vector<Colour> colour(_size, Colour::White);

    // Per frame: the node and the not-yet-tried tail of its row,
    // as (current word index, remaining bits of that word).
    struct Frame { EventId node; std::size_t word; std::uint64_t bits; };
    std::vector<Frame> frames;
    const std::size_t words = rowWords();
    // Rows keep bits past _size clear, but be defensive (findCycle's
    // contains() scan is immune to them; this walker is not).
    const std::uint64_t lastMask =
        _size % 64 ? (~std::uint64_t{0} >> (64 - _size % 64))
                   : ~std::uint64_t{0};
    auto word = [&](EventId node, std::size_t w) {
        const std::uint64_t bits = row(node)[w];
        return w + 1 == words ? bits & lastMask : bits;
    };

    for (EventId root = 0; root < _size; ++root) {
        if (colour[root] != Colour::White)
            continue;
        colour[root] = Colour::Grey;
        frames.push_back({root, 0, word(root, 0)});
        while (!frames.empty()) {
            Frame &frame = frames.back();
            while (frame.bits == 0 && frame.word + 1 < words) {
                ++frame.word;
                frame.bits = word(frame.node, frame.word);
            }
            if (frame.bits == 0) {
                colour[frame.node] = Colour::Black;
                frames.pop_back();
                continue;
            }
            const auto succ = static_cast<EventId>(
                frame.word * 64 +
                static_cast<std::size_t>(std::countr_zero(frame.bits)));
            frame.bits &= frame.bits - 1;
            if (colour[succ] == Colour::Grey)
                return true;
            if (colour[succ] == Colour::White) {
                colour[succ] = Colour::Grey;
                frames.push_back({succ, 0, word(succ, 0)});
            }
        }
    }
    return false;
}

std::optional<std::vector<EventId>>
Relation::findCycle() const
{
    // Iterative DFS with colouring; reconstruct the cycle from the stack
    // when a grey node is re-entered.
    enum class Colour : std::uint8_t { White, Grey, Black };
    std::vector<Colour> colour(_size, Colour::White);
    std::vector<EventId> stack;

    // For each node, the next successor index to try, aligned with stack.
    struct Frame { EventId node; EventId next; };
    std::vector<Frame> frames;

    for (EventId root = 0; root < _size; ++root) {
        if (colour[root] != Colour::White)
            continue;
        frames.push_back({root, 0});
        colour[root] = Colour::Grey;
        stack.push_back(root);
        while (!frames.empty()) {
            Frame &frame = frames.back();
            bool advanced = false;
            while (frame.next < _size) {
                EventId succ = frame.next++;
                if (!contains(frame.node, succ))
                    continue;
                if (colour[succ] == Colour::Grey) {
                    // Found a cycle: slice the stack from succ onwards.
                    std::vector<EventId> cycle;
                    std::size_t i = stack.size();
                    while (i > 0 && stack[i - 1] != succ)
                        --i;
                    rexAssert(i > 0, "cycle witness missing from stack");
                    cycle.assign(stack.begin() +
                                 static_cast<std::ptrdiff_t>(i - 1),
                                 stack.end());
                    return cycle;
                }
                if (colour[succ] == Colour::White) {
                    colour[succ] = Colour::Grey;
                    stack.push_back(succ);
                    frames.push_back({succ, 0});
                    advanced = true;
                    break;
                }
            }
            if (!advanced) {
                colour[frame.node] = Colour::Black;
                stack.pop_back();
                frames.pop_back();
            }
        }
    }
    return std::nullopt;
}

std::vector<std::pair<EventId, EventId>>
Relation::pairs() const
{
    std::vector<std::pair<EventId, EventId>> out;
    for (EventId a = 0; a < _size; ++a) {
        for (EventId b = 0; b < _size; ++b) {
            if (contains(a, b))
                out.emplace_back(a, b);
        }
    }
    return out;
}

std::string
Relation::toString() const
{
    std::string out = "{";
    bool first = true;
    for (auto [a, b] : pairs()) {
        if (!first)
            out += ", ";
        out += "(" + std::to_string(a) + "," + std::to_string(b) + ")";
        first = false;
    }
    out += "}";
    return out;
}

} // namespace rex
