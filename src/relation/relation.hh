/**
 * @file
 * Dense binary relations over candidate-execution events.
 *
 * This is the evaluation substrate for `cat`-style axiomatic models: every
 * derived relation (ordered-before, dependency-ordered-before, ...) is a
 * Relation value, and the model's axioms are acyclicity / irreflexivity /
 * emptiness checks on such values.
 *
 * Relations are stored as n x n bit matrices (row-major, 64-bit words), so
 * composition and closure are word-parallel. Candidate executions of litmus
 * tests have tens of events, making this representation essentially free.
 */

#ifndef REX_RELATION_RELATION_HH
#define REX_RELATION_RELATION_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "relation/event_set.hh"

namespace rex {

/**
 * A binary relation over a fixed universe of events.
 *
 * Supports the operator vocabulary of the `cat` language:
 *  - `|` union, `&` intersection, `-` difference (cat `\`)
 *  - `;` sequential composition (seq())
 *  - `+` transitive closure, `*` reflexive-transitive, `?` reflexive
 *  - `^-1` inverse
 *  - `[S]` identity on a set, `S * T` cartesian product
 */
class Relation
{
  public:
    /** The empty relation over an empty universe. */
    Relation() = default;

    /** The empty relation over a universe of @p universe_size events. */
    explicit Relation(std::size_t universe_size);

    /** Make this the empty relation over @p universe_size events,
     *  reusing the existing word storage when it is large enough
     *  (unlike `rel = Relation(n)`, which always reallocates). */
    void reset(std::size_t universe_size);

    /** Identity relation restricted to @p set (cat `[S]`). */
    static Relation identity(const EventSet &set);

    /** Full identity over a universe of @p universe_size events. */
    static Relation identity(std::size_t universe_size);

    /** Cartesian product @p from x @p to (cat `S * T`). */
    static Relation cartesian(const EventSet &from, const EventSet &to);

    /** Number of events in the universe. */
    std::size_t size() const { return _size; }

    /** Number of pairs in the relation. */
    std::size_t pairCount() const;

    /** True when no pair is related (short-circuits on the first
     *  nonzero word, unlike pairCount()). */
    bool empty() const;

    /** Relate @p from to @p to. */
    void add(EventId from, EventId to);

    /** Remove the pair (@p from, @p to). */
    void remove(EventId from, EventId to);

    /** True when (@p from, @p to) is in the relation. */
    bool contains(EventId from, EventId to) const;

    Relation operator|(const Relation &other) const;
    Relation operator&(const Relation &other) const;
    Relation operator-(const Relation &other) const;
    Relation &operator|=(const Relation &other);
    Relation &operator&=(const Relation &other);
    Relation &operator-=(const Relation &other);

    bool operator==(const Relation &other) const = default;

    /** Sequential composition: pairs (a, c) with (a, b) here, (b, c) in
     *  @p other for some b (cat `;`). */
    Relation seq(const Relation &other) const;

    /** Transitive closure (cat `+`). */
    Relation transitiveClosure() const;

    /** Reflexive-transitive closure (cat `*`). */
    Relation reflexiveTransitiveClosure() const;

    /** Reflexive closure (cat `?`). */
    Relation optional() const;

    /** Inverse relation (cat `^-1`). */
    Relation inverse() const;

    /** Pairs whose source is in @p set. */
    Relation restrictDomain(const EventSet &set) const;

    /** Pairs whose target is in @p set. */
    Relation restrictRange(const EventSet &set) const;

    /** Pairs with source in @p dom and target in @p rng: equals
     *  `[dom]; r; [rng]` in one pass without the identity relations. */
    Relation restricted(const EventSet &dom, const EventSet &rng) const;

    /** The set of pair sources. */
    EventSet domain() const;

    /** The set of pair targets. */
    EventSet range() const;

    /** True when no event is related to itself. */
    bool irreflexive() const;

    /** True when the relation has no cycle (its closure is irreflexive). */
    bool acyclic() const;

    /**
     * True when the relation has a cycle: exactly !acyclic(), but via a
     * word-level DFS instead of computing the transitive closure, so
     * verdict-only callers (the compiled model's fast path) skip both
     * the closure and cycle extraction. Use findCycle() to report why.
     */
    bool hasCycle() const;

    /**
     * Find some cycle, as the sequence of events around it (first event
     * not repeated at the end). Used to report *why* an axiom failed.
     * @return std::nullopt when the relation is acyclic.
     */
    std::optional<std::vector<EventId>> findCycle() const;

    /** All pairs, in row-major order. */
    std::vector<std::pair<EventId, EventId>> pairs() const;

    /** Render as "{(0,1), (2,3)}" for diagnostics. */
    std::string toString() const;

  private:
    void checkCompatible(const Relation &other) const;
    std::size_t rowWords() const { return (_size + 63) / 64; }
    const std::uint64_t *row(EventId r) const;
    std::uint64_t *row(EventId r);

    std::size_t _size = 0;
    /** 64 inline words: heap-free single-word-row universes (up to 64
     *  events), which covers every litmus-sized candidate. */
    WordBuf<64> _bits;
};

} // namespace rex

#endif // REX_RELATION_RELATION_HH
