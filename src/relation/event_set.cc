#include "relation/event_set.hh"

#include <bit>

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex {

namespace {

std::size_t
wordsFor(std::size_t universe_size)
{
    return (universe_size + 63) / 64;
}

} // namespace

EventSet::EventSet(std::size_t universe_size)
    : _size(universe_size), _words(wordsFor(universe_size), 0)
{
}

EventSet
EventSet::universe(std::size_t universe_size)
{
    EventSet set(universe_size);
    for (std::size_t w = 0; w < set._words.size(); ++w)
        set._words[w] = ~std::uint64_t{0};
    // Mask off bits beyond the universe so equality tests stay exact.
    std::size_t excess = set._words.size() * 64 - universe_size;
    if (!set._words.empty() && excess > 0)
        set._words.back() >>= excess;
    return set;
}

std::size_t
EventSet::count() const
{
    std::size_t n = 0;
    for (std::uint64_t w : _words)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool
EventSet::empty() const
{
    for (std::uint64_t w : _words) {
        if (w != 0)
            return false;
    }
    return true;
}

void
EventSet::insert(EventId id)
{
    rexAssert(id < _size, "EventSet::insert out of range");
    _words[id / 64] |= std::uint64_t{1} << (id % 64);
}

void
EventSet::erase(EventId id)
{
    rexAssert(id < _size, "EventSet::erase out of range");
    _words[id / 64] &= ~(std::uint64_t{1} << (id % 64));
}

bool
EventSet::contains(EventId id) const
{
    if (id >= _size)
        return false;
    return (_words[id / 64] >> (id % 64)) & 1;
}

void
EventSet::checkCompatible(const EventSet &other) const
{
    rexAssert(_size == other._size,
              "EventSet operation over mismatched universes");
}

EventSet
EventSet::operator|(const EventSet &other) const
{
    EventSet out = *this;
    out |= other;
    return out;
}

EventSet
EventSet::operator&(const EventSet &other) const
{
    EventSet out = *this;
    out &= other;
    return out;
}

EventSet
EventSet::operator-(const EventSet &other) const
{
    EventSet out = *this;
    out -= other;
    return out;
}

EventSet
EventSet::complement() const
{
    return universe(_size) - *this;
}

EventSet &
EventSet::operator|=(const EventSet &other)
{
    checkCompatible(other);
    for (std::size_t w = 0; w < _words.size(); ++w)
        _words[w] |= other._words[w];
    return *this;
}

EventSet &
EventSet::operator&=(const EventSet &other)
{
    checkCompatible(other);
    for (std::size_t w = 0; w < _words.size(); ++w)
        _words[w] &= other._words[w];
    return *this;
}

EventSet &
EventSet::operator-=(const EventSet &other)
{
    checkCompatible(other);
    for (std::size_t w = 0; w < _words.size(); ++w)
        _words[w] &= ~other._words[w];
    return *this;
}

std::vector<EventId>
EventSet::members() const
{
    std::vector<EventId> out;
    for (EventId id = 0; id < _size; ++id) {
        if (contains(id))
            out.push_back(id);
    }
    return out;
}

std::string
EventSet::toString() const
{
    std::string out = "{";
    bool first = true;
    for (EventId id : members()) {
        if (!first)
            out += ", ";
        out += std::to_string(id);
        first = false;
    }
    out += "}";
    return out;
}

} // namespace rex
