/**
 * @file
 * Dense set of candidate-execution events, represented as a bitset.
 *
 * Event sets are the `cat` language's notion of a set of events (e.g. the
 * set R of reads, W of writes, ISB of ISB barrier events). The axiomatic
 * engine indexes events of one candidate execution by small dense ids, so
 * a bitset is both compact and fast.
 */

#ifndef REX_RELATION_EVENT_SET_HH
#define REX_RELATION_EVENT_SET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relation/word_buf.hh"

namespace rex {

/** Dense id of an event within one candidate execution. */
using EventId = std::uint32_t;

/**
 * A set of events over a fixed universe of @c size() events.
 *
 * All binary operations require both operands to have the same universe
 * size; violating this is a library bug (panic).
 */
class EventSet
{
  public:
    /** An empty set over an empty universe. */
    EventSet() = default;

    /** An empty set over a universe of @p universe_size events. */
    explicit EventSet(std::size_t universe_size);

    /** The full set over a universe of @p universe_size events. */
    static EventSet universe(std::size_t universe_size);

    /** Number of events in the universe (not the set). */
    std::size_t size() const { return _size; }

    /** Number of events in the set. */
    std::size_t count() const;

    /** True when the set contains no events (short-circuits on the
     *  first nonzero word, unlike count()). */
    bool empty() const;

    /** Add event @p id to the set. */
    void insert(EventId id);

    /** Remove event @p id from the set. */
    void erase(EventId id);

    /** True when the set contains @p id. */
    bool contains(EventId id) const;

    /** Set union. */
    EventSet operator|(const EventSet &other) const;
    /** Set intersection. */
    EventSet operator&(const EventSet &other) const;
    /** Set difference. */
    EventSet operator-(const EventSet &other) const;
    /** Complement with respect to the universe. */
    EventSet complement() const;

    EventSet &operator|=(const EventSet &other);
    EventSet &operator&=(const EventSet &other);
    EventSet &operator-=(const EventSet &other);

    bool operator==(const EventSet &other) const = default;

    /** All member ids in increasing order. */
    std::vector<EventId> members() const;

    /** Render as "{0, 3, 7}" for diagnostics. */
    std::string toString() const;

  private:
    friend class Relation;

    void checkCompatible(const EventSet &other) const;

    std::size_t _size = 0;
    /** 4 inline words: heap-free universes up to 256 events. */
    WordBuf<4> _words;
};

} // namespace rex

#endif // REX_RELATION_EVENT_SET_HH
