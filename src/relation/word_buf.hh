/**
 * @file
 * Small-buffer word storage for the dense bitset types.
 *
 * EventSet and Relation hold their 64-bit word arrays in a WordBuf
 * instead of a std::vector: litmus-sized candidates (a few dozen
 * events) fit entirely in the inline buffer, so the relation algebra's
 * many short-lived temporaries (skeleton clauses, closures, unions)
 * never touch the heap. Word counts beyond the inline capacity fall
 * back to heap storage transparently, so nothing limits universe size.
 */

#ifndef REX_RELATION_WORD_BUF_HH
#define REX_RELATION_WORD_BUF_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>

#include "base/memtrack.hh"

namespace rex {

/** Fixed-capacity-inline, heap-overflow array of uint64 words. */
template <std::size_t InlineWords>
class WordBuf
{
  public:
    WordBuf() = default;

    WordBuf(std::size_t count, std::uint64_t value) { assign(count, value); }

    WordBuf(const WordBuf &other) { copyFrom(other); }

    WordBuf(WordBuf &&other) noexcept { stealFrom(other); }

    WordBuf &
    operator=(const WordBuf &other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }

    WordBuf &
    operator=(WordBuf &&other) noexcept
    {
        if (this != &other) {
            releaseHeap();
            stealFrom(other);
        }
        return *this;
    }

    ~WordBuf() { releaseHeap(); }

    /** Resize to @p count words, all set to @p value; previous contents
     *  are discarded. Never shrinks capacity. */
    void
    assign(std::size_t count, std::uint64_t value)
    {
        ensureDiscard(count);
        _count = count;
        for (std::size_t i = 0; i < count; ++i)
            _data[i] = value;
    }

    std::size_t size() const { return _count; }
    bool empty() const { return _count == 0; }

    std::uint64_t *data() { return _data; }
    const std::uint64_t *data() const { return _data; }

    std::uint64_t &operator[](std::size_t i) { return _data[i]; }
    std::uint64_t operator[](std::size_t i) const { return _data[i]; }

    std::uint64_t &back() { return _data[_count - 1]; }
    std::uint64_t back() const { return _data[_count - 1]; }

    std::uint64_t *begin() { return _data; }
    std::uint64_t *end() { return _data + _count; }
    const std::uint64_t *begin() const { return _data; }
    const std::uint64_t *end() const { return _data + _count; }

    bool
    operator==(const WordBuf &other) const
    {
        if (_count != other._count)
            return false;
        return _count == 0 ||
               std::memcmp(_data, other._data,
                           _count * sizeof(std::uint64_t)) == 0;
    }

  private:
    /** Make capacity >= @p count; contents become unspecified. */
    void
    ensureDiscard(std::size_t count)
    {
        if (count <= _cap)
            return;
        releaseHeap();
        _data = new std::uint64_t[count];
        _cap = count;
        // Heap fallback is the memory-budget accounting hook: inline
        // (litmus-sized) buffers never reach here, so small tests pay
        // nothing; large universes are exactly what a budget bounds.
        memtrack::add(count * sizeof(std::uint64_t));
    }

    void
    releaseHeap()
    {
        if (_data != _inline) {
            memtrack::sub(_cap * sizeof(std::uint64_t));
            delete[] _data;
            _data = _inline;
            _cap = InlineWords;
        }
    }

    void
    copyFrom(const WordBuf &other)
    {
        ensureDiscard(other._count);
        _count = other._count;
        if (_count > 0)
            std::memcpy(_data, other._data,
                        _count * sizeof(std::uint64_t));
    }

    /** Take @p other's storage; @p other is left empty (inline). */
    void
    stealFrom(WordBuf &other)
    {
        if (other._data != other._inline) {
            _data = other._data;
            _cap = other._cap;
            _count = other._count;
            other._data = other._inline;
            other._cap = InlineWords;
            other._count = 0;
        } else {
            _data = _inline;
            _cap = InlineWords;
            _count = other._count;
            if (_count > 0)
                std::memcpy(_data, other._data,
                            _count * sizeof(std::uint64_t));
            other._count = 0;
        }
    }

    std::size_t _count = 0;
    std::size_t _cap = InlineWords;
    std::uint64_t *_data = _inline;
    std::uint64_t _inline[InlineWords];
};

} // namespace rex

#endif // REX_RELATION_WORD_BUF_HH
