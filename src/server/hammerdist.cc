#include "server/hammerdist.hh"

#include <algorithm>
#include <cinttypes>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/batch.hh"
#include "engine/faultinject.hh"
#include "engine/results.hh"
#include "server/envelope.hh"
#include "server/json.hh"

namespace rex::server {

namespace {

/** The wire names of gen::Mode. */
const char *
modeName(gen::Mode mode)
{
    return mode == gen::Mode::Cycle ? "cycle" : "random";
}

/** Serialize the fingerprint-covered parts of @p config (chunk,
 *  checkpoint path, and cancel token are coordinator-local). The
 *  campaign seed range rides along because Hammer::fingerprint()
 *  covers it — the chunk a peer actually runs is a subrange sent
 *  separately. */
std::string
configJson(const gen::HammerConfig &config)
{
    std::string out = format(
        "{\"mode\":\"%s\",\"params\":\"%s\",\"seed_begin\":%" PRIu64
        ",\"seed_end\":%" PRIu64,
        modeName(config.mode),
        engine::jsonEscape(config.params.name()).c_str(),
        config.seedBegin, config.seedEnd);
    out += format(
        ",\"gen\":{\"three_thread_percent\":%u,\"max_ops\":%u,"
        "\"max_loads\":%u,\"max_stores\":%u,\"exception_percent\":%u,"
        "\"svc\":%s,\"interrupts\":%s,\"eret\":%s,\"rmw\":%s,"
        "\"pairs\":%s,\"acq_rel\":%s,\"deps\":%s}",
        config.gen.threeThreadPercent, config.gen.maxOpsPerThread,
        config.gen.maxLoadsPerThread, config.gen.maxStoresPerThread,
        config.gen.exceptionPercent, config.gen.svc ? "true" : "false",
        config.gen.interrupts ? "true" : "false",
        config.gen.eret ? "true" : "false",
        config.gen.rmw ? "true" : "false",
        config.gen.pairs ? "true" : "false",
        config.gen.acqRel ? "true" : "false",
        config.gen.deps ? "true" : "false");
    out += format(
        ",\"cycle\":{\"max_edges\":%u,\"max_threads\":%u,"
        "\"max_locations\":%u}",
        config.cycle.maxEdges, config.cycle.maxThreads,
        config.cycle.maxLocations);
    out += format(
        ",\"budget\":{\"deadline_micros\":%" PRIu64
        ",\"max_candidates\":%" PRIu64 ",\"max_heap_bytes\":%" PRIu64
        "},\"max_states\":%zu}",
        config.budget.deadlineMicros, config.budget.maxCandidates,
        config.budget.maxHeapBytes, config.maxStates);
    return out;
}

/** Unsigned integer member with fallback. */
std::uint64_t
jsonU64(const JsonValue &root, const char *key, std::uint64_t fallback)
{
    const JsonValue *value = root.find(key);
    if (!value || !value->isInt() || value->integer < 0)
        return fallback;
    return static_cast<std::uint64_t>(value->integer);
}

bool
jsonBool(const JsonValue &root, const char *key, bool fallback)
{
    const JsonValue *value = root.find(key);
    if (!value || !value->isBool())
        return fallback;
    return value->boolean;
}

/**
 * Reconstruct a HammerConfig from the wire form. Missing or malformed
 * members fall back to defaults — any semantic difference that could
 * change a seed's result is caught by the fingerprint comparison, so
 * lenient parsing here cannot corrupt a campaign.
 */
bool
configFromJson(const JsonValue &root, gen::HammerConfig &out,
               std::string &error)
{
    if (const JsonValue *mode = root.find("mode")) {
        if (!mode->isString() ||
                (mode->string != "random" && mode->string != "cycle")) {
            error = "\"mode\" must be \"random\" or \"cycle\"";
            return false;
        }
        out.mode = mode->string == "cycle" ? gen::Mode::Cycle
                                           : gen::Mode::Random;
    }
    if (const JsonValue *params = root.find("params")) {
        if (!params->isString()) {
            error = "\"params\" must be a variant name";
            return false;
        }
        try {
            out.params = ModelParams::byName(params->string);
        } catch (const FatalError &err) {
            error = err.what();
            return false;
        }
    }
    if (const JsonValue *gen = root.find("gen")) {
        if (!gen->isObject()) {
            error = "\"gen\" must be an object";
            return false;
        }
        gen::GenConfig &g = out.gen;
        g.threeThreadPercent = static_cast<unsigned>(
            jsonU64(*gen, "three_thread_percent", g.threeThreadPercent));
        g.maxOpsPerThread = static_cast<unsigned>(
            jsonU64(*gen, "max_ops", g.maxOpsPerThread));
        g.maxLoadsPerThread = static_cast<unsigned>(
            jsonU64(*gen, "max_loads", g.maxLoadsPerThread));
        g.maxStoresPerThread = static_cast<unsigned>(
            jsonU64(*gen, "max_stores", g.maxStoresPerThread));
        g.exceptionPercent = static_cast<unsigned>(
            jsonU64(*gen, "exception_percent", g.exceptionPercent));
        g.svc = jsonBool(*gen, "svc", g.svc);
        g.interrupts = jsonBool(*gen, "interrupts", g.interrupts);
        g.eret = jsonBool(*gen, "eret", g.eret);
        g.rmw = jsonBool(*gen, "rmw", g.rmw);
        g.pairs = jsonBool(*gen, "pairs", g.pairs);
        g.acqRel = jsonBool(*gen, "acq_rel", g.acqRel);
        g.deps = jsonBool(*gen, "deps", g.deps);
    }
    if (const JsonValue *cycle = root.find("cycle")) {
        if (!cycle->isObject()) {
            error = "\"cycle\" must be an object";
            return false;
        }
        out.cycle.maxEdges = static_cast<unsigned>(
            jsonU64(*cycle, "max_edges", out.cycle.maxEdges));
        out.cycle.maxThreads = static_cast<unsigned>(
            jsonU64(*cycle, "max_threads", out.cycle.maxThreads));
        out.cycle.maxLocations = static_cast<unsigned>(
            jsonU64(*cycle, "max_locations", out.cycle.maxLocations));
    }
    if (const JsonValue *budget = root.find("budget")) {
        if (!budget->isObject()) {
            error = "\"budget\" must be an object";
            return false;
        }
        out.budget.deadlineMicros =
            jsonU64(*budget, "deadline_micros", 0);
        out.budget.maxCandidates =
            jsonU64(*budget, "max_candidates", 0);
        out.budget.maxHeapBytes = jsonU64(*budget, "max_heap_bytes", 0);
    }
    out.maxStates = static_cast<std::size_t>(
        jsonU64(root, "max_states", out.maxStates));
    out.seedBegin = jsonU64(root, "seed_begin", out.seedBegin);
    out.seedEnd = jsonU64(root, "seed_end", out.seedEnd);
    return true;
}

/** Parse a 16-hex-digit fingerprint member; 0 on malformed. */
std::uint64_t
jsonFingerprint(const JsonValue &root)
{
    const JsonValue *value = root.find("fingerprint");
    if (!value || !value->isString() || value->string.size() != 16)
        return 0;
    std::uint64_t print = 0;
    for (char c : value->string) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return 0;
        print = (print << 4) | static_cast<std::uint64_t>(digit);
    }
    return print;
}

/** One chunk's aggregated result as it crosses the wire. */
struct ChunkResult {
    std::uint64_t tested = 0;
    std::uint64_t sound = 0;
    std::uint64_t skipped = 0;
    std::vector<std::uint64_t> violationSeeds;
    gen::Features features;
};

std::string
chunkResultJson(const ChunkResult &chunk)
{
    std::string out = format(
        "{\"tested\":%" PRIu64 ",\"sound\":%" PRIu64
        ",\"skipped\":%" PRIu64 ",\"violations\":[",
        chunk.tested, chunk.sound, chunk.skipped);
    for (std::size_t i = 0; i < chunk.violationSeeds.size(); ++i) {
        if (i > 0)
            out += ",";
        out += format("%" PRIu64, chunk.violationSeeds[i]);
    }
    const gen::Features &f = chunk.features;
    out += format(
        "],\"features\":{\"svc\":%" PRIu64 ",\"eret\":%" PRIu64
        ",\"interrupt\":%" PRIu64 ",\"handler\":%" PRIu64
        ",\"barrier\":%" PRIu64 ",\"acq_rel\":%" PRIu64
        ",\"rmw\":%" PRIu64 ",\"dep\":%" PRIu64 ",\"pair\":%" PRIu64
        ",\"threads3\":%" PRIu64 "}}",
        f.svc, f.eret, f.interrupt, f.handler, f.barrier, f.acqRel,
        f.rmw, f.dep, f.pair, f.threads3);
    return out;
}

bool
chunkResultFromJson(const std::string &body, ChunkResult &out)
{
    JsonValue root;
    try {
        root = parseJson(body);
    } catch (const FatalError &) {
        return false;
    }
    if (!root.isObject())
        return false;
    out.tested = jsonU64(root, "tested", 0);
    out.sound = jsonU64(root, "sound", 0);
    out.skipped = jsonU64(root, "skipped", 0);
    if (const JsonValue *violations = root.find("violations")) {
        if (!violations->isArray())
            return false;
        for (const JsonValue &entry : violations->array) {
            if (!entry.isInt() || entry.integer < 0)
                return false;
            out.violationSeeds.push_back(
                static_cast<std::uint64_t>(entry.integer));
        }
    }
    if (const JsonValue *features = root.find("features")) {
        if (!features->isObject())
            return false;
        gen::Features &f = out.features;
        f.svc = jsonU64(*features, "svc", 0);
        f.eret = jsonU64(*features, "eret", 0);
        f.interrupt = jsonU64(*features, "interrupt", 0);
        f.handler = jsonU64(*features, "handler", 0);
        f.barrier = jsonU64(*features, "barrier", 0);
        f.acqRel = jsonU64(*features, "acq_rel", 0);
        f.rmw = jsonU64(*features, "rmw", 0);
        f.dep = jsonU64(*features, "dep", 0);
        f.pair = jsonU64(*features, "pair", 0);
        f.threads3 = jsonU64(*features, "threads3", 0);
    }
    return true;
}

/** Run seeds [begin, end) of @p hammer on @p engine (deterministic
 *  ordered map — the same primitive Hammer::run() fans chunks over). */
ChunkResult
runChunkLocal(const gen::Hammer &hammer, engine::Engine &engine,
              std::uint64_t begin, std::uint64_t end)
{
    std::vector<gen::SeedResult> results = engine.map(
        static_cast<std::size_t>(end - begin), [&](std::size_t i) {
            return hammer.checkSeed(begin +
                                    static_cast<std::uint64_t>(i));
        });
    ChunkResult chunk;
    for (const gen::SeedResult &result : results) {
        ++chunk.tested;
        chunk.features.merge(result.features);
        switch (result.outcome) {
          case gen::SeedOutcome::Sound: ++chunk.sound; break;
          case gen::SeedOutcome::Skipped: ++chunk.skipped; break;
          case gen::SeedOutcome::Violation:
            chunk.violationSeeds.push_back(result.seed);
            break;
        }
    }
    return chunk;
}

/** Fold one chunk (in seed order) into the campaign summary —
 *  mirrors Hammer::run()'s merge exactly. */
void
mergeChunk(gen::CampaignSummary &summary, const ChunkResult &chunk,
           std::uint64_t chunkEnd)
{
    summary.tested += chunk.tested;
    summary.sound += chunk.sound;
    summary.skipped += chunk.skipped;
    summary.features.merge(chunk.features);
    summary.violationSeeds.insert(summary.violationSeeds.end(),
                                  chunk.violationSeeds.begin(),
                                  chunk.violationSeeds.end());
    summary.nextSeed = chunkEnd;
}

} // namespace

std::string
hammerShardBody(const gen::Hammer &hammer, std::uint64_t seedBegin,
                std::uint64_t seedEnd)
{
    std::string body = format(
        "{\"kind\":\"hammer\",\"fingerprint\":\"%016" PRIx64
        "\",\"seed_begin\":%" PRIu64 ",\"seed_end\":%" PRIu64
        ",\"config\":",
        hammer.fingerprint(), seedBegin, seedEnd);
    body += configJson(hammer.config());
    body += "}";
    return body;
}

HttpResponse
handleHammerShard(engine::Engine &engine, const JsonValue &root,
                  Metrics &metrics, bool trusted)
{
    const JsonValue *config = root.find("config");
    if (!config || !config->isObject())
        return HttpResponse::error(400, "missing \"config\" object");

    gen::HammerConfig parsed;
    std::string error;
    if (!configFromJson(*config, parsed, error))
        return HttpResponse::error(400, error);

    const std::uint64_t seedBegin = jsonU64(root, "seed_begin", 0);
    const std::uint64_t seedEnd = jsonU64(root, "seed_end", 0);
    if (seedEnd <= seedBegin)
        return HttpResponse::error(400, "empty seed range");
    if (seedEnd - seedBegin > 1u << 20)
        return HttpResponse::error(400, "seed chunk too large");

    // Reconstruct the Hammer and compare fingerprints: a peer built
    // from a different generator or model revision would synthesize
    // different tests for the same seeds, so a mismatch is refused —
    // never silently computed.
    gen::Hammer hammer(std::move(parsed));
    const std::uint64_t wirePrint = jsonFingerprint(root);
    if (wirePrint == 0 || wirePrint != hammer.fingerprint()) {
        ++metrics.shardRefused;
        return HttpResponse::error(
            409, "hammer fingerprint mismatch: peer generator/model "
                 "revision differs from the coordinator's");
    }

    ChunkResult chunk = runChunkLocal(hammer, engine, seedBegin, seedEnd);

    // peer-lie (Byzantine injection): bias the counters *before*
    // sealing, so the wrong chunk summary is self-consistently signed
    // and only the coordinator's audit path can catch it.
    if (!trusted && engine::faultInjector().shouldFail(
                        engine::FaultPoint::PeerLie)) {
        ++chunk.tested;
        ++chunk.sound;
    }

    HttpResponse response;
    response.body = sealShardResponse(
        chunkResultJson(chunk),
        format("shard-hammer:%016" PRIx64, hammer.fingerprint()),
        trusted);
    response.contentType = "application/json";
    return response;
}

gen::CampaignSummary
runDistributedHammer(const gen::Hammer &hammer, engine::Engine &engine,
                     PeerPool &peers)
{
    const gen::HammerConfig &config = hammer.config();
    const std::uint64_t print = hammer.fingerprint();
    const std::string program = format("shard-hammer:%016" PRIx64, print);

    // Audit ground truth: when the pool has no local compute yet (the
    // standalone hammer path — rexd installs a service-backed one at
    // startup), recompute chunks on this node's engine. Scoped to this
    // campaign: the lambda captures locals by reference.
    const bool installedLocal = !peers.hasLocalCompute();
    if (installedLocal) {
        peers.setLocalCompute([&hammer,
                               &engine](const std::string &body)
                                  -> std::string {
            JsonValue root;
            try {
                root = parseJson(body);
            } catch (const FatalError &) {
                return "";
            }
            if (!root.isObject())
                return "";
            const std::uint64_t begin = jsonU64(root, "seed_begin", 0);
            const std::uint64_t end = jsonU64(root, "seed_end", 0);
            if (end <= begin)
                return "";
            // No fingerprint re-check: these bodies are this
            // campaign's own dispatches.
            return chunkResultJson(
                runChunkLocal(hammer, engine, begin, end));
        });
    }

    gen::CampaignSummary summary;
    summary.seedBegin = config.seedBegin;
    summary.seedEnd = config.seedEnd;
    summary.nextSeed = config.seedBegin;

    if (!config.checkpointPath.empty()) {
        gen::CampaignSummary resumed;
        if (gen::loadCheckpoint(config.checkpointPath, print, resumed))
            summary = resumed;
    }

    const std::uint64_t chunk =
        std::max<std::uint64_t>(1, config.chunk);
    while (summary.nextSeed < summary.seedEnd) {
        if (config.cancel && config.cancel->cancelled())
            break;

        // One wave: enough chunks to keep every healthy peer busy
        // (plus the coordinator's own local fallback), dispatched
        // together, merged strictly in seed order.
        const std::size_t width =
            std::max<std::size_t>(1, peers.healthy()) * 4;
        struct Wave {
            std::uint64_t begin = 0;
            std::uint64_t end = 0;
        };
        std::vector<Wave> waves;
        std::vector<PeerPool::WireTask> wire;
        std::uint64_t cursor = summary.nextSeed;
        while (waves.size() < width && cursor < summary.seedEnd) {
            Wave wave;
            wave.begin = cursor;
            wave.end = std::min<std::uint64_t>(cursor + chunk,
                                               summary.seedEnd);
            cursor = wave.end;
            PeerPool::WireTask task;
            task.body = hammerShardBody(hammer, wave.begin, wave.end);
            task.expectProgram = program;
            waves.push_back(wave);
            wire.push_back(std::move(task));
        }

        peers.runWireTasks("/shard", wire, config.cancel);

        for (std::size_t i = 0; i < waves.size(); ++i) {
            if (config.cancel && config.cancel->cancelled())
                break;
            ChunkResult result;
            const bool remote =
                wire[i].filled &&
                chunkResultFromJson(wire[i].response, result);
            if (!remote) {
                // Peer failure (or garbled answer): this chunk runs
                // locally — a lost dispatch is never a lost chunk.
                peers.noteLocalFallback(1);
                result = runChunkLocal(hammer, engine, waves[i].begin,
                                       waves[i].end);
            }
            mergeChunk(summary, result, waves[i].end);
        }

        if (!config.checkpointPath.empty())
            gen::saveCheckpoint(config.checkpointPath, print, summary);
    }
    if (installedLocal)
        peers.setLocalCompute(nullptr);
    return summary;
}

} // namespace rex::server
