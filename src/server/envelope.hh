/**
 * @file
 * The rex-shard-v1 integrity envelope around /shard responses.
 *
 * PR 9's fan-out trusts a peer's *answer* completely: a version-skewed
 * binary, a bit flipped in transit, or a corrupted node silently
 * poisons the coordinator's deterministic merge. The envelope closes
 * the accidental half of that hole — every /shard 200 body is wrapped
 * as
 *
 *   {"envelope":"rex-shard-v1","revision":"<kModelRevision>",
 *    "program":"<program id>","digest":"<16 hex>","payload":{...}}
 *
 * where the digest is FNV-1a over the exact payload bytes plus the
 * responder's model revision and program id (docs/FORMAT.md). The
 * coordinator verifies before merging: a digest mismatch, an alien
 * revision, or a program id that names a different job is counted
 * (rexd_shard_digest_mismatches_total), never merged, and the task is
 * re-dispatched.
 *
 * What the envelope is NOT: a defence against a *deliberately* lying
 * peer, which computes a wrong payload and signs it consistently. That
 * Byzantine half is covered by the audit path and the peer reputation
 * ledger in server/peer.hh (docs/DISTRIBUTED.md, "Integrity & trust
 * model").
 *
 * Wire discipline: "payload" is always the envelope's last member and
 * its raw bytes are digested as serialized, so verification never
 * depends on JSON re-serialization being canonical.
 */

#ifndef REX_SERVER_ENVELOPE_HH
#define REX_SERVER_ENVELOPE_HH

#include <cstdint>
#include <string>

namespace rex::server {

/** The envelope magic, bumped when the envelope schema changes. */
inline constexpr const char *kShardEnvelopeMagic = "rex-shard-v1";

/** FNV-1a over @p payload bytes + 0xff + @p revision + 0xff +
 *  @p program — the envelope's "digest" field. */
std::uint64_t shardEnvelopeDigest(const std::string &payload,
                                  const std::string &revision,
                                  const std::string &program);

/**
 * Wrap @p payload (one JSON object, no trailing newline) in a sealed
 * rex-shard-v1 envelope under @p program and @p revision. The result
 * is one newline-terminated JSON line, payload last.
 */
std::string sealShardEnvelope(const std::string &payload,
                              const std::string &program,
                              const std::string &revision);

/**
 * Peer-side sealing for /shard handlers: sealShardEnvelope under this
 * node's engine::kModelRevision, with the wire-only Byzantine fault
 * points consulted when @p trusted is false — peer-stale-revision
 * seals under a bogus revision (self-consistently, the way a genuinely
 * stale binary would), peer-corrupt-frame flips a byte of the sealed
 * frame afterwards. The peer-lie point is the *caller's* to consult:
 * only the handler can perturb its counters before sealing.
 */
std::string sealShardResponse(const std::string &payload,
                              const std::string &program, bool trusted);

/**
 * Verify @p body as a sealed envelope and extract the raw payload
 * bytes into @p payload. False — with a diagnostic in @p error — on a
 * missing/foreign envelope, a digest that does not match the payload
 * bytes, a revision differing from @p expectRevision, or (when
 * @p expectProgram is non-empty) a program id naming a different job.
 */
bool openShardEnvelope(const std::string &body,
                       const std::string &expectProgram,
                       const std::string &expectRevision,
                       std::string &payload, std::string &error);

} // namespace rex::server

#endif // REX_SERVER_ENVELOPE_HH
