/**
 * @file
 * rexd: the litmus-checking daemon.
 *
 * Wraps RexServer around one long-lived engine (thread pool + shared
 * verdict cache + JSONL results sink) and wires SIGTERM/SIGINT to
 * graceful drain through a self-pipe: the handler only write()s a byte
 * (async-signal-safe); the main thread, blocked on the pipe, then runs
 * the full drain — stop accepting, serve every accepted request, flush
 * and close the results sink — before exiting 0.
 *
 * Usage:
 *   rexd [--host H] [--port P] [--threads N] [--queue N] [--jobs N]
 *        [--cache-dir DIR] [--cache-max-bytes N] [--no-cache]
 *        [--results PATH] [--max-body BYTES] [--io-timeout SECONDS]
 *        [--max-deadline-ms N] [--max-candidates N]
 *        [--workers N] [--crash-quarantine N] [--kill-grace-ms N]
 *        [--max-conns N] [--idle-timeout SECONDS] [--max-age SECONDS]
 *        [--peers H:P,H:P,...] [--peer-timeout SECONDS]
 *        [--peer-shards N] [--peer-min-shards N] [--peer-hedge-ms N]
 *        [--audit-rate R] [--audit-seed N] [--peer-lie-quarantine S]
 *        [--peer-reinstate-probes N] [--crash-ledger-max N]
 *        [--byzantine-spec SPEC]
 *
 * Defaults: 127.0.0.1:8643, 4 handler threads, queue bound 64, engine
 * jobs from REX_JOBS (else hardware concurrency), cache settings from
 * REX_CACHE / REX_CACHE_DIR / REX_CACHE_MAX_BYTES, results from
 * REX_RESULTS. Prints "rexd listening on H:P" once ready (scripts wait
 * for it), and a final stats line after drain.
 *
 * --max-deadline-ms / --max-candidates cap every /check's resource
 * budget server-side: requests asking for more (or for no budget at
 * all) are clamped down to the caps. 0 (the default) imposes nothing.
 *
 * --workers N runs each cache-missing check in one of N supervised
 * worker processes (engine/supervisor.hh): a crash in enumeration
 * yields a CrashedWorker verdict for that request only, the daemon and
 * concurrent requests unharmed. --crash-quarantine sets how many
 * crashes a (test, variant) key survives before being answered
 * Quarantined without dispatch; --kill-grace-ms how far past its
 * cooperative deadline a worker may run before SIGKILL. Pair --workers
 * with --max-deadline-ms so every job has a hard deadline.
 *
 * --max-conns caps concurrently open connections (beyond it, accepts
 * are answered 503 + Retry-After and closed); --idle-timeout closes
 * keep-alive connections idle that long; --max-age sets the
 * Cache-Control max-age advertised on deterministic /check 200s.
 *
 * --peers turns this node into a shard coordinator: large
 * budget-eligible checks fan their shard plan over the listed peer
 * rexd instances via POST /shard (docs/DISTRIBUTED.md), tolerating
 * peer failure by retry, re-dispatch, and local fallback. The knobs:
 * --peer-timeout per-request socket timeout, --peer-shards shards per
 * dispatched task (0 = auto from peer count), --peer-min-shards the
 * minimum plan size worth distributing, --peer-hedge-ms the
 * straggler-hedging threshold (-1 = auto from observed peer RTT,
 * 0 = off).
 *
 * Integrity (docs/DISTRIBUTED.md, "Integrity & trust model"): every
 * /shard answer is verified against its rex-shard-v1 envelope before
 * merging, and --audit-rate R additionally recomputes that fraction of
 * filled tasks elsewhere and byte-compares (1.0 = audit everything,
 * the only rate that guarantees byte-identical output under an
 * actively lying peer). A confirmed lie quarantines the peer for
 * --peer-lie-quarantine seconds (doubling per episode); reinstatement
 * requires --peer-reinstate-probes consecutive clean audits.
 * --audit-seed pins the deterministic audit sampling sequence.
 * --crash-ledger-max caps the supervisor's crash ledger (LRU).
 *
 * --byzantine-spec SPEC arms the wrong-answer fault points (peer-lie /
 * peer-corrupt-frame / peer-stale-revision, engine/faultinject.hh
 * syntax) on THIS node's /shard handlers — a test/chaos knob that
 * makes this rexd lie to its coordinator. Equivalent to REX_FAULT_SPEC
 * but named so smoke scripts read honestly.
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/batch.hh"
#include "engine/faultinject.hh"
#include "server/server.hh"

namespace {

int g_drain_pipe[2] = {-1, -1};

extern "C" void
drainSignalHandler(int)
{
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(g_drain_pipe[1], &byte, 1);
}

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--host H] [--port P] [--threads N] [--queue N]\n"
        "            [--jobs N] [--cache-dir DIR] [--cache-max-bytes N]\n"
        "            [--no-cache] [--results PATH] [--max-body BYTES]\n"
        "            [--io-timeout SECONDS] [--max-deadline-ms N]\n"
        "            [--max-candidates N] [--workers N]\n"
        "            [--crash-quarantine N] [--kill-grace-ms N]\n"
        "            [--max-conns N] [--idle-timeout SECONDS]\n"
        "            [--max-age SECONDS] [--peers H:P,...]\n"
        "            [--peer-timeout SECONDS] [--peer-shards N]\n"
        "            [--peer-min-shards N] [--peer-hedge-ms N]\n"
        "            [--audit-rate R] [--audit-seed N]\n"
        "            [--peer-lie-quarantine S]\n"
        "            [--peer-reinstate-probes N]\n"
        "            [--crash-ledger-max N] [--byzantine-spec SPEC]\n",
        argv0);
    std::exit(2);
}

unsigned long
numberArg(int argc, char **argv, int &arg, const char *argv0)
{
    if (arg + 1 >= argc)
        usage(argv0);
    char *end = nullptr;
    unsigned long value = std::strtoul(argv[++arg], &end, 10);
    if (!end || *end != '\0')
        usage(argv0);
    return value;
}

double
rateArg(int argc, char **argv, int &arg, const char *argv0)
{
    if (arg + 1 >= argc)
        usage(argv0);
    char *end = nullptr;
    double value = std::strtod(argv[++arg], &end);
    if (!end || *end != '\0' || value < 0.0 || value > 1.0)
        usage(argv0);
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rex;

    server::ServerConfig config;
    config.port = 8643;
    engine::EngineConfig engine_config = engine::EngineConfig::fromEnv();

    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--host") == 0) {
            if (arg + 1 >= argc)
                usage(argv[0]);
            config.host = argv[++arg];
        } else if (std::strcmp(argv[arg], "--port") == 0) {
            config.port = static_cast<std::uint16_t>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--threads") == 0) {
            config.threads = static_cast<unsigned>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--queue") == 0) {
            config.maxQueue = numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--jobs") == 0) {
            engine_config.jobs = static_cast<unsigned>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--cache-dir") == 0) {
            if (arg + 1 >= argc)
                usage(argv[0]);
            engine_config.cacheDir = argv[++arg];
        } else if (std::strcmp(argv[arg], "--cache-max-bytes") == 0) {
            engine_config.cacheMaxBytes =
                numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--no-cache") == 0) {
            engine_config.cacheEnabled = false;
        } else if (std::strcmp(argv[arg], "--results") == 0) {
            if (arg + 1 >= argc)
                usage(argv[0]);
            engine_config.resultsPath = argv[++arg];
        } else if (std::strcmp(argv[arg], "--max-body") == 0) {
            config.limits.maxBodyBytes =
                numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--io-timeout") == 0) {
            config.limits.ioTimeoutSeconds = static_cast<int>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--max-deadline-ms") == 0) {
            config.maxDeadlineMs = numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--max-candidates") == 0) {
            config.maxCandidates = numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--workers") == 0) {
            engine_config.workers = static_cast<unsigned>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--crash-quarantine") == 0) {
            engine_config.crashQuarantine = static_cast<unsigned>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--kill-grace-ms") == 0) {
            engine_config.killGraceMs =
                numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--max-conns") == 0) {
            config.maxConnections = numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--idle-timeout") == 0) {
            config.idleTimeoutSeconds = static_cast<int>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--max-age") == 0) {
            config.cacheMaxAgeSeconds = static_cast<int>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--peers") == 0) {
            if (arg + 1 >= argc)
                usage(argv[0]);
            for (const std::string &endpoint :
                     split(argv[++arg], ',')) {
                if (!endpoint.empty())
                    config.peers.endpoints.push_back(endpoint);
            }
        } else if (std::strcmp(argv[arg], "--peer-timeout") == 0) {
            config.peers.timeoutSeconds = static_cast<int>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--peer-shards") == 0) {
            config.peers.shardsPerTask =
                numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--peer-min-shards") == 0) {
            config.peers.minShards =
                numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--peer-hedge-ms") == 0) {
            config.peers.hedgeAfterMs = static_cast<int>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--audit-rate") == 0) {
            config.peers.auditRate = rateArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--audit-seed") == 0) {
            config.peers.auditSeed =
                numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--peer-lie-quarantine") == 0) {
            config.peers.lieQuarantineSeconds = static_cast<int>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg],
                               "--peer-reinstate-probes") == 0) {
            config.peers.reinstateProbes = static_cast<int>(
                numberArg(argc, argv, arg, argv[0]));
        } else if (std::strcmp(argv[arg], "--crash-ledger-max") == 0) {
            engine_config.crashLedgerMax =
                numberArg(argc, argv, arg, argv[0]);
        } else if (std::strcmp(argv[arg], "--byzantine-spec") == 0) {
            if (arg + 1 >= argc)
                usage(argv[0]);
            engine::faultInjector().configure(argv[++arg]);
        } else {
            usage(argv[0]);
        }
    }

    if (::pipe(g_drain_pipe) < 0) {
        std::perror("pipe");
        return 1;
    }
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = drainSignalHandler;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    try {
        engine::Engine engine(engine_config);
        server::RexServer server(engine, config);
        server.start();
        std::printf("rexd listening on %s:%u (threads=%u queue=%zu "
                    "jobs=%u workers=%u max-conns=%zu)\n",
                    server.config().host.c_str(), server.port(),
                    server.config().threads, server.config().maxQueue,
                    engine.jobs(), engine_config.workers,
                    server.config().maxConnections);
        std::fflush(stdout);

        // Block until a drain signal arrives.
        char byte;
        while (::read(g_drain_pipe[0], &byte, 1) < 0 && errno == EINTR) {
        }

        std::printf("rexd draining...\n");
        std::fflush(stdout);
        server.requestDrain();
        server.join();

        std::printf("rexd drained: %llu records, %llu cache hits, "
                    "%llu misses, %llu rejected\n",
                    static_cast<unsigned long long>(
                        engine.results().records()),
                    static_cast<unsigned long long>(
                        engine.cache().hits()),
                    static_cast<unsigned long long>(
                        engine.cache().misses()),
                    static_cast<unsigned long long>(
                        server.metrics().queueRejected.load()));
        return 0;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "rexd: %s\n", err.what());
        return 1;
    }
}
