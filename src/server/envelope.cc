#include "server/envelope.hh"

#include <cinttypes>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/cache.hh"
#include "engine/faultinject.hh"
#include "engine/results.hh"
#include "server/json.hh"

namespace rex::server {

namespace {

/** FNV-1a over @p text, seeded by @p hash (the cache/ETag function). */
std::uint64_t
fnv1a(std::uint64_t hash, const std::string &text)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Mix a 0xff field separator so "ab"+"c" and "a"+"bc" differ. */
std::uint64_t
fnv1aSep(std::uint64_t hash)
{
    hash ^= 0xff;
    hash *= 0x100000001b3ull;
    return hash;
}

} // namespace

std::uint64_t
shardEnvelopeDigest(const std::string &payload,
                    const std::string &revision,
                    const std::string &program)
{
    std::uint64_t hash = fnv1a(0xcbf29ce484222325ull, payload);
    hash = fnv1a(fnv1aSep(hash), revision);
    hash = fnv1a(fnv1aSep(hash), program);
    return hash;
}

std::string
sealShardEnvelope(const std::string &payload, const std::string &program,
                  const std::string &revision)
{
    std::string out = format(
        "{\"envelope\":\"%s\",\"revision\":\"%s\",\"program\":\"%s\","
        "\"digest\":\"%016" PRIx64 "\",\"payload\":",
        kShardEnvelopeMagic, engine::jsonEscape(revision).c_str(),
        engine::jsonEscape(program).c_str(),
        shardEnvelopeDigest(payload, revision, program));
    out += payload;
    out += "}\n";
    return out;
}

std::string
sealShardResponse(const std::string &payload, const std::string &program,
                  bool trusted)
{
    std::string revision = engine::kModelRevision;
    if (!trusted && engine::faultInjector().shouldFail(
                        engine::FaultPoint::PeerStaleRevision))
        revision += "-stale";
    std::string sealed = sealShardEnvelope(payload, program, revision);
    if (!trusted && engine::faultInjector().shouldFail(
                        engine::FaultPoint::PeerCorruptFrame)) {
        // One flipped bit mid-frame: whether it lands in the payload,
        // the digest, or the framing, the coordinator must reject it.
        sealed[sealed.size() / 2] ^= 0x01;
    }
    return sealed;
}

bool
openShardEnvelope(const std::string &body,
                  const std::string &expectProgram,
                  const std::string &expectRevision, std::string &payload,
                  std::string &error)
{
    const std::string framed = trim(body);
    JsonValue root;
    try {
        root = parseJson(framed);
    } catch (const FatalError &err) {
        error = std::string("unparseable envelope: ") + err.what();
        return false;
    }
    if (!root.isObject()) {
        error = "envelope is not a JSON object";
        return false;
    }
    const JsonValue *magic = root.find("envelope");
    if (!magic || !magic->isString() ||
            magic->string != kShardEnvelopeMagic) {
        error = "missing or foreign envelope magic (want rex-shard-v1)";
        return false;
    }
    const JsonValue *revision = root.find("revision");
    const JsonValue *program = root.find("program");
    const JsonValue *digest = root.find("digest");
    if (!revision || !revision->isString() || !program ||
            !program->isString() || !digest || !digest->isString() ||
            digest->string.size() != 16) {
        error = "envelope missing revision/program/digest";
        return false;
    }

    // The payload is digested as raw serialized bytes, located by the
    // wire discipline that it is the envelope's final member: from the
    // first byte after `"payload":` to the closing brace of the
    // envelope itself. No canonical re-serialization involved.
    static const std::string marker = "\"payload\":";
    const std::size_t at = framed.find(marker);
    if (at == std::string::npos || framed.empty() ||
            framed.back() != '}') {
        error = "envelope has no trailing payload member";
        return false;
    }
    const std::size_t begin = at + marker.size();
    payload = framed.substr(begin, framed.size() - 1 - begin);

    std::uint64_t wireDigest = 0;
    for (char c : digest->string) {
        int nibble;
        if (c >= '0' && c <= '9')
            nibble = c - '0';
        else if (c >= 'a' && c <= 'f')
            nibble = c - 'a' + 10;
        else {
            error = "envelope digest is not 16 lowercase hex digits";
            payload.clear();
            return false;
        }
        wireDigest =
            (wireDigest << 4) | static_cast<std::uint64_t>(nibble);
    }
    const std::uint64_t computed = shardEnvelopeDigest(
        payload, revision->string, program->string);
    if (computed != wireDigest) {
        error = format("digest mismatch: envelope says %s, payload "
                       "hashes to %016" PRIx64,
                       digest->string.c_str(), computed);
        payload.clear();
        return false;
    }
    // Digest verified over the *claimed* revision/program, so a stale
    // node signs its staleness consistently — and is rejected here.
    if (revision->string != expectRevision) {
        error = "revision mismatch: peer runs model revision '" +
                revision->string + "', coordinator expects '" +
                expectRevision + "'";
        payload.clear();
        return false;
    }
    if (!expectProgram.empty() && program->string != expectProgram) {
        error = "program mismatch: peer answered for '" +
                program->string + "', coordinator dispatched '" +
                expectProgram + "'";
        payload.clear();
        return false;
    }
    return true;
}

} // namespace rex::server
