/**
 * @file
 * rexd's connection machinery: a non-blocking event loop (epoll on
 * Linux, poll(2) elsewhere or under REX_POLL=1) serving HTTP/1.1
 * keep-alive with pipelining, plus N handler threads for engine work.
 *
 * One loop thread owns every connection: it accepts (until EAGAIN),
 * reads into per-connection buffers, frames requests incrementally
 * through HttpParser, and writes responses strictly in request order
 * (per-connection response slots keyed by a monotonic sequence number,
 * so pipelined requests answered out of order by the handlers still
 * flush in arrival order). Cheap routes — /metrics, /healthz, 404/405,
 * framing errors, backpressure 503s, and `If-None-Match` → 304 — are
 * answered on the loop; /check work is never run there. Cache-missing
 * checks go onto a bounded job queue drained by handler threads, which
 * run the shared CheckService (and therefore the one long-lived
 * Engine), streaming each verdict record back to the loop through a
 * wakeup-pipe completion queue as soon as it exists.
 *
 * Deadlines hang off a one-second-granularity timer wheel with lazy
 * deletion: a connection stalled mid-request gets 408 (the slow-loris
 * path), an idle keep-alive connection past idleTimeoutSeconds is
 * closed (counted separately), a stalled write or error-response
 * linger-drain is bounded by ioTimeoutSeconds. A connection ceiling
 * (maxConnections) sheds with 503 + Retry-After before memory does,
 * and a full job queue sheds the same way — both on the loop, never
 * consuming a handler thread.
 *
 * Drain (requestDrain(), wired to SIGTERM/SIGINT by the rexd binary
 * via a self-pipe) closes the listener, stops reading new bytes, then
 * serves every fully-received request — queued, in-flight, or still
 * buffered on a connection — before join() returns; no framed request
 * is ever abandoned, so the JSONL results file ends on a complete
 * record.
 */

#ifndef REX_SERVER_SERVER_HH
#define REX_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/http.hh"
#include "server/metrics.hh"
#include "server/peer.hh"
#include "server/service.hh"

namespace rex::engine { class Engine; }

namespace rex::server {

class Poller;

/** rexd configuration. */
struct ServerConfig {
    /** Bind address. */
    std::string host = "127.0.0.1";

    /** Bind port; 0 asks the kernel for an ephemeral port (see
     *  RexServer::port() after start()). */
    std::uint16_t port = 0;

    /** Handler threads (engine work off the loop; each runs one
     *  request at a time). */
    unsigned threads = 4;

    /** Job-queue bound; /check requests beyond it get 503. */
    std::size_t maxQueue = 64;

    /** Retry-After seconds advertised with 503 responses. */
    int retryAfterSeconds = 1;

    /** HTTP parsing limits (also the read/write-stall deadline). */
    HttpLimits limits;

    /** Wall-clock budget cap applied to every /check (clamps the
     *  request's deadline_ms); 0 = no server-imposed deadline. */
    std::uint64_t maxDeadlineMs = 0;

    /** Candidate-count budget cap (clamps max_candidates); 0 = none. */
    std::uint64_t maxCandidates = 0;

    /** Open-connection ceiling; beyond it, accepts get 503 +
     *  Retry-After and close. */
    std::size_t maxConnections = 10240;

    /** Idle keep-alive connections past this are closed (no 408: an
     *  idle peer owes us nothing). */
    int idleTimeoutSeconds = 60;

    /** `Cache-Control: public, max-age=...` advertised on
     *  deterministic /check 200s. */
    int cacheMaxAgeSeconds = 86400;

    /**
     * Peer shard-dispatch (rexd --peers): when endpoints are set this
     * node becomes a shard coordinator — large budget-eligible checks
     * fan their shard plan over the peers via POST /shard, with the
     * failure ladder of server/peer.hh. Empty = local-only.
     */
    PeerConfig peers;
};

/** The rexd daemon core (in-process embeddable, see tests). */
class RexServer
{
  public:
    /** @param engine the shared engine all requests check on. */
    RexServer(engine::Engine &engine, ServerConfig config);

    /** Drains and joins if still running. */
    ~RexServer();

    RexServer(const RexServer &) = delete;
    RexServer &operator=(const RexServer &) = delete;

    /**
     * Bind, listen, and spawn the loop + handler threads.
     * @throws FatalError when the address cannot be bound.
     */
    void start();

    /** The bound port (resolves config port 0 after start()). */
    std::uint16_t port() const { return _port; }

    /**
     * Begin graceful drain: stop accepting, serve every fully-received
     * request. Safe to call from any thread, and more than once.
     */
    void requestDrain();

    /** Wait for drain to complete and all threads to exit. */
    void join();

    /** True once requestDrain() has been observed. */
    bool draining() const { return _draining.load(); }

    Metrics &metrics() { return _metrics; }
    CheckService &service() { return _service; }
    const ServerConfig &config() const { return _config; }

    /** The peer shard dispatcher; null when --peers is empty. */
    PeerPool *peers() { return _peers.get(); }

  private:
    /** Why a connection deadline is armed. */
    enum class Deadline : std::uint8_t {
        None,    //!< engine work in flight; the governor bounds it
        Read,    //!< partial request buffered → 408 on expiry
        Idle,    //!< keep-alive between requests → close on expiry
        Write,   //!< response bytes stalled in our buffer → close
        Linger,  //!< discarding an error-response body → close
    };

    /** One in-order response slot (seq-keyed, deque position). */
    struct ResponseSlot {
        bool done = false;       //!< response complete, may flush
        bool keepAlive = true;   //!< the request's Connection wish
        HttpResponse response;   //!< head; body streams into `body`
        std::string body;        //!< accumulated JSONL chunks
        bool headHasBody = false;  //!< response.body is authoritative
    };

    /** Per-connection state, owned by the loop thread. */
    struct Conn {
        std::uint64_t id = 0;
        int fd = -1;
        HttpParser parser;
        std::string out;             //!< serialized bytes to write
        std::size_t outOff = 0;
        std::uint64_t baseSeq = 0;   //!< seq of slots.front()
        std::uint64_t nextSeq = 0;
        std::deque<ResponseSlot> slots;
        std::uint64_t requestsServed = 0;
        bool noMoreReads = false;    //!< stop framing new requests
        bool closeAfterFlush = false;
        bool lingering = false;      //!< discarding an unread body
        int lingerSeconds = 0;       //!< 0 = limits.ioTimeoutSeconds
        bool wantRead = true;        //!< current poller interest
        bool wantWrite = false;
        Deadline deadline = Deadline::None;
        std::uint64_t deadlineTick = 0;
    };

    /** One /check dispatched to a handler thread. */
    struct Job {
        std::uint64_t connId = 0;
        std::uint64_t seq = 0;
        HttpRequest request;
    };

    /** One handler → loop message (a streamed chunk or the final
     *  response head). */
    struct Completion {
        std::uint64_t connId = 0;
        std::uint64_t seq = 0;
        std::string chunk;
        bool final = false;
        HttpResponse head;        //!< valid when final
        bool headHasBody = false; //!< head.body is the whole body
    };

    void loop();
    void handlerLoop();

    void acceptReady();
    void handleConnEvent(Conn &conn, bool readable, bool writable);
    void readInto(Conn &conn);
    void pumpRequests(Conn &conn);
    void dispatch(Conn &conn, HttpRequest request);
    void enqueueSynthetic(Conn &conn, HttpResponse response,
                          bool countIt);
    void flushSlots(Conn &conn);
    void writeOut(Conn &conn);
    void updateInterest(Conn &conn);
    void armDeadline(Conn &conn);
    void fireTimers(std::uint64_t upToTick);
    void closeConn(Conn &conn);
    void applyCompletions();
    void beginDrainOnLoop();
    bool drainComplete();

    engine::Engine &_engine;
    ServerConfig _config;
    Metrics _metrics;
    CheckService _service;
    std::unique_ptr<PeerPool> _peers;

    int _listenFd = -1;
    int _wakeReadFd = -1;   //!< self-pipe: completions/drain wake the loop
    int _wakeWriteFd = -1;
    std::uint16_t _port = 0;

    std::unique_ptr<Poller> _poller;
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> _conns;
    std::uint64_t _nextConnId = 1;

    /** Timer wheel: slot = tick % size, entries are conn ids checked
     *  lazily against the conn's current (kind, tick) when fired. */
    std::vector<std::vector<std::uint64_t>> _wheel;
    std::uint64_t _tick = 0;

    std::thread _loopThread;
    std::vector<std::thread> _handlers;

    std::mutex _jobMutex;
    std::condition_variable _jobReady;
    std::deque<Job> _jobs;
    std::size_t _jobsInFlight = 0;  //!< guarded by _jobMutex
    bool _stopHandlers = false;     //!< guarded by _jobMutex

    std::mutex _completionMutex;
    std::vector<Completion> _completions;

    std::atomic<bool> _started{false};
    std::atomic<bool> _draining{false};
    std::atomic<bool> _joined{false};
    bool _loopDraining = false;  //!< loop-thread view of _draining
};

} // namespace rex::server

#endif // REX_SERVER_SERVER_HH
