/**
 * @file
 * rexd's connection machinery: listener, bounded accept queue, handler
 * threads, backpressure, and graceful drain.
 *
 * One accept thread polls the listening socket; accepted connections go
 * onto a bounded queue drained by N handler threads, each serving one
 * request per connection through the shared CheckService (and therefore
 * the one long-lived Engine: one thread pool, one verdict cache, one
 * results sink across all requests). When the queue is full the accept
 * thread answers 503 with a Retry-After header inline and closes — the
 * cheap path, no handler thread is ever consumed by shedding load.
 *
 * Drain (requestDrain(), wired to SIGTERM/SIGINT by the rexd binary via
 * a self-pipe) stops the accept thread first, then lets the handlers
 * finish the queue and every in-flight request before join() returns;
 * no accepted connection is ever abandoned, so the JSONL results file
 * ends on a complete record.
 */

#ifndef REX_SERVER_SERVER_HH
#define REX_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/http.hh"
#include "server/metrics.hh"
#include "server/service.hh"

namespace rex::engine { class Engine; }

namespace rex::server {

/** rexd configuration. */
struct ServerConfig {
    /** Bind address. */
    std::string host = "127.0.0.1";

    /** Bind port; 0 asks the kernel for an ephemeral port (see
     *  RexServer::port() after start()). */
    std::uint16_t port = 0;

    /** Handler threads (each serves one connection at a time). */
    unsigned threads = 4;

    /** Accept-queue bound; beyond it, connections get 503. */
    std::size_t maxQueue = 64;

    /** Retry-After seconds advertised with 503 responses. */
    int retryAfterSeconds = 1;

    /** HTTP parsing limits. */
    HttpLimits limits;

    /** Wall-clock budget cap applied to every /check (clamps the
     *  request's deadline_ms); 0 = no server-imposed deadline. */
    std::uint64_t maxDeadlineMs = 0;

    /** Candidate-count budget cap (clamps max_candidates); 0 = none. */
    std::uint64_t maxCandidates = 0;
};

/** The rexd daemon core (in-process embeddable, see tests). */
class RexServer
{
  public:
    /** @param engine the shared engine all requests check on. */
    RexServer(engine::Engine &engine, ServerConfig config);

    /** Drains and joins if still running. */
    ~RexServer();

    RexServer(const RexServer &) = delete;
    RexServer &operator=(const RexServer &) = delete;

    /**
     * Bind, listen, and spawn the accept + handler threads.
     * @throws FatalError when the address cannot be bound.
     */
    void start();

    /** The bound port (resolves config port 0 after start()). */
    std::uint16_t port() const { return _port; }

    /**
     * Begin graceful drain: stop accepting, serve everything already
     * accepted. Safe to call from any thread, and more than once.
     */
    void requestDrain();

    /** Wait for drain to complete and all threads to exit. */
    void join();

    /** True once requestDrain() has been observed. */
    bool draining() const { return _draining.load(); }

    Metrics &metrics() { return _metrics; }
    CheckService &service() { return _service; }
    const ServerConfig &config() const { return _config; }

  private:
    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);

    engine::Engine &_engine;
    ServerConfig _config;
    Metrics _metrics;
    CheckService _service;

    int _listenFd = -1;
    int _wakeReadFd = -1;   //!< self-pipe: drain wakes the accept poll
    int _wakeWriteFd = -1;
    std::uint16_t _port = 0;

    std::thread _acceptThread;
    std::vector<std::thread> _handlers;

    std::mutex _queueMutex;
    std::condition_variable _queueReady;
    std::deque<int> _queue;

    std::atomic<bool> _started{false};
    std::atomic<bool> _draining{false};
    std::atomic<bool> _acceptDone{false};
    std::atomic<bool> _joined{false};
};

} // namespace rex::server

#endif // REX_SERVER_SERVER_HH
