/**
 * @file
 * Blocking HTTP client for rexd — the wire protocol's only other C++
 * implementation (examples/rex_client.cpp and the integration test
 * both drive the daemon through this class, so a protocol change
 * breaks loudly in exactly two places: service.cc and here).
 *
 * By default each request opens a fresh connection and asks for
 * `Connection: close` (one-shot semantics, matching the pre-event-loop
 * server). setKeepAlive(true) pools one connection across requests and
 * frames responses by Content-Length; a pooled connection the server
 * has since dropped (idle timeout, restart) is detected on the next
 * request and replaced with one clean reconnect that does NOT consume
 * a retry attempt — only a failure on a fresh connection counts.
 *
 * Request bodies for /check are built by checkRequestJson(), a tiny
 * serialiser kept next to the client so the JSON the server parses and
 * the JSON clients emit cannot drift apart silently.
 */

#ifndef REX_SERVER_CLIENT_HH
#define REX_SERVER_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rex::server {

/** One response as seen by the client. */
struct ClientResponse {
    int status = 0;
    std::map<std::string, std::string> headers;  //!< keys lowercased
    std::string body;
};

/** Serialise a /check request body. @p sleepMs <= 0 omits the hook;
 *  @p deadlineMs / @p maxCandidates <= 0 omit the budget members;
 *  @p resumable asks for rex-cont-v1 continuation tokens on budget
 *  trips and @p resume (when non-empty) replays one. */
std::string checkRequestJson(const std::string &test_text,
                             const std::vector<std::string> &variants,
                             int sleepMs = 0,
                             std::int64_t deadlineMs = 0,
                             std::int64_t maxCandidates = 0,
                             bool resumable = false,
                             const std::string &resume = {});

/**
 * Client-side retry policy for transient failures: 503 shed responses
 * (honouring the server's Retry-After) and transport errors (connect
 * refused/reset, send/recv failures). HTTP errors other than 503 are
 * never retried — they are answers, not congestion.
 */
struct RetryPolicy {
    /** Total tries including the first; 1 = retries disabled. */
    int maxAttempts = 1;

    /** Backoff before retry k (1-based) is initialDelayMs * 2^(k-1),
     *  capped at maxDelayMs — unless the server's Retry-After asks for
     *  more, which wins. */
    int initialDelayMs = 100;
    int maxDelayMs = 2000;

    /** Give up when the next sleep would pass this budget (wall time
     *  across all attempts, 0 = unbounded). */
    int totalDeadlineMs = 15000;

    /** Seed for the deterministic +-25% backoff jitter. */
    std::uint64_t jitterSeed = 0;

    /**
     * Also retry 200 responses whose body carries a CrashedWorker
     * verdict (a supervised worker died mid-job — the respawned worker
     * may well succeed). Off by default: a crash is an answer, and
     * retrying it costs another worker. Quarantined verdicts are never
     * retried — the server has already decided to stop dispatching
     * that key, so a retry can only get the same answer back.
     */
    bool retryCrashed = false;

    /** Reuse one pooled connection across requests (HTTP keep-alive)
     *  instead of one connection per request. */
    bool keepAlive = false;
};

/**
 * Backoff before retry @p attempt (1-based): capped exponential with
 * deterministic jitter, overridden upward by @p retryAfterSeconds (the
 * server's Retry-After header; <= 0 = absent). Pure — exposed for
 * tests.
 */
int retryDelayMs(const RetryPolicy &policy, int attempt,
                 int retryAfterSeconds);

/** A blocking HTTP client (optionally keep-alive, see file header). */
class Client
{
  public:
    Client(std::string host, std::uint16_t port, int timeoutSeconds = 30)
        : _host(std::move(host)), _port(port),
          _timeoutSeconds(timeoutSeconds)
    {}

    /** Closes the pooled connection, if any. */
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Enable retries; the default policy (maxAttempts 1) disables
     *  them, preserving single-shot semantics. Policy keepAlive is
     *  adopted too (equivalent to setKeepAlive). */
    void setRetryPolicy(RetryPolicy policy);
    const RetryPolicy &retryPolicy() const { return _retry; }

    /** Pool one connection across requests (HTTP/1.1 keep-alive). */
    void setKeepAlive(bool keepAlive);
    bool keepAlive() const { return _keepAlive; }

    /**
     * POST @p body to @p path. Retries per the policy on 503 and on
     * transport errors.
     * @throws FatalError when the server stays unreachable or the
     *         response is unparseable (an HTTP error status is NOT a
     *         throw — callers check response.status).
     */
    ClientResponse
    post(const std::string &path, const std::string &body,
         const std::string &contentType = "application/json",
         const std::map<std::string, std::string> &extraHeaders = {});

    /** GET @p path. Throws and retries like post(). @p extraHeaders
     *  lets callers send conditionals (If-None-Match). */
    ClientResponse
    get(const std::string &path,
        const std::map<std::string, std::string> &extraHeaders = {});

    /**
     * Convenience: POST /check for @p test_text under @p variants and
     * return the response (body: one JSONL verdict record per variant
     * on success; {"error": ...} otherwise).
     */
    ClientResponse check(const std::string &test_text,
                         const std::vector<std::string> &variants,
                         int sleepMs = 0, std::int64_t deadlineMs = 0,
                         std::int64_t maxCandidates = 0);

    /** True when GET /healthz answers 200 (no throw on failure). */
    bool healthy();

  private:
    /** The one place requests are serialised. */
    std::string
    buildRequest(const char *method, const std::string &path,
                 const std::string &body, const std::string &contentType,
                 const std::map<std::string, std::string> &extraHeaders)
        const;

    ClientResponse roundTrip(const std::string &request);

    /** roundTrip plus the retry loop. */
    ClientResponse roundTripWithRetry(const std::string &request);

    int connectFd() const;
    void dropPooled();

    std::string _host;
    std::uint16_t _port;
    int _timeoutSeconds;
    RetryPolicy _retry;
    bool _keepAlive = false;
    int _fd = -1;  //!< pooled keep-alive connection (-1 = none)
};

} // namespace rex::server

#endif // REX_SERVER_CLIENT_HH
