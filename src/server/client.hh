/**
 * @file
 * Blocking HTTP client for rexd — the wire protocol's only other C++
 * implementation (examples/rex_client.cpp and the integration test
 * both drive the daemon through this class, so a protocol change
 * breaks loudly in exactly two places: service.cc and here).
 *
 * One request per connection, matching the server's Connection: close
 * policy. Request bodies for /check are built by checkRequestJson(), a
 * tiny serialiser kept next to the client so the JSON the server
 * parses and the JSON clients emit cannot drift apart silently.
 */

#ifndef REX_SERVER_CLIENT_HH
#define REX_SERVER_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rex::server {

/** One response as seen by the client. */
struct ClientResponse {
    int status = 0;
    std::map<std::string, std::string> headers;  //!< keys lowercased
    std::string body;
};

/** Serialise a /check request body. @p sleepMs <= 0 omits the hook. */
std::string checkRequestJson(const std::string &test_text,
                             const std::vector<std::string> &variants,
                             int sleepMs = 0);

/** A blocking one-request-per-connection HTTP client. */
class Client
{
  public:
    Client(std::string host, std::uint16_t port, int timeoutSeconds = 30)
        : _host(std::move(host)), _port(port),
          _timeoutSeconds(timeoutSeconds)
    {}

    /**
     * POST @p body to @p path.
     * @throws FatalError when the server is unreachable or the
     *         response is unparseable (an HTTP error status is NOT a
     *         throw — callers check response.status).
     */
    ClientResponse post(const std::string &path, const std::string &body,
                        const std::string &contentType =
                            "application/json");

    /** GET @p path. Throws like post(). */
    ClientResponse get(const std::string &path);

    /**
     * Convenience: POST /check for @p test_text under @p variants and
     * return the response (body: one JSONL verdict record per variant
     * on success; {"error": ...} otherwise).
     */
    ClientResponse check(const std::string &test_text,
                         const std::vector<std::string> &variants,
                         int sleepMs = 0);

    /** True when GET /healthz answers 200 (no throw on failure). */
    bool healthy();

  private:
    ClientResponse roundTrip(const std::string &request);

    std::string _host;
    std::uint16_t _port;
    int _timeoutSeconds;
};

} // namespace rex::server

#endif // REX_SERVER_CLIENT_HH
