#include "server/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/results.hh"
#include "server/http.hh"

namespace rex::server {

std::string
checkRequestJson(const std::string &test_text,
                 const std::vector<std::string> &variants, int sleepMs)
{
    std::string body =
        "{\"test\":\"" + engine::jsonEscape(test_text) + "\"";
    if (!variants.empty()) {
        body += ",\"variants\":[";
        for (std::size_t i = 0; i < variants.size(); ++i) {
            if (i)
                body += ",";
            body += "\"" + engine::jsonEscape(variants[i]) + "\"";
        }
        body += "]";
    }
    if (sleepMs > 0)
        body += format(",\"sleep_ms\":%d", sleepMs);
    body += "}";
    return body;
}

ClientResponse
Client::roundTrip(const std::string &request)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(std::string("client socket: ") + std::strerror(errno));

    if (_timeoutSeconds > 0) {
        struct timeval tv;
        tv.tv_sec = _timeoutSeconds;
        tv.tv_usec = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(_port);
    if (::inet_pton(AF_INET, _host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        fatal("bad server address '" + _host + "'");
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        std::string why = std::strerror(errno);
        ::close(fd);
        fatal(format("cannot connect to %s:%u: %s", _host.c_str(), _port,
                     why.c_str()));
    }

    if (!sendAll(fd, request.data(), request.size())) {
        ::close(fd);
        fatal("connection lost while sending request");
    }

    // The server closes after one response: read to EOF.
    std::string raw;
    char chunk[4096];
    while (true) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            break;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::string why = (errno == EAGAIN || errno == EWOULDBLOCK)
                ? "timed out waiting for response"
                : std::strerror(errno);
            ::close(fd);
            fatal("client recv: " + why);
        }
        raw.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    std::size_t header_end = raw.find("\r\n\r\n");
    std::size_t body_start = header_end + 4;
    if (header_end == std::string::npos) {
        header_end = raw.find("\n\n");
        body_start = header_end + 2;
    }
    if (header_end == std::string::npos)
        fatal("malformed response: no header terminator");

    ClientResponse response;
    std::vector<std::string> lines =
        split(raw.substr(0, header_end), '\n');
    std::vector<std::string> status_parts =
        splitWhitespace(trim(lines.empty() ? "" : lines[0]));
    std::int64_t status = 0;
    if (status_parts.size() < 2 ||
            !startsWith(status_parts[0], "HTTP/") ||
            !parseInteger(status_parts[1], status)) {
        fatal("malformed response status line");
    }
    response.status = static_cast<int>(status);
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::string line = trim(lines[i]);
        auto colon = line.find(':');
        if (line.empty() || colon == std::string::npos)
            continue;
        response.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }
    response.body = raw.substr(body_start);

    auto length = response.headers.find("content-length");
    if (length != response.headers.end()) {
        std::int64_t expected;
        if (parseInteger(length->second, expected) &&
                response.body.size() !=
                    static_cast<std::size_t>(expected)) {
            fatal(format("truncated response body: %zu of %lld bytes",
                         response.body.size(),
                         static_cast<long long>(expected)));
        }
    }
    return response;
}

ClientResponse
Client::post(const std::string &path, const std::string &body,
             const std::string &contentType)
{
    std::string request = format("POST %s HTTP/1.1\r\n", path.c_str());
    request += format("Host: %s:%u\r\n", _host.c_str(), _port);
    request += "Content-Type: " + contentType + "\r\n";
    request += format("Content-Length: %zu\r\n", body.size());
    request += "Connection: close\r\n\r\n";
    request += body;
    return roundTrip(request);
}

ClientResponse
Client::get(const std::string &path)
{
    std::string request = format("GET %s HTTP/1.1\r\n", path.c_str());
    request += format("Host: %s:%u\r\n", _host.c_str(), _port);
    request += "Connection: close\r\n\r\n";
    return roundTrip(request);
}

ClientResponse
Client::check(const std::string &test_text,
              const std::vector<std::string> &variants, int sleepMs)
{
    return post("/check",
                checkRequestJson(test_text, variants, sleepMs));
}

bool
Client::healthy()
{
    try {
        return get("/healthz").status == 200;
    } catch (const FatalError &) {
        return false;
    }
}

} // namespace rex::server
