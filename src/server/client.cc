#include "server/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/results.hh"
#include "server/http.hh"

namespace rex::server {

std::string
checkRequestJson(const std::string &test_text,
                 const std::vector<std::string> &variants, int sleepMs,
                 std::int64_t deadlineMs, std::int64_t maxCandidates,
                 bool resumable, const std::string &resume)
{
    std::string body =
        "{\"test\":\"" + engine::jsonEscape(test_text) + "\"";
    if (!variants.empty()) {
        body += ",\"variants\":[";
        for (std::size_t i = 0; i < variants.size(); ++i) {
            if (i)
                body += ",";
            body += "\"" + engine::jsonEscape(variants[i]) + "\"";
        }
        body += "]";
    }
    if (sleepMs > 0)
        body += format(",\"sleep_ms\":%d", sleepMs);
    if (deadlineMs > 0) {
        body += format(",\"deadline_ms\":%lld",
                       static_cast<long long>(deadlineMs));
    }
    if (maxCandidates > 0) {
        body += format(",\"max_candidates\":%lld",
                       static_cast<long long>(maxCandidates));
    }
    if (resumable)
        body += ",\"resumable\":true";
    if (!resume.empty())
        body += ",\"resume\":\"" + engine::jsonEscape(resume) + "\"";
    body += "}";
    return body;
}

int
retryDelayMs(const RetryPolicy &policy, int attempt, int retryAfterSeconds)
{
    // Capped exponential: initialDelayMs * 2^(attempt-1).
    std::int64_t delay = policy.initialDelayMs;
    for (int i = 1; i < attempt && delay < policy.maxDelayMs; ++i)
        delay *= 2;
    delay = std::min<std::int64_t>(delay, policy.maxDelayMs);
    // Deterministic +-25% jitter (splitmix64 over seed + attempt), so
    // synchronized clients fan out but tests stay reproducible.
    std::uint64_t z = policy.jitterSeed + static_cast<std::uint64_t>(
                                              attempt) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const std::int64_t quarter = delay / 4;
    if (quarter > 0) {
        delay += static_cast<std::int64_t>(
                     z % (2 * static_cast<std::uint64_t>(quarter) + 1)) -
                 quarter;
    }
    // The server's Retry-After is a floor, never shortened by jitter.
    if (retryAfterSeconds > 0) {
        delay = std::max<std::int64_t>(
            delay, static_cast<std::int64_t>(retryAfterSeconds) * 1000);
    }
    return static_cast<int>(delay);
}

Client::~Client()
{
    dropPooled();
}

void
Client::setRetryPolicy(RetryPolicy policy)
{
    _retry = policy;
    setKeepAlive(policy.keepAlive);
}

void
Client::setKeepAlive(bool keepAlive)
{
    _keepAlive = keepAlive;
    if (!keepAlive)
        dropPooled();
}

void
Client::dropPooled()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

int
Client::connectFd() const
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(std::string("client socket: ") + std::strerror(errno));

    if (_timeoutSeconds > 0) {
        struct timeval tv;
        tv.tv_sec = _timeoutSeconds;
        tv.tv_usec = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    int yes = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(_port);
    if (::inet_pton(AF_INET, _host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        fatal("bad server address '" + _host + "'");
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        std::string why = std::strerror(errno);
        ::close(fd);
        fatal(format("cannot connect to %s:%u: %s", _host.c_str(), _port,
                     why.c_str()));
    }
    return fd;
}

std::string
Client::buildRequest(
    const char *method, const std::string &path, const std::string &body,
    const std::string &contentType,
    const std::map<std::string, std::string> &extraHeaders) const
{
    std::string request =
        format("%s %s HTTP/1.1\r\n", method, path.c_str());
    request += format("Host: %s:%u\r\n", _host.c_str(), _port);
    for (const auto &[key, value] : extraHeaders)
        request += key + ": " + value + "\r\n";
    if (!body.empty() || std::strcmp(method, "POST") == 0) {
        request += "Content-Type: " + contentType + "\r\n";
        request += format("Content-Length: %zu\r\n", body.size());
    }
    request += _keepAlive ? "Connection: keep-alive\r\n\r\n"
                          : "Connection: close\r\n\r\n";
    request += body;
    return request;
}

namespace {

/** Read exactly @p n more bytes into @p out; false on EOF/error. */
bool
recvExact(int fd, std::string &out, std::size_t n, std::string &why)
{
    char chunk[4096];
    while (n > 0) {
        ssize_t got = ::recv(
            fd, chunk, std::min(n, sizeof(chunk)), 0);
        if (got == 0) {
            why = "connection closed mid-response";
            return false;
        }
        if (got < 0) {
            if (errno == EINTR)
                continue;
            why = (errno == EAGAIN || errno == EWOULDBLOCK)
                      ? "timed out waiting for response"
                      : std::strerror(errno);
            return false;
        }
        out.append(chunk, static_cast<std::size_t>(got));
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

/**
 * Read one framed response off @p fd: headers, then Content-Length
 * body (304/204 are body-less). With no Content-Length and no
 * keep-alive the body runs to EOF, matching pre-keep-alive servers.
 * @return false with @p why set on transport failure (retryable);
 *         fatal()s on protocol violations (not retryable).
 */
bool
readResponse(int fd, ClientResponse &out, std::string &why)
{
    std::string raw;
    std::size_t header_end = std::string::npos;
    std::size_t body_start = 0;
    char chunk[4096];
    while (true) {
        std::size_t scan = raw.size() >= 3 ? raw.size() - 3 : 0;
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0) {
            why = raw.empty() ? "connection closed before response"
                              : "connection closed mid-response";
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            why = (errno == EAGAIN || errno == EWOULDBLOCK)
                      ? "timed out waiting for response"
                      : std::strerror(errno);
            return false;
        }
        raw.append(chunk, static_cast<std::size_t>(n));
        std::size_t crlf = raw.find("\r\n\r\n", scan);
        std::size_t lf = raw.find("\n\n", scan);
        header_end = std::min(crlf, lf);
        if (header_end != std::string::npos) {
            body_start = header_end + (header_end == crlf ? 4 : 2);
            break;
        }
        if (raw.size() > 256 * 1024)
            fatal("malformed response: no header terminator");
    }

    ClientResponse response;
    std::vector<std::string> lines =
        split(raw.substr(0, header_end), '\n');
    std::vector<std::string> status_parts =
        splitWhitespace(trim(lines.empty() ? "" : lines[0]));
    std::int64_t status = 0;
    if (status_parts.size() < 2 ||
            !startsWith(status_parts[0], "HTTP/") ||
            !parseInteger(status_parts[1], status)) {
        fatal("malformed response status line");
    }
    response.status = static_cast<int>(status);
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::string line = trim(lines[i]);
        auto colon = line.find(':');
        if (line.empty() || colon == std::string::npos)
            continue;
        response.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }
    response.body = raw.substr(body_start);

    const bool bodyless =
        response.status == 204 || response.status == 304;
    auto length = response.headers.find("content-length");
    if (bodyless) {
        response.body.clear();
    } else if (length != response.headers.end()) {
        std::int64_t expected;
        if (!parseInteger(length->second, expected) || expected < 0)
            fatal("malformed Content-Length in response");
        if (response.body.size() <
                static_cast<std::size_t>(expected)) {
            if (!recvExact(fd, response.body,
                           static_cast<std::size_t>(expected) -
                               response.body.size(),
                           why)) {
                return false;
            }
        } else {
            // Keep-alive: anything past Content-Length belongs to the
            // next response; this client never pipelines, so it is a
            // protocol violation.
            if (response.body.size() >
                    static_cast<std::size_t>(expected)) {
                fatal(format(
                    "overlong response body: %zu of %lld bytes",
                    response.body.size(),
                    static_cast<long long>(expected)));
            }
        }
    } else {
        // No Content-Length: body runs to EOF (Connection: close
        // framing).
        while (true) {
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n == 0)
                break;
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                why = (errno == EAGAIN || errno == EWOULDBLOCK)
                          ? "timed out waiting for response"
                          : std::strerror(errno);
                return false;
            }
            response.body.append(chunk, static_cast<std::size_t>(n));
        }
    }
    out = std::move(response);
    return true;
}

} // namespace

ClientResponse
Client::roundTrip(const std::string &request)
{
    // A pooled connection may have been closed by the server (idle
    // timeout, restart) since the last response: that surfaces as a
    // send failure or EOF-before-status here, and earns exactly one
    // clean reconnect that does not consume a retry attempt. Fresh
    // connections fail for real.
    bool reused = _keepAlive && _fd >= 0;
    while (true) {
        if (_fd < 0)
            _fd = connectFd();
        std::string why;
        ClientResponse response;
        bool ok = sendAll(_fd, request.data(), request.size());
        if (!ok)
            why = "connection lost while sending request";
        else
            ok = readResponse(_fd, response, why);
        if (ok) {
            auto connection = response.headers.find("connection");
            bool server_closes =
                connection != response.headers.end() &&
                toLower(connection->second).find("close") !=
                    std::string::npos;
            if (!_keepAlive || server_closes)
                dropPooled();
            return response;
        }
        dropPooled();
        if (reused) {
            reused = false;
            continue;
        }
        fatal("client transport: " + why);
    }
}

ClientResponse
Client::roundTripWithRetry(const std::string &request)
{
    const auto start = std::chrono::steady_clock::now();
    const int attempts = std::max(1, _retry.maxAttempts);
    // True when sleeping `delay` more milliseconds would overrun the
    // total-attempt deadline — give up and surface the last failure.
    auto outOfBudget = [&](int delay) {
        if (_retry.totalDeadlineMs <= 0)
            return false;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        return elapsed + delay > _retry.totalDeadlineMs;
    };
    for (int attempt = 1;; ++attempt) {
        int delay = 0;
        try {
            ClientResponse response = roundTrip(request);
            // A 200 whose body reports a worker crash is retryable
            // when the policy opts in: the respawned worker gets a
            // fresh chance. Quarantined is final — the server will
            // answer the same without running anything, so retrying
            // only burns attempts (and the check below keeps a record
            // mentioning both from looping: Quarantined wins).
            const bool crashedBody =
                _retry.retryCrashed && response.status == 200 &&
                response.body.find("\"verdict\":\"CrashedWorker\"") !=
                    std::string::npos &&
                response.body.find("\"verdict\":\"Quarantined\"") ==
                    std::string::npos;
            if ((response.status != 503 && !crashedBody) ||
                    attempt == attempts) {
                return response;
            }
            // Shed by backpressure: honour Retry-After as a floor on
            // the backoff.
            int retryAfterSeconds = 0;
            auto header = response.headers.find("retry-after");
            std::int64_t parsed = 0;
            if (header != response.headers.end() &&
                    parseInteger(header->second, parsed)) {
                retryAfterSeconds = static_cast<int>(parsed);
            }
            delay = retryDelayMs(_retry, attempt, retryAfterSeconds);
            if (outOfBudget(delay))
                return response;
        } catch (const FatalError &) {
            // Transport failure (refused, reset, timed out): retryable.
            if (attempt == attempts)
                throw;
            delay = retryDelayMs(_retry, attempt, 0);
            if (outOfBudget(delay))
                throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
}

ClientResponse
Client::post(const std::string &path, const std::string &body,
             const std::string &contentType,
             const std::map<std::string, std::string> &extraHeaders)
{
    return roundTripWithRetry(
        buildRequest("POST", path, body, contentType, extraHeaders));
}

ClientResponse
Client::get(const std::string &path,
            const std::map<std::string, std::string> &extraHeaders)
{
    return roundTripWithRetry(
        buildRequest("GET", path, "", "application/json", extraHeaders));
}

ClientResponse
Client::check(const std::string &test_text,
              const std::vector<std::string> &variants, int sleepMs,
              std::int64_t deadlineMs, std::int64_t maxCandidates)
{
    return post("/check",
                checkRequestJson(test_text, variants, sleepMs,
                                 deadlineMs, maxCandidates));
}

bool
Client::healthy()
{
    try {
        return get("/healthz").status == 200;
    } catch (const FatalError &) {
        return false;
    }
}

} // namespace rex::server
