#include "server/peer.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <condition_variable>
#include <thread>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/cache.hh"
#include "engine/faultinject.hh"
#include "engine/governor.hh"
#include "engine/results.hh"
#include "server/client.hh"
#include "server/envelope.hh"
#include "server/json.hh"

namespace rex::server {

namespace {

/** splitmix64 (the fault injector's draw function): the audit sampler
 *  uses the same deterministic sequence discipline — the k-th filled
 *  task is audited iff the k-th draw maps below auditRate. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

bool
parsePeerEndpoint(const std::string &endpoint, std::string &host,
                  std::uint16_t &port)
{
    const std::size_t colon = endpoint.find_last_of(':');
    if (colon == std::string::npos || colon == 0 ||
            colon + 1 == endpoint.size())
        return false;
    std::int64_t parsed = 0;
    if (!parseInteger(endpoint.substr(colon + 1), parsed) || parsed <= 0 ||
            parsed > 65535)
        return false;
    host = endpoint.substr(0, colon);
    port = static_cast<std::uint16_t>(parsed);
    return true;
}

PeerPool::PeerPool(PeerConfig config, Metrics *metrics)
    : _config(std::move(config)), _metrics(metrics)
{
    for (const std::string &endpoint : _config.endpoints) {
        Peer peer;
        if (!parsePeerEndpoint(endpoint, peer.host, peer.port)) {
            warn("ignoring malformed peer endpoint '" + endpoint +
                 "' (want host:port)");
            continue;
        }
        _peers.push_back(std::move(peer));
    }
    if (_metrics) {
        _metrics->peersConfigured.store(
            static_cast<std::int64_t>(_peers.size()));
        _metrics->peersHealthy.store(
            static_cast<std::int64_t>(_peers.size()));
    }
}

bool
PeerPool::peerEligible(const Peer &peer,
                       std::chrono::steady_clock::time_point now) const
{
    // Lie-grade quarantine is a hard bench: no half-open probing, the
    // peer sits out the whole sentence (then re-enters on probation).
    if (peer.quarantinedNow && now < peer.quarantineUntil)
        return false;
    // Half-open probing: a down peer past the retry deadline is
    // eligible again, and the next dispatch to it is the health probe.
    return !peer.down ||
           now - peer.downSince >=
               std::chrono::seconds(_config.healthRetrySeconds);
}

void
PeerPool::sweepQuarantine(std::chrono::steady_clock::time_point now)
{
    std::lock_guard<std::mutex> lock(_healthMutex);
    for (Peer &peer : _peers) {
        if (!peer.quarantinedNow || now < peer.quarantineUntil)
            continue;
        peer.quarantinedNow = false;
        peer.probationLeft = std::max(1, _config.reinstateProbes);
        inform(format("peer %s:%u quarantine expired; on probation for "
                    "%d clean audits",
                    peer.host.c_str(), peer.port, peer.probationLeft));
    }
    refreshQuarantineGauge();
}

void
PeerPool::markDown(std::size_t peerIndex)
{
    std::lock_guard<std::mutex> lock(_healthMutex);
    _peers[peerIndex].down = true;
    _peers[peerIndex].downSince = std::chrono::steady_clock::now();
}

void
PeerPool::markUp(std::size_t peerIndex)
{
    std::lock_guard<std::mutex> lock(_healthMutex);
    _peers[peerIndex].down = false;
}

namespace {

/** Decay @p peer's reputation scores to now (lazy exponential decay,
 *  half-life @p halfLifeSeconds). Caller holds the health mutex. */
void
decayScores(double &lieScore, double &mismatchScore,
            std::chrono::steady_clock::time_point &touched,
            std::chrono::steady_clock::time_point now,
            int halfLifeSeconds)
{
    if (touched == std::chrono::steady_clock::time_point{}) {
        touched = now;
        return;
    }
    const double dt =
        std::chrono::duration<double>(now - touched).count();
    if (dt <= 0.0)
        return;
    const double factor =
        std::pow(0.5, dt / std::max(1, halfLifeSeconds));
    lieScore *= factor;
    mismatchScore *= factor;
    touched = now;
}

} // namespace

void
PeerPool::quarantinePeer(Peer &peer,
                         std::chrono::steady_clock::time_point now)
{
    peer.quarantineEpisodes = std::min(peer.quarantineEpisodes + 1, 64);
    const int shift = std::min(peer.quarantineEpisodes - 1, 6);
    const std::int64_t seconds =
        static_cast<std::int64_t>(
            std::max(1, _config.lieQuarantineSeconds))
        << shift;
    peer.quarantinedNow = true;
    peer.quarantineUntil = now + std::chrono::seconds(seconds);
    peer.probationLeft = 0;
    warn(format("peer %s:%u quarantined for %" PRId64
                "s (episode %d)",
                peer.host.c_str(), peer.port, seconds,
                peer.quarantineEpisodes));
}

void
PeerPool::refreshQuarantineGauge()
{
    if (!_metrics)
        return;
    std::int64_t count = 0;
    for (const Peer &peer : _peers) {
        if (peer.quarantinedNow)
            ++count;
    }
    _metrics->peersQuarantined.store(count);
}

void
PeerPool::chargeDigestMismatch(std::size_t peerIndex,
                               const std::string &why)
{
    if (_metrics)
        ++_metrics->shardDigestMismatches;
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(_healthMutex);
    Peer &peer = _peers[peerIndex];
    warn(format("peer %s:%u answer rejected: %s", peer.host.c_str(),
                peer.port, why.c_str()));
    decayScores(peer.lieScore, peer.mismatchScore, peer.scoreTouched,
                now, _config.reputationHalfLifeSeconds);
    peer.mismatchScore += 1.0;
    // Three strikes inside a half-life: persistent envelope failures
    // (a stale binary, a flaky NIC, a corrupted node) are handled like
    // a liar, not like a crasher.
    if (peer.mismatchScore >= 3.0) {
        peer.mismatchScore = 0.0;
        quarantinePeer(peer, now);
    }
    refreshQuarantineGauge();
}

void
PeerPool::chargeLie(std::size_t peerIndex)
{
    if (_metrics)
        ++_metrics->peerLiesTotal;
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(_healthMutex);
    Peer &peer = _peers[peerIndex];
    warn(format("peer %s:%u served an audit-confirmed wrong answer",
                peer.host.c_str(), peer.port));
    decayScores(peer.lieScore, peer.mismatchScore, peer.scoreTouched,
                now, _config.reputationHalfLifeSeconds);
    peer.lieScore += 1.0;
    quarantinePeer(peer, now);
    refreshQuarantineGauge();
}

void
PeerPool::creditCleanAudit(std::size_t peerIndex)
{
    std::lock_guard<std::mutex> lock(_healthMutex);
    Peer &peer = _peers[peerIndex];
    if (peer.probationLeft <= 0)
        return;
    if (--peer.probationLeft == 0) {
        inform(format("peer %s:%u reinstated after probation",
                    peer.host.c_str(), peer.port));
    }
}

bool
PeerPool::peerOnProbation(std::size_t peerIndex) const
{
    std::lock_guard<std::mutex> lock(_healthMutex);
    return _peers[peerIndex].probationLeft > 0;
}

void
PeerPool::recordRtt(std::size_t peerIndex, double millis)
{
    double ewma = 0.0;
    std::string endpoint;
    {
        std::lock_guard<std::mutex> lock(_healthMutex);
        Peer &peer = _peers[peerIndex];
        peer.rttEwmaMs = peer.rttValid
                             ? 0.8 * peer.rttEwmaMs + 0.2 * millis
                             : millis;
        peer.rttValid = true;
        ewma = peer.rttEwmaMs;
        endpoint = format("%s:%u", peer.host.c_str(), peer.port);
    }
    if (_metrics)
        _metrics->recordPeerRtt(peerIndex, endpoint, ewma);
}

int
PeerPool::effectiveHedgeMs() const
{
    if (_config.hedgeAfterMs >= 0)
        return _config.hedgeAfterMs;
    // Auto: hedge at 3x the mean observed RTT — late enough not to
    // stampede a healthy pool, early enough to cover a dying peer.
    double sum = 0.0;
    int samples = 0;
    {
        std::lock_guard<std::mutex> lock(_healthMutex);
        for (const Peer &peer : _peers) {
            if (peer.rttValid) {
                sum += peer.rttEwmaMs;
                ++samples;
            }
        }
    }
    if (samples == 0)
        return 2000;
    return std::clamp(static_cast<int>(3.0 * sum / samples), 250,
                      10000);
}

void
PeerPool::setLocalCompute(
    std::function<std::string(const std::string &)> compute)
{
    std::lock_guard<std::mutex> lock(_computeMutex);
    _localCompute = std::move(compute);
}

bool
PeerPool::hasLocalCompute() const
{
    std::lock_guard<std::mutex> lock(_computeMutex);
    return static_cast<bool>(_localCompute);
}

void
PeerPool::noteLocalFallback(std::uint64_t count)
{
    if (_metrics && count > 0) {
        _metrics->peerLocalFallbackTotal.fetch_add(
            count, std::memory_order_relaxed);
    }
}

std::size_t
PeerPool::healthy()
{
    const auto now = std::chrono::steady_clock::now();
    sweepQuarantine(now);
    std::size_t count = 0;
    {
        std::lock_guard<std::mutex> lock(_healthMutex);
        for (const Peer &peer : _peers) {
            if (peerEligible(peer, now))
                ++count;
        }
    }
    if (_metrics)
        _metrics->peersHealthy.store(static_cast<std::int64_t>(count));
    return count;
}

std::size_t
PeerPool::quarantined()
{
    std::lock_guard<std::mutex> lock(_healthMutex);
    std::size_t count = 0;
    for (const Peer &peer : _peers) {
        if (peer.quarantinedNow)
            ++count;
    }
    return count;
}

bool
PeerPool::available()
{
    if (healthy() > 0)
        return true;
    if (_metrics)
        ++_metrics->peerUnavailableTotal;
    return false;
}

std::uint64_t
PeerPool::shardsPerTask() const
{
    if (_config.shardsPerTask != 0)
        return std::max<std::uint64_t>(1, _config.shardsPerTask);
    // Auto: finer batches as the pool widens, so a wide pool is not
    // starved by coarse tasks; one peer gets the classic 64.
    const std::uint64_t peers =
        std::max<std::size_t>(1, _peers.size());
    return std::max<std::uint64_t>(8, 256 / (4 * peers));
}

std::uint64_t
PeerPool::minShardsToDistribute() const
{
    return std::max<std::uint64_t>(1, _config.minShards);
}

namespace {

/** Shared state of one runWireTasks() pump. */
struct Pump {
    enum class Status : std::uint8_t { Pending, InFlight, Done };

    std::mutex mutex;
    std::condition_variable ready;
    std::vector<Pump::Status> status;
    std::vector<std::chrono::steady_clock::time_point> startedAt;
    std::vector<bool> hedged;   //!< at most one hedge per task
    std::size_t done = 0;
    std::size_t liveWorkers = 0;
};

/** Capped exponential backoff before attempt @p attempt (1-based). */
int
backoffMs(const PeerConfig &config, int attempt)
{
    std::int64_t delay = config.backoffInitialMs;
    for (int i = 1; i < attempt && delay < config.backoffMaxMs; ++i)
        delay *= 2;
    return static_cast<int>(
        std::min<std::int64_t>(delay, config.backoffMaxMs));
}

bool
cancelled(const engine::CancelToken *cancel)
{
    return cancel && cancel->cancelled();
}

} // namespace

void
PeerPool::runWireTasks(const std::string &path,
                       std::vector<WireTask> &tasks,
                       const engine::CancelToken *cancel)
{
    if (tasks.empty() || _peers.empty())
        return;

    const auto now = std::chrono::steady_clock::now();
    sweepQuarantine(now);
    std::vector<std::size_t> eligible;
    {
        std::lock_guard<std::mutex> lock(_healthMutex);
        for (std::size_t i = 0; i < _peers.size(); ++i) {
            if (peerEligible(_peers[i], now))
                eligible.push_back(i);
        }
    }
    if (eligible.empty())
        return;

    const int hedgeMs = effectiveHedgeMs();

    Pump pump;
    pump.status.assign(tasks.size(), Pump::Status::Pending);
    pump.startedAt.resize(tasks.size());
    pump.hedged.assign(tasks.size(), false);
    pump.liveWorkers = eligible.size();

    // One worker per eligible peer: claim lowest-index pending tasks,
    // hedge the oldest straggler when idle, exit when the peer dies or
    // nothing is left to do.
    auto worker = [&](std::size_t peerIndex) {
        Client client(_peers[peerIndex].host, _peers[peerIndex].port,
                      _config.timeoutSeconds);
        client.setKeepAlive(true);

        bool peerDead = false;
        while (!peerDead) {
            std::size_t task = tasks.size();
            bool hedge = false;
            {
                std::unique_lock<std::mutex> lock(pump.mutex);
                while (true) {
                    if (pump.done == tasks.size() || cancelled(cancel))
                        return;
                    for (std::size_t i = 0; i < tasks.size(); ++i) {
                        if (pump.status[i] == Pump::Status::Pending) {
                            task = i;
                            break;
                        }
                    }
                    if (task != tasks.size()) {
                        pump.status[task] = Pump::Status::InFlight;
                        pump.startedAt[task] =
                            std::chrono::steady_clock::now();
                        break;
                    }
                    // Nothing pending: hedge the oldest in-flight task
                    // that has straggled past the hedge deadline (one
                    // hedge per task — enough to cover a dying peer
                    // without stampeding).
                    if (hedgeMs > 0) {
                        const auto hedge_now =
                            std::chrono::steady_clock::now();
                        std::size_t oldest = tasks.size();
                        for (std::size_t i = 0; i < tasks.size(); ++i) {
                            if (pump.status[i] != Pump::Status::InFlight ||
                                    pump.hedged[i])
                                continue;
                            if (hedge_now - pump.startedAt[i] <
                                    std::chrono::milliseconds(hedgeMs))
                                continue;
                            if (oldest == tasks.size() ||
                                    pump.startedAt[i] <
                                        pump.startedAt[oldest])
                                oldest = i;
                        }
                        if (oldest != tasks.size()) {
                            pump.hedged[oldest] = true;
                            task = oldest;
                            hedge = true;
                            break;
                        }
                    }
                    pump.ready.wait_for(lock,
                                        std::chrono::milliseconds(50));
                }
            }
            if (hedge && _metrics)
                ++_metrics->peerHedgesTotal;
            if (!hedge && _metrics)
                ++_metrics->peerDispatchTotal;

            // The attempt ladder: transport failures retry with capped
            // backoff; a 409 (incompatible job identity) or non-200
            // answer is peer-fatal immediately — retrying cannot
            // change a deliberate refusal.
            bool filled = false;
            for (int attempt = 1;
                 attempt <= std::max(1, _config.maxAttemptsPerPeer);
                 ++attempt) {
                if (cancelled(cancel))
                    break;
                if (attempt > 1) {
                    if (_metrics)
                        ++_metrics->peerRetriesTotal;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            backoffMs(_config, attempt - 1)));
                }
                ClientResponse response;
                bool transportOk = false;
                const auto attemptStart =
                    std::chrono::steady_clock::now();
                try {
                    if (engine::faultInjector().shouldFail(
                            engine::FaultPoint::PeerConnect) ||
                        engine::faultInjector().shouldFail(
                            engine::FaultPoint::PeerSend)) {
                        // Injected connect/send failure: the request
                        // never reaches the peer.
                    } else {
                        response = client.post(path, tasks[task].body);
                        transportOk = true;
                    }
                } catch (const FatalError &) {
                    // Connect refused / reset / timeout.
                }
                if (transportOk &&
                        engine::faultInjector().shouldFail(
                            engine::FaultPoint::PeerRecv)) {
                    // Injected receive failure: the peer answered but
                    // the response is lost pre-parse. From here on it
                    // is indistinguishable from a transport failure —
                    // if the task is re-dispatched and both answers
                    // eventually land, first-fill-wins dedup keeps
                    // exactly one.
                    transportOk = false;
                }
                if (!transportOk)
                    continue;
                if (response.status != 200) {
                    peerDead = true;  // deliberate refusal (409, ...)
                    break;
                }

                // Verify the integrity envelope before anything can
                // merge: a digest mismatch, alien revision, or wrong
                // program id is counted and charged, never merged —
                // the attempt ladder treats it like a failed try
                // (transient corruption retries; a persistently
                // broken peer exhausts the ladder and is re-
                // dispatched around).
                std::string payload;
                std::string envError;
                if (!openShardEnvelope(response.body,
                                       tasks[task].expectProgram,
                                       engine::kModelRevision, payload,
                                       envError)) {
                    chargeDigestMismatch(peerIndex, envError);
                    continue;
                }
                recordRtt(peerIndex,
                          std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() -
                              attemptStart)
                              .count());

                {
                    std::lock_guard<std::mutex> lock(pump.mutex);
                    if (pump.status[task] != Pump::Status::Done) {
                        tasks[task].response = std::move(payload);
                        tasks[task].filled = true;
                        tasks[task].filledBy =
                            static_cast<int>(peerIndex);
                        pump.status[task] = Pump::Status::Done;
                        ++pump.done;
                    } else if (_metrics) {
                        ++_metrics->peerDedupDroppedTotal;
                    }
                }
                pump.ready.notify_all();
                filled = true;
                break;
            }

            if (!filled) {
                if (!hedge) {
                    // Put the task back for a surviving peer; the
                    // checker's local top-up covers the case where
                    // none remains.
                    std::lock_guard<std::mutex> lock(pump.mutex);
                    if (pump.status[task] == Pump::Status::InFlight) {
                        pump.status[task] = Pump::Status::Pending;
                        if (_metrics)
                            ++_metrics->peerRedispatchTotal;
                    }
                }
                pump.ready.notify_all();
                if (!cancelled(cancel)) {
                    peerDead = true;
                    if (_metrics)
                        ++_metrics->peerFailuresTotal;
                    markDown(peerIndex);
                }
                if (cancelled(cancel))
                    return;
            } else if (!hedge) {
                markUp(peerIndex);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(eligible.size());
    for (std::size_t peerIndex : eligible)
        threads.emplace_back(worker, peerIndex);
    for (std::thread &thread : threads)
        thread.join();

    auditTasks(path, tasks, cancel);
    healthy();  // refresh the gauges after the dust settles
}

void
PeerPool::auditTasks(const std::string &path,
                     std::vector<WireTask> &tasks,
                     const engine::CancelToken *cancel)
{
    if (cancelled(cancel))
        return;
    const double rate =
        std::clamp(_config.auditRate, 0.0, 1.0);
    std::function<std::string(const std::string &)> local;
    {
        std::lock_guard<std::mutex> lock(_computeMutex);
        local = _localCompute;
    }

    // Sample sequentially in task order so the audit sequence is a
    // pure function of (auditSeed, fill count), like the fault
    // injector's draws. A probation peer's fills are always audited.
    std::vector<std::size_t> picked;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (!tasks[i].filled || tasks[i].filledBy < 0)
            continue;
        bool audit = peerOnProbation(
            static_cast<std::size_t>(tasks[i].filledBy));
        if (!audit && rate > 0.0) {
            const std::uint64_t k =
                _auditCounter.fetch_add(1, std::memory_order_relaxed);
            const double draw =
                static_cast<double>(
                    splitmix64(_config.auditSeed + k) >> 11) *
                0x1.0p-53;
            audit = draw < rate;
        }
        if (audit)
            picked.push_back(i);
    }
    if (picked.empty())
        return;

    // Auditor choice: the lowest-index eligible peer that is neither
    // the filler nor itself under suspicion; the coordinator's own
    // compute hook otherwise.
    auto pickAuditor = [&](std::size_t filler) -> int {
        const auto now = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> lock(_healthMutex);
        for (std::size_t i = 0; i < _peers.size(); ++i) {
            if (i == filler)
                continue;
            const Peer &peer = _peers[i];
            if (peer.probationLeft > 0)
                continue;
            if (!peerEligible(peer, now))
                continue;
            return static_cast<int>(i);
        }
        return -1;
    };

    std::atomic<std::size_t> next{0};
    auto auditWorker = [&]() {
        while (true) {
            const std::size_t slot =
                next.fetch_add(1, std::memory_order_relaxed);
            if (slot >= picked.size() || cancelled(cancel))
                return;
            WireTask &task = tasks[picked[slot]];
            const std::size_t filler =
                static_cast<std::size_t>(task.filledBy);

            std::string auditPayload;
            int auditor = pickAuditor(filler);
            if (auditor >= 0) {
                const std::size_t who =
                    static_cast<std::size_t>(auditor);
                try {
                    Client client(_peers[who].host, _peers[who].port,
                                  _config.timeoutSeconds);
                    ClientResponse response =
                        client.post(path, task.body);
                    if (response.status == 200) {
                        std::string envError;
                        if (!openShardEnvelope(
                                response.body, task.expectProgram,
                                engine::kModelRevision, auditPayload,
                                envError))
                            chargeDigestMismatch(who, envError);
                    }
                } catch (const FatalError &) {
                    // Auditor unreachable; fall through to local.
                }
            }
            bool localTruth = false;
            if (auditPayload.empty() && local) {
                auditPayload = local(task.body);
                localTruth = true;
                auditor = -1;
            }
            if (auditPayload.empty()) {
                if (_metrics)
                    ++_metrics->auditsFailed;
                continue;
            }

            if (auditPayload == task.response) {
                if (_metrics)
                    ++_metrics->auditsMatch;
                creditCleanAudit(filler);
                if (auditor >= 0)
                    creditCleanAudit(
                        static_cast<std::size_t>(auditor));
                continue;
            }

            // Divergence: someone is wrong. Local recompute is ground
            // truth — the coordinator's own engine cannot lie to it.
            if (_metrics)
                ++_metrics->auditsDivergence;
            std::string truth;
            if (localTruth)
                truth = auditPayload;
            else if (local)
                truth = local(task.body);

            if (truth.empty()) {
                // No local ground truth available: both answers are
                // suspect. Unfill the task — the caller's local
                // fallback recomputes it, which IS the ground truth —
                // and charge both parties a mismatch-grade strike.
                chargeDigestMismatch(
                    filler, "unresolved audit divergence");
                if (auditor >= 0) {
                    chargeDigestMismatch(
                        static_cast<std::size_t>(auditor),
                        "unresolved audit divergence");
                }
                task.filled = false;
                task.filledBy = -1;
                task.response.clear();
                continue;
            }

            if (task.response != truth) {
                chargeLie(filler);
                // The merge stream gets the truth: a lying peer costs
                // itself reputation, never the caller correctness.
                task.response = truth;
                task.filledBy = -1;
            } else {
                creditCleanAudit(filler);
            }
            if (auditor >= 0) {
                const std::size_t who =
                    static_cast<std::size_t>(auditor);
                if (auditPayload != truth)
                    chargeLie(who);
                else
                    creditCleanAudit(who);
            }
        }
    };

    const std::size_t auditThreads =
        std::min<std::size_t>(4, picked.size());
    std::vector<std::thread> auditors;
    auditors.reserve(auditThreads);
    for (std::size_t i = 0; i < auditThreads; ++i)
        auditors.emplace_back(auditWorker);
    for (std::thread &thread : auditors)
        thread.join();
}

namespace {

/** Render one /shard "check" request body for @p task under @p ctx. */
std::string
shardCheckBody(const engine::RangeJobContext &ctx,
               const engine::RangeTask &task)
{
    std::string body = "{\"kind\":\"check\",\"test\":\"";
    body += engine::jsonEscape(*ctx.testSource);
    body += "\",\"variant\":\"";
    body += engine::jsonEscape(*ctx.variantName);
    body += format("\",\"plan_target\":%" PRIu64
                   ",\"plan_size\":%" PRIu64
                   ",\"shard_begin\":%" PRIu64
                   ",\"shard_end\":%" PRIu64
                   ",\"offset\":%" PRIu64
                   ",\"fingerprint\":\"%016" PRIx64 "\"",
                   ctx.planTarget, ctx.planSize, task.shardBegin,
                   task.shardEnd, task.inShardOffset, ctx.fingerprint);
    if (ctx.deadlineMs > 0)
        body += format(",\"deadline_ms\":%" PRIu64, ctx.deadlineMs);
    body += "}";
    return body;
}

/** Non-negative integer member of @p root, with @p fallback. */
std::uint64_t
jsonU64(const JsonValue &root, const char *key, std::uint64_t fallback)
{
    const JsonValue *value = root.find(key);
    if (!value || !value->isInt() || value->integer < 0)
        return fallback;
    return static_cast<std::uint64_t>(value->integer);
}

/**
 * Parse a /shard "check" 200 body into @p out. False (task treated as
 * unfilled, finished locally) on malformed JSON, a peer that could not
 * plan, or a plan-size disagreement with @p ctx.
 */
bool
parseShardCheckResponse(const std::string &body,
                        const engine::RangeJobContext &ctx,
                        engine::RangePartial &out)
{
    JsonValue root;
    try {
        root = parseJson(body);
    } catch (const FatalError &) {
        return false;
    }
    if (!root.isObject())
        return false;
    const JsonValue *planned = root.find("planned");
    if (!planned || !planned->isBool() || !planned->boolean)
        return false;
    if (jsonU64(root, "plan_size", 0) != ctx.planSize)
        return false;

    const JsonValue *witnessed = root.find("witnessed");
    const JsonValue *completed = root.find("completed");
    out.witnessed = witnessed && witnessed->isBool() &&
                    witnessed->boolean;
    out.completed = completed && completed->isBool() &&
                    completed->boolean;
    out.nextShard = jsonU64(root, "next_shard", 0);
    out.nextOffset = jsonU64(root, "next_offset", 0);
    out.candidates = jsonU64(root, "candidates", 0);
    out.consistent = jsonU64(root, "consistent", 0);
    out.witnesses = jsonU64(root, "witnesses", 0);
    out.constrainedUnpredictable = jsonU64(root, "cu", 0);
    out.unknownSideEffects = jsonU64(root, "unknown", 0);
    if (const JsonValue *axiom = root.find("axiom")) {
        if (axiom->isString())
            out.forbiddingAxiom = axiom->string;
    }
    if (const JsonValue *cycle = root.find("cycle")) {
        if (cycle->isArray()) {
            for (const JsonValue &entry : cycle->array) {
                if (!entry.isInt() || entry.integer < 0 ||
                        entry.integer > 0xffffffffll)
                    return false;
                out.forbiddingCycle.push_back(
                    static_cast<std::uint32_t>(entry.integer));
            }
        }
    }
    return true;
}

} // namespace

void
PeerPool::runTasks(const engine::RangeJobContext &ctx,
                   std::vector<engine::RangeTask> &tasks)
{
    if (!ctx.testSource || !ctx.variantName)
        return;

    std::vector<WireTask> wire(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        wire[i].body = shardCheckBody(ctx, tasks[i]);
        wire[i].expectProgram = "shard-check:" + *ctx.variantName;
    }

    runWireTasks("/shard", wire, ctx.cancel);

    std::size_t unfilled = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (!wire[i].filled) {
            ++unfilled;
            continue;
        }
        engine::RangePartial partial;
        if (!parseShardCheckResponse(wire[i].response, ctx, partial)) {
            ++unfilled;
            continue;
        }
        tasks[i].result = std::move(partial);
        tasks[i].filled = true;
    }
    noteLocalFallback(unfilled);
}

} // namespace rex::server
