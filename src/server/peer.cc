#include "server/peer.hh"

#include <algorithm>
#include <cinttypes>
#include <condition_variable>
#include <thread>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/faultinject.hh"
#include "engine/governor.hh"
#include "engine/results.hh"
#include "server/client.hh"
#include "server/json.hh"

namespace rex::server {

bool
parsePeerEndpoint(const std::string &endpoint, std::string &host,
                  std::uint16_t &port)
{
    const std::size_t colon = endpoint.find_last_of(':');
    if (colon == std::string::npos || colon == 0 ||
            colon + 1 == endpoint.size())
        return false;
    std::int64_t parsed = 0;
    if (!parseInteger(endpoint.substr(colon + 1), parsed) || parsed <= 0 ||
            parsed > 65535)
        return false;
    host = endpoint.substr(0, colon);
    port = static_cast<std::uint16_t>(parsed);
    return true;
}

PeerPool::PeerPool(PeerConfig config, Metrics *metrics)
    : _config(std::move(config)), _metrics(metrics)
{
    for (const std::string &endpoint : _config.endpoints) {
        Peer peer;
        if (!parsePeerEndpoint(endpoint, peer.host, peer.port)) {
            warn("ignoring malformed peer endpoint '" + endpoint +
                 "' (want host:port)");
            continue;
        }
        _peers.push_back(std::move(peer));
    }
    if (_metrics) {
        _metrics->peersConfigured.store(
            static_cast<std::int64_t>(_peers.size()));
        _metrics->peersHealthy.store(
            static_cast<std::int64_t>(_peers.size()));
    }
}

bool
PeerPool::peerEligible(const Peer &peer,
                       std::chrono::steady_clock::time_point now) const
{
    // Half-open probing: a down peer past the retry deadline is
    // eligible again, and the next dispatch to it is the health probe.
    return !peer.down ||
           now - peer.downSince >=
               std::chrono::seconds(_config.healthRetrySeconds);
}

void
PeerPool::markDown(std::size_t peerIndex)
{
    std::lock_guard<std::mutex> lock(_healthMutex);
    _peers[peerIndex].down = true;
    _peers[peerIndex].downSince = std::chrono::steady_clock::now();
}

void
PeerPool::markUp(std::size_t peerIndex)
{
    std::lock_guard<std::mutex> lock(_healthMutex);
    _peers[peerIndex].down = false;
}

void
PeerPool::noteLocalFallback(std::uint64_t count)
{
    if (_metrics && count > 0) {
        _metrics->peerLocalFallbackTotal.fetch_add(
            count, std::memory_order_relaxed);
    }
}

std::size_t
PeerPool::healthy()
{
    const auto now = std::chrono::steady_clock::now();
    std::size_t count = 0;
    {
        std::lock_guard<std::mutex> lock(_healthMutex);
        for (const Peer &peer : _peers) {
            if (peerEligible(peer, now))
                ++count;
        }
    }
    if (_metrics)
        _metrics->peersHealthy.store(static_cast<std::int64_t>(count));
    return count;
}

bool
PeerPool::available()
{
    if (healthy() > 0)
        return true;
    if (_metrics)
        ++_metrics->peerUnavailableTotal;
    return false;
}

std::uint64_t
PeerPool::shardsPerTask() const
{
    return std::max<std::uint64_t>(1, _config.shardsPerTask);
}

std::uint64_t
PeerPool::minShardsToDistribute() const
{
    return std::max<std::uint64_t>(1, _config.minShards);
}

namespace {

/** Shared state of one runWireTasks() pump. */
struct Pump {
    enum class Status : std::uint8_t { Pending, InFlight, Done };

    std::mutex mutex;
    std::condition_variable ready;
    std::vector<Pump::Status> status;
    std::vector<std::chrono::steady_clock::time_point> startedAt;
    std::vector<bool> hedged;   //!< at most one hedge per task
    std::size_t done = 0;
    std::size_t liveWorkers = 0;
};

/** Capped exponential backoff before attempt @p attempt (1-based). */
int
backoffMs(const PeerConfig &config, int attempt)
{
    std::int64_t delay = config.backoffInitialMs;
    for (int i = 1; i < attempt && delay < config.backoffMaxMs; ++i)
        delay *= 2;
    return static_cast<int>(
        std::min<std::int64_t>(delay, config.backoffMaxMs));
}

bool
cancelled(const engine::CancelToken *cancel)
{
    return cancel && cancel->cancelled();
}

} // namespace

void
PeerPool::runWireTasks(const std::string &path,
                       std::vector<WireTask> &tasks,
                       const engine::CancelToken *cancel)
{
    if (tasks.empty() || _peers.empty())
        return;

    const auto now = std::chrono::steady_clock::now();
    std::vector<std::size_t> eligible;
    {
        std::lock_guard<std::mutex> lock(_healthMutex);
        for (std::size_t i = 0; i < _peers.size(); ++i) {
            if (peerEligible(_peers[i], now))
                eligible.push_back(i);
        }
    }
    if (eligible.empty())
        return;

    Pump pump;
    pump.status.assign(tasks.size(), Pump::Status::Pending);
    pump.startedAt.resize(tasks.size());
    pump.hedged.assign(tasks.size(), false);
    pump.liveWorkers = eligible.size();

    // One worker per eligible peer: claim lowest-index pending tasks,
    // hedge the oldest straggler when idle, exit when the peer dies or
    // nothing is left to do.
    auto worker = [&](std::size_t peerIndex) {
        Client client(_peers[peerIndex].host, _peers[peerIndex].port,
                      _config.timeoutSeconds);
        client.setKeepAlive(true);

        bool peerDead = false;
        while (!peerDead) {
            std::size_t task = tasks.size();
            bool hedge = false;
            {
                std::unique_lock<std::mutex> lock(pump.mutex);
                while (true) {
                    if (pump.done == tasks.size() || cancelled(cancel))
                        return;
                    for (std::size_t i = 0; i < tasks.size(); ++i) {
                        if (pump.status[i] == Pump::Status::Pending) {
                            task = i;
                            break;
                        }
                    }
                    if (task != tasks.size()) {
                        pump.status[task] = Pump::Status::InFlight;
                        pump.startedAt[task] =
                            std::chrono::steady_clock::now();
                        break;
                    }
                    // Nothing pending: hedge the oldest in-flight task
                    // that has straggled past the hedge deadline (one
                    // hedge per task — enough to cover a dying peer
                    // without stampeding).
                    if (_config.hedgeAfterMs > 0) {
                        const auto hedge_now =
                            std::chrono::steady_clock::now();
                        std::size_t oldest = tasks.size();
                        for (std::size_t i = 0; i < tasks.size(); ++i) {
                            if (pump.status[i] != Pump::Status::InFlight ||
                                    pump.hedged[i])
                                continue;
                            if (hedge_now - pump.startedAt[i] <
                                    std::chrono::milliseconds(
                                        _config.hedgeAfterMs))
                                continue;
                            if (oldest == tasks.size() ||
                                    pump.startedAt[i] <
                                        pump.startedAt[oldest])
                                oldest = i;
                        }
                        if (oldest != tasks.size()) {
                            pump.hedged[oldest] = true;
                            task = oldest;
                            hedge = true;
                            break;
                        }
                    }
                    pump.ready.wait_for(lock,
                                        std::chrono::milliseconds(50));
                }
            }
            if (hedge && _metrics)
                ++_metrics->peerHedgesTotal;
            if (!hedge && _metrics)
                ++_metrics->peerDispatchTotal;

            // The attempt ladder: transport failures retry with capped
            // backoff; a 409 (incompatible job identity) or non-200
            // answer is peer-fatal immediately — retrying cannot
            // change a deliberate refusal.
            bool filled = false;
            for (int attempt = 1;
                 attempt <= std::max(1, _config.maxAttemptsPerPeer);
                 ++attempt) {
                if (cancelled(cancel))
                    break;
                if (attempt > 1) {
                    if (_metrics)
                        ++_metrics->peerRetriesTotal;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            backoffMs(_config, attempt - 1)));
                }
                ClientResponse response;
                bool transportOk = false;
                try {
                    if (engine::faultInjector().shouldFail(
                            engine::FaultPoint::PeerConnect) ||
                        engine::faultInjector().shouldFail(
                            engine::FaultPoint::PeerSend)) {
                        // Injected connect/send failure: the request
                        // never reaches the peer.
                    } else {
                        response = client.post(path, tasks[task].body);
                        transportOk = true;
                    }
                } catch (const FatalError &) {
                    // Connect refused / reset / timeout.
                }
                if (transportOk &&
                        engine::faultInjector().shouldFail(
                            engine::FaultPoint::PeerRecv)) {
                    // Injected receive failure: the peer answered but
                    // the response is lost pre-parse. From here on it
                    // is indistinguishable from a transport failure —
                    // if the task is re-dispatched and both answers
                    // eventually land, first-fill-wins dedup keeps
                    // exactly one.
                    transportOk = false;
                }
                if (!transportOk)
                    continue;
                if (response.status != 200) {
                    peerDead = true;  // deliberate refusal (409, ...)
                    break;
                }
                {
                    std::lock_guard<std::mutex> lock(pump.mutex);
                    if (pump.status[task] != Pump::Status::Done) {
                        tasks[task].response = std::move(response.body);
                        tasks[task].filled = true;
                        pump.status[task] = Pump::Status::Done;
                        ++pump.done;
                    } else if (_metrics) {
                        ++_metrics->peerDedupDroppedTotal;
                    }
                }
                pump.ready.notify_all();
                filled = true;
                break;
            }

            if (!filled) {
                if (!hedge) {
                    // Put the task back for a surviving peer; the
                    // checker's local top-up covers the case where
                    // none remains.
                    std::lock_guard<std::mutex> lock(pump.mutex);
                    if (pump.status[task] == Pump::Status::InFlight) {
                        pump.status[task] = Pump::Status::Pending;
                        if (_metrics)
                            ++_metrics->peerRedispatchTotal;
                    }
                }
                pump.ready.notify_all();
                if (!cancelled(cancel)) {
                    peerDead = true;
                    if (_metrics)
                        ++_metrics->peerFailuresTotal;
                    markDown(peerIndex);
                }
                if (cancelled(cancel))
                    return;
            } else if (!hedge) {
                markUp(peerIndex);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(eligible.size());
    for (std::size_t peerIndex : eligible)
        threads.emplace_back(worker, peerIndex);
    for (std::thread &thread : threads)
        thread.join();
    healthy();  // refresh the gauge after the dust settles
}

namespace {

/** Render one /shard "check" request body for @p task under @p ctx. */
std::string
shardCheckBody(const engine::RangeJobContext &ctx,
               const engine::RangeTask &task)
{
    std::string body = "{\"kind\":\"check\",\"test\":\"";
    body += engine::jsonEscape(*ctx.testSource);
    body += "\",\"variant\":\"";
    body += engine::jsonEscape(*ctx.variantName);
    body += format("\",\"plan_target\":%" PRIu64
                   ",\"plan_size\":%" PRIu64
                   ",\"shard_begin\":%" PRIu64
                   ",\"shard_end\":%" PRIu64
                   ",\"offset\":%" PRIu64
                   ",\"fingerprint\":\"%016" PRIx64 "\"",
                   ctx.planTarget, ctx.planSize, task.shardBegin,
                   task.shardEnd, task.inShardOffset, ctx.fingerprint);
    if (ctx.deadlineMs > 0)
        body += format(",\"deadline_ms\":%" PRIu64, ctx.deadlineMs);
    body += "}";
    return body;
}

/** Non-negative integer member of @p root, with @p fallback. */
std::uint64_t
jsonU64(const JsonValue &root, const char *key, std::uint64_t fallback)
{
    const JsonValue *value = root.find(key);
    if (!value || !value->isInt() || value->integer < 0)
        return fallback;
    return static_cast<std::uint64_t>(value->integer);
}

/**
 * Parse a /shard "check" 200 body into @p out. False (task treated as
 * unfilled, finished locally) on malformed JSON, a peer that could not
 * plan, or a plan-size disagreement with @p ctx.
 */
bool
parseShardCheckResponse(const std::string &body,
                        const engine::RangeJobContext &ctx,
                        engine::RangePartial &out)
{
    JsonValue root;
    try {
        root = parseJson(body);
    } catch (const FatalError &) {
        return false;
    }
    if (!root.isObject())
        return false;
    const JsonValue *planned = root.find("planned");
    if (!planned || !planned->isBool() || !planned->boolean)
        return false;
    if (jsonU64(root, "plan_size", 0) != ctx.planSize)
        return false;

    const JsonValue *witnessed = root.find("witnessed");
    const JsonValue *completed = root.find("completed");
    out.witnessed = witnessed && witnessed->isBool() &&
                    witnessed->boolean;
    out.completed = completed && completed->isBool() &&
                    completed->boolean;
    out.nextShard = jsonU64(root, "next_shard", 0);
    out.nextOffset = jsonU64(root, "next_offset", 0);
    out.candidates = jsonU64(root, "candidates", 0);
    out.consistent = jsonU64(root, "consistent", 0);
    out.witnesses = jsonU64(root, "witnesses", 0);
    out.constrainedUnpredictable = jsonU64(root, "cu", 0);
    out.unknownSideEffects = jsonU64(root, "unknown", 0);
    if (const JsonValue *axiom = root.find("axiom")) {
        if (axiom->isString())
            out.forbiddingAxiom = axiom->string;
    }
    if (const JsonValue *cycle = root.find("cycle")) {
        if (cycle->isArray()) {
            for (const JsonValue &entry : cycle->array) {
                if (!entry.isInt() || entry.integer < 0 ||
                        entry.integer > 0xffffffffll)
                    return false;
                out.forbiddingCycle.push_back(
                    static_cast<std::uint32_t>(entry.integer));
            }
        }
    }
    return true;
}

} // namespace

void
PeerPool::runTasks(const engine::RangeJobContext &ctx,
                   std::vector<engine::RangeTask> &tasks)
{
    if (!ctx.testSource || !ctx.variantName)
        return;

    std::vector<WireTask> wire(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i)
        wire[i].body = shardCheckBody(ctx, tasks[i]);

    runWireTasks("/shard", wire, ctx.cancel);

    std::size_t unfilled = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (!wire[i].filled) {
            ++unfilled;
            continue;
        }
        engine::RangePartial partial;
        if (!parseShardCheckResponse(wire[i].response, ctx, partial)) {
            ++unfilled;
            continue;
        }
        tasks[i].result = std::move(partial);
        tasks[i].filled = true;
    }
    noteLocalFallback(unfilled);
}

} // namespace rex::server
