/**
 * @file
 * Minimal JSON parser for rexd request bodies.
 *
 * Parses the full JSON value grammar (objects, arrays, strings with
 * escapes, numbers, booleans, null) into an owning tree, with the
 * strictness a network-facing parser needs: a hard nesting-depth limit,
 * no trailing garbage, and integer-preserving number handling (values
 * that fit std::int64_t round-trip exactly; anything else is kept as a
 * double). Serialisation of *responses* does not go through this module
 * — response records are rendered by engine::JobRecord::toJson and
 * friends — so the wire protocol has exactly one writer per direction.
 */

#ifndef REX_SERVER_JSON_HH
#define REX_SERVER_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rex::server {

/** Maximum container nesting accepted by parseJson(). */
inline constexpr std::size_t kMaxJsonDepth = 32;

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Int,     //!< number that fits std::int64_t exactly
        Double,  //!< any other number
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    std::int64_t integer = 0;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isInt() const { return kind == Kind::Int; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text as one complete JSON document.
 * @throws FatalError with a position-carrying diagnostic on any syntax
 *         error, depth overflow, or trailing non-whitespace.
 */
JsonValue parseJson(const std::string &text);

} // namespace rex::server

#endif // REX_SERVER_JSON_HH
