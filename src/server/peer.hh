/**
 * @file
 * PeerPool: the server-side half of engine/remote.hh — a rexd
 * coordinator's fan-out of shard-range tasks to peer rexd instances
 * over `POST /shard`, fault-tolerant by construction.
 *
 * Failure model (docs/DISTRIBUTED.md): every task is dispatched with a
 * per-attempt timeout and capped exponential backoff; a peer that
 * exhausts its attempts is marked down and its in-flight task goes
 * back to the pending queue, where a surviving peer picks it up
 * (re-dispatch). Idle peers hedge the oldest straggling in-flight task
 * rather than sit out the tail. Answers are deduplicated per task slot
 * under one mutex — first fill wins — so a slow-then-returning peer
 * (or a hedge racing the original) can never double-merge a shard.
 * Whatever no peer filled is reported back unfilled, and the checker's
 * merge loop (axiomatic/checker.cc) finishes it locally: a failed
 * dispatch degrades throughput, never correctness, and with every peer
 * down the coordinator degrades to plain local enumeration.
 *
 * Down peers become eligible again after healthRetrySeconds
 * (half-open: the next dispatch is the probe), so a restarted peer
 * rejoins without coordinator intervention.
 *
 * The injectable fault points peer-connect / peer-send / peer-recv
 * (engine/faultinject.hh) wire into the attempt path so the whole
 * ladder — retry, mark-down, re-dispatch, hedge, dedup, local
 * fallback — is exercisable deterministically in tests and CI chaos
 * runs.
 */

#ifndef REX_SERVER_PEER_HH
#define REX_SERVER_PEER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/remote.hh"
#include "server/metrics.hh"

namespace rex::engine { class CancelToken; }

namespace rex::server {

/** Peer fan-out knobs (rexd --peers and friends). */
struct PeerConfig {
    /** Peer endpoints, "host:port" each. */
    std::vector<std::string> endpoints;

    /** Per-request socket timeout on peer connections. */
    int timeoutSeconds = 30;

    /** Tries of one task on one peer before it counts as failed. */
    int maxAttemptsPerPeer = 2;

    /** Backoff before attempt k (1-based) is initial * 2^(k-1), capped
     *  at max. */
    int backoffInitialMs = 50;
    int backoffMaxMs = 1000;

    /** An idle peer duplicates ("hedges") the oldest in-flight task
     *  once it has been out this long; 0 disables hedging. */
    int hedgeAfterMs = 2000;

    /** Shards batched into one /shard request. */
    std::uint64_t shardsPerTask = 64;

    /** Minimum shards in a range before dispatch beats local
     *  compute. */
    std::uint64_t minShards = 128;

    /** A down peer becomes eligible again (half-open) this long after
     *  it was marked down. */
    int healthRetrySeconds = 5;
};

/** Parse "host:port" into @p host / @p port; false on bad input. */
bool parsePeerEndpoint(const std::string &endpoint, std::string &host,
                       std::uint16_t &port);

/** The /shard fan-out dispatcher behind rexd --peers. */
class PeerPool final : public engine::RangeDispatcher
{
  public:
    /** @param metrics optional rexd_peer_* sink (null = uncounted). */
    explicit PeerPool(PeerConfig config, Metrics *metrics = nullptr);

    // engine::RangeDispatcher
    bool available() override;
    std::uint64_t shardsPerTask() const override;
    std::uint64_t minShardsToDistribute() const override;
    void runTasks(const engine::RangeJobContext &ctx,
                  std::vector<engine::RangeTask> &tasks) override;

    /**
     * One generic unit of peer work: a request body for @p path and,
     * once some peer answered 200, its response body. Used both by
     * runTasks() (kind "check") and the distributed hammer
     * (server/hammerdist.hh, kind "hammer").
     */
    struct WireTask {
        std::string body;
        std::string response;
        bool filled = false;
    };

    /**
     * Pump @p tasks through the healthy peers: one worker thread per
     * eligible peer, lowest-index-first claiming, the full
     * retry/re-dispatch/hedge/dedup ladder from the file header.
     * Returns when every task is filled, every peer is down, or
     * @p cancel tripped. Unfilled tasks are the caller's to finish.
     */
    void runWireTasks(const std::string &path,
                      std::vector<WireTask> &tasks,
                      const engine::CancelToken *cancel = nullptr);

    /** Configured peer count. */
    std::size_t configured() const { return _peers.size(); }

    /** Record @p count dispatched units the caller finished locally
     *  after peer failure (runTasks() counts its own; runWireTasks()
     *  callers report theirs here). */
    void noteLocalFallback(std::uint64_t count);

    /** Peers currently eligible for dispatch (down peers past the
     *  half-open deadline count); updates the health gauges. */
    std::size_t healthy();

  private:
    struct Peer {
        std::string host;
        std::uint16_t port = 0;

        /** Marked on attempt exhaustion or 409; half-open after
         *  healthRetrySeconds. Guarded by _healthMutex. */
        bool down = false;
        std::chrono::steady_clock::time_point downSince{};
    };

    bool peerEligible(const Peer &peer,
                      std::chrono::steady_clock::time_point now) const;
    void markDown(std::size_t peerIndex);
    void markUp(std::size_t peerIndex);

    PeerConfig _config;
    Metrics *_metrics = nullptr;
    std::vector<Peer> _peers;
    mutable std::mutex _healthMutex;
};

} // namespace rex::server

#endif // REX_SERVER_PEER_HH
