/**
 * @file
 * PeerPool: the server-side half of engine/remote.hh — a rexd
 * coordinator's fan-out of shard-range tasks to peer rexd instances
 * over `POST /shard`, fault-tolerant by construction.
 *
 * Failure model (docs/DISTRIBUTED.md): every task is dispatched with a
 * per-attempt timeout and capped exponential backoff; a peer that
 * exhausts its attempts is marked down and its in-flight task goes
 * back to the pending queue, where a surviving peer picks it up
 * (re-dispatch). Idle peers hedge the oldest straggling in-flight task
 * rather than sit out the tail. Answers are deduplicated per task slot
 * under one mutex — first fill wins — so a slow-then-returning peer
 * (or a hedge racing the original) can never double-merge a shard.
 * Whatever no peer filled is reported back unfilled, and the checker's
 * merge loop (axiomatic/checker.cc) finishes it locally: a failed
 * dispatch degrades throughput, never correctness, and with every peer
 * down the coordinator degrades to plain local enumeration.
 *
 * Trust model (this PR): crashing peers are only half the threat. A
 * 200 answer is merged only after its rex-shard-v1 integrity envelope
 * (server/envelope.hh) verifies — digest over the exact payload bytes,
 * model revision, program id — which catches corruption and version
 * skew but not a peer that computes a wrong answer and signs it
 * consistently. For that Byzantine half, a configurable fraction of
 * filled tasks (auditRate) is audited after the pump: the task is
 * recomputed by a second peer or by the coordinator's own local
 * compute hook, and the payloads are byte-compared. Divergence is
 * resolved against local ground truth; every peer whose answer differs
 * from it is charged a confirmed lie.
 *
 * Reputation: each peer carries decaying lie and digest-mismatch
 * scores (half-life reputationHalfLifeSeconds). A confirmed lie — or
 * three digest mismatches within a half-life — quarantines the peer
 * for lieQuarantineSeconds, doubling per repeat episode (capped at
 * 2^6). Crash-grade failures keep the gentler half-open retry
 * (healthRetrySeconds): a liar is benched harder and faster than a
 * crasher, because a crash costs throughput while a lie costs
 * correctness. A quarantine-expired peer re-enters on probation: it is
 * force-audited until reinstateProbes consecutive clean audits clear
 * it.
 *
 * Down peers become eligible again after healthRetrySeconds
 * (half-open: the next dispatch is the probe), so a restarted peer
 * rejoins without coordinator intervention.
 *
 * The injectable fault points peer-connect / peer-send / peer-recv
 * (engine/faultinject.hh) wire into the attempt path, and the
 * Byzantine points peer-lie / peer-corrupt-frame / peer-stale-revision
 * into the responding peer's handlers (rexd --byzantine-spec), so the
 * whole ladder — retry, mark-down, re-dispatch, hedge, dedup, local
 * fallback, envelope rejection, audit, quarantine, reinstatement — is
 * exercisable deterministically in tests and CI chaos runs.
 */

#ifndef REX_SERVER_PEER_HH
#define REX_SERVER_PEER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/remote.hh"
#include "server/metrics.hh"

namespace rex::engine { class CancelToken; }

namespace rex::server {

/** Peer fan-out knobs (rexd --peers and friends). */
struct PeerConfig {
    /** Peer endpoints, "host:port" each. */
    std::vector<std::string> endpoints;

    /** Per-request socket timeout on peer connections. */
    int timeoutSeconds = 30;

    /** Tries of one task on one peer before it counts as failed. */
    int maxAttemptsPerPeer = 2;

    /** Backoff before attempt k (1-based) is initial * 2^(k-1), capped
     *  at max. */
    int backoffInitialMs = 50;
    int backoffMaxMs = 1000;

    /** An idle peer duplicates ("hedges") the oldest in-flight task
     *  once it has been out this long; 0 disables hedging, -1 (the
     *  default) derives the deadline from observed peer RTT:
     *  clamp(3 × EWMA, 250 ms, 10 s), 2000 ms before any sample. */
    int hedgeAfterMs = -1;

    /** Shards batched into one /shard request; 0 (the default) derives
     *  the batch from the peer count — max(8, 256 / (4 × peers)) — so
     *  wider pools get finer-grained work without retuning. */
    std::uint64_t shardsPerTask = 0;

    /** Minimum shards in a range before dispatch beats local
     *  compute. */
    std::uint64_t minShards = 128;

    /** A down peer becomes eligible again (half-open) this long after
     *  it was marked down. */
    int healthRetrySeconds = 5;

    /** Fraction of filled tasks audited (recomputed elsewhere and
     *  byte-compared) after each pump, in [0, 1]. 1.0 audits every
     *  fill — the only rate that *guarantees* byte-identity under an
     *  actively lying peer; lower rates bound the detection delay
     *  instead (docs/DISTRIBUTED.md, "Integrity & trust model"). */
    double auditRate = 0.05;

    /** Seed of the deterministic audit sampling sequence. */
    std::uint64_t auditSeed = 0;

    /** Base quarantine after a confirmed lie (or three digest
     *  mismatches inside a reputation half-life); doubles per repeat
     *  episode, capped at base × 2^6. */
    int lieQuarantineSeconds = 60;

    /** Consecutive clean audits a quarantine-expired peer must pass on
     *  probation before it is fully reinstated. */
    int reinstateProbes = 3;

    /** Half-life of the decaying per-peer lie/mismatch scores. */
    int reputationHalfLifeSeconds = 300;
};

/** Parse "host:port" into @p host / @p port; false on bad input. */
bool parsePeerEndpoint(const std::string &endpoint, std::string &host,
                       std::uint16_t &port);

/** The /shard fan-out dispatcher behind rexd --peers. */
class PeerPool final : public engine::RangeDispatcher
{
  public:
    /** @param metrics optional rexd_peer_* sink (null = uncounted). */
    explicit PeerPool(PeerConfig config, Metrics *metrics = nullptr);

    // engine::RangeDispatcher
    bool available() override;
    std::uint64_t shardsPerTask() const override;
    std::uint64_t minShardsToDistribute() const override;
    void runTasks(const engine::RangeJobContext &ctx,
                  std::vector<engine::RangeTask> &tasks) override;

    /**
     * One generic unit of peer work: a request body for @p path and,
     * once some peer's answer passed envelope verification, the
     * extracted *payload* (not the sealed frame). Used both by
     * runTasks() (kind "check") and the distributed hammer
     * (server/hammerdist.hh, kind "hammer").
     */
    struct WireTask {
        std::string body;

        /** Envelope program id this task's answer must carry
         *  ("shard-check:<variant>" / "shard-hammer:<fp>"); "" skips
         *  the program check (never the digest/revision checks). */
        std::string expectProgram;

        /** The verified envelope payload, once filled. */
        std::string response;
        bool filled = false;

        /** Index of the peer whose answer filled this task; -1 when
         *  unfilled (or filled by audit-resolved local truth). */
        int filledBy = -1;
    };

    /**
     * Pump @p tasks through the healthy peers: one worker thread per
     * eligible peer, lowest-index-first claiming, the full
     * retry/re-dispatch/hedge/dedup ladder from the file header, then
     * the audit pass over the filled results. Returns when every task
     * is filled, every peer is down, or @p cancel tripped. Unfilled
     * tasks are the caller's to finish.
     */
    void runWireTasks(const std::string &path,
                      std::vector<WireTask> &tasks,
                      const engine::CancelToken *cancel = nullptr);

    /**
     * Install the audit ground-truth hook: given a /shard request
     * body, compute the answer on *this* node and return the payload
     * ("" on failure). rexd wires CheckService::shardLocalCompute;
     * the standalone hammer installs a campaign-scoped equivalent.
     * Without it, audits need a second eligible peer, and unresolved
     * divergences unfill the task (the caller's local fallback is the
     * ground truth of last resort).
     */
    void setLocalCompute(
        std::function<std::string(const std::string &)> compute);
    bool hasLocalCompute() const;

    /** Configured peer count. */
    std::size_t configured() const { return _peers.size(); }

    /** Record @p count dispatched units the caller finished locally
     *  after peer failure (runTasks() counts its own; runWireTasks()
     *  callers report theirs here). */
    void noteLocalFallback(std::uint64_t count);

    /** Peers currently eligible for dispatch (down peers past the
     *  half-open deadline count; quarantined peers do not); updates
     *  the health gauges. */
    std::size_t healthy();

    /** Peers currently under lie-grade quarantine. */
    std::size_t quarantined();

  private:
    struct Peer {
        std::string host;
        std::uint16_t port = 0;

        /** Marked on attempt exhaustion or 409 (crash-grade);
         *  half-open after healthRetrySeconds. Guarded by
         *  _healthMutex, like every field below. */
        bool down = false;
        std::chrono::steady_clock::time_point downSince{};

        /** Decaying reputation scores (half-life
         *  reputationHalfLifeSeconds). */
        double lieScore = 0.0;
        double mismatchScore = 0.0;
        std::chrono::steady_clock::time_point scoreTouched{};

        /** Lie-grade quarantine: ineligible until the deadline, then
         *  on probation until probationLeft clean audits pass. */
        bool quarantinedNow = false;
        std::chrono::steady_clock::time_point quarantineUntil{};
        int quarantineEpisodes = 0;
        int probationLeft = 0;

        /** EWMA (alpha 0.2) of successful /shard round-trips. */
        double rttEwmaMs = 0.0;
        bool rttValid = false;
    };

    bool peerEligible(const Peer &peer,
                      std::chrono::steady_clock::time_point now) const;

    /** Transition expired quarantines to probation; refresh gauges.
     *  Takes _healthMutex. */
    void sweepQuarantine(std::chrono::steady_clock::time_point now);

    void markDown(std::size_t peerIndex);
    void markUp(std::size_t peerIndex);

    /** Charge an envelope-verification failure against @p peerIndex;
     *  three inside a half-life escalate to lie-grade quarantine. */
    void chargeDigestMismatch(std::size_t peerIndex,
                              const std::string &why);

    /** Charge an audit-confirmed lie: immediate quarantine. */
    void chargeLie(std::size_t peerIndex);

    /** A clean audit of @p peerIndex's answer: advance (and possibly
     *  complete) probation. */
    void creditCleanAudit(std::size_t peerIndex);

    bool peerOnProbation(std::size_t peerIndex) const;

    /** Fold a successful round-trip into the peer's RTT EWMA and the
     *  rexd_peer_rtt_ms gauge. */
    void recordRtt(std::size_t peerIndex, double millis);

    /** The hedge deadline actually in force: the configured value, or
     *  the RTT-derived one when hedgeAfterMs is -1. */
    int effectiveHedgeMs() const;

    /** Quarantine @p peer (lie-grade), doubling per episode. Caller
     *  holds _healthMutex. */
    void quarantinePeer(Peer &peer,
                        std::chrono::steady_clock::time_point now);

    /** Refresh the rexd_peers_quarantined gauge. Caller holds
     *  _healthMutex. */
    void refreshQuarantineGauge();

    /** Audit the filled tasks sampled by auditRate (probation peers'
     *  fills always): recompute elsewhere, byte-compare, resolve
     *  divergence against local ground truth, charge liars. */
    void auditTasks(const std::string &path,
                    std::vector<WireTask> &tasks,
                    const engine::CancelToken *cancel);

    PeerConfig _config;
    Metrics *_metrics = nullptr;
    std::vector<Peer> _peers;
    mutable std::mutex _healthMutex;

    mutable std::mutex _computeMutex;
    std::function<std::string(const std::string &)> _localCompute;

    std::atomic<std::uint64_t> _auditCounter{0};
};

} // namespace rex::server

#endif // REX_SERVER_PEER_HH
