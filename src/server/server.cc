#include "server/server.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/batch.hh"
#include "engine/faultinject.hh"

namespace rex::server {

namespace {

void
closeQuietly(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

RexServer::RexServer(engine::Engine &engine, ServerConfig config)
    : _engine(engine), _config(std::move(config)),
      _service(engine, _metrics, _config.maxDeadlineMs,
               _config.maxCandidates)
{
    if (_config.threads == 0)
        _config.threads = 1;
}

RexServer::~RexServer()
{
    requestDrain();
    join();
}

void
RexServer::start()
{
    rexAssert(!_started.load(), "RexServer::start() called twice");

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        fatal(std::string("socket: ") + std::strerror(errno));
    int yes = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(_config.port);
    if (::inet_pton(AF_INET, _config.host.c_str(), &addr.sin_addr) != 1) {
        closeQuietly(_listenFd);
        fatal("bad bind address '" + _config.host + "'");
    }
    if (::bind(_listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        std::string why = std::strerror(errno);
        closeQuietly(_listenFd);
        fatal(format("cannot bind %s:%u: %s", _config.host.c_str(),
                     _config.port, why.c_str()));
    }
    if (::listen(_listenFd, 128) < 0) {
        std::string why = std::strerror(errno);
        closeQuietly(_listenFd);
        fatal("listen: " + why);
    }

    socklen_t len = sizeof(addr);
    ::getsockname(_listenFd, reinterpret_cast<struct sockaddr *>(&addr),
                  &len);
    _port = ntohs(addr.sin_port);

    int pipefds[2];
    if (::pipe(pipefds) < 0) {
        std::string why = std::strerror(errno);
        closeQuietly(_listenFd);
        fatal("pipe: " + why);
    }
    _wakeReadFd = pipefds[0];
    _wakeWriteFd = pipefds[1];

    _started.store(true);
    _acceptThread = std::thread([this] { acceptLoop(); });
    for (unsigned i = 0; i < _config.threads; ++i)
        _handlers.emplace_back([this] { handlerLoop(); });
}

void
RexServer::acceptLoop()
{
    while (!_draining.load()) {
        struct pollfd fds[2];
        fds[0].fd = _listenFd;
        fds[0].events = POLLIN;
        fds[1].fd = _wakeReadFd;
        fds[1].events = POLLIN;
        int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn(std::string("rexd accept poll: ") +
                 std::strerror(errno));
            break;
        }
        if (_draining.load())
            break;
        if (!(fds[0].revents & POLLIN))
            continue;

        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn(std::string("rexd accept: ") + std::strerror(errno));
            break;
        }
        if (engine::faultInjector().shouldFail(
                engine::FaultPoint::SockAccept)) {
            // Injected accept failure: drop the connection on the floor,
            // as a transient kernel error would. The peer sees a reset
            // and retries; the server must not hang or leak the fd.
            ::close(fd);
            continue;
        }

        bool enqueued = false;
        {
            std::lock_guard<std::mutex> lock(_queueMutex);
            if (_queue.size() < _config.maxQueue) {
                _queue.push_back(fd);
                _metrics.queueDepth.store(
                    static_cast<std::int64_t>(_queue.size()));
                enqueued = true;
            }
        }
        if (enqueued) {
            _queueReady.notify_one();
            continue;
        }

        // Backpressure: shed load on the accept thread, never a handler.
        ++_metrics.queueRejected;
        HttpResponse response = HttpResponse::error(
            503, "request queue is full; retry later");
        response.extraHeaders["Retry-After"] =
            std::to_string(_config.retryAfterSeconds);
        _metrics.countResponse(503);
        writeHttpResponse(fd, response);
        // The request was never read: absorb it (briefly — this runs
        // on the accept thread) so closing doesn't RST the 503 away.
        drainPeer(fd, _config.limits.maxBodyBytes, 1);
        ::close(fd);
    }

    // Stop accepting immediately; queued connections still get served.
    // Handlers only exit once _acceptDone is set, so a connection
    // enqueued in this loop's last iteration is never stranded.
    closeQuietly(_listenFd);
    _acceptDone.store(true);
    _queueReady.notify_all();
}

void
RexServer::handlerLoop()
{
    while (true) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(_queueMutex);
            _queueReady.wait(lock, [this] {
                return !_queue.empty() || _acceptDone.load();
            });
            if (_queue.empty()) {
                if (_acceptDone.load())
                    return;
                continue;
            }
            fd = _queue.front();
            _queue.pop_front();
            _metrics.queueDepth.store(
                static_cast<std::int64_t>(_queue.size()));
        }
        handleConnection(fd);
    }
}

void
RexServer::handleConnection(int fd)
{
    ++_metrics.inflight;
    HttpRequest request;
    std::string error;
    int status = readHttpRequest(fd, _config.limits, request, error);
    if (status != 0) {
        if (status == 408)
            ++_metrics.readTimeouts;
        if (!error.empty()) {
            _metrics.countResponse(status);
            writeHttpResponse(fd, HttpResponse::error(status, error));
            // Refused before the body was read (413/411/...): absorb
            // the rest so closing doesn't RST the response away.
            drainPeer(fd, _config.limits.maxBodyBytes,
                      _config.limits.ioTimeoutSeconds);
        }
        // else: peer connected and closed silently; just close.
    } else {
        HttpResponse response;
        try {
            response = _service.handle(request);
        } catch (const std::exception &err) {
            // handle() catches expected errors; this is a backstop so a
            // handler thread never dies and leaks the connection.
            response = HttpResponse::error(500, err.what());
            _metrics.countResponse(500);
        }
        writeHttpResponse(fd, response);
    }
    ::close(fd);
    --_metrics.inflight;
}

void
RexServer::requestDrain()
{
    if (!_started.load() || _draining.exchange(true))
        return;
    // Wake the accept poll (write side of the self-pipe) and any idle
    // handlers; both loops re-check _draining.
    if (_wakeWriteFd >= 0) {
        char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(_wakeWriteFd, &byte, 1);
    }
    _queueReady.notify_all();
}

void
RexServer::join()
{
    if (!_started.load() || _joined.exchange(true))
        return;
    if (_acceptThread.joinable())
        _acceptThread.join();
    // Handlers exit once the queue is empty and draining is set; the
    // accept thread is already done, so the queue can only shrink.
    _queueReady.notify_all();
    for (std::thread &handler : _handlers) {
        if (handler.joinable())
            handler.join();
    }
    closeQuietly(_wakeReadFd);
    closeQuietly(_wakeWriteFd);
    // Whatever the engine buffered for the results sink is on disk now.
    _engine.results().flush();
}

} // namespace rex::server
