#include "server/server.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "base/logging.hh"
#include "base/strings.hh"
#include "engine/batch.hh"
#include "engine/faultinject.hh"

namespace rex::server {

namespace {

void
closeQuietly(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

/** One readiness event out of a Poller. */
struct PollerEvent {
    std::uint64_t id = 0;
    bool readable = false;
    bool writable = false;
};

/**
 * Readiness-notification backend. Level-triggered by contract: an fd
 * with unread input (or writable space while write interest is set)
 * reports ready on every wait() until the condition clears — the loop
 * relies on this to resume partial reads/writes without re-arming.
 */
class Poller
{
  public:
    virtual ~Poller() = default;
    virtual void add(int fd, std::uint64_t id, bool wantRead,
                     bool wantWrite) = 0;
    virtual void mod(int fd, std::uint64_t id, bool wantRead,
                     bool wantWrite) = 0;
    virtual void del(int fd) = 0;

    /** Wait up to @p timeoutMs; ready events are appended to @p out. */
    virtual void wait(std::vector<PollerEvent> &out, int timeoutMs) = 0;
};

namespace {

/** poll(2) fallback: portable, O(n) per wait. Used off-Linux and under
 *  REX_POLL=1 (which is how CI exercises this path on Linux). */
class PollPoller final : public Poller
{
  public:
    void
    add(int fd, std::uint64_t id, bool wantRead, bool wantWrite) override
    {
        _entries[fd] = {id, wantRead, wantWrite};
    }

    void
    mod(int fd, std::uint64_t id, bool wantRead, bool wantWrite) override
    {
        _entries[fd] = {id, wantRead, wantWrite};
    }

    void del(int fd) override { _entries.erase(fd); }

    void
    wait(std::vector<PollerEvent> &out, int timeoutMs) override
    {
        _fds.clear();
        _ids.clear();
        for (const auto &[fd, entry] : _entries) {
            struct pollfd pfd;
            pfd.fd = fd;
            pfd.events = static_cast<short>(
                (entry.wantRead ? POLLIN : 0) |
                (entry.wantWrite ? POLLOUT : 0));
            pfd.revents = 0;
            _fds.push_back(pfd);
            _ids.push_back(entry.id);
        }
        int ready = ::poll(_fds.data(),
                           static_cast<nfds_t>(_fds.size()), timeoutMs);
        if (ready <= 0)
            return;
        for (std::size_t i = 0; i < _fds.size(); ++i) {
            short revents = _fds[i].revents;
            if (revents == 0)
                continue;
            PollerEvent event;
            event.id = _ids[i];
            // Errors/hangups surface as readable: the next read()
            // reports the failure and the connection is closed there.
            event.readable =
                (revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) != 0;
            event.writable = (revents & (POLLOUT | POLLERR)) != 0;
            out.push_back(event);
        }
    }

  private:
    struct Entry {
        std::uint64_t id;
        bool wantRead;
        bool wantWrite;
    };
    std::unordered_map<int, Entry> _entries;
    std::vector<struct pollfd> _fds;
    std::vector<std::uint64_t> _ids;
};

#ifdef __linux__
/** epoll backend: O(ready) per wait, the c10k path. */
class EpollPoller final : public Poller
{
  public:
    EpollPoller()
    {
        _epfd = ::epoll_create1(EPOLL_CLOEXEC);
        if (_epfd < 0)
            fatal(std::string("epoll_create1: ") + std::strerror(errno));
        _events.resize(256);
    }

    ~EpollPoller() override { closeQuietly(_epfd); }

    void
    add(int fd, std::uint64_t id, bool wantRead, bool wantWrite) override
    {
        struct epoll_event event = make(id, wantRead, wantWrite);
        if (::epoll_ctl(_epfd, EPOLL_CTL_ADD, fd, &event) < 0)
            warn(std::string("epoll_ctl add: ") + std::strerror(errno));
    }

    void
    mod(int fd, std::uint64_t id, bool wantRead, bool wantWrite) override
    {
        struct epoll_event event = make(id, wantRead, wantWrite);
        if (::epoll_ctl(_epfd, EPOLL_CTL_MOD, fd, &event) < 0)
            warn(std::string("epoll_ctl mod: ") + std::strerror(errno));
    }

    void
    del(int fd) override
    {
        ::epoll_ctl(_epfd, EPOLL_CTL_DEL, fd, nullptr);
    }

    void
    wait(std::vector<PollerEvent> &out, int timeoutMs) override
    {
        int ready = ::epoll_wait(_epfd, _events.data(),
                                 static_cast<int>(_events.size()),
                                 timeoutMs);
        if (ready <= 0)
            return;
        for (int i = 0; i < ready; ++i) {
            PollerEvent event;
            event.id = _events[i].data.u64;
            std::uint32_t mask = _events[i].events;
            event.readable =
                (mask & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0;
            event.writable = (mask & (EPOLLOUT | EPOLLERR)) != 0;
            out.push_back(event);
        }
        if (ready == static_cast<int>(_events.size()))
            _events.resize(_events.size() * 2);
    }

  private:
    static struct epoll_event
    make(std::uint64_t id, bool wantRead, bool wantWrite)
    {
        struct epoll_event event;
        std::memset(&event, 0, sizeof(event));
        event.events = (wantRead ? EPOLLIN : 0u) |
                       (wantWrite ? EPOLLOUT : 0u);
        event.data.u64 = id;
        return event;
    }

    int _epfd = -1;
    std::vector<struct epoll_event> _events;
};
#endif // __linux__

std::unique_ptr<Poller>
makePoller()
{
#ifdef __linux__
    const char *force = std::getenv("REX_POLL");
    if (!force || force[0] == '\0' || force[0] == '0')
        return std::make_unique<EpollPoller>();
#endif
    return std::make_unique<PollPoller>();
}

/** Sentinel poller ids for the two non-connection fds. */
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = ~std::uint64_t(0);

} // namespace

RexServer::RexServer(engine::Engine &engine, ServerConfig config)
    : _engine(engine), _config(std::move(config)),
      _service(engine, _metrics, _config.maxDeadlineMs,
               _config.maxCandidates, _config.cacheMaxAgeSeconds)
{
    if (_config.threads == 0)
        _config.threads = 1;
    if (_config.maxConnections == 0)
        _config.maxConnections = 1;
    if (_config.idleTimeoutSeconds <= 0)
        _config.idleTimeoutSeconds = 60;
    if (!_config.peers.endpoints.empty()) {
        _peers = std::make_unique<PeerPool>(_config.peers, &_metrics);
        _service.setDispatcher(_peers.get());
        // Audit ground truth: recompute sampled shards on this node's
        // own engine (trusted — Byzantine fault points stay dormant).
        _peers->setLocalCompute([this](const std::string &body) {
            return _service.shardLocalCompute(body);
        });
    }
}

RexServer::~RexServer()
{
    requestDrain();
    join();
}

void
RexServer::start()
{
    rexAssert(!_started.load(), "RexServer::start() called twice");

    _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listenFd < 0)
        fatal(std::string("socket: ") + std::strerror(errno));
    int yes = 1;
    ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(_config.port);
    if (::inet_pton(AF_INET, _config.host.c_str(), &addr.sin_addr) != 1) {
        closeQuietly(_listenFd);
        fatal("bad bind address '" + _config.host + "'");
    }
    if (::bind(_listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        std::string why = std::strerror(errno);
        closeQuietly(_listenFd);
        fatal(format("cannot bind %s:%u: %s", _config.host.c_str(),
                     _config.port, why.c_str()));
    }
    if (::listen(_listenFd, 1024) < 0) {
        std::string why = std::strerror(errno);
        closeQuietly(_listenFd);
        fatal("listen: " + why);
    }
    setNonBlocking(_listenFd);

    socklen_t len = sizeof(addr);
    ::getsockname(_listenFd, reinterpret_cast<struct sockaddr *>(&addr),
                  &len);
    _port = ntohs(addr.sin_port);

    int pipefds[2];
    if (::pipe(pipefds) < 0) {
        std::string why = std::strerror(errno);
        closeQuietly(_listenFd);
        fatal("pipe: " + why);
    }
    _wakeReadFd = pipefds[0];
    _wakeWriteFd = pipefds[1];
    setNonBlocking(_wakeReadFd);
    setNonBlocking(_wakeWriteFd);

    // Timer-wheel span must cover the longest deadline plus the +1
    // arming slack.
    std::size_t span = static_cast<std::size_t>(
        std::max(_config.limits.ioTimeoutSeconds,
                 _config.idleTimeoutSeconds));
    _wheel.assign(span + 3, {});
    _tick = 0;

    _poller = makePoller();
    _poller->add(_listenFd, kListenId, true, false);
    _poller->add(_wakeReadFd, kWakeId, true, false);

    _started.store(true);
    _loopThread = std::thread([this] { loop(); });
    for (unsigned i = 0; i < _config.threads; ++i)
        _handlers.emplace_back([this] { handlerLoop(); });
}

// ---------------------------------------------------------------------
// The event loop.

void
RexServer::loop()
{
    auto base = std::chrono::steady_clock::now();
    std::vector<PollerEvent> events;
    while (true) {
        auto elapsed_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - base)
                .count();
        std::uint64_t now_tick =
            static_cast<std::uint64_t>(elapsed_ms / 1000);
        if (now_tick > _tick)
            fireTimers(now_tick);

        // Sleep to the next 1s tick boundary (the wake pipe cuts this
        // short whenever a completion or drain request arrives).
        int timeout_ms =
            static_cast<int>(1000 - (elapsed_ms % 1000));
        if (timeout_ms <= 0)
            timeout_ms = 1;

        events.clear();
        _poller->wait(events, timeout_ms);

        bool woken = false;
        for (const PollerEvent &event : events) {
            if (event.id == kWakeId) {
                woken = true;
            } else if (event.id == kListenId) {
                acceptReady();
            } else {
                auto it = _conns.find(event.id);
                if (it != _conns.end()) {
                    handleConnEvent(*it->second, event.readable,
                                    event.writable);
                }
            }
        }
        if (woken) {
            char buf[256];
            while (::read(_wakeReadFd, buf, sizeof(buf)) > 0) {}
        }
        // Completions can be pending even without a wake byte (the
        // pipe write races the poll); always drain the queue.
        applyCompletions();

        if (_draining.load() && !_loopDraining)
            beginDrainOnLoop();
        if (_loopDraining && drainComplete())
            break;
    }

    closeQuietly(_listenFd);
}

void
RexServer::acceptReady()
{
    while (true) {
        int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == ECONNABORTED) {
                return;
            }
            warn(std::string("rexd accept: ") + std::strerror(errno));
            return;
        }
        if (engine::faultInjector().shouldFail(
                engine::FaultPoint::SockAccept)) {
            // Injected accept failure: drop the connection on the
            // floor, as a transient kernel error would. The peer sees
            // a reset and retries; the server must not hang or leak
            // the fd.
            ::close(fd);
            continue;
        }
        setNonBlocking(fd);
        int yes = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));

        auto conn = std::make_unique<Conn>();
        conn->id = _nextConnId++;
        conn->fd = fd;
        conn->parser = HttpParser(_config.limits);
        Conn &ref = *conn;
        _conns.emplace(ref.id, std::move(conn));
        ++_metrics.openConnections;
        _poller->add(fd, ref.id, true, false);

        if (_conns.size() > _config.maxConnections) {
            // Connection ceiling: shed before memory does. The 503 is
            // flushed and the socket lingers briefly so the reply is
            // not reset away under the peer's half-sent request.
            ++_metrics.queueRejected;
            HttpResponse response = HttpResponse::error(
                503, "connection ceiling reached; retry later");
            response.extraHeaders["Retry-After"] =
                std::to_string(_config.retryAfterSeconds);
            ref.noMoreReads = true;
            ref.closeAfterFlush = true;
            ref.lingering = true;
            ref.lingerSeconds = 1;
            enqueueSynthetic(ref, std::move(response), true);
            continue;
        }
        armDeadline(ref);
    }
}

void
RexServer::handleConnEvent(Conn &conn, bool readable, bool writable)
{
    std::uint64_t id = conn.id;
    if (writable) {
        writeOut(conn);
        if (_conns.find(id) == _conns.end())
            return;
    }
    if (readable) {
        readInto(conn);
        if (_conns.find(id) == _conns.end())
            return;
    }
    updateInterest(conn);
    armDeadline(conn);
}

void
RexServer::readInto(Conn &conn)
{
    // Captured before pumping: pumpRequests can closeConn and free the
    // Conn, after which even reading conn.id for the liveness probe is
    // a use-after-free.
    const std::uint64_t id = conn.id;
    char buf[16384];
    // Bounded reads per event so one fast peer cannot starve the rest;
    // level-triggered polling re-reports leftover input immediately.
    for (int round = 0; round < 8; ++round) {
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            closeConn(conn);
            return;
        }
        if (n == 0) {
            // Peer EOF. If nothing is pending, this is a clean
            // keep-alive close; otherwise finish writing what we owe
            // (the peer may have half-closed) unless we were only
            // draining its error-response body.
            if (conn.lingering) {
                closeConn(conn);
                return;
            }
            conn.noMoreReads = true;
            if (conn.slots.empty() && conn.out.size() == conn.outOff) {
                closeConn(conn);
                return;
            }
            conn.closeAfterFlush = true;
            return;
        }
        if (conn.lingering || conn.noMoreReads)
            continue;  // discard: we only owe the peer queued responses
        conn.parser.feed(buf, static_cast<std::size_t>(n));
        pumpRequests(conn);
        if (_conns.find(id) == _conns.end())
            return;
        if (conn.noMoreReads)
            return;
        if (n < static_cast<ssize_t>(sizeof(buf)))
            return;
    }
}

void
RexServer::pumpRequests(Conn &conn)
{
    const std::uint64_t id = conn.id;
    HttpRequest request;
    while (!conn.noMoreReads) {
        HttpParser::Result result = conn.parser.next(request);
        if (result == HttpParser::Result::Ready) {
            dispatch(conn, std::move(request));
            if (_conns.find(id) == _conns.end())
                return;  // dispatch flushed and the write side died
            request = HttpRequest();
            continue;
        }
        if (result == HttpParser::Result::Error) {
            // The byte stream is unframeable: answer once, stop
            // parsing, and linger-discard whatever the peer is still
            // sending (e.g. the rest of a 413 body) so closing does
            // not reset the error response away.
            HttpResponse response = HttpResponse::error(
                conn.parser.errorStatus(), conn.parser.errorMessage());
            conn.noMoreReads = true;
            conn.closeAfterFlush = true;
            conn.lingering = true;
            enqueueSynthetic(conn, std::move(response), true);
        }
        break;
    }
}

void
RexServer::dispatch(Conn &conn, HttpRequest request)
{
    std::uint64_t seq = conn.nextSeq++;
    conn.slots.emplace_back();
    ResponseSlot &slot = conn.slots.back();
    slot.keepAlive = request.keepAlive;
    if (!request.keepAlive)
        conn.noMoreReads = true;

    // Loop fast path 1: a conditional request whose validator still
    // matches — 304 straight from the ETag, engine untouched.
    HttpResponse fast;
    if (_service.tryNotModified(request, fast)) {
        slot.response = std::move(fast);
        slot.headHasBody = true;
        slot.done = true;
        flushSlots(conn);
        return;
    }

    // Engine-bound work (POST /check, GET /check/<name>, POST /shard)
    // goes to the handler threads through the bounded job queue.
    const bool checkWork =
        (CheckService::isCheckRoute(request) &&
         (request.path == "/check" ? request.method == "POST"
                                   : request.method == "GET")) ||
        (CheckService::isShardRoute(request) &&
         request.method == "POST");
    if (checkWork) {
        bool enqueued = false;
        {
            std::lock_guard<std::mutex> lock(_jobMutex);
            if (_jobs.size() < _config.maxQueue) {
                Job job;
                job.connId = conn.id;
                job.seq = seq;
                job.request = std::move(request);
                _jobs.push_back(std::move(job));
                _metrics.queueDepth.store(
                    static_cast<std::int64_t>(_jobs.size()));
                enqueued = true;
            }
        }
        if (enqueued) {
            _jobReady.notify_one();
            return;
        }
        // Backpressure: shed on the loop, never a handler thread. The
        // request was fully framed (its body is consumed), so the
        // connection stays usable for a retry.
        ++_metrics.queueRejected;
        HttpResponse response = HttpResponse::error(
            503, "request queue is full; retry later");
        response.extraHeaders["Retry-After"] =
            std::to_string(_config.retryAfterSeconds);
        _metrics.countResponse(503);
        slot.response = std::move(response);
        slot.headHasBody = true;
        slot.done = true;
        flushSlots(conn);
        return;
    }

    // Loop fast path 2: /metrics, /healthz, 404s, 405s — no engine
    // work, answered inline.
    slot.response = _service.handle(request);
    slot.headHasBody = true;
    slot.done = true;
    flushSlots(conn);
}

void
RexServer::enqueueSynthetic(Conn &conn, HttpResponse response,
                            bool countIt)
{
    if (countIt) {
        if (response.status == 408)
            ++_metrics.readTimeouts;
        _metrics.countResponse(response.status);
    }
    conn.nextSeq++;
    conn.slots.emplace_back();
    ResponseSlot &slot = conn.slots.back();
    slot.keepAlive = false;
    slot.response = std::move(response);
    slot.headHasBody = true;
    slot.done = true;
    flushSlots(conn);
}

void
RexServer::flushSlots(Conn &conn)
{
    while (!conn.slots.empty() && conn.slots.front().done) {
        ResponseSlot &slot = conn.slots.front();
        if (engine::faultInjector().shouldFail(
                engine::FaultPoint::SockSend)) {
            // Injected send failure: the response is dropped and the
            // connection dies, as a peer reset would make it. The
            // client's retry policy recovers.
            closeConn(conn);
            return;
        }
        if (!slot.headHasBody)
            slot.response.body = std::move(slot.body);
        bool keep_alive = slot.keepAlive && !conn.closeAfterFlush &&
                          !_loopDraining;
        conn.out +=
            serializeHttpResponse(slot.response, keep_alive);
        if (!keep_alive)
            conn.closeAfterFlush = true;
        ++conn.requestsServed;
        ++conn.baseSeq;
        conn.slots.pop_front();
    }
    writeOut(conn);
}

void
RexServer::writeOut(Conn &conn)
{
    while (conn.outOff < conn.out.size()) {
        ssize_t n = ::send(conn.fd, conn.out.data() + conn.outOff,
                           conn.out.size() - conn.outOff, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            closeConn(conn);
            return;
        }
        conn.outOff += static_cast<std::size_t>(n);
    }
    if (conn.outOff == conn.out.size()) {
        conn.out.clear();
        conn.outOff = 0;
        if (conn.closeAfterFlush && conn.slots.empty() &&
                !conn.lingering) {
            closeConn(conn);
            return;
        }
    } else if (conn.outOff > 65536) {
        conn.out.erase(0, conn.outOff);
        conn.outOff = 0;
    }
    updateInterest(conn);
    armDeadline(conn);
}

void
RexServer::updateInterest(Conn &conn)
{
    bool want_read = (!conn.noMoreReads || conn.lingering);
    bool want_write = conn.outOff < conn.out.size();
    if (want_read != conn.wantRead || want_write != conn.wantWrite) {
        conn.wantRead = want_read;
        conn.wantWrite = want_write;
        _poller->mod(conn.fd, conn.id, want_read, want_write);
    }
}

void
RexServer::armDeadline(Conn &conn)
{
    Deadline kind;
    int seconds = _config.limits.ioTimeoutSeconds;
    if (conn.lingering) {
        kind = Deadline::Linger;
        seconds = conn.lingerSeconds > 0 ? conn.lingerSeconds : seconds;
    } else if (conn.outOff < conn.out.size()) {
        kind = Deadline::Write;
    } else if (!conn.slots.empty()) {
        // Engine work in flight: the per-job governor bounds it, not
        // the socket deadline.
        kind = Deadline::None;
    } else if (!conn.parser.idle()) {
        kind = Deadline::Read;
    } else {
        kind = Deadline::Idle;
        seconds = _config.idleTimeoutSeconds;
    }

    if (kind == Deadline::None) {
        conn.deadline = Deadline::None;
        return;
    }
    std::uint64_t when = _tick + static_cast<std::uint64_t>(seconds) + 1;
    if (conn.deadline == kind && conn.deadlineTick == when)
        return;  // still armed in the same wheel slot
    conn.deadline = kind;
    conn.deadlineTick = when;
    _wheel[when % _wheel.size()].push_back(conn.id);
}

void
RexServer::fireTimers(std::uint64_t upToTick)
{
    for (std::uint64_t tick = _tick + 1; tick <= upToTick; ++tick) {
        _tick = tick;
        std::vector<std::uint64_t> due;
        due.swap(_wheel[tick % _wheel.size()]);
        for (std::uint64_t id : due) {
            auto it = _conns.find(id);
            if (it == _conns.end())
                continue;
            Conn &conn = *it->second;
            if (conn.deadlineTick != tick ||
                    conn.deadline == Deadline::None) {
                continue;  // stale wheel entry (deadline was re-armed)
            }
            switch (conn.deadline) {
              case Deadline::Read: {
                // Slow loris: a partial request stalled past the read
                // deadline. Answer 408 and linger-drain like any other
                // refused request.
                HttpResponse response = HttpResponse::error(
                    408, "timed out reading the request");
                conn.noMoreReads = true;
                conn.closeAfterFlush = true;
                conn.lingering = true;
                enqueueSynthetic(conn, std::move(response), true);
                break;
              }
              case Deadline::Idle:
                ++_metrics.idleTimeouts;
                closeConn(conn);
                break;
              case Deadline::Write:
              case Deadline::Linger:
                closeConn(conn);
                break;
              case Deadline::None:
                break;
            }
        }
    }
}

void
RexServer::closeConn(Conn &conn)
{
    if (conn.requestsServed > 0)
        _metrics.keepaliveRequests.observe(conn.requestsServed);
    --_metrics.openConnections;
    _poller->del(conn.fd);
    ::close(conn.fd);
    _conns.erase(conn.id);  // invalidates `conn`
}

// ---------------------------------------------------------------------
// Handler threads and the completion queue.

void
RexServer::handlerLoop()
{
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(_jobMutex);
            _jobReady.wait(lock, [this] {
                return _stopHandlers || !_jobs.empty();
            });
            if (_jobs.empty()) {
                if (_stopHandlers)
                    return;
                continue;
            }
            job = std::move(_jobs.front());
            _jobs.pop_front();
            ++_jobsInFlight;
            _metrics.queueDepth.store(
                static_cast<std::int64_t>(_jobs.size()));
        }

        ++_metrics.inflight;
        const std::uint64_t conn_id = job.connId;
        const std::uint64_t seq = job.seq;
        std::string streamed;
        HttpResponse head = _service.handleCheckRoute(
            job.request, [&](const std::string &chunk) {
                streamed += chunk;
                Completion completion;
                completion.connId = conn_id;
                completion.seq = seq;
                completion.chunk = chunk;
                {
                    std::lock_guard<std::mutex> lock(_completionMutex);
                    _completions.push_back(std::move(completion));
                }
                char byte = 1;
                [[maybe_unused]] ssize_t n =
                    ::write(_wakeWriteFd, &byte, 1);
            });

        Completion fin;
        fin.connId = conn_id;
        fin.seq = seq;
        fin.final = true;
        // When the streamed chunks are exactly the body, ship the head
        // alone — the loop already has the bytes. Error paths (whose
        // body is not the streamed JSONL) ship theirs in the head.
        fin.headHasBody = head.body != streamed;
        if (!fin.headHasBody)
            head.body.clear();
        fin.head = std::move(head);
        {
            std::lock_guard<std::mutex> lock(_completionMutex);
            _completions.push_back(std::move(fin));
        }
        char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(_wakeWriteFd, &byte, 1);
        --_metrics.inflight;
        {
            std::lock_guard<std::mutex> lock(_jobMutex);
            --_jobsInFlight;
        }
    }
}

void
RexServer::applyCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(_completionMutex);
        batch.swap(_completions);
    }
    if (batch.empty())
        return;

    std::vector<std::uint64_t> touched;
    for (Completion &completion : batch) {
        auto it = _conns.find(completion.connId);
        if (it == _conns.end())
            continue;  // connection died while the job ran
        Conn &conn = *it->second;
        if (completion.seq < conn.baseSeq)
            continue;
        std::size_t index =
            static_cast<std::size_t>(completion.seq - conn.baseSeq);
        if (index >= conn.slots.size())
            continue;
        ResponseSlot &slot = conn.slots[index];
        if (!completion.final) {
            slot.body += completion.chunk;
            continue;
        }
        slot.response = std::move(completion.head);
        slot.headHasBody = completion.headHasBody;
        if (slot.headHasBody)
            slot.body.clear();
        slot.done = true;
        touched.push_back(conn.id);
    }
    for (std::uint64_t id : touched) {
        auto it = _conns.find(id);
        if (it == _conns.end())
            continue;
        Conn &conn = *it->second;
        flushSlots(conn);
        if (_conns.find(id) == _conns.end())
            continue;
        updateInterest(conn);
        armDeadline(conn);
    }
}

// ---------------------------------------------------------------------
// Drain.

void
RexServer::beginDrainOnLoop()
{
    _loopDraining = true;
    // Stop accepting immediately: new connections are refused by the
    // kernel from here on.
    if (_listenFd >= 0) {
        _poller->del(_listenFd);
        closeQuietly(_listenFd);
    }
    // Every fully-received request (queued, in-flight, or framed in a
    // read buffer — pumpRequests dispatched those on arrival) is
    // served; nothing new is read.
    std::vector<std::uint64_t> ids;
    ids.reserve(_conns.size());
    for (const auto &[id, conn] : _conns)
        ids.push_back(id);
    for (std::uint64_t id : ids) {
        auto it = _conns.find(id);
        if (it == _conns.end())
            continue;
        Conn &conn = *it->second;
        conn.noMoreReads = true;
        conn.lingering = false;
        conn.closeAfterFlush = true;
        if (conn.slots.empty() && conn.out.size() == conn.outOff) {
            closeConn(conn);
            continue;
        }
        updateInterest(conn);
        armDeadline(conn);
    }
}

bool
RexServer::drainComplete()
{
    if (!_conns.empty())
        return false;
    std::lock_guard<std::mutex> lock(_jobMutex);
    if (!_jobs.empty() || _jobsInFlight != 0)
        return false;
    std::lock_guard<std::mutex> completion_lock(_completionMutex);
    return _completions.empty();
}

void
RexServer::requestDrain()
{
    if (!_started.load() || _draining.exchange(true))
        return;
    // Wake the loop (write side of the self-pipe); it observes
    // _draining and runs beginDrainOnLoop().
    if (_wakeWriteFd >= 0) {
        char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(_wakeWriteFd, &byte, 1);
    }
}

void
RexServer::join()
{
    if (!_started.load() || _joined.exchange(true))
        return;
    if (_loopThread.joinable())
        _loopThread.join();
    // The loop only exits once every job has completed, so the
    // handlers are idle by now; tell them to quit.
    {
        std::lock_guard<std::mutex> lock(_jobMutex);
        _stopHandlers = true;
    }
    _jobReady.notify_all();
    for (std::thread &handler : _handlers)
        if (handler.joinable())
            handler.join();
    closeQuietly(_wakeReadFd);
    closeQuietly(_wakeWriteFd);
    // Whatever the engine buffered for the results sink is on disk now.
    _engine.results().flush();
}

} // namespace rex::server
