#include "server/metrics.hh"

#include <cinttypes>

#include "base/strings.hh"
#include "catc/cache.hh"
#include "engine/batch.hh"

namespace rex::server {

void
LatencyHistogram::observe(std::uint64_t micros)
{
    double seconds = static_cast<double>(micros) / 1e6;
    std::size_t bucket = kBuckets.size();  // +Inf
    for (std::size_t i = 0; i < kBuckets.size(); ++i) {
        if (seconds <= kBuckets[i]) {
            bucket = i;
            break;
        }
    }
    _counts[bucket].fetch_add(1, std::memory_order_relaxed);
    _sumMicros.fetch_add(micros, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
}

std::string
LatencyHistogram::render(const std::string &name,
                         const std::string &labels) const
{
    std::string out;
    std::uint64_t cumulative = 0;
    std::string sep = labels.empty() ? "" : ",";
    for (std::size_t i = 0; i < kBuckets.size(); ++i) {
        cumulative += _counts[i].load(std::memory_order_relaxed);
        out += format("%s_bucket{%s%sle=\"%g\"} %" PRIu64 "\n",
                      name.c_str(), labels.c_str(), sep.c_str(),
                      kBuckets[i], cumulative);
    }
    cumulative += _counts[kBuckets.size()].load(std::memory_order_relaxed);
    out += format("%s_bucket{%s%sle=\"+Inf\"} %" PRIu64 "\n",
                  name.c_str(), labels.c_str(), sep.c_str(), cumulative);
    out += format("%s_sum{%s} %g\n", name.c_str(), labels.c_str(),
                  static_cast<double>(
                      _sumMicros.load(std::memory_order_relaxed)) / 1e6);
    out += format("%s_count{%s} %" PRIu64 "\n", name.c_str(),
                  labels.c_str(), _count.load(std::memory_order_relaxed));
    return out;
}

void
CountHistogram::observe(std::uint64_t value)
{
    std::size_t bucket = kBuckets.size();  // +Inf
    for (std::size_t i = 0; i < kBuckets.size(); ++i) {
        if (value <= kBuckets[i]) {
            bucket = i;
            break;
        }
    }
    _counts[bucket].fetch_add(1, std::memory_order_relaxed);
    _sum.fetch_add(value, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
}

std::string
CountHistogram::render(const std::string &name) const
{
    std::string out;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets.size(); ++i) {
        cumulative += _counts[i].load(std::memory_order_relaxed);
        out += format("%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                      name.c_str(), kBuckets[i], cumulative);
    }
    cumulative += _counts[kBuckets.size()].load(std::memory_order_relaxed);
    out += format("%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
                  cumulative);
    out += format("%s_sum %" PRIu64 "\n", name.c_str(),
                  _sum.load(std::memory_order_relaxed));
    out += format("%s_count %" PRIu64 "\n", name.c_str(),
                  _count.load(std::memory_order_relaxed));
    return out;
}

void
Metrics::recordPeerRtt(std::size_t index, const std::string &endpoint,
                       double millis)
{
    std::lock_guard<std::mutex> lock(_peerRttMutex);
    if (_peerRtt.size() <= index)
        _peerRtt.resize(index + 1);
    _peerRtt[index].endpoint = endpoint;
    _peerRtt[index].millis = millis;
    _peerRtt[index].valid = true;
}

void
Metrics::countResponse(int status)
{
    switch (status) {
      case 200: ++responses200; break;
      case 304: ++responses304; break;
      case 400: ++responses400; break;
      case 404: ++responses404; break;
      case 405: ++responses405; break;
      case 408: ++responses408; break;
      case 409: ++responses409; break;
      case 413: ++responses413; break;
      case 431: ++responses431; break;
      case 503: ++responses503; break;
      default: ++responses500; break;
    }
}

void
Metrics::countBudgetTrip(const std::string &axis)
{
    if (axis == "deadline")
        ++budgetTripsDeadline;
    else if (axis == "candidates")
        ++budgetTripsCandidates;
    else if (axis == "memory")
        ++budgetTripsMemory;
    else if (axis == "cancelled")
        ++budgetTripsCancelled;
}

std::string
Metrics::render(engine::Engine &engine) const
{
    std::string out;
    auto counter = [&](const char *name, const char *help,
                       std::uint64_t value) {
        out += format("# HELP %s %s\n# TYPE %s counter\n%s %" PRIu64 "\n",
                      name, help, name, name, value);
    };
    auto labelled = [&](const char *name, const char *labels,
                        std::uint64_t value) {
        out += format("%s{%s} %" PRIu64 "\n", name, labels, value);
    };

    out += "# HELP rexd_requests_total Requests handled, by route.\n"
           "# TYPE rexd_requests_total counter\n";
    labelled("rexd_requests_total", "route=\"check\"",
             requestsCheck.load());
    labelled("rexd_requests_total", "route=\"metrics\"",
             requestsMetrics.load());
    labelled("rexd_requests_total", "route=\"healthz\"",
             requestsHealth.load());
    labelled("rexd_requests_total", "route=\"other\"",
             requestsOther.load());

    out += "# HELP rexd_responses_total Responses sent, by status.\n"
           "# TYPE rexd_responses_total counter\n";
    labelled("rexd_responses_total", "code=\"200\"", responses200.load());
    labelled("rexd_responses_total", "code=\"304\"", responses304.load());
    labelled("rexd_responses_total", "code=\"400\"", responses400.load());
    labelled("rexd_responses_total", "code=\"404\"", responses404.load());
    labelled("rexd_responses_total", "code=\"405\"", responses405.load());
    labelled("rexd_responses_total", "code=\"408\"", responses408.load());
    labelled("rexd_responses_total", "code=\"409\"", responses409.load());
    labelled("rexd_responses_total", "code=\"413\"", responses413.load());
    labelled("rexd_responses_total", "code=\"431\"", responses431.load());
    labelled("rexd_responses_total", "code=\"500\"", responses500.load());
    labelled("rexd_responses_total", "code=\"503\"", responses503.load());

    out += "# HELP rexd_verdicts_total Verdicts served, by outcome.\n"
           "# TYPE rexd_verdicts_total counter\n";
    labelled("rexd_verdicts_total", "verdict=\"allowed\"",
             verdictsAllowed.load());
    labelled("rexd_verdicts_total", "verdict=\"forbidden\"",
             verdictsForbidden.load());
    labelled("rexd_verdicts_total", "verdict=\"exhausted_budget\"",
             verdictsExhausted.load());
    labelled("rexd_verdicts_total", "verdict=\"crashed_worker\"",
             verdictsCrashed.load());
    labelled("rexd_verdicts_total", "verdict=\"quarantined\"",
             verdictsQuarantined.load());

    out += "# HELP rexd_budget_trips_total Per-job budget trips, "
           "by axis.\n"
           "# TYPE rexd_budget_trips_total counter\n";
    labelled("rexd_budget_trips_total", "axis=\"deadline\"",
             budgetTripsDeadline.load());
    labelled("rexd_budget_trips_total", "axis=\"candidates\"",
             budgetTripsCandidates.load());
    labelled("rexd_budget_trips_total", "axis=\"memory\"",
             budgetTripsMemory.load());
    labelled("rexd_budget_trips_total", "axis=\"cancelled\"",
             budgetTripsCancelled.load());

    counter("rexd_cache_hits_total",
            "Verdict-cache hits across all requests.",
            engine.cache().hits());
    counter("rexd_cache_misses_total",
            "Verdict-cache misses across all requests.",
            engine.cache().misses());
    counter("rexd_cache_evictions_total",
            "On-disk verdict-cache entries evicted by the byte cap.",
            engine.cache().evictions());
    counter("rexd_cache_corrupt_total",
            "Corrupt on-disk verdict-cache entries detected and "
            "evicted.",
            engine.cache().corruptEvictions());
    counter("rexd_cache_mem_evictions_total",
            "In-memory verdict-cache entries evicted by the entry "
            "cap (the on-disk copy, if any, survives).",
            engine.cache().memEvictions());
    counter("rexd_queue_rejected_total",
            "Connections rejected with 503 by backpressure.",
            queueRejected.load());
    counter("rexd_read_timeouts_total",
            "Connections that timed out mid-request (the 408 path).",
            readTimeouts.load());
    counter("rexd_http_304_total",
            "Conditional requests answered 304 on the event loop, "
            "engine untouched.",
            http304.load());
    counter("rexd_idle_timeouts_total",
            "Keep-alive connections closed by the idle deadline.",
            idleTimeouts.load());
    counter("rexd_peer_dispatch_total",
            "Shard tasks dispatched to peer rexd instances.",
            peerDispatchTotal.load());
    counter("rexd_peer_failures_total",
            "Peer dispatch attempts exhausted (peer marked down).",
            peerFailuresTotal.load());
    counter("rexd_peer_retries_total",
            "Per-attempt retries of peer shard requests.",
            peerRetriesTotal.load());
    counter("rexd_peer_redispatch_total",
            "Shard tasks re-queued to surviving peers after a peer "
            "failure.",
            peerRedispatchTotal.load());
    counter("rexd_peer_hedges_total",
            "Hedged duplicate dispatches of straggling shard tasks.",
            peerHedgesTotal.load());
    counter("rexd_peer_dedup_dropped_total",
            "Duplicate peer answers dropped by first-fill-wins "
            "deduplication.",
            peerDedupDroppedTotal.load());
    counter("rexd_peer_local_fallback_total",
            "Dispatched shard tasks finished locally after peer "
            "failure.",
            peerLocalFallbackTotal.load());
    counter("rexd_peer_unavailable_total",
            "Eligible checks degraded to local-only: no healthy peer.",
            peerUnavailableTotal.load());
    counter("rexd_shard_requests_total",
            "POST /shard requests served.",
            shardRequests.load());
    counter("rexd_shard_refused_total",
            "POST /shard requests refused with 409 (fingerprint or "
            "plan mismatch).",
            shardRefused.load());
    counter("rexd_shard_digest_mismatches_total",
            "Peer /shard answers whose rex-shard-v1 envelope failed "
            "verification — counted, never merged.",
            shardDigestMismatches.load());
    out += "# HELP rexd_audits_total Sampled shard-result audits, by "
           "outcome.\n"
           "# TYPE rexd_audits_total counter\n";
    labelled("rexd_audits_total", "result=\"match\"",
             auditsMatch.load());
    labelled("rexd_audits_total", "result=\"divergence\"",
             auditsDivergence.load());
    labelled("rexd_audits_total", "result=\"failed\"",
             auditsFailed.load());
    counter("rexd_peer_lies_total",
            "Audit-confirmed wrong answers charged to peers.",
            peerLiesTotal.load());
    counter("rexd_continuations_issued_total",
            "rex-cont-v1 continuation tokens issued on budget trips.",
            continuationsIssued.load());
    counter("rexd_resume_accepted_total",
            "Continuation tokens accepted and resumed.",
            resumeAccepted.load());
    counter("rexd_continuation_refused_total",
            "Continuation tokens refused: malformed, stale, or "
            "tampered.",
            continuationRefused.load());
    counter("rexd_enumerated_candidates_total",
            "Candidate executions enumerated by the engine, including "
            "in-flight checks.",
            engine.candidatesEnumerated());
    counter("rexd_results_dropped_total",
            "JSONL results records lost to sink write failures.",
            engine.results().droppedRecords());

    // Compiled-model (catc) series. Daemon-process scope: supervised
    // workers keep their own per-process compile caches, whose
    // activity is not aggregated here.
    const catc::CompileStats compiles = catc::compileStats();
    counter("rexd_model_compiles_total",
            "Cat-model bytecode compilations in this process.",
            compiles.compiles);
    counter("rexd_compile_cache_hits_total",
            "Compiled-program cache hits in this process.",
            compiles.hits);
    counter("rexd_compile_cache_misses_total",
            "Compiled-program cache misses in this process.",
            compiles.misses);

    // Supervision series render unconditionally (zeros with workers
    // disabled) so dashboards need not branch on server configuration;
    // only the per-signal breakdown is limited to observed signals.
    const engine::Supervisor *supervisor = engine.supervisor();
    out += "# HELP rexd_worker_crashes_total Supervised worker "
           "crashes, by fatal signal.\n"
           "# TYPE rexd_worker_crashes_total counter\n";
    out += format("rexd_worker_crashes_total %" PRIu64 "\n",
                  supervisor ? supervisor->crashes() : 0);
    if (supervisor) {
        for (const auto &[signal, count] :
                 supervisor->crashesBySignal()) {
            out += format("rexd_worker_crashes_total{signal=\"%s\"} %"
                          PRIu64 "\n",
                          signal.c_str(), count);
        }
    }
    counter("rexd_worker_respawns_total",
            "Worker processes re-forked after a death.",
            supervisor ? supervisor->respawns() : 0);
    counter("rexd_quarantined_total",
            "Quarantined verdicts served without dispatching a "
            "worker.",
            supervisor ? supervisor->quarantinedServed() : 0);
    counter("rexd_crash_ledger_evictions_total",
            "Crash-ledger entries evicted by the entry cap (LRU).",
            supervisor ? supervisor->ledgerEvictions() : 0);

    auto gauge = [&](const char *name, const char *help,
                     std::int64_t value) {
        out += format("# HELP %s %s\n# TYPE %s gauge\n%s %" PRId64 "\n",
                      name, help, name, name, value);
    };
    gauge("rexd_queue_depth", "Accepted connections awaiting a handler.",
          queueDepth.load());
    gauge("rexd_inflight_requests", "Requests currently being handled.",
          inflight.load());
    gauge("rexd_open_connections",
          "Connections currently open on the event loop.",
          openConnections.load());
    gauge("rexd_engine_jobs", "Engine worker threads.",
          static_cast<std::int64_t>(engine.jobs()));
    gauge("rexd_engine_pool_queue_depth",
          "Tasks queued in the engine's thread pool.",
          static_cast<std::int64_t>(engine.poolQueueDepth()));
    gauge("rexd_cache_entries", "Verdict-cache in-memory entries.",
          static_cast<std::int64_t>(engine.cache().entryCount()));
    gauge("rexd_cache_disk_bytes", "Verdict-cache on-disk bytes.",
          static_cast<std::int64_t>(engine.cache().diskBytes()));
    gauge("rexd_enumeration_live_candidates",
          "Candidates admitted so far by budgeted checks in flight.",
          static_cast<std::int64_t>(engine.liveCandidates()));
    gauge("rexd_workers_configured",
          "Supervised worker slots (0 = supervision disabled).",
          supervisor ? static_cast<std::int64_t>(supervisor->workers())
                     : 0);
    gauge("rexd_workers_live",
          "Supervised worker processes currently alive.",
          supervisor
              ? static_cast<std::int64_t>(supervisor->liveWorkers())
              : 0);
    gauge("rexd_peers_configured",
          "Peer rexd endpoints configured for shard dispatch.",
          peersConfigured.load());
    gauge("rexd_peers_healthy",
          "Peer endpoints currently believed healthy.",
          peersHealthy.load());
    gauge("rexd_peers_quarantined",
          "Peer endpoints under lie-grade quarantine.",
          peersQuarantined.load());
    gauge("rexd_quarantined_keys",
          "(test, variant) keys currently at the quarantine "
          "threshold.",
          supervisor
              ? static_cast<std::int64_t>(supervisor->quarantinedKeys())
              : 0);
    gauge("rexd_crash_ledger_entries",
          "(test, variant) keys tracked in the crash ledger.",
          supervisor
              ? static_cast<std::int64_t>(supervisor->ledgerEntries())
              : 0);

    out += "# HELP rexd_peer_rtt_ms EWMA round-trip of successful "
           "/shard dispatches, per peer.\n"
           "# TYPE rexd_peer_rtt_ms gauge\n";
    {
        std::lock_guard<std::mutex> lock(_peerRttMutex);
        for (const PeerRtt &rtt : _peerRtt) {
            if (!rtt.valid)
                continue;
            out += format("rexd_peer_rtt_ms{peer=\"%s\"} %g\n",
                          rtt.endpoint.c_str(), rtt.millis);
        }
    }

    out += "# HELP rexd_keepalive_requests_per_connection Requests "
           "served per keep-alive connection, recorded at close.\n"
           "# TYPE rexd_keepalive_requests_per_connection histogram\n";
    out += keepaliveRequests.render(
        "rexd_keepalive_requests_per_connection");

    out += "# HELP rexd_stage_seconds Pipeline-stage latency.\n"
           "# TYPE rexd_stage_seconds histogram\n";
    out += stageParse.render("rexd_stage_seconds", "stage=\"parse\"");
    out += stageCompile.render("rexd_stage_seconds", "stage=\"compile\"");
    out += stageEnumerate.render("rexd_stage_seconds",
                                 "stage=\"enumerate\"");
    out += stageCheck.render("rexd_stage_seconds", "stage=\"check\"");
    out += stageRequest.render("rexd_stage_seconds", "stage=\"request\"");
    return out;
}

} // namespace rex::server
