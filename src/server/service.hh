/**
 * @file
 * The litmus-checking service behind rexd's routes.
 *
 * CheckService is pure request → response logic over an
 * engine::Engine: it owns no sockets, which is what lets the
 * integration test, the client's --direct mode, and the daemon share
 * one implementation of the wire protocol (docs/SERVER.md).
 *
 * Routes:
 *   POST /check    JSON {"test": <litmus text>, "variants": [...]} →
 *                  one JSONL verdict record per variant (the
 *                  docs/FORMAT.md schema), in request order.
 *   GET  /metrics  Prometheus text exposition.
 *   GET  /healthz  "ok".
 *
 * Every /check runs through three measured pipeline stages feeding the
 * metrics histograms: parse (litmus text → test), check (per-variant
 * verdict on the shared engine, cache hits included), and enumerate
 * (the cache-miss subset of check: full staged enumeration).
 */

#ifndef REX_SERVER_SERVICE_HH
#define REX_SERVER_SERVICE_HH

#include <string>
#include <vector>

#include "server/http.hh"
#include "server/metrics.hh"

namespace rex::engine { class Engine; }

namespace rex::server {

/** A validated /check request body. */
struct CheckRequest {
    /** The litmus test source (native or classic-herd format). */
    std::string testText;

    /** Variant names, resolved and validated ("base", "SEA_R", ...). */
    std::vector<std::string> variants;

    /**
     * Test hook: handler-thread sleep before checking, capped at
     * 2000 ms. Lets integration tests and CI pin a request in-flight
     * to drive the 503 backpressure and drain paths deterministically.
     */
    int sleepMs = 0;

    /** Per-request wall-clock budget in milliseconds; 0 = none. The
     *  server clamps it to its --max-deadline-ms cap. */
    std::int64_t deadlineMs = 0;

    /** Per-request candidate-count budget; 0 = none. Clamped to the
     *  server's --max-candidates cap. */
    std::int64_t maxCandidates = 0;

    /**
     * Parse and validate a JSON request body.
     * @throws FatalError with a client-facing diagnostic on malformed
     *         JSON, a missing/empty "test" member, or unknown variants.
     */
    static CheckRequest fromJson(const std::string &body);
};

/** The route handler shared by rexd, tests, and `rex_client --direct`. */
class CheckService
{
  public:
    /**
     * @param maxDeadlineMs  server-side wall-clock budget cap applied
     *        to every /check: requests asking for more (or for nothing)
     *        are clamped down to it; 0 = no server-imposed deadline.
     * @param maxCandidates  likewise for the candidate-count budget.
     */
    CheckService(engine::Engine &engine, Metrics &metrics,
                 std::uint64_t maxDeadlineMs = 0,
                 std::uint64_t maxCandidates = 0)
        : _engine(engine), _metrics(metrics),
          _maxDeadlineMs(maxDeadlineMs), _maxCandidates(maxCandidates)
    {}

    /** Dispatch one request; never throws (errors become responses). */
    HttpResponse handle(const HttpRequest &request);

    /**
     * Run one validated check: the JSONL response body, one
     * docs/FORMAT.md verdict record per variant in request order.
     */
    std::string runCheck(const CheckRequest &request);

    Metrics &metrics() { return _metrics; }
    engine::Engine &engine() { return _engine; }

  private:
    HttpResponse handleCheck(const HttpRequest &request);

    engine::Engine &_engine;
    Metrics &_metrics;
    std::uint64_t _maxDeadlineMs = 0;
    std::uint64_t _maxCandidates = 0;
};

} // namespace rex::server

#endif // REX_SERVER_SERVICE_HH
