/**
 * @file
 * The litmus-checking service behind rexd's routes.
 *
 * CheckService is pure request → response logic over an
 * engine::Engine: it owns no sockets, which is what lets the
 * integration test, the client's --direct mode, and the daemon share
 * one implementation of the wire protocol (docs/SERVER.md).
 *
 * Routes:
 *   POST /check          JSON {"test": <litmus text>, "variants": [...]}
 *                        → one JSONL verdict record per variant (the
 *                        docs/FORMAT.md schema), in request order.
 *                        {"resumable": true} asks for a rex-cont-v1
 *                        continuation token on budget-tripped records;
 *                        {"resume": "<token>"} resumes one (exactly one
 *                        variant; 400 malformed / 409 stale or
 *                        tampered — docs/DISTRIBUTED.md).
 *   POST /shard          peer-to-peer shard-range primitive: run shards
 *                        [shard_begin, shard_end) of a check (or a seed
 *                        chunk of a hammer campaign) and answer partial
 *                        counts + cursor as one JSON line; 409 on job
 *                        fingerprint / plan-size mismatch.
 *   GET  /check/<name>   cache/CDN-friendly alias: run the builtin
 *                        registry test <name> (query: variants=a,b or
 *                        "paper", deadline_ms=, max_candidates=).
 *   GET  /metrics        Prometheus text exposition.
 *   GET  /healthz        "ok".
 *
 * Verdicts are externally cacheable: every successful /check answer
 * carries a deterministic strong ETag — FNV-1a over the canonical
 * request key (litmus text, variant set, budgets) and the model
 * revision (engine::kModelRevision) — plus `Cache-Control: public,
 * max-age=...` when every verdict in the response is deterministic.
 * Responses containing ExhaustedBudget/CrashedWorker/Quarantined
 * records are `no-store`: they depend on machine state, not content.
 * `If-None-Match` hits answer 304 without touching the engine.
 *
 * Every /check runs through three measured pipeline stages feeding the
 * metrics histograms: parse (litmus text → test), check (per-variant
 * verdict on the shared engine, cache hits included), and enumerate
 * (the cache-miss subset of check: full staged enumeration).
 */

#ifndef REX_SERVER_SERVICE_HH
#define REX_SERVER_SERVICE_HH

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "server/http.hh"
#include "server/metrics.hh"

namespace rex::engine {
class Engine;
class RangeDispatcher;
} // namespace rex::engine

namespace rex::server {

/** A validated /check request body. */
struct CheckRequest {
    /** The litmus test source (native or classic-herd format). */
    std::string testText;

    /** Variant names, resolved and validated ("base", "SEA_R", ...). */
    std::vector<std::string> variants;

    /**
     * Test hook: handler-thread sleep before checking, capped at
     * 2000 ms. Lets integration tests and CI pin a request in-flight
     * to drive the 503 backpressure and drain paths deterministically.
     */
    int sleepMs = 0;

    /** Per-request wall-clock budget in milliseconds; 0 = none. The
     *  server clamps it to its --max-deadline-ms cap. */
    std::int64_t deadlineMs = 0;

    /** Per-request candidate-count budget; 0 = none. Clamped to the
     *  server's --max-candidates cap. */
    std::int64_t maxCandidates = 0;

    /** Ask for a resumable check: a budget-tripped verdict record
     *  carries a rex-cont-v1 "continuation" member the client can POST
     *  back as "resume" to pick up where the budget tripped. */
    bool resumable = false;

    /** A continuation token from a prior ExhaustedBudget record.
     *  Requires exactly one variant (a token names one (test, variant)
     *  job); implies resumable. */
    std::string resume;

    /**
     * Parse and validate a JSON request body.
     * @throws FatalError with a client-facing diagnostic on malformed
     *         JSON, a missing/empty "test" member, or unknown variants.
     */
    static CheckRequest fromJson(const std::string &body);

    /**
     * The canonical content key this request hashes to for caching:
     * a length-prefixed serialisation of the litmus text, the variant
     * set, and the budgets. Two bodies differing only in JSON key
     * order or whitespace share a key; sleep_ms (a test hook that
     * cannot change verdicts) is excluded.
     */
    std::string canonicalKey() const;
};

/**
 * Deterministic strong ETag for a canonical request key under
 * @p revision: `"<16 hex digits>"`, quotes included as HTTP requires.
 * Bumping engine::kModelRevision changes every ETag, which is what
 * invalidates external caches when model semantics change.
 */
std::string verdictETag(const std::string &canonicalKey,
                        const std::string &revision);

/**
 * Thrown by runCheckStreaming() when a resume token's fingerprint does
 * not match the job it is being replayed against (test source edited,
 * model revision bumped, or the token tampered with). Surfaces as
 * 409 Conflict — the request is well-formed, the state disagrees.
 */
struct ResumeRefusedError : public std::runtime_error {
    using std::runtime_error::runtime_error;
};

/** A /check run's body plus its cacheability. */
struct CheckOutcome {
    /** Full JSONL response body, one record per variant. */
    std::string body;

    /** False when any record is ExhaustedBudget/CrashedWorker/
     *  Quarantined — those depend on machine state, not request
     *  content, so the response must not be cached. */
    bool deterministic = true;
};

/** The route handler shared by rexd, tests, and `rex_client --direct`. */
class CheckService
{
  public:
    /**
     * @param maxDeadlineMs  server-side wall-clock budget cap applied
     *        to every /check: requests asking for more (or for nothing)
     *        are clamped down to it; 0 = no server-imposed deadline.
     * @param maxCandidates  likewise for the candidate-count budget.
     * @param cacheMaxAgeSeconds  `max-age` advertised on deterministic
     *        200s (how long a CDN/reverse proxy may serve the verdict
     *        without revalidating).
     */
    CheckService(engine::Engine &engine, Metrics &metrics,
                 std::uint64_t maxDeadlineMs = 0,
                 std::uint64_t maxCandidates = 0,
                 int cacheMaxAgeSeconds = 86400)
        : _engine(engine), _metrics(metrics),
          _maxDeadlineMs(maxDeadlineMs), _maxCandidates(maxCandidates),
          _cacheMaxAgeSeconds(cacheMaxAgeSeconds)
    {}

    /** Dispatch one request; never throws (errors become responses). */
    HttpResponse handle(const HttpRequest &request);

    /**
     * Dispatch a check-route request (POST /check or GET /check/<name>,
     * wrong-method 405s included), with verdict records streamed to
     * @p onChunk as they are produced. Metrics are fully counted here;
     * the returned response always carries the complete body.
     */
    HttpResponse
    handleCheckRoute(const HttpRequest &request,
                     const std::function<void(const std::string &)>
                         &onChunk = {});

    /**
     * Run one validated check: the JSONL response body, one
     * docs/FORMAT.md verdict record per variant in request order.
     */
    std::string runCheck(const CheckRequest &request);

    /**
     * runCheck plus cacheability: @p onChunk (when set) receives each
     * verdict record as soon as it exists — this is what lets a handler
     * thread stream records through the event loop's completion queue
     * while later variants are still being checked.
     */
    CheckOutcome
    runCheckStreaming(const CheckRequest &request,
                      const std::function<void(const std::string &)>
                          &onChunk = {});

    /**
     * Event-loop fast path: when @p request targets the check route
     * and carries an `If-None-Match` matching its ETag, fill @p out
     * with the 304 (metrics counted) and return true — the engine and
     * its pool are never touched. Any other request (no validator, a
     * stale one, or a body that fails validation) returns false and
     * takes the full handler-thread path.
     */
    bool tryNotModified(const HttpRequest &request, HttpResponse &out);

    /** True when @p request targets /check or /check/<name> (any
     *  method — 405s are the check route's too). */
    static bool isCheckRoute(const HttpRequest &request);

    /** True when @p request targets the /shard peer primitive. */
    static bool isShardRoute(const HttpRequest &request);

    /**
     * Serve one POST /shard request (docs/DISTRIBUTED.md): validate
     * the job fingerprint against this node's model revision (409 on
     * mismatch — never silently compute against a different model),
     * run the requested shard range or hammer seed chunk on the shared
     * engine, and answer partial counts + resume cursor as one JSON
     * line sealed in a rex-shard-v1 integrity envelope
     * (server/envelope.hh). Never re-dispatches: peers do not fan out
     * further.
     *
     * @param trusted true for the coordinator's own audit/ground-truth
     *        recomputations (PeerPool local compute): the Byzantine
     *        fault points (peer-lie / peer-corrupt-frame /
     *        peer-stale-revision) are consulted only on the untrusted
     *        wire path, and trusted calls skip the shard request
     *        counters — a node auditing itself is not peer traffic.
     */
    HttpResponse handleShard(const HttpRequest &request,
                             bool trusted = false);

    /**
     * PeerPool::setLocalCompute() adapter: run @p shardBody against
     * this node's own engine as audit ground truth and return the
     * *payload* (envelope opened and verified); "" when the shard
     * request itself fails. Never lies, never counts as peer traffic.
     */
    std::string shardLocalCompute(const std::string &shardBody);

    /**
     * Route budget-eligible checks through peer dispatch: when set,
     * distributable checks (source-carrying, no candidate ceiling) go
     * through engine::Engine::verdictRecordResumable with @p dispatcher
     * offered the shard plan. Not owned.
     */
    void setDispatcher(engine::RangeDispatcher *dispatcher)
    {
        _dispatcher = dispatcher;
    }
    engine::RangeDispatcher *dispatcher() const { return _dispatcher; }

    Metrics &metrics() { return _metrics; }
    engine::Engine &engine() { return _engine; }

  private:
    HttpResponse
    handleCheck(const HttpRequest &request,
                const std::function<void(const std::string &)> &onChunk);

    /**
     * Build the validated CheckRequest for POST /check (JSON body) or
     * GET /check/<name> (registry lookup + query string). On failure
     * fills @p error (400 bad input / 404 unknown builtin) and returns
     * false.
     */
    bool buildCheckRequest(const HttpRequest &request, CheckRequest &out,
                           HttpResponse &error) const;

    engine::Engine &_engine;
    Metrics &_metrics;
    std::uint64_t _maxDeadlineMs = 0;
    std::uint64_t _maxCandidates = 0;
    int _cacheMaxAgeSeconds = 86400;
    engine::RangeDispatcher *_dispatcher = nullptr;
};

} // namespace rex::server

#endif // REX_SERVER_SERVICE_HH
