/**
 * @file
 * Distributed soundness-hammer campaigns over the /shard wire format.
 *
 * The hammer's unit of distribution is the seed chunk — the same unit
 * Hammer::run() already checkpoints on — so the distributed campaign
 * is the local one with engine.map() swapped for peer dispatch: seed
 * chunks go out in waves through PeerPool::runWireTasks() as
 * `{"kind": "hammer"}` /shard requests, every chunk no peer answered
 * is run locally (fault tolerance by local fallback, exactly like
 * check dispatch), and the per-chunk results merge in seed order, so
 * the final CampaignSummary is byte-identical to a single-node run of
 * the same config — peers or no peers, failures or none.
 *
 * Job identity rides on Hammer::fingerprint(), which covers the full
 * config plus the generator and model revisions: a peer reconstructs
 * the Hammer from the wire config and refuses with 409 unless its own
 * fingerprint matches, so two builds that would generate different
 * tests for the same seed can never silently mix results.
 */

#ifndef REX_SERVER_HAMMERDIST_HH
#define REX_SERVER_HAMMERDIST_HH

#include <cstdint>
#include <string>

#include "gen/hammer.hh"
#include "server/http.hh"
#include "server/metrics.hh"
#include "server/peer.hh"

namespace rex::engine { class Engine; }

namespace rex::server {

class JsonValue;

/** One /shard hammer request body for seeds [@p seedBegin, @p seedEnd)
 *  of @p hammer's campaign. */
std::string hammerShardBody(const gen::Hammer &hammer,
                            std::uint64_t seedBegin,
                            std::uint64_t seedEnd);

/**
 * Serve one parsed `{"kind": "hammer"}` /shard request on @p engine:
 * reconstruct the Hammer from the wire config, verify the fingerprint
 * (409 on mismatch), run the seed chunk through engine.map(), answer
 * aggregated counts + violation seeds as one JSON line sealed in a
 * rex-shard-v1 envelope under program `shard-hammer:<fingerprint>`.
 * @p metrics counts the refusals. @p trusted marks the coordinator's
 * own audit recomputation: Byzantine fault points stay dormant
 * (see CheckService::handleShard).
 */
HttpResponse handleHammerShard(engine::Engine &engine,
                               const JsonValue &root, Metrics &metrics,
                               bool trusted = false);

/**
 * Run @p hammer's campaign with seed chunks fanned over @p peers
 * (local fallback for everything unfilled), checkpointing and
 * resuming exactly like Hammer::run(). The summary is byte-identical
 * to a local run of the same config.
 */
gen::CampaignSummary runDistributedHammer(const gen::Hammer &hammer,
                                          engine::Engine &engine,
                                          PeerPool &peers);

} // namespace rex::server

#endif // REX_SERVER_HAMMERDIST_HH
