#include "server/service.hh"

#include <chrono>
#include <thread>

#include "axiomatic/params.hh"
#include "base/logging.hh"
#include "catc/cache.hh"
#include "engine/batch.hh"
#include "litmus/parser.hh"
#include "server/json.hh"

namespace rex::server {

namespace {

/** Microseconds elapsed since @p start. */
std::uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/** The variant names /check accepts, in ModelParams::byName's terms. */
void
validateVariant(const std::string &name)
{
    // byName() itself fatal()s with a clear message on unknown names;
    // calling it here surfaces that as a 400 before any work is done.
    (void)ModelParams::byName(name);
}

} // namespace

CheckRequest
CheckRequest::fromJson(const std::string &body)
{
    JsonValue root = parseJson(body);
    if (!root.isObject())
        fatal("request body must be a JSON object");

    CheckRequest request;
    const JsonValue *test = root.find("test");
    if (!test || !test->isString() || test->string.empty())
        fatal("request needs a non-empty string member \"test\"");
    request.testText = test->string;

    if (const JsonValue *variants = root.find("variants")) {
        if (variants->isString()) {
            if (variants->string == "paper") {
                for (const ModelParams &params :
                         ModelParams::paperVariants()) {
                    request.variants.push_back(params.name());
                }
            } else {
                validateVariant(variants->string);
                request.variants.push_back(variants->string);
            }
        } else if (variants->isArray()) {
            if (variants->array.size() > 32)
                fatal("too many variants (max 32)");
            for (const JsonValue &entry : variants->array) {
                if (!entry.isString())
                    fatal("\"variants\" entries must be strings");
                validateVariant(entry.string);
                request.variants.push_back(entry.string);
            }
        } else {
            fatal("\"variants\" must be an array of names or \"paper\"");
        }
    }
    if (request.variants.empty())
        request.variants.push_back("base");

    if (const JsonValue *sleep = root.find("sleep_ms")) {
        if (!sleep->isInt() || sleep->integer < 0)
            fatal("\"sleep_ms\" must be a non-negative integer");
        request.sleepMs =
            static_cast<int>(std::min<std::int64_t>(sleep->integer, 2000));
    }

    if (const JsonValue *deadline = root.find("deadline_ms")) {
        if (!deadline->isInt() || deadline->integer < 0)
            fatal("\"deadline_ms\" must be a non-negative integer");
        request.deadlineMs = deadline->integer;
    }
    if (const JsonValue *ceiling = root.find("max_candidates")) {
        if (!ceiling->isInt() || ceiling->integer < 0)
            fatal("\"max_candidates\" must be a non-negative integer");
        request.maxCandidates = ceiling->integer;
    }

    for (const auto &[key, value] : root.object) {
        if (key != "test" && key != "variants" && key != "sleep_ms" &&
                key != "deadline_ms" && key != "max_candidates") {
            fatal("unknown request member \"" + key + "\"");
        }
    }
    return request;
}

namespace {

/** Clamp a requested per-job limit against a server cap (0 = none on
 *  either side): the effective limit is the tighter of the two. */
std::uint64_t
clampLimit(std::int64_t requested, std::uint64_t cap)
{
    std::uint64_t value = requested > 0
                              ? static_cast<std::uint64_t>(requested)
                              : 0;
    if (cap != 0 && (value == 0 || value > cap))
        value = cap;
    return value;
}

} // namespace

std::string
CheckService::runCheck(const CheckRequest &request)
{
    if (request.sleepMs > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(request.sleepMs));
    }

    auto parse_start = std::chrono::steady_clock::now();
    LitmusTest test = parseLitmus(request.testText);
    _metrics.stageParse.observe(microsSince(parse_start));

    engine::Budget budget;
    budget.deadlineMicros =
        clampLimit(request.deadlineMs, _maxDeadlineMs) * 1000;
    budget.maxCandidates =
        clampLimit(request.maxCandidates, _maxCandidates);

    std::string body;
    for (const std::string &variant : request.variants) {
        // Warm the variant's compiled program before the check is
        // timed; after the first request per variant this is a cache
        // hit, so the histogram isolates actual compile cost.
        if (catc::compiledModelEnabled()) {
            auto compile_start = std::chrono::steady_clock::now();
            catc::nativeStaged(ModelParams::byName(variant));
            _metrics.stageCompile.observe(microsSince(compile_start));
        }
        auto check_start = std::chrono::steady_clock::now();
        engine::JobRecord record =
            budget.unlimited()
                ? _engine.verdictRecord(test, ModelParams::byName(variant))
                : _engine.verdictRecord(test, ModelParams::byName(variant),
                                        budget);
        _metrics.stageCheck.observe(microsSince(check_start));
        if (!record.cacheHit)
            _metrics.stageEnumerate.observe(record.wallMicros);
        if (record.verdict == "Allowed") {
            ++_metrics.verdictsAllowed;
        } else if (record.verdict == "ExhaustedBudget") {
            ++_metrics.verdictsExhausted;
            _metrics.countBudgetTrip(record.exhaustedAxis);
        } else if (record.verdict == "CrashedWorker") {
            ++_metrics.verdictsCrashed;
        } else if (record.verdict == "Quarantined") {
            ++_metrics.verdictsQuarantined;
        } else {
            ++_metrics.verdictsForbidden;
        }
        body += record.toJson();
        body += '\n';
    }
    return body;
}

HttpResponse
CheckService::handleCheck(const HttpRequest &request)
{
    auto start = std::chrono::steady_clock::now();
    CheckRequest check;
    try {
        check = CheckRequest::fromJson(request.body);
    } catch (const FatalError &err) {
        return HttpResponse::error(400, err.what());
    }

    HttpResponse response;
    try {
        response.body = runCheck(check);
        response.contentType = "application/x-ndjson";
    } catch (const FatalError &err) {
        // Litmus parse/validation errors: the client's fault.
        return HttpResponse::error(400, err.what());
    } catch (const std::exception &err) {
        // Model/internal errors: ours.
        return HttpResponse::error(500, err.what());
    }
    _metrics.stageRequest.observe(microsSince(start));
    return response;
}

HttpResponse
CheckService::handle(const HttpRequest &request)
{
    HttpResponse response;
    if (request.path == "/check") {
        if (request.method != "POST") {
            ++_metrics.requestsOther;
            response = HttpResponse::error(405, "POST /check");
            response.extraHeaders["Allow"] = "POST";
        } else {
            ++_metrics.requestsCheck;
            response = handleCheck(request);
        }
    } else if (request.path == "/metrics") {
        if (request.method != "GET") {
            ++_metrics.requestsOther;
            response = HttpResponse::error(405, "GET /metrics");
            response.extraHeaders["Allow"] = "GET";
        } else {
            ++_metrics.requestsMetrics;
            response.body = _metrics.render(_engine);
            response.contentType =
                "text/plain; version=0.0.4; charset=utf-8";
        }
    } else if (request.path == "/healthz") {
        if (request.method != "GET") {
            ++_metrics.requestsOther;
            response = HttpResponse::error(405, "GET /healthz");
            response.extraHeaders["Allow"] = "GET";
        } else {
            ++_metrics.requestsHealth;
            response = HttpResponse::text(200, "ok\n");
        }
    } else {
        ++_metrics.requestsOther;
        response = HttpResponse::error(
            404, "no such route: " + request.path);
    }
    _metrics.countResponse(response.status);
    return response;
}

} // namespace rex::server
