#include "server/service.hh"

#include <chrono>
#include <cinttypes>
#include <thread>

#include "axiomatic/checker.hh"
#include "axiomatic/params.hh"
#include "base/logging.hh"
#include "base/strings.hh"
#include "catc/cache.hh"
#include "engine/batch.hh"
#include "engine/cache.hh"
#include "engine/continuation.hh"
#include "engine/faultinject.hh"
#include "litmus/parser.hh"
#include "litmus/registry.hh"
#include "server/envelope.hh"
#include "server/hammerdist.hh"
#include "server/json.hh"

namespace rex::server {

namespace {

/** Microseconds elapsed since @p start. */
std::uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/** The variant names /check accepts, in ModelParams::byName's terms. */
void
validateVariant(const std::string &name)
{
    // byName() itself fatal()s with a clear message on unknown names;
    // calling it here surfaces that as a 400 before any work is done.
    (void)ModelParams::byName(name);
}

} // namespace

CheckRequest
CheckRequest::fromJson(const std::string &body)
{
    JsonValue root = parseJson(body);
    if (!root.isObject())
        fatal("request body must be a JSON object");

    CheckRequest request;
    const JsonValue *test = root.find("test");
    if (!test || !test->isString() || test->string.empty())
        fatal("request needs a non-empty string member \"test\"");
    request.testText = test->string;

    if (const JsonValue *variants = root.find("variants")) {
        if (variants->isString()) {
            if (variants->string == "paper") {
                for (const ModelParams &params :
                         ModelParams::paperVariants()) {
                    request.variants.push_back(params.name());
                }
            } else {
                validateVariant(variants->string);
                request.variants.push_back(variants->string);
            }
        } else if (variants->isArray()) {
            if (variants->array.size() > 32)
                fatal("too many variants (max 32)");
            for (const JsonValue &entry : variants->array) {
                if (!entry.isString())
                    fatal("\"variants\" entries must be strings");
                validateVariant(entry.string);
                request.variants.push_back(entry.string);
            }
        } else {
            fatal("\"variants\" must be an array of names or \"paper\"");
        }
    }
    if (request.variants.empty())
        request.variants.push_back("base");

    if (const JsonValue *sleep = root.find("sleep_ms")) {
        if (!sleep->isInt() || sleep->integer < 0)
            fatal("\"sleep_ms\" must be a non-negative integer");
        request.sleepMs =
            static_cast<int>(std::min<std::int64_t>(sleep->integer, 2000));
    }

    if (const JsonValue *deadline = root.find("deadline_ms")) {
        if (!deadline->isInt() || deadline->integer < 0)
            fatal("\"deadline_ms\" must be a non-negative integer");
        request.deadlineMs = deadline->integer;
    }
    if (const JsonValue *ceiling = root.find("max_candidates")) {
        if (!ceiling->isInt() || ceiling->integer < 0)
            fatal("\"max_candidates\" must be a non-negative integer");
        request.maxCandidates = ceiling->integer;
    }

    if (const JsonValue *resumable = root.find("resumable")) {
        if (!resumable->isBool())
            fatal("\"resumable\" must be a boolean");
        request.resumable = resumable->boolean;
    }
    if (const JsonValue *resume = root.find("resume")) {
        if (!resume->isString() || resume->string.empty())
            fatal("\"resume\" must be a non-empty string token");
        request.resume = resume->string;
        request.resumable = true;
        if (request.variants.size() != 1) {
            fatal("\"resume\" requires exactly one variant (a "
                  "continuation token names one (test, variant) job)");
        }
    }

    for (const auto &[key, value] : root.object) {
        if (key != "test" && key != "variants" && key != "sleep_ms" &&
                key != "deadline_ms" && key != "max_candidates" &&
                key != "resumable" && key != "resume") {
            fatal("unknown request member \"" + key + "\"");
        }
    }
    return request;
}

std::string
CheckRequest::canonicalKey() const
{
    // Length-prefix every free-form field so no crafted litmus text can
    // collide with another request's serialisation.
    std::string key = format("check1:test:%zu:", testText.size());
    key += testText;
    key += format(":variants:%zu", variants.size());
    for (const std::string &variant : variants) {
        key += format(":%zu:", variant.size());
        key += variant;
    }
    key += format(":deadline_ms:%" PRId64 ":max_candidates:%" PRId64,
                  deadlineMs, maxCandidates);
    // Resumable requests answer with an extra member (the continuation
    // token) and resumed ones start from a different cursor: both must
    // key — and therefore ETag — differently from the plain form.
    if (resumable)
        key += ":resumable:1";
    if (!resume.empty()) {
        key += format(":resume:%zu:", resume.size());
        key += resume;
    }
    return key;
}

std::string
verdictETag(const std::string &canonicalKey, const std::string &revision)
{
    // FNV-1a, same function the verdict cache uses for content
    // addresses: cheap, stable across builds, collision-safe enough
    // for a cache validator.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    auto mix = [&hash](const std::string &text) {
        for (unsigned char c : text) {
            hash ^= c;
            hash *= 0x100000001b3ull;
        }
    };
    mix(revision);
    hash ^= 0xff;
    hash *= 0x100000001b3ull;
    mix(canonicalKey);
    return format("\"%016" PRIx64 "\"", hash);
}

namespace {

/** Clamp a requested per-job limit against a server cap (0 = none on
 *  either side): the effective limit is the tighter of the two. */
std::uint64_t
clampLimit(std::int64_t requested, std::uint64_t cap)
{
    std::uint64_t value = requested > 0
                              ? static_cast<std::uint64_t>(requested)
                              : 0;
    if (cap != 0 && (value == 0 || value > cap))
        value = cap;
    return value;
}

} // namespace

std::string
CheckService::runCheck(const CheckRequest &request)
{
    return runCheckStreaming(request).body;
}

CheckOutcome
CheckService::runCheckStreaming(
    const CheckRequest &request,
    const std::function<void(const std::string &)> &onChunk)
{
    if (request.sleepMs > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(request.sleepMs));
    }

    // A malformed resume token is the client's fault (400) and is
    // rejected before any engine work.
    engine::ContinuationState resumeState;
    const bool haveResume = !request.resume.empty();
    if (haveResume) {
        std::string parseError;
        if (!engine::parseContinuation(request.resume, resumeState,
                                       &parseError)) {
            ++_metrics.continuationRefused;
            fatal("malformed continuation token: " + parseError);
        }
    }

    auto parse_start = std::chrono::steady_clock::now();
    LitmusTest test = parseLitmus(request.testText);
    _metrics.stageParse.observe(microsSince(parse_start));

    // A well-formed token from a different job — edited test source,
    // other variant, bumped model revision, or altered payload — fails
    // the fingerprint and is refused with 409: resuming it against
    // this job would silently merge counts from two different plans.
    if (haveResume) {
        const std::string &fingerprintSource =
            test.sourceText.empty() ? test.name : test.sourceText;
        const std::uint64_t expected = engine::continuationFingerprint(
            fingerprintSource, request.variants[0],
            engine::kModelRevision, resumeState);
        if (expected != resumeState.fingerprint) {
            ++_metrics.continuationRefused;
            throw ResumeRefusedError(
                "continuation fingerprint mismatch: the token was "
                "issued for a different test source, variant, or "
                "model revision");
        }
        ++_metrics.resumeAccepted;
    }

    engine::Budget budget;
    budget.deadlineMicros =
        clampLimit(request.deadlineMs, _maxDeadlineMs) * 1000;
    budget.maxCandidates =
        clampLimit(request.maxCandidates, _maxCandidates);

    CheckOutcome outcome;
    for (const std::string &variant : request.variants) {
        // Warm the variant's compiled program before the check is
        // timed; after the first request per variant this is a cache
        // hit, so the histogram isolates actual compile cost.
        if (catc::compiledModelEnabled()) {
            auto compile_start = std::chrono::steady_clock::now();
            catc::nativeStaged(ModelParams::byName(variant));
            _metrics.stageCompile.observe(microsSince(compile_start));
        }
        auto check_start = std::chrono::steady_clock::now();
        // Resumable/resumed checks and peer dispatch share one path:
        // the shard-range merge loop behind continuation tokens.
        // Everything else keeps the legacy verdict path byte-for-byte.
        engine::JobRecord record;
        if (request.resumable || _dispatcher) {
            record = _engine.verdictRecordResumable(
                test, ModelParams::byName(variant), budget,
                haveResume ? &resumeState : nullptr, _dispatcher);
            if (!request.resumable) {
                // Dispatcher-only (the request did not opt in):
                // distribute, but keep the legacy record shape.
                record.continuation.clear();
            } else if (!record.continuation.empty()) {
                ++_metrics.continuationsIssued;
            }
        } else {
            record =
                budget.unlimited()
                    ? _engine.verdictRecord(test,
                                            ModelParams::byName(variant))
                    : _engine.verdictRecord(
                          test, ModelParams::byName(variant), budget);
        }
        _metrics.stageCheck.observe(microsSince(check_start));
        if (!record.cacheHit)
            _metrics.stageEnumerate.observe(record.wallMicros);
        if (record.verdict == "Allowed") {
            ++_metrics.verdictsAllowed;
        } else if (record.verdict == "ExhaustedBudget") {
            ++_metrics.verdictsExhausted;
            _metrics.countBudgetTrip(record.exhaustedAxis);
            outcome.deterministic = false;
        } else if (record.verdict == "CrashedWorker") {
            ++_metrics.verdictsCrashed;
            outcome.deterministic = false;
        } else if (record.verdict == "Quarantined") {
            ++_metrics.verdictsQuarantined;
            outcome.deterministic = false;
        } else {
            ++_metrics.verdictsForbidden;
        }
        std::string chunk = record.toJson();
        chunk += '\n';
        if (onChunk)
            onChunk(chunk);
        outcome.body += chunk;
    }
    return outcome;
}

namespace {

/** True when an If-None-Match header value matches @p etag (strong
 *  comparison; tolerates a comma-separated validator list and `*`). */
bool
etagMatches(const std::string &headerValue, const std::string &etag)
{
    if (trim(headerValue) == "*")
        return true;
    return headerValue.find(etag) != std::string::npos;
}

} // namespace

bool
CheckService::isCheckRoute(const HttpRequest &request)
{
    return request.path == "/check" ||
           startsWith(request.path, "/check/");
}

bool
CheckService::isShardRoute(const HttpRequest &request)
{
    return request.path == "/shard";
}

namespace {

/** Unsigned integer member of a /shard body, with fallback. */
std::uint64_t
shardU64(const JsonValue &root, const char *key, std::uint64_t fallback)
{
    const JsonValue *value = root.find(key);
    if (!value || !value->isInt() || value->integer < 0)
        return fallback;
    return static_cast<std::uint64_t>(value->integer);
}

/** Parse a 16-hex-digit "fingerprint" member; 0 on malformed. */
std::uint64_t
shardFingerprint(const JsonValue &root)
{
    const JsonValue *value = root.find("fingerprint");
    if (!value || !value->isString() || value->string.size() != 16)
        return 0;
    std::uint64_t print = 0;
    for (char c : value->string) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return 0;
        print = (print << 4) | static_cast<std::uint64_t>(digit);
    }
    return print;
}

} // namespace

HttpResponse
CheckService::handleShard(const HttpRequest &request, bool trusted)
{
    if (!trusted)
        ++_metrics.shardRequests;
    JsonValue root;
    try {
        root = parseJson(request.body);
    } catch (const FatalError &err) {
        return HttpResponse::error(400, err.what());
    }
    if (!root.isObject()) {
        return HttpResponse::error(400,
                                   "request body must be a JSON object");
    }

    const JsonValue *kind = root.find("kind");
    const std::string kindName =
        kind && kind->isString() ? kind->string : "check";
    if (kindName == "hammer") {
        try {
            return handleHammerShard(_engine, root, _metrics, trusted);
        } catch (const FatalError &err) {
            return HttpResponse::error(400, err.what());
        } catch (const std::exception &err) {
            return HttpResponse::error(500, err.what());
        }
    }
    if (kindName != "check") {
        return HttpResponse::error(
            400, "unknown shard kind \"" + kindName + "\"");
    }

    const JsonValue *test = root.find("test");
    if (!test || !test->isString() || test->string.empty()) {
        return HttpResponse::error(
            400, "shard request needs a non-empty \"test\"");
    }
    const JsonValue *variant = root.find("variant");
    if (!variant || !variant->isString()) {
        return HttpResponse::error(
            400, "shard request needs a \"variant\" name");
    }

    const std::uint64_t planTarget =
        shardU64(root, "plan_target", kCheckShardTarget);
    const std::uint64_t planSize = shardU64(root, "plan_size", 0);
    const std::uint64_t shardBegin = shardU64(root, "shard_begin", 0);
    const std::uint64_t shardEnd =
        shardU64(root, "shard_end", ~std::uint64_t(0));
    const std::uint64_t offset = shardU64(root, "offset", 0);
    const std::uint64_t deadlineMs = shardU64(root, "deadline_ms", 0);
    if (shardEnd <= shardBegin)
        return HttpResponse::error(400, "empty shard range");

    // Verify the job identity against *this* node's model revision:
    // "shard i" only means the same candidates on both ends when the
    // source, variant, revision, and plan target all agree. A mismatch
    // is refused — never silently computed against a different model.
    const std::uint64_t wirePrint = shardFingerprint(root);
    const std::uint64_t expected = engine::shardJobFingerprint(
        test->string, variant->string, engine::kModelRevision,
        planTarget);
    if (wirePrint == 0 || wirePrint != expected) {
        ++_metrics.shardRefused;
        return HttpResponse::error(
            409, "shard fingerprint mismatch: peer model revision or "
                 "job identity differs from the coordinator's");
    }

    try {
        (void)ModelParams::byName(variant->string);
        LitmusTest parsed = parseLitmus(test->string);

        ShardRangeSpec spec;
        spec.planTarget = planTarget;
        spec.shardBegin = shardBegin;
        spec.shardEnd = shardEnd;
        spec.inShardOffset = offset;
        spec.jobFingerprint = wirePrint;

        engine::Budget budget;
        budget.deadlineMicros =
            clampLimit(static_cast<std::int64_t>(deadlineMs),
                       _maxDeadlineMs) *
            1000;

        ShardRangeOutcome outcome = _engine.runShardRange(
            parsed, ModelParams::byName(variant->string), spec,
            budget.unlimited() ? nullptr : &budget);

        // The coordinator's plan size travels with every request; a
        // disagreement after re-planning means the two nodes would
        // mean different candidates by the same shard index.
        if (outcome.planned && planSize != 0 &&
                planSize != outcome.planSize) {
            ++_metrics.shardRefused;
            return HttpResponse::error(
                409, format("shard plan mismatch: coordinator plans %"
                            PRIu64 " shards, this node %" PRIu64,
                            planSize, outcome.planSize));
        }

        const CheckResult &result = outcome.result;

        // peer-lie (Byzantine injection, --byzantine-spec): perturb the
        // counters *before* sealing, so the envelope digests the wrong
        // answer self-consistently — only an audit can catch it.
        std::size_t lieBias = 0;
        if (!trusted && engine::faultInjector().shouldFail(
                            engine::FaultPoint::PeerLie))
            lieBias = 1;

        std::string body = format(
            "{\"planned\":%s,\"completed\":%s,\"witnessed\":%s"
            ",\"next_shard\":%" PRIu64 ",\"next_offset\":%" PRIu64
            ",\"candidates\":%zu,\"consistent\":%zu,\"witnesses\":%zu"
            ",\"cu\":%zu,\"unknown\":%zu,\"plan_size\":%" PRIu64,
            outcome.planned ? "true" : "false",
            outcome.completed ? "true" : "false",
            outcome.witnessed ? "true" : "false", outcome.nextShard,
            outcome.nextOffset, result.candidates + lieBias,
            result.consistent, result.witnesses + lieBias,
            result.constrainedUnpredictable,
            result.unknownSideEffects, outcome.planSize);
        if (!result.forbiddingAxiom.empty()) {
            body += format(
                ",\"axiom\":\"%s\",\"cycle\":[",
                engine::jsonEscape(result.forbiddingAxiom).c_str());
            for (std::size_t i = 0; i < result.forbiddingCycle.size();
                 ++i) {
                if (i > 0)
                    body += ",";
                body += format("%u", result.forbiddingCycle[i]);
            }
            body += "]";
        }
        body += "}";

        HttpResponse response;
        response.body = sealShardResponse(
            body, "shard-check:" + variant->string, trusted);
        response.contentType = "application/json";
        return response;
    } catch (const FatalError &err) {
        return HttpResponse::error(400, err.what());
    } catch (const std::exception &err) {
        return HttpResponse::error(500, err.what());
    }
}

std::string
CheckService::shardLocalCompute(const std::string &shardBody)
{
    HttpRequest request;
    request.method = "POST";
    request.path = "/shard";
    request.body = shardBody;
    HttpResponse response = handleShard(request, /*trusted=*/true);
    if (response.status != 200)
        return "";
    std::string payload;
    std::string error;
    if (!openShardEnvelope(response.body, "", engine::kModelRevision,
                           payload, error)) {
        warn("local shard recompute sealed an unopenable envelope: " +
             error);
        return "";
    }
    return payload;
}

bool
CheckService::buildCheckRequest(const HttpRequest &request,
                                CheckRequest &out,
                                HttpResponse &error) const
{
    if (request.path == "/check") {
        try {
            out = CheckRequest::fromJson(request.body);
        } catch (const FatalError &err) {
            error = HttpResponse::error(400, err.what());
            return false;
        }
        return true;
    }

    // GET /check/<builtin>?variants=...&deadline_ms=...: the registry
    // test's exact source text, so the alias shares verdict-cache
    // entries and ETags with a POST of the same builtin.
    std::string name = urlDecode(request.path.substr(7));
    const TestRegistry &registry = TestRegistry::instance();
    if (name.empty() || !registry.has(name)) {
        error = HttpResponse::error(404, "no such builtin test: " + name);
        return false;
    }
    CheckRequest check;
    check.testText = registry.sourceText(name);
    try {
        for (const std::string &pair : split(request.query, '&')) {
            if (pair.empty())
                continue;
            auto equals = pair.find('=');
            std::string key = urlDecode(pair.substr(0, equals));
            std::string value =
                equals == std::string::npos
                    ? ""
                    : urlDecode(pair.substr(equals + 1));
            if (key == "variants") {
                if (value == "paper") {
                    for (const ModelParams &params :
                             ModelParams::paperVariants()) {
                        check.variants.push_back(params.name());
                    }
                } else {
                    for (const std::string &variant : split(value, ',')) {
                        (void)ModelParams::byName(variant);
                        check.variants.push_back(variant);
                    }
                }
                if (check.variants.size() > 32)
                    fatal("too many variants (max 32)");
            } else if (key == "deadline_ms" || key == "max_candidates") {
                std::int64_t parsed;
                if (!parseInteger(value, parsed) || parsed < 0) {
                    fatal("\"" + key +
                          "\" must be a non-negative integer");
                }
                (key == "deadline_ms" ? check.deadlineMs
                                      : check.maxCandidates) = parsed;
            } else {
                fatal("unknown query parameter \"" + key + "\"");
            }
        }
    } catch (const FatalError &err) {
        error = HttpResponse::error(400, err.what());
        return false;
    }
    if (check.variants.empty())
        check.variants.push_back("base");
    out = std::move(check);
    return true;
}

bool
CheckService::tryNotModified(const HttpRequest &request,
                             HttpResponse &out)
{
    if (!isCheckRoute(request))
        return false;
    if (request.path == "/check" ? request.method != "POST"
                                 : request.method != "GET")
        return false;
    auto validator = request.headers.find("if-none-match");
    if (validator == request.headers.end())
        return false;

    CheckRequest check;
    HttpResponse error;
    if (!buildCheckRequest(request, check, error))
        return false;  // the full handler path reproduces the error
    std::string etag =
        verdictETag(check.canonicalKey(), engine::kModelRevision);
    if (!etagMatches(validator->second, etag))
        return false;

    ++_metrics.requestsCheck;
    ++_metrics.http304;
    out = HttpResponse();
    out.status = 304;
    out.extraHeaders["ETag"] = etag;
    out.extraHeaders["Cache-Control"] =
        format("public, max-age=%d", _cacheMaxAgeSeconds);
    _metrics.countResponse(304);
    return true;
}

HttpResponse
CheckService::handleCheck(
    const HttpRequest &request,
    const std::function<void(const std::string &)> &onChunk)
{
    auto start = std::chrono::steady_clock::now();
    CheckRequest check;
    HttpResponse error;
    if (!buildCheckRequest(request, check, error))
        return error;

    std::string etag =
        verdictETag(check.canonicalKey(), engine::kModelRevision);
    std::string cacheable =
        format("public, max-age=%d", _cacheMaxAgeSeconds);

    // Conditional request whose validator still matches: answer from
    // the ETag alone. (The daemon short-circuits this on its event
    // loop via tryNotModified(); this covers --direct and tests that
    // call handle() straight.)
    auto validator = request.headers.find("if-none-match");
    if (validator != request.headers.end() &&
            etagMatches(validator->second, etag)) {
        ++_metrics.http304;
        HttpResponse response;
        response.status = 304;
        response.extraHeaders["ETag"] = etag;
        response.extraHeaders["Cache-Control"] = cacheable;
        return response;
    }

    HttpResponse response;
    try {
        CheckOutcome outcome = runCheckStreaming(check, onChunk);
        response.body = std::move(outcome.body);
        response.contentType = "application/x-ndjson";
        response.extraHeaders["ETag"] = etag;
        response.extraHeaders["Cache-Control"] =
            outcome.deterministic ? cacheable : "no-store";
    } catch (const ResumeRefusedError &err) {
        // A stale or tampered continuation token: well-formed request,
        // conflicting state.
        return HttpResponse::error(409, err.what());
    } catch (const FatalError &err) {
        // Litmus parse/validation errors: the client's fault.
        return HttpResponse::error(400, err.what());
    } catch (const std::exception &err) {
        // Model/internal errors: ours.
        return HttpResponse::error(500, err.what());
    }
    _metrics.stageRequest.observe(microsSince(start));
    return response;
}

HttpResponse
CheckService::handleCheckRoute(
    const HttpRequest &request,
    const std::function<void(const std::string &)> &onChunk)
{
    HttpResponse response;
    if (isShardRoute(request)) {
        if (request.method != "POST") {
            ++_metrics.requestsOther;
            response = HttpResponse::error(405, "POST /shard");
            response.extraHeaders["Allow"] = "POST";
        } else {
            ++_metrics.requestsCheck;
            response = handleShard(request);
        }
        _metrics.countResponse(response.status);
        return response;
    }
    const bool alias = request.path != "/check";
    const char *wanted = alias ? "GET" : "POST";
    if (request.method != wanted) {
        ++_metrics.requestsOther;
        response = HttpResponse::error(
            405, std::string(wanted) + " " + request.path);
        response.extraHeaders["Allow"] = wanted;
    } else {
        ++_metrics.requestsCheck;
        response = handleCheck(request, onChunk);
    }
    _metrics.countResponse(response.status);
    return response;
}

HttpResponse
CheckService::handle(const HttpRequest &request)
{
    if (isCheckRoute(request) || isShardRoute(request))
        return handleCheckRoute(request);

    HttpResponse response;
    if (request.path == "/metrics") {
        if (request.method != "GET") {
            ++_metrics.requestsOther;
            response = HttpResponse::error(405, "GET /metrics");
            response.extraHeaders["Allow"] = "GET";
        } else {
            ++_metrics.requestsMetrics;
            response.body = _metrics.render(_engine);
            response.contentType =
                "text/plain; version=0.0.4; charset=utf-8";
        }
    } else if (request.path == "/healthz") {
        if (request.method != "GET") {
            ++_metrics.requestsOther;
            response = HttpResponse::error(405, "GET /healthz");
            response.extraHeaders["Allow"] = "GET";
        } else {
            ++_metrics.requestsHealth;
            response = HttpResponse::text(200, "ok\n");
        }
    } else {
        ++_metrics.requestsOther;
        response = HttpResponse::error(
            404, "no such route: " + request.path);
    }
    _metrics.countResponse(response.status);
    return response;
}

} // namespace rex::server
