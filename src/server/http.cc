#include "server/http.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "base/strings.hh"
#include "engine/faultinject.hh"
#include "engine/results.hh"

namespace rex::server {

namespace {

/** Parse the request line "METHOD /path?query HTTP/1.1". */
bool
parseRequestLine(const std::string &line, HttpRequest &out,
                 int &minor_out)
{
    std::vector<std::string> parts = splitWhitespace(line);
    if (parts.size() != 3)
        return false;
    if (!startsWith(parts[2], "HTTP/1."))
        return false;
    minor_out = parts[2].size() == 8 && parts[2][7] == '0' ? 0 : 1;
    out.method = parts[0];
    std::string target = parts[1];
    auto question = target.find('?');
    if (question != std::string::npos) {
        out.query = target.substr(question + 1);
        target = target.substr(0, question);
    }
    if (target.empty() || target[0] != '/')
        return false;
    out.path = target;
    return true;
}

} // namespace

HttpResponse
HttpResponse::text(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    return response;
}

HttpResponse
HttpResponse::json(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.contentType = "application/json";
    response.body = std::move(body);
    return response;
}

HttpResponse
HttpResponse::error(int status, const std::string &message)
{
    return json(status, "{\"error\":\"" + engine::jsonEscape(message) +
                            "\"}\n");
}

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 204: return "No Content";
      case 304: return "Not Modified";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 409: return "Conflict";
      case 411: return "Length Required";
      case 413: return "Payload Too Large";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      default:  return "Unknown";
    }
}

void
HttpParser::feed(const char *data, std::size_t n)
{
    // Compact before growing: once a prefix of completed requests has
    // been consumed, drop it so the buffer tracks only in-flight bytes.
    if (_consumed > 0 &&
            (_consumed >= 4096 || _consumed == _buffer.size())) {
        _buffer.erase(0, _consumed);
        _scanHint -= std::min(_scanHint, _consumed);
        _consumed = 0;
    }
    _buffer.append(data, n);
}

HttpParser::Result
HttpParser::fail(int status, std::string message)
{
    _errorStatus = status;
    _error = std::move(message);
    _result = Result::Error;
    return _result;
}

HttpParser::Result
HttpParser::next(HttpRequest &out)
{
    if (_result == Result::Error)
        return Result::Error;

    if (_phase == Phase::Headers) {
        // RFC 9112 §2.2: ignore blank lines between requests (some
        // peers terminate bodies with a stray CRLF).
        while (_consumed < _buffer.size() &&
               (_buffer[_consumed] == '\r' || _buffer[_consumed] == '\n')) {
            ++_consumed;
        }

        // Find the header terminator, tolerating bare-LF framing from
        // hand-rolled peers. Prefer whichever terminator comes first so
        // a bare-LF head followed by CRLFCRLF binary noise still frames
        // at the right boundary. The scan resumes where the last
        // attempt left off (minus the longest partial terminator), so
        // byte-at-a-time delivery stays linear, not quadratic.
        std::size_t from = std::max(
            _consumed, _scanHint >= 3 ? _scanHint - 3 : std::size_t(0));
        std::size_t crlf = _buffer.find("\r\n\r\n", from);
        std::size_t lf = _buffer.find("\n\n", from);
        std::size_t header_end = std::min(crlf, lf);
        if (header_end == std::string::npos) {
            _scanHint = _buffer.size();
            if (_buffer.size() - _consumed > _limits.maxHeaderBytes)
                return fail(431, "header block too large");
            _result = Result::NeedMore;
            return _result;
        }
        _scanHint = 0;
        std::size_t body_start =
            header_end + (header_end == crlf ? 4 : 2);

        std::string head =
            _buffer.substr(_consumed, header_end - _consumed);
        if (head.size() > _limits.maxHeaderBytes)
            return fail(431, "header block too large");

        _pending = HttpRequest();
        int minor = 1;
        std::vector<std::string> lines = split(head, '\n');
        if (lines.empty() ||
                !parseRequestLine(trim(lines[0]), _pending, minor)) {
            return fail(400, "malformed request line");
        }
        for (std::size_t i = 1; i < lines.size(); ++i) {
            std::string line = trim(lines[i]);
            if (line.empty())
                continue;
            auto colon = line.find(':');
            if (colon == std::string::npos)
                return fail(400, "malformed header line");
            _pending.headers[toLower(trim(line.substr(0, colon)))] =
                trim(line.substr(colon + 1));
        }

        // Connection semantics: HTTP/1.1 defaults to keep-alive,
        // HTTP/1.0 to close; an explicit Connection header wins.
        _pending.keepAlive = minor >= 1;
        auto connection = _pending.headers.find("connection");
        if (connection != _pending.headers.end()) {
            std::string value = toLower(connection->second);
            if (value.find("close") != std::string::npos)
                _pending.keepAlive = false;
            else if (value.find("keep-alive") != std::string::npos)
                _pending.keepAlive = true;
        }

        if (_pending.headers.count("transfer-encoding"))
            return fail(501, "chunked request bodies are not supported");

        std::size_t content_length = 0;
        auto it = _pending.headers.find("content-length");
        if (it != _pending.headers.end()) {
            std::int64_t parsed;
            if (!parseInteger(it->second, parsed) || parsed < 0)
                return fail(400, "bad Content-Length");
            content_length = static_cast<std::size_t>(parsed);
        } else if (_pending.method == "POST" ||
                   _pending.method == "PUT") {
            return fail(411, "POST requires Content-Length");
        }
        // The whole point of framing by declared length: an oversized
        // body is refused here, before a single body byte is buffered.
        if (content_length > _limits.maxBodyBytes) {
            return fail(413,
                        format("body of %zu bytes exceeds the %zu-byte "
                               "limit",
                               content_length, _limits.maxBodyBytes));
        }

        _consumed = body_start;
        _bodyNeeded = content_length;
        _phase = Phase::Body;
    }

    if (_buffer.size() - _consumed < _bodyNeeded) {
        _result = Result::NeedMore;
        return _result;
    }

    out = std::move(_pending);
    out.body = _buffer.substr(_consumed, _bodyNeeded);
    _consumed += _bodyNeeded;
    _pending = HttpRequest();
    _bodyNeeded = 0;
    _phase = Phase::Headers;
    _result = Result::Ready;
    return _result;
}

std::string
serializeHttpResponse(const HttpResponse &response, bool keepAlive)
{
    std::string out = format("HTTP/1.1 %d %s\r\n", response.status,
                             statusReason(response.status));
    // 304/204 are body-less by definition; emitting a Content-Length
    // would make caches update the stored representation's length.
    const bool bodyless =
        response.status == 304 || response.status == 204;
    if (!bodyless) {
        out += "Content-Type: " + response.contentType + "\r\n";
        out += format("Content-Length: %zu\r\n", response.body.size());
    }
    for (const auto &[key, value] : response.extraHeaders)
        out += key + ": " + value + "\r\n";
    out += keepAlive ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n";
    if (!bodyless)
        out += response.body;
    return out;
}

std::string
urlDecode(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '%' && i + 2 < text.size()) {
            auto hex = [](char c) -> int {
                if (c >= '0' && c <= '9')
                    return c - '0';
                if (c >= 'a' && c <= 'f')
                    return c - 'a' + 10;
                if (c >= 'A' && c <= 'F')
                    return c - 'A' + 10;
                return -1;
            };
            int hi = hex(text[i + 1]), lo = hex(text[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
                continue;
            }
        }
        out += text[i];
    }
    return out;
}

bool
sendAll(int fd, const char *data, std::size_t size)
{
    if (engine::faultInjector().shouldFail(engine::FaultPoint::SockSend))
        return false;  // injected send failure: peer sees a dropped reply
    std::size_t sent = 0;
    while (sent < size) {
        ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace rex::server
