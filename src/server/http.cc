#include "server/http.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "base/strings.hh"
#include "engine/faultinject.hh"
#include "engine/results.hh"

namespace rex::server {

namespace {

/** Set send+receive timeouts on @p fd. */
void
setIoTimeout(int fd, int seconds)
{
    if (seconds <= 0)
        return;
    struct timeval tv;
    tv.tv_sec = seconds;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** Parse the request line "METHOD /path?query HTTP/1.1". */
bool
parseRequestLine(const std::string &line, HttpRequest &out)
{
    std::vector<std::string> parts = splitWhitespace(line);
    if (parts.size() != 3)
        return false;
    if (!startsWith(parts[2], "HTTP/1."))
        return false;
    out.method = parts[0];
    std::string target = parts[1];
    auto question = target.find('?');
    if (question != std::string::npos) {
        out.query = target.substr(question + 1);
        target = target.substr(0, question);
    }
    if (target.empty() || target[0] != '/')
        return false;
    out.path = target;
    return true;
}

} // namespace

HttpResponse
HttpResponse::text(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    return response;
}

HttpResponse
HttpResponse::json(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.contentType = "application/json";
    response.body = std::move(body);
    return response;
}

HttpResponse
HttpResponse::error(int status, const std::string &message)
{
    return json(status, "{\"error\":\"" + engine::jsonEscape(message) +
                            "\"}\n");
}

const char *
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 411: return "Length Required";
      case 413: return "Payload Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      default:  return "Unknown";
    }
}

int
readHttpRequest(int fd, const HttpLimits &limits, HttpRequest &out,
                std::string &error_out)
{
    setIoTimeout(fd, limits.ioTimeoutSeconds);

    // Read until the blank line ending the header block, byte-capped.
    std::string buffer;
    std::size_t header_end = std::string::npos;
    char chunk[4096];
    while (header_end == std::string::npos) {
        if (buffer.size() > limits.maxHeaderBytes) {
            error_out = "header block too large";
            return 413;
        }
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0) {
            error_out = buffer.empty() ? "" : "truncated request";
            return 400;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                error_out = "timed out reading request";
                return 408;
            }
            error_out = std::string("recv: ") + std::strerror(errno);
            return 400;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        header_end = buffer.find("\r\n\r\n");
        // Be liberal: accept bare-LF framing from hand-rolled peers.
        if (header_end == std::string::npos) {
            std::size_t bare = buffer.find("\n\n");
            if (bare != std::string::npos)
                header_end = bare;
        }
    }

    std::size_t body_start = buffer[header_end] == '\r'
        ? header_end + 4 : header_end + 2;
    std::string head = buffer.substr(0, header_end);
    if (head.size() > limits.maxHeaderBytes) {
        error_out = "header block too large";
        return 413;
    }

    std::vector<std::string> lines = split(head, '\n');
    if (lines.empty() || !parseRequestLine(trim(lines[0]), out)) {
        error_out = "malformed request line";
        return 400;
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::string line = trim(lines[i]);
        if (line.empty())
            continue;
        auto colon = line.find(':');
        if (colon == std::string::npos) {
            error_out = "malformed header line";
            return 400;
        }
        out.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }

    if (out.headers.count("transfer-encoding")) {
        error_out = "chunked request bodies are not supported";
        return 501;
    }

    std::size_t content_length = 0;
    auto it = out.headers.find("content-length");
    if (it != out.headers.end()) {
        std::int64_t parsed;
        if (!parseInteger(it->second, parsed) || parsed < 0) {
            error_out = "bad Content-Length";
            return 400;
        }
        content_length = static_cast<std::size_t>(parsed);
    } else if (out.method == "POST" || out.method == "PUT") {
        error_out = "POST requires Content-Length";
        return 411;
    }
    if (content_length > limits.maxBodyBytes) {
        error_out = format("body of %zu bytes exceeds the %zu-byte limit",
                           content_length, limits.maxBodyBytes);
        return 413;
    }

    out.body = buffer.substr(body_start);
    if (out.body.size() > content_length) {
        error_out = "body longer than Content-Length";
        return 400;
    }
    while (out.body.size() < content_length) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0) {
            error_out = "truncated body";
            return 400;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                error_out = "timed out reading body";
                return 408;
            }
            error_out = std::string("recv: ") + std::strerror(errno);
            return 400;
        }
        out.body.append(chunk, static_cast<std::size_t>(n));
        if (out.body.size() > content_length) {
            error_out = "body longer than Content-Length";
            return 400;
        }
    }
    return 0;
}

bool
sendAll(int fd, const char *data, std::size_t size)
{
    if (engine::faultInjector().shouldFail(engine::FaultPoint::SockSend))
        return false;  // injected send failure: peer sees a dropped reply
    std::size_t sent = 0;
    while (sent < size) {
        ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void
drainPeer(int fd, std::size_t maxBytes, int timeoutSeconds)
{
    ::shutdown(fd, SHUT_WR);
    setIoTimeout(fd, timeoutSeconds);
    char chunk[4096];
    std::size_t drained = 0;
    while (drained < maxBytes) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;  // EOF, timeout, or error: nothing more to absorb
        drained += static_cast<std::size_t>(n);
    }
}

void
writeHttpResponse(int fd, const HttpResponse &response)
{
    std::string head = format("HTTP/1.1 %d %s\r\n", response.status,
                              statusReason(response.status));
    head += "Content-Type: " + response.contentType + "\r\n";
    head += format("Content-Length: %zu\r\n", response.body.size());
    for (const auto &[key, value] : response.extraHeaders)
        head += key + ": " + value + "\r\n";
    head += "Connection: close\r\n\r\n";
    if (sendAll(fd, head.data(), head.size()))
        sendAll(fd, response.body.data(), response.body.size());
}

} // namespace rex::server
