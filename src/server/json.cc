#include "server/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "base/logging.hh"
#include "base/strings.hh"

namespace rex::server {

namespace {

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue(0);
        skipWhitespace();
        if (_pos != _text.size())
            fail("trailing data after JSON value");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal(format("JSON parse error at offset %zu: %s", _pos,
                     why.c_str()));
    }

    void
    skipWhitespace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r')) {
            ++_pos;
        }
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(format("expected '%c'", c));
        ++_pos;
    }

    bool
    consumeLiteral(const char *literal)
    {
        std::size_t len = std::char_traits<char>::length(literal);
        if (_text.compare(_pos, len, literal) != 0)
            return false;
        _pos += len;
        return true;
    }

    JsonValue
    parseValue(std::size_t depth)
    {
        if (depth >= kMaxJsonDepth)
            fail("nesting too deep");
        skipWhitespace();
        char c = peek();
        JsonValue value;
        switch (c) {
          case '{':
            return parseObject(depth);
          case '[':
            return parseArray(depth);
          case '"':
            value.kind = JsonValue::Kind::String;
            value.string = parseString();
            return value;
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
            return value;
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            value.kind = JsonValue::Kind::Bool;
            value.boolean = false;
            return value;
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return value;
          default:
            if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
                return parseNumber();
            fail("unexpected character");
        }
    }

    JsonValue
    parseObject(std::size_t depth)
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        expect('{');
        skipWhitespace();
        if (peek() == '}') {
            ++_pos;
            return value;
        }
        while (true) {
            skipWhitespace();
            if (peek() != '"')
                fail("object key must be a string");
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            value.object[key] = parseValue(depth + 1);
            skipWhitespace();
            char next = peek();
            ++_pos;
            if (next == '}')
                return value;
            if (next != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray(std::size_t depth)
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        expect('[');
        skipWhitespace();
        if (peek() == ']') {
            ++_pos;
            return value;
        }
        while (true) {
            value.array.push_back(parseValue(depth + 1));
            skipWhitespace();
            char next = peek();
            ++_pos;
            if (next == ']')
                return value;
            if (next != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _text.size())
                fail("unterminated string");
            unsigned char c = static_cast<unsigned char>(_text[_pos++]);
            if (c == '"')
                return out;
            if (c < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            char esc = _text[_pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += parseUnicodeEscape(); break;
              default: fail("bad escape character");
            }
        }
    }

    /** Decode \uXXXX (with surrogate pairs) to UTF-8. */
    std::string
    parseUnicodeEscape()
    {
        std::uint32_t code = parseHex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (_pos + 1 >= _text.size() || _text[_pos] != '\\' ||
                    _text[_pos + 1] != 'u') {
                fail("unpaired surrogate");
            }
            _pos += 2;
            std::uint32_t low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF)
                fail("bad low surrogate");
            code = 0x10000 +
                ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate");
        }
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    std::uint32_t
    parseHex4()
    {
        std::uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
            if (_pos >= _text.size())
                fail("truncated \\u escape");
            char c = _text[_pos++];
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                fail("bad hex digit in \\u escape");
        }
        return code;
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("bad number");
        std::size_t int_start = _pos;
        while (_pos < _text.size() &&
               std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
        if (_text[int_start] == '0' && _pos - int_start > 1)
            fail("number has a leading zero");
        bool integral = true;
        if (_pos < _text.size() && _text[_pos] == '.') {
            integral = false;
            ++_pos;
            if (_pos >= _text.size() ||
                    !std::isdigit(static_cast<unsigned char>(_text[_pos])))
                fail("bad number fraction");
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
            }
        }
        if (_pos < _text.size() &&
                (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            integral = false;
            ++_pos;
            if (_pos < _text.size() &&
                    (_text[_pos] == '+' || _text[_pos] == '-')) {
                ++_pos;
            }
            if (_pos >= _text.size() ||
                    !std::isdigit(static_cast<unsigned char>(_text[_pos])))
                fail("bad number exponent");
            while (_pos < _text.size() &&
                   std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
            }
        }
        std::string token = _text.substr(start, _pos - start);
        JsonValue value;
        if (integral) {
            errno = 0;
            char *end = nullptr;
            long long parsed = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                value.kind = JsonValue::Kind::Int;
                value.integer = parsed;
                value.number = static_cast<double>(parsed);
                return value;
            }
        }
        value.kind = JsonValue::Kind::Double;
        value.number = std::strtod(token.c_str(), nullptr);
        return value;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace rex::server
