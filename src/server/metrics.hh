/**
 * @file
 * Prometheus-style metrics for rexd.
 *
 * A fixed, hand-enumerated metric set (no generic registry): counters
 * for requests/responses/verdicts/queue rejections, gauges for queue
 * depth and in-flight requests, and one latency histogram per pipeline
 * stage (parse, enumerate, check, request). Everything is lock-free
 * atomics, safe to bump from any handler thread while /metrics renders.
 *
 * Cache hit/miss counts are not duplicated here — render() reads them
 * live from the engine's VerdictCache, which is the single source of
 * truth (the shared cache outlives and spans all requests).
 *
 * The exposition format is the Prometheus text format, metric names in
 * docs/SERVER.md.
 */

#ifndef REX_SERVER_METRICS_HH
#define REX_SERVER_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rex::engine { class Engine; }

namespace rex::server {

/**
 * A fixed-bucket latency histogram (seconds). Buckets are cumulative
 * when rendered, as Prometheus requires; observations are recorded in
 * microseconds to avoid floating-point atomics.
 */
class LatencyHistogram
{
  public:
    /** Upper bounds in seconds (plus an implicit +Inf bucket). */
    static constexpr std::array<double, 10> kBuckets = {
        0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
        0.01,   0.05,    0.25,   1.0,
    };

    /** Record one observation of @p micros microseconds. */
    void observe(std::uint64_t micros);

    /** Render `name_bucket`/`name_sum`/`name_count` lines, with
     *  @p labels ("stage=\"parse\"") spliced into every line. */
    std::string render(const std::string &name,
                       const std::string &labels) const;

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets.size() + 1> _counts{};
    std::atomic<std::uint64_t> _sumMicros{0};
    std::atomic<std::uint64_t> _count{0};
};

/**
 * A fixed-bucket histogram over plain counts (requests served on one
 * keep-alive connection, say), rendered cumulatively like
 * LatencyHistogram but with integral bucket bounds.
 */
class CountHistogram
{
  public:
    /** Upper bounds (plus an implicit +Inf bucket). */
    static constexpr std::array<std::uint64_t, 9> kBuckets = {
        1, 2, 5, 10, 25, 50, 100, 250, 1000,
    };

    /** Record one observation of @p value. */
    void observe(std::uint64_t value);

    /** Render `name_bucket`/`name_sum`/`name_count` lines. */
    std::string render(const std::string &name) const;

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets.size() + 1> _counts{};
    std::atomic<std::uint64_t> _sum{0};
    std::atomic<std::uint64_t> _count{0};
};

/** The rexd metric set. */
struct Metrics {
    /** Requests accepted into the handler, by route. */
    std::atomic<std::uint64_t> requestsCheck{0};
    std::atomic<std::uint64_t> requestsMetrics{0};
    std::atomic<std::uint64_t> requestsHealth{0};
    std::atomic<std::uint64_t> requestsOther{0};

    /** Responses sent, by status class/code of interest. */
    std::atomic<std::uint64_t> responses200{0};
    std::atomic<std::uint64_t> responses304{0};
    std::atomic<std::uint64_t> responses400{0};
    std::atomic<std::uint64_t> responses404{0};
    std::atomic<std::uint64_t> responses405{0};
    std::atomic<std::uint64_t> responses408{0};
    std::atomic<std::uint64_t> responses409{0};
    std::atomic<std::uint64_t> responses413{0};
    std::atomic<std::uint64_t> responses431{0};
    std::atomic<std::uint64_t> responses500{0};
    std::atomic<std::uint64_t> responses503{0};

    /** Verdicts served (one per variant of every /check), by outcome. */
    std::atomic<std::uint64_t> verdictsAllowed{0};
    std::atomic<std::uint64_t> verdictsForbidden{0};
    std::atomic<std::uint64_t> verdictsExhausted{0};
    std::atomic<std::uint64_t> verdictsCrashed{0};
    std::atomic<std::uint64_t> verdictsQuarantined{0};

    /** Budget trips behind ExhaustedBudget verdicts, by axis. */
    std::atomic<std::uint64_t> budgetTripsDeadline{0};
    std::atomic<std::uint64_t> budgetTripsCandidates{0};
    std::atomic<std::uint64_t> budgetTripsMemory{0};
    std::atomic<std::uint64_t> budgetTripsCancelled{0};

    /** Connections rejected by backpressure (503 at accept). */
    std::atomic<std::uint64_t> queueRejected{0};

    /**
     * Per-socket read timeouts (the 408 path). Distinct from the 400
     * malformed-input counter so slow-loris peers and broken clients
     * are distinguishable on /metrics.
     */
    std::atomic<std::uint64_t> readTimeouts{0};

    /** Conditional requests answered 304 Not Modified on the event
     *  loop, without touching the engine or its pool. */
    std::atomic<std::uint64_t> http304{0};

    /** Keep-alive connections closed by the idle deadline (distinct
     *  from readTimeouts: an idle peer owes us nothing, so no 408). */
    std::atomic<std::uint64_t> idleTimeouts{0};

    /**
     * Peer shard-dispatch series (multi-node fan-out, server/peer.hh).
     * The failure ladder is visible end to end: a failed attempt bumps
     * retries, an exhausted peer bumps failures and puts its task back
     * (redispatch), and whatever no surviving peer filled is finished
     * locally (local fallback) — so `redispatch + local_fallback > 0`
     * with `verdicts unchanged` is the signature of a tolerated fault.
     */
    std::atomic<std::uint64_t> peerDispatchTotal{0};
    std::atomic<std::uint64_t> peerFailuresTotal{0};
    std::atomic<std::uint64_t> peerRetriesTotal{0};
    std::atomic<std::uint64_t> peerRedispatchTotal{0};
    std::atomic<std::uint64_t> peerHedgesTotal{0};
    std::atomic<std::uint64_t> peerDedupDroppedTotal{0};
    std::atomic<std::uint64_t> peerLocalFallbackTotal{0};

    /** Eligible checks that found no healthy peer and degraded to
     *  local-only enumeration. */
    std::atomic<std::uint64_t> peerUnavailableTotal{0};

    /** Peer endpoints configured / currently believed healthy
     *  (gauges, maintained by the PeerPool). */
    std::atomic<std::int64_t> peersConfigured{0};
    std::atomic<std::int64_t> peersHealthy{0};

    /** POST /shard requests served, and those refused with 409 (job
     *  fingerprint or shard-plan mismatch). */
    std::atomic<std::uint64_t> shardRequests{0};
    std::atomic<std::uint64_t> shardRefused{0};

    /**
     * Integrity series (docs/DISTRIBUTED.md, "Integrity & trust
     * model"). A digest mismatch is a peer answer whose rex-shard-v1
     * envelope failed verification — counted, never merged. Audits are
     * sampled recomputations of filled tasks: "match" confirms the
     * fill, "divergence" caught differing answers (resolved against
     * local ground truth), "failed" could not complete (no auditor
     * reachable). A lie is an audit-divergent answer confirmed wrong
     * against ground truth; the lying peer is quarantined
     * (rexd_peers_quarantined).
     */
    std::atomic<std::uint64_t> shardDigestMismatches{0};
    std::atomic<std::uint64_t> auditsMatch{0};
    std::atomic<std::uint64_t> auditsDivergence{0};
    std::atomic<std::uint64_t> auditsFailed{0};
    std::atomic<std::uint64_t> peerLiesTotal{0};

    /** Peers currently under lie-grade quarantine (gauge, maintained
     *  by the PeerPool). */
    std::atomic<std::int64_t> peersQuarantined{0};

    /** Per-peer RTT EWMA snapshot behind rexd_peer_rtt_ms, keyed by
     *  peer index. Mutex-guarded: updated on successful dispatches,
     *  read whole by render(). */
    struct PeerRtt {
        std::string endpoint;
        double millis = 0.0;
        bool valid = false;
    };
    void recordPeerRtt(std::size_t index, const std::string &endpoint,
                       double millis);

    /** Continuation lifecycle: rex-cont-v1 tokens issued on budget
     *  trips, resume tokens accepted, and tokens refused (malformed,
     *  stale, or tampered — the 400/409 paths). */
    std::atomic<std::uint64_t> continuationsIssued{0};
    std::atomic<std::uint64_t> resumeAccepted{0};
    std::atomic<std::uint64_t> continuationRefused{0};

    /** Current accept-queue depth (gauge, maintained by the server). */
    std::atomic<std::int64_t> queueDepth{0};

    /** Requests currently being handled (gauge). */
    std::atomic<std::int64_t> inflight{0};

    /** Connections currently open on the event loop (gauge). */
    std::atomic<std::int64_t> openConnections{0};

    /** Requests served per keep-alive connection, recorded when the
     *  connection closes. */
    CountHistogram keepaliveRequests;

    /** Per-stage latency: litmus parsing, model compilation (cache
     *  misses of the compiled path), cache-miss enumeration+check,
     *  per-variant verdict (incl. cache hits), whole request. */
    LatencyHistogram stageParse;
    LatencyHistogram stageCompile;
    LatencyHistogram stageEnumerate;
    LatencyHistogram stageCheck;
    LatencyHistogram stageRequest;

    /** Count one response with @p status. */
    void countResponse(int status);

    /** Count one budget trip on @p axis ("deadline", "candidates",
     *  "memory", "cancelled"). */
    void countBudgetTrip(const std::string &axis);

    /**
     * Render the Prometheus text exposition. Cache hits/misses/entry
     * counts and the engine worker count are read from @p engine.
     */
    std::string render(engine::Engine &engine) const;

  private:
    mutable std::mutex _peerRttMutex;
    std::vector<PeerRtt> _peerRtt;
};

} // namespace rex::server

#endif // REX_SERVER_METRICS_HH
