/**
 * @file
 * HTTP/1.1 framing for rexd: a resumable request parser and response
 * serialisation, dependency-free by design.
 *
 * HttpParser is an incremental state machine made for a non-blocking
 * event loop: bytes are feed()ed as they arrive off the socket and
 * next() yields complete requests as soon as they are framed, including
 * several pipelined requests from one read. It never allocates
 * proportionally to anything the peer did not send: the request
 * line + header block is capped (431 beyond it), a body is refused by
 * its declared Content-Length (413) *before* any of it is buffered, and
 * chunked uploads are rejected (501). Bare-LF framing from hand-rolled
 * peers is tolerated.
 *
 * Responses carry Content-Length and an explicit `Connection:
 * keep-alive` / `close` header; 304/204 responses are serialised
 * body-less as HTTP requires. Only what rexd needs is implemented:
 * GET/POST, Content-Length bodies, no TLS, no chunked coding.
 */

#ifndef REX_SERVER_HTTP_HH
#define REX_SERVER_HTTP_HH

#include <cstdint>
#include <map>
#include <string>

namespace rex::server {

/** Limits applied while parsing a request. */
struct HttpLimits {
    /** Request line + headers cap (bytes); 431 beyond it. */
    std::size_t maxHeaderBytes = 16 * 1024;

    /** Body cap (bytes); larger Content-Lengths are refused with 413
     *  before any body byte is buffered. */
    std::size_t maxBodyBytes = 1024 * 1024;

    /** Read deadline (seconds) for a connection mid-request; a stalled
     *  peer is answered 408. Also the write-stall deadline. */
    int ioTimeoutSeconds = 30;
};

/** One parsed request. */
struct HttpRequest {
    std::string method;
    std::string path;      //!< path only; the query string is stripped
    std::string query;     //!< raw query string ("" when absent)
    std::map<std::string, std::string> headers;  //!< keys lowercased
    std::string body;

    /** Peer wants the connection kept open after the response: HTTP/1.1
     *  default unless `Connection: close`; HTTP/1.0 opt-in. */
    bool keepAlive = true;
};

/** One response to serialise. */
struct HttpResponse {
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    std::map<std::string, std::string> extraHeaders;

    static HttpResponse text(int status, std::string body);
    static HttpResponse json(int status, std::string body);

    /** `{"error":"<escaped message>"}` with @p status. */
    static HttpResponse error(int status, const std::string &message);
};

/** Reason phrase for @p status ("OK", "Not Modified", ...). */
const char *statusReason(int status);

/**
 * Resumable HTTP/1.1 request parser.
 *
 * Usage, per connection:
 *
 *     parser.feed(data, n);              // bytes off the socket
 *     HttpRequest request;
 *     while (parser.next(request) == HttpParser::Result::Ready)
 *         handle(request);               // may yield several (pipelining)
 *     if (parser.result() == Result::Error)
 *         answer(parser.errorStatus(), parser.errorMessage());
 *
 * Errors are sticky: a connection whose byte stream went wrong cannot
 * be re-framed, so the caller answers once and closes.
 */
class HttpParser
{
  public:
    enum class Result {
        NeedMore,  //!< no complete request buffered yet
        Ready,     //!< one request extracted; call next() again
        Error,     //!< stream unframeable; see errorStatus()
    };

    explicit HttpParser(HttpLimits limits = {}) : _limits(limits) {}

    /** Append @p n bytes received from the peer. */
    void feed(const char *data, std::size_t n);

    /** Try to extract the next complete request into @p out. */
    Result next(HttpRequest &out);

    /** The last next() outcome (Error is sticky). */
    Result result() const { return _result; }

    /** HTTP status to answer with after Result::Error (400/411/413/
     *  431/501). */
    int errorStatus() const { return _errorStatus; }
    const std::string &errorMessage() const { return _error; }

    /** True when no partial request is buffered — the connection is
     *  between requests and may idle or be closed cleanly. */
    bool idle() const { return _buffer.size() == _consumed; }

    /** Bytes buffered but not yet consumed by a complete request. */
    std::size_t bufferedBytes() const { return _buffer.size() - _consumed; }

  private:
    Result fail(int status, std::string message);

    HttpLimits _limits;
    std::string _buffer;
    std::size_t _consumed = 0;  //!< parse offset into _buffer

    enum class Phase { Headers, Body };
    Phase _phase = Phase::Headers;
    HttpRequest _pending;         //!< headers parsed, awaiting body
    std::size_t _bodyNeeded = 0;  //!< Content-Length of _pending

    std::size_t _scanHint = 0;  //!< terminator search resumes here

    Result _result = Result::NeedMore;
    int _errorStatus = 0;
    std::string _error;
};

/**
 * Serialise @p response: status line, Content-Type/-Length, extra
 * headers, and `Connection: keep-alive` / `close` per @p keepAlive.
 * 304 and 204 responses are serialised without a body or
 * Content-Length, as HTTP requires.
 */
std::string serializeHttpResponse(const HttpResponse &response,
                                  bool keepAlive);

/** Decode %XX escapes in a URL path/query component ('+' is literal). */
std::string urlDecode(std::string_view text);

/** Blocking full-buffer send; true when every byte was written. Used by
 *  the client (the server writes through its event loop instead). */
bool sendAll(int fd, const char *data, std::size_t size);

} // namespace rex::server

#endif // REX_SERVER_HTTP_HH
