/**
 * @file
 * Minimal HTTP/1.1 framing over POSIX sockets for rexd.
 *
 * Dependency-free by design: the request parser reads from a connected
 * socket with strict limits (request-line/header bytes, body bytes via
 * Content-Length, per-socket I/O timeout) and never allocates
 * proportionally to anything the peer did not send. Responses always
 * carry Content-Length and `Connection: close`; every connection serves
 * exactly one request, which keeps backpressure accounting and graceful
 * drain trivially correct (a drained queue means no half-served peers).
 *
 * Only what rexd needs is implemented: GET/POST, Content-Length bodies
 * (chunked uploads are rejected with 411/501), no TLS, no keep-alive.
 */

#ifndef REX_SERVER_HTTP_HH
#define REX_SERVER_HTTP_HH

#include <cstdint>
#include <map>
#include <string>

namespace rex::server {

/** Limits applied while reading a request from the socket. */
struct HttpLimits {
    /** Request line + headers cap (bytes). */
    std::size_t maxHeaderBytes = 16 * 1024;

    /** Body cap (bytes); larger Content-Lengths are refused with 413. */
    std::size_t maxBodyBytes = 1024 * 1024;

    /** Socket send/receive timeout (seconds). */
    int ioTimeoutSeconds = 30;
};

/** One parsed request. */
struct HttpRequest {
    std::string method;
    std::string path;      //!< path only; the query string is stripped
    std::string query;     //!< raw query string ("" when absent)
    std::map<std::string, std::string> headers;  //!< keys lowercased
    std::string body;
};

/** One response to serialise. */
struct HttpResponse {
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    std::map<std::string, std::string> extraHeaders;

    static HttpResponse text(int status, std::string body);
    static HttpResponse json(int status, std::string body);

    /** `{"error":"<escaped message>"}` with @p status. */
    static HttpResponse error(int status, const std::string &message);
};

/** Reason phrase for @p status ("OK", "Bad Request", ...). */
const char *statusReason(int status);

/**
 * Read and parse one request from connected socket @p fd under
 * @p limits.
 *
 * @return 0 on success (filling @p out); on failure, the HTTP status
 *         the caller should answer with (400 malformed, 408 timeout,
 *         411 missing length, 413 too large, 501 chunked), with
 *         @p error_out describing the problem. A peer that closed
 *         before sending anything yields 0 bytes read and status 400
 *         with an empty error; callers may just close.
 */
int readHttpRequest(int fd, const HttpLimits &limits, HttpRequest &out,
                    std::string &error_out);

/**
 * Serialise and send @p response on @p fd (adds Content-Length and
 * Connection: close). Best-effort: send errors are swallowed, the
 * caller closes the socket either way.
 */
void writeHttpResponse(int fd, const HttpResponse &response);

/**
 * Half-close @p fd for writing, then read and discard whatever the peer
 * is still sending (bounded by @p maxBytes and @p timeoutSeconds per
 * read) until it closes. Use after answering an error on a connection
 * whose body was never read: closing with unread data in the receive
 * buffer makes the kernel send RST, which can destroy the response
 * before the peer reads it. Does NOT close @p fd.
 */
void drainPeer(int fd, std::size_t maxBytes, int timeoutSeconds);

/** Blocking full-buffer send; true when every byte was written. */
bool sendAll(int fd, const char *data, std::size_t size);

} // namespace rex::server

#endif // REX_SERVER_HTTP_HH
